"""Tests for the gpusim kernels (Algorithms 1-3) and their hardware behaviour."""

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.core.kernels import run_arraysort_on_device
from repro.core.splitters import select_splitters
from repro.gpusim import GpuDevice


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestPipelineCorrectness:
    def test_sorts_small_batch(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (4, 100)).astype(np.float32)
        out, _ = run_arraysort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_sorts_with_duplicates(self, gpu, rng):
        batch = rng.integers(0, 5, (3, 80)).astype(np.float32)
        out, _ = run_arraysort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_sorts_reverse_rows(self, gpu):
        batch = np.tile(np.arange(64, 0, -1, dtype=np.float32), (2, 1))
        out, _ = run_arraysort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_single_bucket_tiny_arrays(self, gpu, rng):
        batch = rng.uniform(0, 10, (3, 12)).astype(np.float32)
        out, _ = run_arraysort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_negative_values(self, gpu, rng):
        batch = rng.uniform(-1e6, 1e6, (3, 60)).astype(np.float32)
        out, _ = run_arraysort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_splitters_match_vectorized_phase1(self, gpu, rng):
        # The sim kernel's phase-1 output must equal the vectorized
        # phase-1 splitters (same sampling positions, same sort).
        batch = rng.uniform(0, 1e6, (3, 100)).astype(np.float32)
        cfg = SortConfig()
        expected = select_splitters(batch, cfg).splitters

        from repro.core.splitters import regular_sample_indices, splitter_pick_indices
        from repro.core.kernels import splitter_selection_kernel

        n = batch.shape[1]
        p = cfg.num_buckets(n)
        q = p - 1
        sample_idx = regular_sample_indices(n, cfg)
        pick_idx = splitter_pick_indices(len(sample_idx), p)
        d_data = gpu.memory.alloc_like(batch.ravel())
        d_split = gpu.memory.alloc(batch.shape[0] * q, np.float32)
        gpu.launch(
            splitter_selection_kernel,
            grid=batch.shape[0], block=1,
            args=(d_data, d_split, n, q, sample_idx, pick_idx),
            shared_setup=lambda sm: sm.alloc(len(sample_idx), np.float32),
        )
        got = d_split.copy_to_host().reshape(batch.shape[0], q)
        assert np.array_equal(got, expected)
        gpu.memory.free(d_data)
        gpu.memory.free(d_split)

    def test_frees_device_memory(self, gpu, rng):
        batch = rng.uniform(0, 1, (2, 50)).astype(np.float32)
        run_arraysort_on_device(gpu, batch)
        assert gpu.memory.live_allocations() == 0

    def test_frees_on_failure_too(self, rng):
        # Batch too big for the micro device -> OOM, but nothing leaks.
        from repro.gpusim.errors import DeviceOutOfMemoryError

        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1, (2000, 1000)).astype(np.float32)
        with pytest.raises(DeviceOutOfMemoryError):
            run_arraysort_on_device(gpu, batch)
        assert gpu.memory.live_allocations() == 0

    def test_rejects_1d(self, gpu):
        with pytest.raises(ValueError):
            run_arraysort_on_device(gpu, np.arange(10.0))


class TestHardwareBehaviour:
    def test_phase2_bucketing_avoids_range_check_divergence(self, gpu, rng):
        """Sentinel splitter pairs remove boundary branches (Section 5.2).

        The count scan's range check must not split the warp: every lane
        executes the same loads/compares each step.  Divergence only
        appears in the emit scan where matching lanes store.
        """
        batch = rng.uniform(0, 1e6, (2, 96)).astype(np.float32)
        _, pipeline = run_arraysort_on_device(gpu, batch)
        phase2 = next(
            l for l in pipeline.launches if l.kernel_name == "phase2_bucketing"
        )
        # Phase 2 diverges only on the emit-store steps; the bound below
        # fails if the count scan's comparisons also serialized.
        assert phase2.divergence_fraction < 0.55

    def test_phase1_is_single_threaded_per_block(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (3, 100)).astype(np.float32)
        _, pipeline = run_arraysort_on_device(gpu, batch)
        phase1 = pipeline.launches[0]
        assert phase1.threads_per_block == 1
        assert phase1.grid_blocks == 3

    def test_phase23_one_thread_per_bucket(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (2, 100)).astype(np.float32)
        _, pipeline = run_arraysort_on_device(gpu, batch)
        p = SortConfig().num_buckets(100)
        assert pipeline.launches[1].threads_per_block == p
        assert pipeline.launches[2].threads_per_block == p

    def test_shared_memory_traffic_dominates_phase2(self, gpu, rng):
        # Phase 2 stages the row in shared memory and scans it twice from
        # there: shared accesses must far outnumber global ones.
        batch = rng.uniform(0, 1e6, (2, 96)).astype(np.float32)
        _, pipeline = run_arraysort_on_device(gpu, batch)
        phase2 = pipeline.launches[1]
        assert phase2.total_shared_accesses > 2 * phase2.total_global_transactions

    def test_modeled_time_grows_with_n(self, gpu, rng):
        small = rng.uniform(0, 1, (2, 40)).astype(np.float32)
        large = rng.uniform(0, 1, (2, 160)).astype(np.float32)
        _, rep_small = run_arraysort_on_device(gpu, small)
        _, rep_large = run_arraysort_on_device(gpu, large)
        assert rep_large.milliseconds > rep_small.milliseconds

    def test_by_kernel_breakdown(self, gpu, rng):
        batch = rng.uniform(0, 1, (2, 60)).astype(np.float32)
        _, pipeline = run_arraysort_on_device(gpu, batch)
        breakdown = pipeline.by_kernel()
        assert set(breakdown) == {
            "phase1_splitter_selection", "phase2_bucketing", "phase3_bucket_sort",
        }
        assert all(v >= 0 for v in breakdown.values())
