"""Tests for the CSV series exporter."""

import csv

import pytest

from repro.analysis.export import (
    export_all,
    export_claims,
    export_figure_series,
    export_table1,
)


def _read(path):
    with path.open() as handle:
        return list(csv.reader(handle))


class TestExport:
    def test_export_all_writes_everything(self, tmp_path):
        out = export_all(tmp_path)
        assert set(out) == {"fig2", "fig4", "fig5", "fig6", "fig7",
                            "table1", "claims"}
        for path in out.values():
            assert path.exists()
            assert len(_read(path)) > 1

    def test_fig2_columns(self, tmp_path):
        export_figure_series(tmp_path)
        rows = _read(tmp_path / "fig2.csv")
        assert rows[0] == ["n", "modeled_ms", "theory_ms"]
        assert len(rows) == 11  # header + 10 sizes

    def test_fig7_truncated_axis(self, tmp_path):
        export_figure_series(tmp_path)
        assert len(_read(tmp_path / "fig7.csv")) == 5   # header + 4 points
        assert len(_read(tmp_path / "fig4.csv")) == 6   # header + 5 points

    def test_series_values_parse_and_order(self, tmp_path):
        export_figure_series(tmp_path)
        rows = _read(tmp_path / "fig4.csv")[1:]
        gas = [float(r[1]) for r in rows]
        sta = [float(r[2]) for r in rows]
        assert all(s > g for g, s in zip(gas, sta))
        assert gas == sorted(gas)

    def test_table1_contents(self, tmp_path):
        path = export_table1(tmp_path)
        rows = _read(path)
        assert rows[1][0] == "1000"
        assert rows[1][2] == "2000000"

    def test_claims_all_pass(self, tmp_path):
        path = export_claims(tmp_path)
        rows = _read(path)[1:]
        assert len(rows) == 7
        assert all(r[1] == "PASS" for r in rows)

    def test_directory_created(self, tmp_path):
        nested = tmp_path / "a" / "b"
        export_table1(nested)
        assert (nested / "table1.csv").exists()
