"""Fleet metrics export: JSON schema, Prometheus families, per-worker
and aggregate views, hostile-label safety."""

import json

import numpy as np
import pytest

from repro.fleet import (
    FLEET_METRICS_SCHEMA,
    SortFleet,
    collect_fleet_metrics,
    render_fleet_prometheus,
)

pytestmark = [pytest.mark.fleet, pytest.mark.service]

RNG = np.random.default_rng(7)


@pytest.fixture(scope="module")
def served_fleet():
    with SortFleet(workers=2, linger_ms=1.0, heartbeat_s=0.02,
                   liveness_s=2.0, start_timeout_s=60.0) as fl:
        for _ in range(4):
            batch = RNG.integers(0, 100, size=(3, 16)).astype(np.float32)
            fl.submit(batch, tenant="alpha").result(timeout=30)
        fl.submit(
            RNG.integers(0, 100, size=(3, 16)).astype(np.float32),
            tenant='evil"tenant\nname\\',
        ).result(timeout=30)
        fl.flush(timeout=30)
        yield fl


class TestCollect:
    def test_schema_and_json_round_trip(self, served_fleet):
        metrics = collect_fleet_metrics(served_fleet)
        assert metrics["schema"] == FLEET_METRICS_SCHEMA
        # Strictly JSON-serializable, round-trips intact.
        assert json.loads(json.dumps(metrics)) == json.loads(
            json.dumps(metrics)
        )

    def test_fleet_counters(self, served_fleet):
        fleet_block = collect_fleet_metrics(served_fleet)["fleet"]
        assert fleet_block["submitted"] == 5
        assert fleet_block["completed"] == 5
        assert fleet_block["workers_total"] == 2
        assert fleet_block["workers_alive"] == 2
        assert fleet_block["failovers"] == 0
        assert fleet_block["inflight_requests"] == 0

    def test_per_worker_view(self, served_fleet):
        workers = collect_fleet_metrics(served_fleet)["workers"]
        assert set(workers) == {"0", "1"}
        for block in workers.values():
            assert block["alive"] is True
            assert block["pid"] > 0
            assert block["outstanding_rows"] == 0
            assert isinstance(block["service"], dict)
        assert sum(b["completed"] for b in workers.values()) == 5

    def test_aggregate_sums_worker_services(self, served_fleet):
        import time

        # Heartbeats carry the worker-side ServiceStats; wait for the
        # post-completion snapshots to land.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            aggregate = collect_fleet_metrics(served_fleet)["aggregate"]
            if aggregate["completed"] >= 5:
                break
            time.sleep(0.02)
        assert aggregate["completed"] >= 5
        assert aggregate["submitted"] >= 5
        assert set(aggregate) >= {"batches", "batched_rows", "failed"}

    def test_tenant_slices(self, served_fleet):
        tenants = collect_fleet_metrics(served_fleet)["tenants"]
        assert tenants["alpha"]["completed"] == 4
        assert tenants['evil"tenant\nname\\']["completed"] == 1


class TestRender:
    def test_families_present(self, served_fleet):
        text = render_fleet_prometheus(collect_fleet_metrics(served_fleet))
        assert "repro_fleet_submitted_total 5" in text
        assert "repro_fleet_completed_total 5" in text
        assert "repro_fleet_workers_alive 2" in text
        assert "repro_fleet_failovers_total 0" in text
        assert 'repro_fleet_worker_alive{worker="0"} 1' in text
        assert 'repro_fleet_worker_alive{worker="1"} 1' in text
        assert "repro_fleet_aggregate_completed_total" in text
        assert 'repro_fleet_tenant_completed_total{tenant="alpha"} 4' in text

    def test_hostile_tenant_label_is_escaped(self, served_fleet):
        text = render_fleet_prometheus(collect_fleet_metrics(served_fleet))
        # The raw newline/quote must not appear inside any label value.
        assert 'tenant="evil\\"tenant\\nname\\\\"' in text
        for line in text.splitlines():
            assert "\r" not in line
        # Exposition stays one-series-per-line despite the newline in
        # the tenant id.
        assert "\nname" not in text.replace("\\nname", "")

    def test_custom_prefix(self, served_fleet):
        text = render_fleet_prometheus(
            collect_fleet_metrics(served_fleet), prefix="acme"
        )
        assert "acme_submitted_total" in text
        assert "repro_fleet" not in text

    def test_render_tolerates_empty_snapshot(self):
        assert render_fleet_prometheus({}) == "\n"
