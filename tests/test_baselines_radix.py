"""Unit tests for the LSD radix sort substrate."""

import numpy as np
import pytest

from repro.baselines.radix import (
    RadixStats,
    float32_to_sortable_uint32,
    radix_sort,
    radix_sort_by_key,
    sortable_uint32_to_float32,
)


class TestFloatKeyEncoding:
    def test_order_preserved_on_mixed_signs(self, rng):
        vals = rng.normal(0, 1e6, 1000).astype(np.float32)
        keys = float32_to_sortable_uint32(vals)
        order_vals = np.argsort(vals, kind="stable")
        order_keys = np.argsort(keys, kind="stable")
        assert np.array_equal(vals[order_vals], vals[order_keys])

    def test_roundtrip(self, rng):
        vals = rng.normal(0, 100, 256).astype(np.float32)
        back = sortable_uint32_to_float32(float32_to_sortable_uint32(vals))
        assert np.array_equal(back, vals)

    def test_negative_zero_and_zero_adjacent(self):
        keys = float32_to_sortable_uint32(np.array([-0.0, 0.0], dtype=np.float32))
        # -0.0 encodes strictly below +0.0 -> total order is well-defined.
        assert keys[0] < keys[1]

    def test_extremes(self):
        vals = np.array(
            [np.finfo(np.float32).min, -1.0, 0.0, 1.0, np.finfo(np.float32).max],
            dtype=np.float32,
        )
        keys = float32_to_sortable_uint32(vals).astype(np.uint64)
        assert np.all(np.diff(keys.astype(np.int64)) > 0)


class TestRadixSort:
    def test_sorts_uint32(self, rng):
        data = rng.integers(0, 2**32, 5000, dtype=np.uint32)
        assert np.array_equal(radix_sort(data), np.sort(data))

    def test_sorts_float32(self, rng):
        data = rng.normal(0, 1e9, 5000).astype(np.float32)
        assert np.array_equal(radix_sort(data), np.sort(data))

    def test_sorts_int32_negative(self, rng):
        data = rng.integers(-2**31, 2**31 - 1, 5000, dtype=np.int32)
        assert np.array_equal(radix_sort(data), np.sort(data))

    def test_empty(self):
        out = radix_sort(np.empty(0, dtype=np.uint32))
        assert out.size == 0

    def test_single_element(self):
        assert radix_sort(np.array([42], dtype=np.uint32)).tolist() == [42]

    def test_all_equal(self):
        data = np.full(100, 7, dtype=np.uint32)
        assert np.array_equal(radix_sort(data), data)

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(TypeError):
            radix_sort(np.zeros(4, dtype=np.float16))

    def test_digit_bits_variants_agree(self, rng):
        data = rng.integers(0, 2**32, 1000, dtype=np.uint32)
        for bits in (1, 4, 8, 11, 16):
            assert np.array_equal(
                radix_sort(data, digit_bits=bits), np.sort(data)
            ), bits

    def test_rejects_bad_digit_bits(self):
        with pytest.raises(ValueError):
            radix_sort(np.zeros(4, dtype=np.uint32), digit_bits=0)
        with pytest.raises(ValueError):
            radix_sort(np.zeros(4, dtype=np.uint32), digit_bits=17)

    def test_input_not_mutated(self, rng):
        data = rng.integers(0, 100, 100, dtype=np.uint32)
        snapshot = data.copy()
        radix_sort(data)
        assert np.array_equal(data, snapshot)


class TestRadixSortByKey:
    def test_payload_follows_keys(self, rng):
        keys = rng.integers(0, 1000, 500, dtype=np.uint32)
        vals = np.arange(500, dtype=np.int32)
        sk, sv = radix_sort_by_key(keys, vals)
        assert np.array_equal(sk, np.sort(keys))
        assert np.array_equal(keys[sv], sk)

    def test_stability(self):
        # Equal keys keep payload order: the property STA's restore pass
        # depends on (Section 7.1.1).
        keys = np.array([1, 0, 1, 0, 1], dtype=np.uint32)
        vals = np.array([10, 20, 11, 21, 12], dtype=np.int32)
        sk, sv = radix_sort_by_key(keys, vals)
        assert sv.tolist() == [20, 21, 10, 11, 12]

    def test_float_keys_with_tag_payload(self, rng):
        keys = rng.normal(0, 1e6, 1000).astype(np.float32)
        tags = rng.integers(0, 50, 1000).astype(np.int32)
        sk, sv = radix_sort_by_key(keys, tags)
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(sk, keys[order])
        assert np.array_equal(sv, tags[order])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            radix_sort_by_key(
                np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.int32)
            )

    def test_stats_accounting(self, rng):
        keys = rng.integers(0, 2**32, 1000, dtype=np.uint32)
        vals = np.zeros(1000, dtype=np.int32)
        stats = RadixStats()
        radix_sort_by_key(keys, vals, stats=stats)
        assert stats.passes == 4  # 32-bit keys / 8-bit digits
        assert stats.elements == 1000
        assert stats.element_moves == 4 * 4 * 1000  # (key+val) x (r+w) x passes
        assert stats.scratch_bytes == keys.nbytes + vals.nbytes

    def test_stats_accumulate_across_calls(self, rng):
        keys = rng.integers(0, 100, 100, dtype=np.uint32)
        stats = RadixStats()
        radix_sort_by_key(keys, None, stats=stats)
        radix_sort_by_key(keys, None, stats=stats)
        assert stats.passes == 8
