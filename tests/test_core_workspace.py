"""Unit tests for repro.core.workspace (ScratchArena + shared slabs)."""

import numpy as np
import pytest

from repro.core import GpuArraySort, StreamingSorter
from repro.core.workspace import (
    ScratchArena,
    find_shared_slab,
    register_shared_slab,
    unregister_shared_slab,
)


class TestScratchArena:
    def test_same_key_reuses_storage(self):
        arena = ScratchArena()
        a = arena.get("buf", (8, 16), np.float32)
        b = arena.get("buf", (8, 16), np.float32)
        assert a.base is b.base
        assert arena.stats.allocations == 1
        assert arena.stats.hits == 1

    def test_smaller_request_reuses_storage(self):
        arena = ScratchArena()
        big = arena.get("buf", (100,), np.float64)
        small = arena.get("buf", (10, 5), np.float64)
        assert small.base is big.base

    def test_growth_is_geometric(self):
        arena = ScratchArena(growth=2.0)
        arena.get("buf", (100,), np.int32)
        grown = arena.get("buf", (101,), np.int32)
        assert arena.stats.grows == 1
        # Capacity at least doubled, so the next doubling-ish request hits.
        assert grown.base.size >= 200
        arena.get("buf", (200,), np.int32)
        assert arena.stats.grows == 1

    def test_dtypes_never_alias(self):
        arena = ScratchArena()
        f32 = arena.get("buf", (64,), np.float32)
        i64 = arena.get("buf", (64,), np.int64)
        f64 = arena.get("buf", (64,), np.float64)
        assert f32.base is not i64.base
        assert i64.base is not f64.base
        # Writing through one view must not disturb the others.
        f32[:] = 1.5
        i64[:] = 7
        f64[:] = -2.25
        assert np.all(f32 == np.float32(1.5))
        assert np.all(i64 == 7)
        assert np.all(f64 == -2.25)

    def test_tags_never_alias(self):
        arena = ScratchArena()
        a = arena.get("a", (32,), np.float32)
        b = arena.get("b", (32,), np.float32)
        assert a.base is not b.base

    def test_views_are_c_contiguous_and_shaped(self):
        arena = ScratchArena()
        v = arena.get("buf", (3, 4, 5), np.float32)
        assert v.shape == (3, 4, 5)
        assert v.flags.c_contiguous

    def test_close_releases_and_blocks_reuse(self):
        arena = ScratchArena()
        arena.get("buf", (8,), np.float32)
        arena.close()
        assert arena.closed
        assert arena.stats.bytes_held == 0
        with pytest.raises(RuntimeError):
            arena.get("buf", (8,), np.float32)
        arena.close()  # idempotent

    def test_context_manager(self):
        with ScratchArena() as arena:
            arena.get("buf", (8,), np.float32)
        assert arena.closed

    def test_rejects_bad_growth(self):
        with pytest.raises(ValueError):
            ScratchArena(growth=0.5)

    def test_multithreaded_acquire_keeps_bookkeeping_consistent(self):
        """Regression for the service era: concurrent ``get`` calls with
        interleaved growth must neither corrupt the pool bookkeeping nor
        cross wires between tags.

        Each thread owns its tag (the documented single-owner storage
        contract), so it can also verify its writes round-trip while the
        other threads force allocations and grows on the shared lock.
        """
        import threading

        arena = ScratchArena()
        workers = 8
        iterations = 120
        errors = []
        barrier = threading.Barrier(workers)

        def hammer(worker_id):
            rng = np.random.default_rng(worker_id)
            tag = f"t{worker_id}"
            barrier.wait()
            try:
                for i in range(iterations):
                    size = int(rng.integers(1, 400)) + i  # forces grows
                    view = arena.get(tag, (size,), np.float64)
                    view[:] = worker_id
                    assert np.all(view == worker_id)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((worker_id, exc))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        # Bookkeeping must balance exactly: held bytes == live pools.
        assert arena.stats.bytes_held == sum(
            pool.nbytes for pool in arena._pools.values()
        )
        assert len(arena._pools) == workers
        assert (
            arena.stats.hits + arena.stats.allocations
            == workers * iterations
        )

    def test_concurrent_get_and_close_never_corrupts(self):
        """A close racing in-flight gets must leave the arena cleanly
        closed: every get either succeeds or raises the closed error."""
        import threading

        arena = ScratchArena()
        outcomes = []
        lock = threading.Lock()
        warmed = threading.Event()
        closed_done = threading.Event()

        def getter(worker_id):
            for i in range(200):
                if i == 50 and worker_id == 0:
                    warmed.set()
                try:
                    arena.get(f"g{worker_id}", (64 + i,), np.float32)
                    result = "ok"
                except RuntimeError:
                    result = "closed"
                with lock:
                    outcomes.append(result)
            if worker_id == 0:
                # After close has provably happened, a get must raise.
                assert closed_done.wait(30)
                with pytest.raises(RuntimeError):
                    arena.get("g0", (8,), np.float32)

        def closer():
            assert warmed.wait(30)  # close lands mid-hammer, not before
            arena.close()
            closed_done.set()

        threads = [threading.Thread(target=getter, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=closer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert arena.closed
        assert arena.stats.bytes_held == 0
        assert set(outcomes) <= {"ok", "closed"}
        assert "ok" in outcomes  # gets before the close succeeded


class TestSharedSlabs:
    def test_shared_slab_is_discoverable(self):
        with ScratchArena() as arena:
            slab = arena.get_shared("work", (16, 8), np.float32)
            found = find_shared_slab(slab)
            assert found is not None
            name, offset = found
            assert offset == 0
            # A contiguous prefix view of the slab is recognized too.
            assert find_shared_slab(slab[:4]) == (name, 0)
            # ... at the right offset when it doesn't start at byte 0.
            assert find_shared_slab(slab[2:]) == (name, 2 * 8 * 4)

    def test_heap_arrays_are_not_slabs(self):
        assert find_shared_slab(np.zeros((4, 4), np.float32)) is None

    def test_noncontiguous_views_are_not_slabs(self):
        with ScratchArena() as arena:
            slab = arena.get_shared("work", (16, 8), np.float32)
            assert find_shared_slab(slab[:, ::2]) is None

    def test_close_unregisters(self):
        arena = ScratchArena()
        slab = arena.get_shared("work", (4, 4), np.float32)
        shape, dtype = slab.shape, slab.dtype
        probe = np.zeros(shape, dtype)
        assert find_shared_slab(slab) is not None
        arena.close()
        assert find_shared_slab(probe) is None

    def test_register_unregister_round_trip(self):
        arr = np.zeros(16, np.uint8)
        register_shared_slab("test-slab", arr, None)
        try:
            assert find_shared_slab(arr) == ("test-slab", 0)
        finally:
            unregister_shared_slab("test-slab")
        assert find_shared_slab(arr) is None
        unregister_shared_slab("test-slab")  # idempotent


class TestSorterArenaReuse:
    """Satellite: steady-state sorts reuse the arena, zero new allocations."""

    def test_repeated_sorts_reuse_the_work_buffer(self, rng):
        sorter = GpuArraySort(workspace=True)
        batch = rng.uniform(0, 1e6, (200, 300)).astype(np.float32)
        first = sorter.sort(batch)
        base = first.batch.base
        assert base is not None  # arena-backed view, not a fresh array
        allocs = sorter.workspace.stats.allocations
        for _ in range(3):
            result = sorter.sort(batch)
            assert result.batch.base is base
            assert result.scratch is True
        assert sorter.workspace.stats.allocations == allocs  # zero new

    def test_arena_sort_matches_plain_sort_bytes(self, rng):
        batch = rng.uniform(0, 1e6, (500, 400)).astype(np.float32)
        plain = GpuArraySort().sort(batch)
        pooled = GpuArraySort(workspace=True).sort(batch)
        assert pooled.batch.tobytes() == plain.batch.tobytes()
        assert np.array_equal(pooled.buckets.offsets, plain.buckets.offsets)
        assert np.array_equal(pooled.buckets.sizes, plain.buckets.sizes)

    def test_dtype_switch_on_one_sorter_never_aliases(self, rng):
        sorter = GpuArraySort(workspace=True)
        f32 = rng.uniform(0, 100, (50, 64)).astype(np.float32)
        i64 = rng.integers(0, 1000, (50, 64)).astype(np.int64)
        r_f32 = sorter.sort(f32)
        r_i64 = sorter.sort(i64)
        assert r_f32.batch.base is not r_i64.batch.base
        # The f32 result's storage was not clobbered by the i64 sort.
        assert np.array_equal(r_f32.batch, np.sort(f32, axis=1))
        assert np.array_equal(r_i64.batch, np.sort(i64, axis=1))


class TestStreamingArenaReuse:
    """Satellite: StreamingSorter emissions ride the same arena buffers."""

    def _slab(self, rng, rows, cols=64):
        return rng.uniform(0, 1e4, (rows, cols)).astype(np.float32)

    def test_on_batch_views_share_storage_across_emissions(self, rng):
        bases = []
        sorter = StreamingSorter(
            array_size=64, batch_arrays=50, workspace=True,
            dtype=np.float32, on_batch=lambda out: bases.append(out.base),
        )
        sorter.push_slab(self._slab(rng, 150))
        sorter.flush()
        assert len(bases) == 3
        assert bases[0] is not None
        assert all(b is bases[0] for b in bases)  # one buffer, reused

    def test_results_list_is_copied_out_of_the_arena(self, rng):
        sorter = StreamingSorter(
            array_size=64, batch_arrays=50, workspace=True, dtype=np.float32,
        )
        slab = self._slab(rng, 150)
        sorter.push_slab(slab)
        sorter.flush()
        assert len(sorter.results) == 3
        # Retained results must not alias the (reused) arena storage:
        # each snapshot still equals its own batch's sorted rows.
        expected = np.sort(slab, axis=1)
        merged = np.vstack(sorter.results)
        assert np.array_equal(merged, expected)
        first, second = sorter.results[0], sorter.results[1]
        assert first.base is not second.base or first.base is None

    def test_arena_survives_checkpoint_restore(self, rng):
        sorter = StreamingSorter(
            array_size=64, batch_arrays=50, workspace=True, dtype=np.float32,
        )
        sorter.push_slab(self._slab(rng, 70))  # one emission + 20 staged
        cp = sorter.checkpoint()
        arena = sorter._sorter.workspace
        allocs_before = arena.stats.allocations

        sorter.push_slab(self._slab(rng, 30))  # second emission
        sorter.restore(cp)  # roll back to 20 staged
        tail = self._slab(rng, 30)
        sorter.push_slab(tail)  # refill to 50: third emission
        sorter.flush()

        assert sorter._sorter.workspace is arena
        assert not arena.closed
        # Post-warmup emissions allocated nothing new.
        assert arena.stats.allocations == allocs_before
        # Re-emitted batch id follows the at-least-once contract.
        assert sorter.emitted_batch_ids[0] == 0
        merged = np.vstack(sorter.results)
        assert np.all(np.diff(merged, axis=1) >= 0)


class TestProcessZeroCopy:
    """Satellite: arena shared slabs skip the ProcessPoolEngine staging copy."""

    def test_shared_slab_batch_dispatches_zero_copy(self, rng):
        from repro.planner import StaticPlanner

        planner = StaticPlanner("process", workers=2, min_rows_per_worker=1)
        sorter = GpuArraySort(planner=planner)
        batch = rng.uniform(0, 1e6, (240, 80)).astype(np.float32)
        result = sorter.sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        info = result.parallel_info
        assert info["engine"] == "process"
        assert info["zero_copy_shm"] is True
        assert not info["fell_back_to_serial"]

    def test_heap_batch_still_stages(self, rng):
        from repro.parallel import ProcessPoolEngine

        engine = ProcessPoolEngine(
            workers=2, min_rows_per_shard=16, min_rows_per_worker=1
        )
        batch = rng.uniform(0, 1e6, (120, 60)).astype(np.float32)
        result = GpuArraySort(parallel=engine).sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        assert result.parallel_info["zero_copy_shm"] is False
