"""Tests for dataset persistence (NPZ batches, MGF spectra)."""

import numpy as np
import pytest

from repro.workloads import (
    ArrayBatch,
    generate_spectra,
    load_batch,
    read_mgf,
    read_mgf_ragged,
    save_batch,
    uniform_arrays,
    write_mgf,
)


class TestNpzBatch:
    def test_roundtrip(self, tmp_path):
        batch = ArrayBatch(uniform_arrays(5, 20, seed=1), "roundtrip test", 1)
        path = tmp_path / "batch.npz"
        save_batch(path, batch)
        loaded = load_batch(path)
        assert np.array_equal(loaded.data, batch.data)
        assert loaded.description == "roundtrip test"
        assert loaded.seed == 1

    def test_dtype_preserved(self, tmp_path):
        batch = ArrayBatch(uniform_arrays(2, 8, seed=1, dtype=np.float64))
        path = tmp_path / "b.npz"
        save_batch(path, batch)
        assert load_batch(path).data.dtype == np.float64

    def test_empty_metadata_fields(self, tmp_path):
        batch = ArrayBatch(uniform_arrays(2, 8, seed=None))
        path = tmp_path / "b.npz"
        save_batch(path, batch)
        loaded = load_batch(path)
        assert loaded.seed is None
        assert loaded.description == ""


class TestMgf:
    def test_roundtrip(self, tmp_path):
        spectra = generate_spectra(4, 50, seed=7)
        path = tmp_path / "run.mgf"
        write_mgf(path, spectra)
        loaded = read_mgf(path)
        assert loaded.num_spectra == 4
        assert loaded.peaks_per_spectrum == 50
        # 4-decimal text format: compare with matching tolerance
        assert np.allclose(loaded.mz, spectra.mz, atol=1e-3)
        assert np.allclose(loaded.intensity, spectra.intensity, atol=1e-3)

    def test_file_structure(self, tmp_path):
        spectra = generate_spectra(2, 5, seed=7)
        path = tmp_path / "run.mgf"
        write_mgf(path, spectra)
        text = path.read_text()
        assert text.count("BEGIN IONS") == 2
        assert text.count("END IONS") == 2
        assert "TITLE=spectrum_0" in text
        assert "PEPMASS=" in text

    def test_empty_batch(self, tmp_path):
        from repro.workloads.spectra import SpectrumBatch

        empty = SpectrumBatch(
            mz=np.empty((0, 0), dtype=np.float32),
            intensity=np.empty((0, 0), dtype=np.float32),
        )
        path = tmp_path / "empty.mgf"
        write_mgf(path, empty)
        loaded = read_mgf(path)
        assert loaded.num_spectra == 0

    def test_ragged_read(self, tmp_path):
        path = tmp_path / "ragged.mgf"
        path.write_text(
            "BEGIN IONS\nTITLE=a\n100.0 5.0\n200.0 3.0\nEND IONS\n"
            "BEGIN IONS\nTITLE=b\n150.0 9.0\nEND IONS\n"
        )
        ragged = read_mgf_ragged(path)
        assert ragged.num_arrays == 2
        assert ragged.lengths().tolist() == [2, 1]
        assert ragged[0].tolist() == [5.0, 3.0]

    def test_ragged_mz_view(self, tmp_path):
        path = tmp_path / "ragged.mgf"
        path.write_text("BEGIN IONS\n100.0 5.0\nEND IONS\n")
        ragged = read_mgf_ragged(path, view="mz")
        assert ragged[0].tolist() == [100.0]

    def test_ragged_bad_view(self, tmp_path):
        path = tmp_path / "x.mgf"
        path.write_text("")
        with pytest.raises(ValueError):
            read_mgf_ragged(path, view="charge")

    def test_uniform_reader_rejects_ragged(self, tmp_path):
        path = tmp_path / "ragged.mgf"
        path.write_text(
            "BEGIN IONS\n1.0 1.0\n2.0 2.0\nEND IONS\n"
            "BEGIN IONS\n1.0 1.0\nEND IONS\n"
        )
        with pytest.raises(ValueError, match="read_mgf_ragged"):
            read_mgf(path)

    def test_malformed_files(self, tmp_path):
        cases = {
            "nested": "BEGIN IONS\nBEGIN IONS\n",
            "unterminated": "BEGIN IONS\n1.0 2.0\n",
            "stray_end": "END IONS\n",
            "bad_peak": "BEGIN IONS\n1.0\nEND IONS\n",
        }
        for name, content in cases.items():
            path = tmp_path / f"{name}.mgf"
            path.write_text(content)
            with pytest.raises(ValueError):
                read_mgf(path)

    def test_end_to_end_sort_from_file(self, tmp_path):
        """File -> batch -> GPU-ArraySort -> verified, the OSS user path."""
        from repro.core import sort_arrays

        spectra = generate_spectra(6, 40, seed=3)
        path = tmp_path / "run.mgf"
        write_mgf(path, spectra)
        loaded = read_mgf(path)
        out = sort_arrays(loaded.intensity, verify=True)
        assert np.all(np.diff(out, axis=1) >= 0)
