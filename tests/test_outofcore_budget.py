"""Budget parsing and the working-set model (repro.outofcore.budget)."""

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.outofcore.budget import (
    BudgetError,
    ENGINE_EXTRA_COPIES,
    SAFETY_FACTOR,
    format_memory_size,
    parse_memory_size,
    plan_budget,
    working_set_bytes_per_row,
)

pytestmark = pytest.mark.capacity


class TestParseMemorySize:
    @pytest.mark.parametrize("text,expected", [
        ("1024", 1024),
        ("1K", 1024),
        ("1k", 1024),
        ("512M", 512 * 1024**2),
        ("8G", 8 * 1024**3),
        ("8GB", 8 * 1024**3),
        ("8GiB", 8 * 1024**3),
        ("1.5G", int(1.5 * 1024**3)),
        ("2T", 2 * 1024**4),
        (" 64 M ", 64 * 1024**2),
    ])
    def test_parses(self, text, expected):
        assert parse_memory_size(text) == expected

    def test_plain_int_passes_through(self):
        assert parse_memory_size(12345) == 12345
        assert parse_memory_size(np.int64(77)) == 77

    @pytest.mark.parametrize("bad", [
        "", "G", "8X", "-1G", "8 gigs", "1..5G", "0", "0M", None, 1.5,
        [], True, 0, -7,
    ])
    def test_rejects(self, bad):
        with pytest.raises(BudgetError):
            parse_memory_size(bad)

    def test_format_roundtrips_units(self):
        assert format_memory_size(8 * 1024**3) == "8.0G"
        assert format_memory_size(512) == "512"
        assert parse_memory_size(format_memory_size(256 * 1024**2)) == \
            256 * 1024**2


class TestWorkingSetModel:
    def test_monotone_in_row_len(self):
        costs = [working_set_bytes_per_row(n, np.float64)
                 for n in (10, 100, 1000, 10000)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_engine_ordering(self):
        """serial/thread < process < radix <= auto (worst case)."""
        per = {engine: working_set_bytes_per_row(1000, np.float64,
                                                 engine=engine)
               for engine in ENGINE_EXTRA_COPIES}
        per["auto"] = working_set_bytes_per_row(1000, np.float64)
        assert per["serial"] == per["thread"]
        assert per["serial"] < per["process"] < per["radix"]
        assert per["auto"] == max(per.values())

    def test_dtype_scales_payload(self):
        f32 = working_set_bytes_per_row(1000, np.float32)
        f64 = working_set_bytes_per_row(1000, np.float64)
        assert f32 < f64 <= 2 * f32 + 1024  # metadata term is dtype-free

    def test_exceeds_raw_payload_by_safety_factor(self):
        n = 1000
        payload = 8 * n
        per = working_set_bytes_per_row(n, np.float64, engine="serial")
        assert per >= int(2 * payload * SAFETY_FACTOR)

    def test_rejects_bad_inputs(self):
        with pytest.raises(BudgetError):
            working_set_bytes_per_row(0, np.float64)
        with pytest.raises(BudgetError):
            working_set_bytes_per_row(10, np.float64, engine="warp")


class TestPlanBudget:
    def test_chunk_schedule_covers_batch(self):
        plan = plan_budget(10_000, 500, np.float64, "4M")
        bounds = plan.chunk_bounds()
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 10_000
        # Contiguous and non-overlapping.
        for (a_start, a_stop), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_stop == b_start
        assert plan.num_chunks == len(bounds)
        assert plan.working_set_bytes <= parse_memory_size("4M")

    def test_oversubscription_ratio(self):
        plan = plan_budget(4096, 1000, np.float64, "8M")
        assert plan.total_bytes == 4096 * 1000 * 8
        assert plan.oversubscription == pytest.approx(
            plan.total_bytes / plan.budget_bytes
        )

    def test_cramped_budget_floors_at_one_row(self):
        plan = plan_budget(100, 100_000, np.float64, "4K")
        assert plan.cramped
        assert plan.chunk_rows == 1
        assert plan.num_chunks == 100

    def test_max_chunk_rows_cap(self):
        plan = plan_budget(1000, 10, np.float64, "1G", max_chunk_rows=32)
        assert plan.chunk_rows == 32

    def test_single_chunk_when_budget_ample(self):
        plan = plan_budget(100, 10, np.float64, "1G")
        assert plan.num_chunks == 1
        assert plan.chunk_rows == 100

    def test_empty_batch(self):
        plan = plan_budget(0, 10, np.float64, "1M")
        assert plan.num_chunks == 0
        assert plan.chunk_bounds() == []

    def test_config_feeds_model(self):
        small = plan_budget(1000, 1000, np.float64, "1M",
                            config=SortConfig(sampling_rate=0.01))
        big = plan_budget(1000, 1000, np.float64, "1M",
                          config=SortConfig(sampling_rate=0.5))
        assert small.chunk_rows >= big.chunk_rows

    def test_rejects_negative_rows(self):
        with pytest.raises(BudgetError):
            plan_budget(-1, 10, np.float64, "1M")
