"""Execute the README's Python code blocks — documentation that runs.

A quickstart that silently rots is worse than none.  This test extracts
every ```python fenced block from README.md, stitches them into one
namespace (later blocks may use earlier blocks' names), and executes
them with small placeholder inputs where the README references
user-supplied variables.
"""

import pathlib
import re

import numpy as np
import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_python_blocks_execute(self):
        blocks = _python_blocks(README.read_text())
        assert blocks, "README has no python examples?"
        # Shared namespace with stand-ins for user-provided values.
        from repro.gpusim import GpuDevice

        namespace = {
            "small_batch": np.random.default_rng(0)
            .uniform(0, 1e3, (2, 64)).astype(np.float32),
        }
        for block in blocks:
            exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102

    def test_quickstart_block_is_first_and_sorts(self):
        blocks = _python_blocks(README.read_text())
        namespace = {}
        exec(compile(blocks[0], "<README-quickstart>", "exec"), namespace)
        sorted_batch = namespace["sorted_batch"]
        assert np.all(np.diff(sorted_batch, axis=1) >= 0)
