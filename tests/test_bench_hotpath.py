"""Schema + gate tests for benchmarks/bench_hotpath.py (tiny grid)."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_hotpath  # noqa: E402


@pytest.fixture(scope="module")
def smoke_report():
    """One real run of the smallest grid — seconds, not minutes."""
    return bench_hotpath.run_grid("smoke", repeats=1, workers=2,
                                  planner_warmup=1)


class TestRunGrid:
    def test_schema_self_valid(self, smoke_report):
        assert bench_hotpath.check_schema(smoke_report) == []

    def test_covers_every_cell(self, smoke_report):
        names = [r["name"] for r in smoke_report["results"]]
        assert names == [c[0] for c in bench_hotpath.GRIDS["smoke"]]

    def test_timings_positive_and_phased(self, smoke_report):
        for cell in smoke_report["results"]:
            assert cell["fused_ms"] > 0
            assert cell["unfused_ms"] > 0
            assert cell["sharded_ms"] > 0
            assert cell["radix_ms"] > 0
            assert cell["planner_ms"] > 0
            assert set(cell["fused_phase_ms"]) == {
                "phase1_splitters", "phase23_fused",
            }
            assert set(cell["unfused_phase_ms"]) == {
                "phase1_splitters", "phase2_bucketing", "phase3_sorting",
            }
            assert cell["planner_phase_ms"]  # non-empty, keys vary by engine

    def test_planner_column(self, smoke_report):
        for cell in smoke_report["results"]:
            assert cell["planner_engine"] in (
                "serial", "thread", "process", "radix"
            )
            assert cell["planner_vs_best_static"] > 0
        assert (
            smoke_report["speedups"]["planner_vs_best_static_max"]
            == max(r["planner_vs_best_static"]
                   for r in smoke_report["results"])
        )

    def test_speedup_summary_consistent(self, smoke_report):
        speedups = [
            r["speedup_fused_vs_unfused"] for r in smoke_report["results"]
        ]
        assert smoke_report["speedups"]["fused_vs_unfused_min"] == min(speedups)

    def test_gate_pass_and_fail(self, smoke_report):
        report = json.loads(json.dumps(smoke_report))  # work on a copy
        assert bench_hotpath.apply_gate(report, min_speedup=0.0) is True
        assert report["gate"]["passed"] is True
        assert bench_hotpath.apply_gate(report, min_speedup=1e9) is False
        assert report["gate"]["failures"]
        # gate block itself must stay schema-valid
        assert bench_hotpath.check_schema(report) == []

    def test_planner_gate_pass_and_fail(self, smoke_report):
        report = json.loads(json.dumps(smoke_report))
        assert bench_hotpath.apply_planner_gate(report, tolerance=1e9) is True
        assert report["planner_gate"]["passed"] is True
        assert bench_hotpath.apply_planner_gate(
            report, tolerance=0.0, slack_ms=0.0
        ) is False
        assert report["planner_gate"]["failures"]
        assert bench_hotpath.check_schema(report) == []

    def test_radix_column(self, smoke_report):
        for cell in smoke_report["results"]:
            assert cell["speedup_radix_vs_fused"] == pytest.approx(
                cell["fused_ms"] / cell["radix_ms"]
            )
            assert cell["radix_expected"] is False  # smoke grid: none
            assert cell["radix_phase_ms"]
        assert "radix_vs_fused_median" in smoke_report["speedups"]
        assert smoke_report["speedups"]["radix_vs_fused_expected_min"] is None

    def test_radix_gate_needs_expected_cells(self, smoke_report):
        # The smoke grid has no radix_expected cells, so the gate must
        # fail loudly instead of vacuously passing.
        report = json.loads(json.dumps(smoke_report))
        assert bench_hotpath.apply_radix_gate(report) is False
        assert any("radix_expected" in f
                   for f in report["radix_gate"]["failures"])
        assert bench_hotpath.check_schema(report) == []

    def test_radix_gate_pass_and_fail(self, smoke_report):
        report = json.loads(json.dumps(smoke_report))
        cell = report["results"][0]
        cell["radix_expected"] = True
        cell["planner_engine"] = "radix"
        cell["speedup_radix_vs_fused"] = 2.0
        report["speedups"]["radix_vs_fused_expected_min"] = 2.0
        assert bench_hotpath.apply_radix_gate(report, min_speedup=1.5) is True
        assert report["radix_gate"]["passed"] is True
        # Too slow: speedup below the floor.
        assert bench_hotpath.apply_radix_gate(report, min_speedup=3.0) is False
        # Fast enough but the planner picked something else.
        cell["planner_engine"] = "serial"
        assert bench_hotpath.apply_radix_gate(report, min_speedup=1.5) is False
        assert any("planner" in f for f in report["radix_gate"]["failures"])
        assert bench_hotpath.check_schema(report) == []

    def test_json_round_trip(self, smoke_report, tmp_path):
        out = tmp_path / "report.json"
        out.write_text(json.dumps(smoke_report))
        assert bench_hotpath.check_schema(json.loads(out.read_text())) == []


class TestCheckSchema:
    def test_rejects_wrong_schema_tag(self):
        assert bench_hotpath.check_schema({"schema": "nope"})
        assert bench_hotpath.check_schema({"schema": "bench-hotpath/v1"})

    def test_rejects_empty_results(self):
        errors = bench_hotpath.check_schema(
            {"schema": bench_hotpath.SCHEMA, "results": [], "speedups": {}}
        )
        assert any("non-empty" in e for e in errors)

    def _valid_cell(self, **overrides):
        cell = {
            "name": "x", "dtype": "float32", "num_arrays": 1,
            "array_size": 1, "repeats": 1, "fused_ms": 1.0,
            "unfused_ms": 1.0, "sharded_ms": 1.0, "radix_ms": 1.0,
            "planner_ms": 1.0,
            "fused_phase_ms": {}, "unfused_phase_ms": {},
            "radix_phase_ms": {},
            "planner_phase_ms": {}, "planner_engine": "serial",
            "speedup_fused_vs_unfused": 1.0,
            "speedup_sharded_vs_serial": 1.0,
            "speedup_radix_vs_fused": 1.0,
            "radix_expected": False,
            "planner_vs_best_static": 1.0,
        }
        cell.update(overrides)
        return cell

    def _report(self, cell):
        return {
            "schema": bench_hotpath.SCHEMA,
            "results": [cell],
            "speedups": {
                "fused_vs_unfused_min": 1.0,
                "fused_vs_unfused_median": 1.0,
                "sharded_vs_serial_median": 1.0,
                "radix_vs_fused_median": 1.0,
                "planner_vs_best_static_max": 1.0,
            },
        }

    def test_rejects_nonpositive_timing(self):
        errors = bench_hotpath.check_schema(
            self._report(self._valid_cell(fused_ms=0.0))
        )
        assert any("fused_ms" in e for e in errors)

    def test_rejects_missing_planner_column(self):
        cell = self._valid_cell()
        del cell["planner_ms"]
        errors = bench_hotpath.check_schema(self._report(cell))
        assert any("planner_ms" in e for e in errors)

    def test_rejects_missing_radix_column(self):
        cell = self._valid_cell()
        del cell["radix_ms"]
        errors = bench_hotpath.check_schema(self._report(cell))
        assert any("radix_ms" in e for e in errors)

    def test_expected_cell_requires_expected_min_summary(self):
        report = self._report(self._valid_cell(radix_expected=True))
        errors = bench_hotpath.check_schema(report)
        assert any("radix_vs_fused_expected_min" in e for e in errors)
        report["speedups"]["radix_vs_fused_expected_min"] = 2.0
        assert bench_hotpath.check_schema(report) == []


class TestCommittedArtifact:
    """The repo-level BENCH_hotpath.json must stay valid and fast."""

    @pytest.fixture()
    def artifact(self):
        path = REPO_ROOT / "BENCH_hotpath.json"
        if not path.exists():
            pytest.skip("no committed BENCH_hotpath.json (run make bench-hotpath)")
        return json.loads(path.read_text())

    def test_schema_valid(self, artifact):
        assert bench_hotpath.check_schema(artifact) == []

    def test_fused_never_slower(self, artifact):
        assert artifact["speedups"]["fused_vs_unfused_min"] >= 1.0

    def test_planner_within_tolerance_everywhere(self, artifact):
        tol = bench_hotpath.DEFAULT_PLANNER_TOLERANCE
        slack = bench_hotpath.DEFAULT_PLANNER_SLACK_MS
        for cell in artifact["results"]:
            best = min(cell[f"{e}_ms"] for e in bench_hotpath.STATIC_ENGINES)
            assert cell["planner_ms"] <= tol * best + slack, cell["name"]

    def test_radix_gate_holds(self, artifact):
        # Same check `make radix-gate` runs: recompute the gate from the
        # committed numbers and require it to pass at the default floor.
        report = json.loads(json.dumps(artifact))
        assert bench_hotpath.apply_radix_gate(report) is True, (
            report["radix_gate"]["failures"]
        )

    def test_fig4_anchor_speedup(self, artifact):
        fig4 = [r for r in artifact["results"] if r["name"] == "fig4-f32"]
        if not fig4:
            pytest.skip("artifact was regenerated without the fig4 grid")
        cell = fig4[0]
        assert cell["num_arrays"] == 100_000
        assert cell["array_size"] == 1000
        assert cell["dtype"] == "float32"
        # Acceptance: fused >= 2x over the unfused (seed) pipeline.
        assert cell["speedup_fused_vs_unfused"] >= 2.0
