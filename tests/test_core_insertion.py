"""Unit tests for repro.core.insertion (phase 3)."""

import numpy as np
import pytest

from repro.core.bucketing import bucketize
from repro.core.insertion import (
    insertion_sort,
    insertion_sort_inplace,
    sort_buckets,
    sort_buckets_rowwise,
)
from repro.core.splitters import select_splitters


class TestScalarInsertionSort:
    def test_sorts(self):
        assert insertion_sort([3, 1, 2]) == [1, 2, 3]

    def test_empty(self):
        assert insertion_sort([]) == []

    def test_single(self):
        assert insertion_sort([7]) == [7]

    def test_already_sorted(self):
        assert insertion_sort([1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_reverse(self):
        assert insertion_sort([4, 3, 2, 1]) == [1, 2, 3, 4]

    def test_duplicates(self):
        assert insertion_sort([2, 1, 2, 1]) == [1, 1, 2, 2]

    def test_matches_sorted_builtin(self, rng):
        for _ in range(20):
            data = rng.integers(-100, 100, rng.integers(0, 30)).tolist()
            assert insertion_sort(data) == sorted(data)

    def test_inplace_mutates(self):
        data = [3.0, 1.0, 2.0]
        insertion_sort_inplace(data)
        assert data == [1.0, 2.0, 3.0]

    def test_nondestructive_variant(self):
        data = [3, 1, 2]
        insertion_sort(data)
        assert data == [3, 1, 2]

    def test_stability(self):
        # pairs compared by first component via tuple ordering would not
        # show stability; use a key-wrapper object instead.
        class Item:
            def __init__(self, key, tag):
                self.key, self.tag = key, tag

            def __gt__(self, other):
                return self.key > other.key

        items = [Item(1, "a"), Item(0, "x"), Item(1, "b"), Item(0, "y")]
        out = insertion_sort(items)
        assert [i.tag for i in out] == ["x", "y", "a", "b"]


class TestSortBuckets:
    def _pipeline(self, batch):
        spl = select_splitters(batch)
        work = batch.copy()
        res = bucketize(work, spl.splitters, out=work)
        return work, res

    def test_full_pipeline_sorts(self, small_batch):
        work, res = self._pipeline(small_batch)
        sort_buckets(work, res.offsets)
        assert np.array_equal(work, np.sort(small_batch, axis=1))

    def test_matches_rowwise_oracle(self, small_batch):
        work, res = self._pipeline(small_batch)
        expected = sort_buckets_rowwise(work.copy(), res.offsets)
        sort_buckets(work, res.offsets)
        assert np.array_equal(work, expected)

    def test_inplace_semantics(self, small_batch):
        work, res = self._pipeline(small_batch)
        out = sort_buckets(work, res.offsets)
        assert out is work

    def test_empty_buckets_tolerated(self):
        batch = np.full((2, 60), 3.0, dtype=np.float32)
        work, res = self._pipeline(batch)
        sort_buckets(work, res.offsets)
        assert np.all(work == 3.0)

    def test_single_bucket(self, rng):
        batch = rng.uniform(0, 1, (3, 15)).astype(np.float32)  # n<20 -> p=1
        work, res = self._pipeline(batch)
        sort_buckets(work, res.offsets)
        assert np.array_equal(work, np.sort(batch, axis=1))

    def test_does_not_cross_bucket_boundaries(self):
        # Craft buckets manually: [5,4] | [3,2] with offset [0,2,4];
        # per-bucket sorting must NOT produce a globally sorted row.
        row = np.array([[5.0, 4.0, 3.0, 2.0]])
        offsets = np.array([[0, 2, 4]])
        out = sort_buckets(row.copy(), offsets)
        assert out[0].tolist() == [4.0, 5.0, 2.0, 3.0]

    def test_rowwise_oracle_same_on_manual_buckets(self):
        row = np.array([[5.0, 4.0, 3.0, 2.0]])
        offsets = np.array([[0, 2, 4]])
        a = sort_buckets(row.copy(), offsets)
        b = sort_buckets_rowwise(row.copy(), offsets)
        assert np.array_equal(a, b)


class TestSegmentBase:
    """int64 segment ids: the int32-overflow regression pin.

    With int32 ids, ``row * (p + 1)`` wraps once ``n_rows * (p + 1)``
    exceeds 2**31 — silently corrupting the flat lexsort segments for
    large batches.  ``segment_base`` must therefore be int64 regardless
    of platform default (Windows ``np.arange`` is int32).
    """

    def test_dtype_is_int64(self):
        from repro.core.insertion import segment_base

        base = segment_base(10, 4)
        assert base.dtype == np.int64
        assert base.tolist() == [0, 5, 10, 15, 20, 25, 30, 35, 40, 45]

    def test_values_beyond_int32_range(self):
        from repro.core.insertion import segment_base

        # 2**21 rows x (2**11 - 1 + 1) segments/row = 2**32 segment ids:
        # far past int32 without materializing any batch data.
        n_rows, p = 2**21, 2**11 - 1
        base = segment_base(n_rows, p)
        assert base.dtype == np.int64
        expected_last = (n_rows - 1) * (p + 1)
        assert int(base[-1]) == expected_last
        assert expected_last > np.iinfo(np.int32).max
        assert np.all(np.diff(base) == p + 1)

    def test_validation(self):
        from repro.core.insertion import segment_base

        with pytest.raises(ValueError):
            segment_base(-1, 2)
        with pytest.raises(ValueError):
            segment_base(3, 0)

    def test_sort_buckets_offsets_stay_int64(self, rng):
        """The full phase-3 path keeps its segment math in int64."""
        batch = rng.uniform(0, 100, (5, 60)).astype(np.float32)
        spl = select_splitters(batch)
        res = bucketize(batch, spl.splitters, out=batch)
        assert res.offsets.dtype == np.int64
        sort_buckets(batch, res.offsets)
        assert np.array_equal(batch, np.sort(batch, axis=1))
