"""Tests for the race detector — and the in-place safety proof.

The headline test: running the complete GPU-ArraySort pipeline under
the race detector reports *zero* findings, turning the paper's implicit
"in-place write-back is safe" claim into a checked property.
"""

import numpy as np
import pytest

from repro.gpusim import GpuDevice, Tracer
from repro.gpusim.memcheck import check_races


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestDetectsRealRaces:
    def test_intra_block_write_write(self, gpu):
        """Two warps store to the same address in the same epoch."""
        out = gpu.memory.alloc(1, np.float32)

        def racy(ctx, shared, dst):
            yield ctx.gstore(dst, 0, float(ctx.thread_idx.x))

        tracer = Tracer()
        gpu.launch(racy, grid=1, block=64, args=(out,), trace=tracer)
        report = check_races(tracer)
        assert not report.clean
        assert report.by_scope().get("intra-block", 0) >= 1

    def test_intra_block_read_write(self, gpu):
        out = gpu.memory.alloc(64, np.float32)

        def racy(ctx, shared, buf):
            tid = ctx.thread_idx.x
            if tid < 32:
                v = yield ctx.gload(buf, 40)   # warp 0 reads slot 40
                yield ctx.alu(1)
            else:
                yield ctx.gstore(buf, 40, 1.0)  # warp 1 writes it

        tracer = Tracer()
        gpu.launch(racy, grid=1, block=64, args=(out,), trace=tracer)
        assert not check_races(tracer).clean

    def test_barrier_removes_the_race(self, gpu):
        """Same communication, correctly synchronized -> clean."""
        out = gpu.memory.alloc(64, np.float32)

        def safe(ctx, shared, buf):
            tid = ctx.thread_idx.x
            if tid >= 32:
                yield ctx.gstore(buf, 40, 1.0)
            yield ctx.sync()
            if tid < 32:
                v = yield ctx.gload(buf, 40)
                yield ctx.alu(1)

        tracer = Tracer()
        gpu.launch(safe, grid=1, block=64, args=(out,), trace=tracer)
        check_races(tracer).assert_clean()

    def test_cross_block_write_overlap(self, gpu):
        out = gpu.memory.alloc(4, np.float32)

        def collide(ctx, shared, dst):
            if ctx.thread_idx.x == 0:
                yield ctx.gstore(dst, 0, float(ctx.block_idx.x))

        tracer = Tracer()
        gpu.launch(collide, grid=4, block=32, args=(out,), trace=tracer)
        report = check_races(tracer)
        assert report.by_scope().get("cross-block", 0) >= 1

    def test_atomics_do_not_race_each_other(self, gpu):
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def atomic_counter(ctx, shared, c):
            yield ctx.atomic_add(c, 0, 1)

        tracer = Tracer()
        gpu.launch(atomic_counter, grid=2, block=64, args=(counter,),
                   trace=tracer)
        check_races(tracer).assert_clean()

    def test_atomic_vs_plain_store_races(self, gpu):
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def mixed(ctx, shared, c):
            tid = ctx.thread_idx.x
            if tid < 32:
                yield ctx.atomic_add(c, 0, 1)
            else:
                yield ctx.gstore(c, 0, 0)

        tracer = Tracer()
        gpu.launch(mixed, grid=1, block=64, args=(counter,), trace=tracer)
        assert not check_races(tracer).clean

    def test_shared_memory_intra_block_race(self, gpu):
        def racy_shared(ctx, shared, _):
            yield ctx.sstore(shared, 0, float(ctx.thread_idx.x))

        dummy = gpu.memory.alloc(1, np.float32)
        tracer = Tracer()
        gpu.launch(racy_shared, grid=1, block=64, args=(dummy,),
                   shared_setup=lambda sm: sm.alloc(1, np.float32),
                   trace=tracer)
        assert not check_races(tracer).clean

    def test_shared_addresses_not_compared_across_blocks(self, gpu):
        """Different blocks' shared arenas overlap numerically; that is
        NOT a race."""
        def per_block_shared(ctx, shared, _):
            yield ctx.sstore(shared, ctx.thread_idx.x, 1.0)
            yield ctx.sync()
            v = yield ctx.sload(shared, ctx.thread_idx.x)
            yield ctx.alu(1)

        dummy = gpu.memory.alloc(1, np.float32)
        tracer = Tracer()
        gpu.launch(per_block_shared, grid=4, block=16, args=(dummy,),
                   shared_setup=lambda sm: sm.alloc(16, np.float32),
                   trace=tracer)
        check_races(tracer).assert_clean()


class TestInPlaceSafetyProof:
    def test_arraysort_pipeline_is_race_free(self, gpu, rng):
        """THE claim: the three-phase in-place pipeline never races —
        phase 2's write-back into the array's own storage is disjoint
        per bucket and per block, and every cross-phase dependency is
        barrier-ordered."""
        from repro.core.config import SortConfig
        from repro.core.kernels import (
            bucket_sort_kernel,
            bucketing_kernel,
            splitter_selection_kernel,
        )
        from repro.core.splitters import (
            regular_sample_indices,
            select_splitters,
            splitter_pick_indices,
        )

        batch = rng.uniform(0, 1e6, (3, 96)).astype(np.float32)
        cfg = SortConfig()
        n = batch.shape[1]
        p = cfg.num_buckets(n)
        q = p - 1
        sample_idx = regular_sample_indices(n, cfg)
        pick_idx = splitter_pick_indices(len(sample_idx), p)

        tracer = Tracer(max_records=500_000)
        d_data = gpu.memory.alloc_like(batch.ravel())
        d_split = gpu.memory.alloc(3 * q, np.float32)
        d_sizes = gpu.memory.alloc(3 * p, np.int32)

        gpu.launch(
            splitter_selection_kernel, grid=3, block=1,
            args=(d_data, d_split, n, q, sample_idx, pick_idx),
            shared_setup=lambda sm: sm.alloc(len(sample_idx), np.float32),
            trace=tracer, name="phase1",
        )

        def phase2_shared(sm):
            return {
                "row": sm.alloc(n, np.float32, "row"),
                "splitters": sm.alloc(p + 1, np.float64, "splitters"),
                "counts": sm.alloc(p, np.int32, "counts"),
                "offsets": sm.alloc(p, np.int32, "offsets"),
            }

        gpu.launch(
            bucketing_kernel, grid=3, block=p,
            args=(d_data, d_split, d_sizes, n, p),
            shared_setup=phase2_shared, trace=tracer, name="phase2",
        )

        def phase3_shared(sm):
            return {
                "sizes": sm.alloc(p, np.int32, "sizes"),
                "offsets": sm.alloc(p, np.int32, "offsets"),
            }

        gpu.launch(
            bucket_sort_kernel, grid=3, block=p,
            args=(d_data, d_sizes, n, p),
            shared_setup=phase3_shared, trace=tracer, name="phase3",
        )

        assert np.array_equal(
            d_data.copy_to_host().reshape(3, n), np.sort(batch, axis=1)
        )
        report = check_races(tracer)
        assert not tracer.overflowed
        report.assert_clean()

        for arr in (d_data, d_split, d_sizes):
            gpu.memory.free(arr)

    def test_report_bookkeeping(self, gpu):
        tracer = Tracer()
        report = check_races(tracer)
        assert report.clean
        assert report.records_analyzed == 0
        assert report.by_scope() == {}

    def test_max_findings_truncation(self, gpu):
        out = gpu.memory.alloc(1, np.float32)

        def very_racy(ctx, shared, dst):
            for _ in range(4):
                yield ctx.gstore(dst, 0, 1.0)

        tracer = Tracer()
        gpu.launch(very_racy, grid=8, block=64, args=(out,), trace=tracer)
        report = check_races(tracer, max_findings=3)
        assert len(report.findings) == 3
        assert report.truncated


class TestAtomicEpochAndScopeSemantics:
    """The fine print: atomics vs plain ops across barrier epochs, and
    the shared-memory exclusion at cross-block scope."""

    def test_atomic_then_plain_across_barrier_is_clean(self, gpu):
        """ATOM epoch 0, plain store epoch 1: the barrier orders them."""
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def staged(ctx, shared, c):
            tid = ctx.thread_idx.x
            if tid < 32:
                yield ctx.atomic_add(c, 0, 1)
            yield ctx.sync()
            if tid == 32:
                yield ctx.gstore(c, 0, 0)

        tracer = Tracer()
        gpu.launch(staged, grid=1, block=64, args=(counter,), trace=tracer)
        check_races(tracer).assert_clean()

    def test_plain_then_atomic_across_barrier_is_clean(self, gpu):
        """Same ordering argument with the roles reversed."""
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def staged(ctx, shared, c):
            tid = ctx.thread_idx.x
            if tid == 0:
                yield ctx.gstore(c, 0, 0)
            yield ctx.sync()
            if tid >= 32:
                yield ctx.atomic_add(c, 0, 1)

        tracer = Tracer()
        gpu.launch(staged, grid=1, block=64, args=(counter,), trace=tracer)
        check_races(tracer).assert_clean()

    def test_atomic_vs_plain_same_epoch_still_races(self, gpu):
        """Control: without the barrier the same pairing is a race."""
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def unstaged(ctx, shared, c):
            tid = ctx.thread_idx.x
            if tid < 32:
                yield ctx.atomic_add(c, 0, 1)
            elif tid == 32:
                yield ctx.gstore(c, 0, 0)

        tracer = Tracer()
        gpu.launch(unstaged, grid=1, block=64, args=(counter,), trace=tracer)
        report = check_races(tracer)
        assert not report.clean
        assert report.by_scope().get("intra-block", 0) >= 1

    def test_cross_block_atomic_vs_plain_races_despite_barriers(self, gpu):
        """Barriers are per-block: a block-local sync cannot order an
        ATOM in block 0 against a plain store in block 1."""
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def per_block(ctx, shared, c):
            if ctx.thread_idx.x == 0:
                if ctx.block_idx.x == 0:
                    yield ctx.atomic_add(c, 0, 1)
                else:
                    yield ctx.sync()
                    yield ctx.gstore(c, 0, 0)

        tracer = Tracer()
        gpu.launch(per_block, grid=2, block=32, args=(counter,), trace=tracer)
        report = check_races(tracer)
        assert not report.clean
        assert report.by_scope().get("cross-block", 0) >= 1

    def test_cross_block_atomic_vs_atomic_is_clean(self, gpu):
        """ATOM/ATOM never conflicts, in any scope."""
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def all_atomic(ctx, shared, c):
            if ctx.thread_idx.x == 0:
                yield ctx.atomic_add(c, 0, 1)

        tracer = Tracer()
        gpu.launch(all_atomic, grid=4, block=32, args=(counter,),
                   trace=tracer)
        check_races(tracer).assert_clean()

    def test_shared_space_excluded_from_cross_block_analysis(self, gpu):
        """Two blocks write shared address 0 with no barrier at all.
        Intra-block each write is a single warp (no conflict), and the
        numerically-identical addresses live in per-block arenas — the
        cross-block pass must skip the shared space entirely."""

        def lone_shared_write(ctx, shared, _):
            if ctx.thread_idx.x == 0:
                yield ctx.sstore(shared, 0, float(ctx.block_idx.x))

        dummy = gpu.memory.alloc(1, np.float32)
        tracer = Tracer()
        gpu.launch(lone_shared_write, grid=2, block=32, args=(dummy,),
                   shared_setup=lambda sm: sm.alloc(1, np.float32),
                   trace=tracer)
        check_races(tracer).assert_clean()
