"""Integration tests for the lock-step kernel executor."""

import numpy as np
import pytest

from repro.gpusim import GpuDevice, InvalidLaunchError, KernelFault
from repro.gpusim.errors import MemoryAccessError


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestBasicExecution:
    def test_identity_kernel(self, gpu):
        data = gpu.memory.alloc_like(np.arange(64, dtype=np.float32))
        out = gpu.memory.alloc(64, np.float32)

        def copy_kernel(ctx, shared, src, dst):
            tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
            v = yield ctx.gload(src, tid)
            yield ctx.gstore(dst, tid, v)

        gpu.launch(copy_kernel, grid=2, block=32, args=(data, out))
        assert np.array_equal(out.copy_to_host(), np.arange(64, dtype=np.float32))

    def test_grid_block_indices_cover_domain(self, gpu):
        out = gpu.memory.alloc(96, np.int32)

        def mark_kernel(ctx, shared, dst):
            tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
            yield ctx.gstore(dst, tid, tid)

        gpu.launch(mark_kernel, grid=3, block=32, args=(out,))
        assert np.array_equal(out.copy_to_host(), np.arange(96, dtype=np.int32))

    def test_global_thread_id_matches_manual(self, gpu):
        out = gpu.memory.alloc(64, np.int32)

        def gid_kernel(ctx, shared, dst):
            yield ctx.gstore(dst, ctx.global_thread_id, ctx.global_thread_id)

        gpu.launch(gid_kernel, grid=2, block=32, args=(out,))
        assert np.array_equal(out.copy_to_host(), np.arange(64, dtype=np.int32))

    def test_non_generator_kernel_rejected(self, gpu):
        def not_a_kernel(ctx, shared):
            return 42

        with pytest.raises(InvalidLaunchError):
            gpu.launch(not_a_kernel, grid=1, block=1)

    def test_partial_warp(self, gpu):
        # 5 threads: less than a warp, still executes correctly.
        out = gpu.memory.alloc(5, np.int32)

        def k(ctx, shared, dst):
            yield ctx.gstore(dst, ctx.thread_idx.x, ctx.thread_idx.x * 10)

        gpu.launch(k, grid=1, block=5, args=(out,))
        assert np.array_equal(out.copy_to_host(), np.array([0, 10, 20, 30, 40]))


class TestSharedMemoryAndBarriers:
    def test_block_reverse_via_shared(self, gpu):
        host = np.arange(32, dtype=np.float32)
        data = gpu.memory.alloc_like(host)
        out = gpu.memory.alloc(32, np.float32)

        def reverse_kernel(ctx, shared, src, dst):
            tid = ctx.thread_idx.x
            v = yield ctx.gload(src, tid)
            yield ctx.sstore(shared, tid, v)
            yield ctx.sync()
            w = yield ctx.sload(shared, 31 - tid)
            yield ctx.gstore(dst, tid, w)

        gpu.launch(
            reverse_kernel, grid=1, block=32, args=(data, out),
            shared_setup=lambda sm: sm.alloc(32, np.float32),
        )
        assert np.array_equal(out.copy_to_host(), host[::-1])

    def test_barrier_across_multiple_warps(self, gpu):
        # 64 threads = 2 warps; warp 1 writes what warp 0 staged.
        host = np.arange(64, dtype=np.float32)
        data = gpu.memory.alloc_like(host)
        out = gpu.memory.alloc(64, np.float32)

        def k(ctx, shared, src, dst):
            tid = ctx.thread_idx.x
            if tid < 32:
                v = yield ctx.gload(src, tid)
                yield ctx.sstore(shared, tid, v)
            yield ctx.sync()
            if tid >= 32:
                w = yield ctx.sload(shared, tid - 32)
                yield ctx.gstore(dst, tid, w)

        gpu.launch(k, grid=1, block=64, args=(data, out),
                   shared_setup=lambda sm: sm.alloc(32, np.float32))
        assert np.array_equal(out.copy_to_host()[32:], host[:32])

    def test_shared_state_fresh_per_block(self, gpu):
        # Each block increments shared[0]; blocks must not see each other.
        out = gpu.memory.alloc(4, np.float32)

        def k(ctx, shared, dst):
            if ctx.thread_idx.x == 0:
                v = yield ctx.sload(shared, 0)
                yield ctx.sstore(shared, 0, v + 1)
                w = yield ctx.sload(shared, 0)
                yield ctx.gstore(dst, ctx.block_idx.x, w)

        gpu.launch(k, grid=4, block=8, args=(out,),
                   shared_setup=lambda sm: sm.alloc(1, np.float32))
        assert np.array_equal(out.copy_to_host(), np.ones(4, dtype=np.float32))


class TestHardwareBehaviour:
    def test_coalesced_vs_scattered_transactions(self, gpu):
        n = 32
        data = gpu.memory.alloc_like(np.arange(n * 32, dtype=np.float32))
        out = gpu.memory.alloc(n, np.float32)

        def coalesced(ctx, shared, src, dst):
            tid = ctx.thread_idx.x
            v = yield ctx.gload(src, tid)
            yield ctx.gstore(dst, tid, v)

        def scattered(ctx, shared, src, dst):
            tid = ctx.thread_idx.x
            v = yield ctx.gload(src, tid * 32)  # 128-byte stride
            yield ctx.gstore(dst, tid, v)

        rep_c = gpu.launch(coalesced, grid=1, block=32, args=(data, out))
        rep_s = gpu.launch(scattered, grid=1, block=32, args=(data, out))
        assert rep_s.total_global_transactions > rep_c.total_global_transactions
        assert rep_c.coalescing_efficiency == pytest.approx(1.0)
        assert rep_s.coalescing_efficiency < 0.25

    def test_divergence_detected_and_costed(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)

        def divergent(ctx, shared, src, dst):
            tid = ctx.thread_idx.x
            if tid % 2 == 0:
                v = yield ctx.gload(src, tid)
            else:
                yield ctx.alu(1)
                v = -1.0
            yield ctx.gstore(dst, tid, v)

        def uniform(ctx, shared, src, dst):
            tid = ctx.thread_idx.x
            v = yield ctx.gload(src, tid)
            yield ctx.gstore(dst, tid, v)

        rep_d = gpu.launch(divergent, grid=1, block=32, args=(data, out))
        rep_u = gpu.launch(uniform, grid=1, block=32, args=(data, out))
        assert rep_d.total_divergent_steps > 0
        assert rep_u.total_divergent_steps == 0

    def test_bank_conflicts_counted(self, gpu):
        def conflicting(ctx, shared, _):
            tid = ctx.thread_idx.x
            # All lanes hit bank 0 at distinct addresses: 32-way conflict.
            yield ctx.sstore(shared, tid * 32, float(tid))

        def conflict_free(ctx, shared, _):
            tid = ctx.thread_idx.x
            yield ctx.sstore(shared, tid, float(tid))

        dummy = gpu.memory.alloc(1, np.float32)
        rep_c = gpu.launch(conflicting, grid=1, block=32, args=(dummy,),
                           shared_setup=lambda sm: sm.alloc(32 * 32, np.float32))
        rep_f = gpu.launch(conflict_free, grid=1, block=32, args=(dummy,),
                           shared_setup=lambda sm: sm.alloc(32, np.float32))
        assert rep_c.total_bank_conflicts > 0
        assert rep_f.total_bank_conflicts == 0

    def test_broadcast_same_address_no_conflict(self, gpu):
        def broadcast(ctx, shared, _):
            v = yield ctx.sload(shared, 0)
            yield ctx.alu(1)

        dummy = gpu.memory.alloc(1, np.float32)
        rep = gpu.launch(broadcast, grid=1, block=32, args=(dummy,),
                         shared_setup=lambda sm: sm.alloc(4, np.float32))
        assert rep.total_bank_conflicts == 0

    def test_waves_scale_timing(self, gpu):
        def k(ctx, shared):
            yield ctx.alu(10)

        few = gpu.launch(k, grid=2, block=32)
        many = gpu.launch(k, grid=64, block=32)
        assert many.timing.waves > few.timing.waves
        assert many.milliseconds > few.milliseconds


class TestFaults:
    def test_kernel_exception_becomes_fault(self, gpu):
        def bad(ctx, shared):
            yield ctx.alu(1)
            raise RuntimeError("boom")

        with pytest.raises(KernelFault, match="boom"):
            gpu.launch(bad, grid=1, block=1)

    def test_out_of_bounds_access_faults(self, gpu):
        arr = gpu.memory.alloc(4, np.float32)

        def oob(ctx, shared, a):
            v = yield ctx.gload(a, 100)

        with pytest.raises((KernelFault, MemoryAccessError)):
            gpu.launch(oob, grid=1, block=1, args=(arr,))

    def test_yielding_non_event_faults(self, gpu):
        def wrong(ctx, shared):
            yield "not an event"

        with pytest.raises(KernelFault):
            gpu.launch(wrong, grid=1, block=1)

    def test_mem_info_shape(self, gpu):
        info = gpu.mem_info()
        assert set(info) == {"free", "total", "peak"}
        assert info["free"] <= info["total"]
