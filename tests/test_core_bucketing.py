"""Unit tests for repro.core.bucketing (phase 2)."""

import numpy as np
import pytest

from repro.core.bucketing import (
    bucket_ids_for_row,
    bucketize,
    exclusive_scan,
)
from repro.core.config import SortConfig
from repro.core.splitters import select_splitters
from repro.core.validation import check_bucket_partition


class TestExclusiveScan:
    def test_basic(self):
        out = exclusive_scan(np.array([[2, 0, 3]]))
        assert out.tolist() == [[0, 2, 2, 5]]

    def test_end_sentinel_is_total(self, rng):
        sizes = rng.integers(0, 10, (5, 8))
        out = exclusive_scan(sizes)
        assert np.array_equal(out[:, -1], sizes.sum(axis=1))

    def test_monotone(self, rng):
        sizes = rng.integers(0, 10, (5, 8))
        out = exclusive_scan(sizes)
        assert np.all(np.diff(out, axis=1) >= 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            exclusive_scan(np.array([1, 2, 3]))


class TestBucketIdsForRow:
    def test_half_open_semantics(self):
        # bucket j owns [s_j, s_{j+1}): equal-to-splitter goes right.
        splitters = np.array([10.0, 20.0])
        row = np.array([5.0, 10.0, 15.0, 20.0, 25.0])
        assert bucket_ids_for_row(row, splitters).tolist() == [0, 1, 1, 2, 2]

    def test_no_splitters_single_bucket(self):
        row = np.array([3.0, 1.0])
        assert bucket_ids_for_row(row, np.empty(0)).tolist() == [0, 0]

    def test_all_equal_splitters(self):
        splitters = np.array([7.0, 7.0, 7.0])
        row = np.array([6.0, 7.0, 8.0])
        ids = bucket_ids_for_row(row, splitters)
        assert ids.tolist() == [0, 3, 3]


class TestBucketize:
    def test_result_is_permutation(self, small_batch):
        spl = select_splitters(small_batch)
        res = bucketize(small_batch.copy(), spl.splitters)
        assert np.array_equal(
            np.sort(res.bucketed, axis=1), np.sort(small_batch, axis=1)
        )

    def test_sizes_sum_to_n(self, small_batch):
        spl = select_splitters(small_batch)
        res = bucketize(small_batch.copy(), spl.splitters)
        assert np.all(res.sizes.sum(axis=1) == small_batch.shape[1])

    def test_partition_invariant_every_row(self, small_batch):
        spl = select_splitters(small_batch)
        res = bucketize(small_batch.copy(), spl.splitters)
        for i in range(small_batch.shape[0]):
            check_bucket_partition(res.bucketed[i], spl.splitters[i], res.offsets[i])

    def test_stability_within_buckets(self):
        # Elements of the same bucket must keep their original order
        # (each thread scans left to right).
        row = np.array([[5.0, 1.0, 6.0, 2.0, 7.0, 3.0]], dtype=np.float32)
        splitters = np.array([[4.0]], dtype=np.float32)
        res = bucketize(row.copy(), splitters)
        assert res.bucketed[0].tolist() == [1.0, 2.0, 3.0, 5.0, 6.0, 7.0]

    def test_inplace_writeback(self, small_batch):
        spl = select_splitters(small_batch)
        work = small_batch.copy()
        res = bucketize(work, spl.splitters, out=work)
        assert res.bucketed is work  # same storage, like the device kernel

    def test_offsets_shape(self, small_batch):
        spl = select_splitters(small_batch)
        res = bucketize(small_batch.copy(), spl.splitters)
        assert res.offsets.shape == (small_batch.shape[0], res.num_buckets + 1)

    def test_rejects_nan(self):
        batch = np.array([[1.0, np.nan, 2.0]], dtype=np.float32)
        with pytest.raises(ValueError, match="NaN"):
            bucketize(batch, np.array([[1.5]], dtype=np.float32))

    def test_rejects_row_mismatch(self, small_batch):
        spl = select_splitters(small_batch)
        with pytest.raises(ValueError):
            bucketize(small_batch[:5].copy(), spl.splitters)

    def test_rejects_bad_out_shape(self, small_batch):
        spl = select_splitters(small_batch)
        with pytest.raises(ValueError):
            bucketize(small_batch.copy(), spl.splitters, out=np.empty((1, 1)))

    def test_duplicate_heavy_rows_survive(self, rng):
        # Fewer distinct values than buckets: many empty buckets, ties on
        # splitters — correctness must hold.
        palette = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        batch = palette[rng.integers(0, 3, (10, 200))]
        spl = select_splitters(batch)
        res = bucketize(batch.copy(), spl.splitters)
        assert np.all(res.sizes.sum(axis=1) == 200)
        for i in range(10):
            check_bucket_partition(res.bucketed[i], spl.splitters[i], res.offsets[i])

    def test_constant_rows_single_bucket_gets_all(self):
        batch = np.full((3, 100), 9.0, dtype=np.float32)
        spl = select_splitters(batch)
        res = bucketize(batch.copy(), spl.splitters)
        # All splitters equal 9.0; every element >= every splitter, so the
        # last bucket owns everything.
        assert np.all(res.sizes[:, -1] == 100)
        assert np.all(res.sizes[:, :-1] == 0)

    def test_small_row_chunk_equivalent(self, small_batch):
        spl = select_splitters(small_batch)
        a = bucketize(small_batch.copy(), spl.splitters, row_chunk=3)
        b = bucketize(small_batch.copy(), spl.splitters, row_chunk=512)
        assert np.array_equal(a.bucketed, b.bucketed)
        assert np.array_equal(a.sizes, b.sizes)

    def test_bucket_concatenation_bounds(self, small_batch):
        # max of bucket j must be <= min of bucket j+1 (partition order).
        spl = select_splitters(small_batch)
        res = bucketize(small_batch.copy(), spl.splitters)
        for i in range(small_batch.shape[0]):
            prev_max = -np.inf
            for j in range(res.num_buckets):
                lo, hi = res.offsets[i, j], res.offsets[i, j + 1]
                seg = res.bucketed[i, lo:hi]
                if seg.size:
                    assert seg.min() >= prev_max or np.isclose(seg.min(), prev_max)
                    prev_max = seg.max()

    def test_max_bucket_size_metric(self, small_batch):
        spl = select_splitters(small_batch)
        res = bucketize(small_batch.copy(), spl.splitters)
        assert res.max_bucket_size() == int(res.sizes.max())


class TestAdaptiveRowChunk:
    """Satellite: the bucket-id pass sizes its own chunks from n*q."""

    def test_budget_bound_respected(self):
        from repro.core.bucketing import adaptive_row_chunk

        chunk = adaptive_row_chunk(1000, 49, budget=1 << 20)
        assert chunk == (1 << 20) // (1000 * 49) == 21
        # The chosen chunk's scratch never exceeds the budget.
        assert chunk * 1000 * 49 <= 1 << 20

    def test_clamped_to_one_row_minimum(self):
        from repro.core.bucketing import adaptive_row_chunk

        assert adaptive_row_chunk(10**6, 10**4, budget=1) == 1

    def test_zero_splitters_treated_as_one(self):
        from repro.core.bucketing import adaptive_row_chunk

        assert adaptive_row_chunk(100, 0, budget=1000) == 10

    def test_default_budget_constant(self):
        from repro.core.bucketing import (
            BUCKETIZE_ELEMENT_BUDGET,
            adaptive_row_chunk,
        )

        assert adaptive_row_chunk(1000, 49) == (
            BUCKETIZE_ELEMENT_BUDGET // (1000 * 49)
        )

    def test_rejects_empty_rows(self):
        from repro.core.bucketing import adaptive_row_chunk

        with pytest.raises(ValueError):
            adaptive_row_chunk(0, 5)

    def test_bucketize_adaptive_equals_explicit_chunks(self, rng):
        batch = rng.uniform(0, 100, (80, 300)).astype(np.float32)
        from repro.core.splitters import select_splitters

        spl = select_splitters(batch)
        auto = bucketize(batch.copy(), spl.splitters)  # row_chunk=None
        explicit = bucketize(batch.copy(), spl.splitters, row_chunk=7)
        assert np.array_equal(auto.bucketed, explicit.bucketed)
        assert np.array_equal(auto.sizes, explicit.sizes)

    def test_binary_search_strategy_matches_cube(self, rng):
        # Force many splitters (> _CUBE_MAX_SPLITTERS) so the searchsorted
        # strategy runs, and cross-check against the scalar rule.
        from repro.core.bucketing import bucket_ids_for_row, _batch_bucket_ids

        batch = rng.uniform(0, 100, (15, 400)).astype(np.float64)
        splitters = np.sort(rng.uniform(0, 100, (15, 19)), axis=1)
        ids = _batch_bucket_ids(batch, splitters)
        for i in range(15):
            assert np.array_equal(
                ids[i], bucket_ids_for_row(batch[i], splitters[i])
            )
