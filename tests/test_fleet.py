"""End-to-end tests for :class:`SortFleet`: the multi-process serving
tier keeps the in-process service's contract.

Real worker processes, tiny workloads.  One module-scoped fleet serves
the correctness and stats tests (fleet startup forks real processes, so
it is paid once); lifecycle tests that close or poison a fleet build
their own.
"""

import concurrent.futures
import threading

import numpy as np
import pytest

from repro.fleet import DEFAULT_WORKERS, SortFleet
from repro.service import RejectedError, ServiceClosedError

pytestmark = [pytest.mark.fleet, pytest.mark.service]

RNG = np.random.default_rng(1234)


def small_fleet(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("linger_ms", 1.0)
    kwargs.setdefault("heartbeat_s", 0.02)
    kwargs.setdefault("liveness_s", 2.0)
    kwargs.setdefault("start_timeout_s", 60.0)
    return SortFleet(**kwargs)


@pytest.fixture(scope="module")
def fleet():
    fl = small_fleet()
    yield fl
    fl.close(drain=False, timeout=10.0)


class TestSubmitContract:
    def test_sorts_a_stack(self, fleet):
        batch = RNG.integers(0, 1000, size=(20, 32)).astype(np.float32)
        result = fleet.submit(batch).result(timeout=30)
        np.testing.assert_array_equal(result, np.sort(batch, axis=1))

    def test_single_array_round_trip(self, fleet):
        arr = RNG.uniform(-5, 5, size=64).astype(np.float64)
        result = fleet.submit(arr).result(timeout=30)
        assert result.shape == (64,)
        np.testing.assert_array_equal(result, np.sort(arr))

    @pytest.mark.parametrize("dtype", [np.int32, np.uint16, np.float32,
                                       np.float64])
    def test_dtypes(self, fleet, dtype):
        batch = RNG.integers(0, 255, size=(6, 16)).astype(dtype)
        result = fleet.submit(batch).result(timeout=30)
        assert result.dtype == batch.dtype
        np.testing.assert_array_equal(result, np.sort(batch, axis=1))

    def test_input_not_mutated(self, fleet):
        batch = RNG.uniform(0, 1, size=(8, 24)).astype(np.float32)
        before = batch.copy()
        fleet.submit(batch).result(timeout=30)
        np.testing.assert_array_equal(batch, before)

    def test_many_concurrent_submitters(self, fleet):
        # Requests from several threads, mixed lanes, all byte-identical
        # to np.sort regardless of which worker served them.
        batches = [
            RNG.integers(0, 10_000, size=(4, 16 * (1 + i % 3)))
            .astype(np.float32)
            for i in range(24)
        ]
        futures = [None] * len(batches)

        def push(i):
            futures[i] = fleet.submit(batches[i])

        threads = [threading.Thread(target=push, args=(i,))
                   for i in range(len(batches))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for batch, future in zip(batches, futures):
            np.testing.assert_array_equal(
                future.result(timeout=30), np.sort(batch, axis=1)
            )

    def test_validation_matches_service(self, fleet):
        with pytest.raises(ValueError):
            fleet.submit(np.zeros((2, 2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            fleet.submit(np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            fleet.submit(np.array(["a", "b"]))
        with pytest.raises(ValueError):
            fleet.submit(np.zeros((1, 4), dtype=np.float32), deadline=-1.0)
        with pytest.raises(ValueError):
            fleet.submit(np.zeros((1, 4), dtype=np.float32), tenant="")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SortFleet(workers=0)
        with pytest.raises(ValueError):
            SortFleet(heartbeat_s=0.05, liveness_s=0.01)
        with pytest.raises(ValueError):
            SortFleet(default_deadline_ms=0)


class TestBackpressure:
    def test_saturated_fleet_rejects_with_hint(self):
        # Bound of 8 rows/worker and a parked fleet (no requests ever
        # dispatched because we fill the router synchronously): the
        # third 8-row request finds no headroom.
        with small_fleet(workers=1, max_worker_queue_rows=8,
                         retry_jitter=0.0) as fl:
            # Fill the router's view without letting the worker drain:
            # route directly (the worker never sees these rows).
            fl._router.route((16, "<f4"), 8)
            with pytest.raises(RejectedError) as excinfo:
                fl.submit(np.zeros((8, 16), dtype=np.float32))
            err = excinfo.value
            assert err.reason == "queue-full"
            assert err.retry_after > 0
            fl._router.record_done(0, 8)

    def test_rejection_hint_deterministic_with_seed(self):
        hints = []
        for _ in range(2):
            with small_fleet(workers=1, max_worker_queue_rows=8,
                             retry_jitter=0.25, retry_jitter_seed=7) as fl:
                fl._router.route((16, "<f4"), 8)
                with pytest.raises(RejectedError) as excinfo:
                    fl.submit(np.zeros((8, 16), dtype=np.float32))
                hints.append(excinfo.value.retry_after)
                fl._router.record_done(0, 8)
        assert hints[0] == hints[1]


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_after(self):
        fl = small_fleet(workers=1)
        batch = np.zeros((2, 8), dtype=np.float32)
        fl.submit(batch).result(timeout=30)
        fl.close()
        fl.close()  # second close: no-op
        assert fl.closed
        with pytest.raises(ServiceClosedError):
            fl.submit(batch)

    def test_context_manager_drains(self):
        batch = RNG.uniform(0, 1, size=(4, 16)).astype(np.float32)
        with small_fleet(workers=1) as fl:
            future = fl.submit(batch)
        np.testing.assert_array_equal(
            future.result(timeout=1), np.sort(batch, axis=1)
        )

    def test_close_without_drain_fails_inflight_typed(self):
        fl = small_fleet(workers=1, linger_ms=200.0,
                         batch_target_rows=10_000)
        future = fl.submit(np.zeros((2, 8), dtype=np.float32))
        fl.close(drain=False)
        if not future.done() or future.exception() is not None:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=1)

    def test_flush_empty_fleet_returns_true(self, fleet):
        assert fleet.flush(timeout=5.0)


class TestStats:
    def test_counters_and_worker_views(self):
        with small_fleet(workers=2) as fl:
            batches = [
                RNG.integers(0, 100, size=(3, 16)).astype(np.float32)
                for _ in range(6)
            ]
            done = [fl.submit(b) for b in batches]
            concurrent.futures.wait(done, timeout=30)
            fl.flush(timeout=30)
            stats = fl.stats()
            assert stats.workers_total == 2
            assert stats.workers_alive == 2
            assert stats.frontend.submitted == 6
            assert stats.frontend.completed == 6
            assert stats.frontend.failed == 0
            assert sorted(stats.workers) == [0, 1]
            assert sum(w.dispatched for w in stats.workers.values()) == 6
            assert sum(w.completed for w in stats.workers.values()) == 6
            for state in stats.workers.values():
                assert state.pid is not None and state.pid > 0
                assert state.alive
            payload = stats.as_dict()
            assert payload["workers_total"] == 2
            assert set(payload["workers"]) == {"0", "1"}

    def test_tenant_attribution(self):
        with small_fleet(workers=1) as fl:
            fl.submit(np.zeros((2, 8), dtype=np.float32),
                      tenant="alpha").result(timeout=30)
            fl.submit(np.zeros((2, 8), dtype=np.float32),
                      tenant="beta").result(timeout=30)
            fl.flush(timeout=30)
            tenants = fl.stats().frontend.tenants
            assert tenants["alpha"].completed == 1
            assert tenants["beta"].completed == 1

    def test_worker_heartbeat_stats_flow_up(self):
        import time

        with small_fleet(workers=1, heartbeat_s=0.02) as fl:
            fl.submit(np.zeros((2, 8), dtype=np.float32)).result(timeout=30)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                state = fl.stats().workers[0]
                if state.service.get("completed", 0) >= 1:
                    break
                time.sleep(0.02)
            assert state.service.get("completed", 0) >= 1
            assert state.heartbeat_age_s is not None


class TestDefaults:
    def test_default_worker_count(self):
        assert DEFAULT_WORKERS == 2
