"""Shared fixtures for the test suite, plus a per-test timeout guard.

The timeout guard exists for the resilience suite: a regression in the
retry loop (e.g. a fault plan that always faults combined with a broken
fallback) would otherwise hang the tier-1 run instead of failing it.
``pytest-timeout`` is not a dependency, so a SIGALRM-based hook stands
in; override the default with ``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.gpusim import GpuDevice

#: Per-test wall-clock budget (seconds); generous because the lock-step
#: sim engine is slow by design.
DEFAULT_TEST_TIMEOUT_S = 120.0

_SIGALRM_USABLE = hasattr(signal, "SIGALRM")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    timeout = DEFAULT_TEST_TIMEOUT_S
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        timeout = float(marker.args[0])
    if (
        not _SIGALRM_USABLE
        or timeout <= 0
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test exceeded its {timeout:g}s timeout", pytrace=False
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng():
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def micro_gpu():
    """A tiny simulated device for fast kernel tests."""
    return GpuDevice.micro()


@pytest.fixture
def small_batch(rng):
    """A small float32 batch in the paper's value range."""
    return rng.uniform(0, 2**31 - 1, (20, 128)).astype(np.float32)


@pytest.fixture
def tiny_batch(rng):
    """A micro batch for the (slow) lock-step sim engine."""
    return rng.uniform(0, 1000.0, (4, 96)).astype(np.float32)
