"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import GpuDevice


@pytest.fixture
def rng():
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def micro_gpu():
    """A tiny simulated device for fast kernel tests."""
    return GpuDevice.micro()


@pytest.fixture
def small_batch(rng):
    """A small float32 batch in the paper's value range."""
    return rng.uniform(0, 2**31 - 1, (20, 128)).astype(np.float32)


@pytest.fixture
def tiny_batch(rng):
    """A micro batch for the (slow) lock-step sim engine."""
    return rng.uniform(0, 1000.0, (4, 96)).astype(np.float32)
