"""Unit tests for repro.planner (cost model, calibration, planners)."""

import json

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig
from repro.planner import (
    CACHE_SCHEMA,
    ExecutionPlan,
    ExecutionPlanner,
    HostProfile,
    StaticPlanner,
    calibrate_host,
    default_cache_path,
    host_fingerprint,
    load_profile,
    predict_ms,
    resolve_planner,
    save_profile,
    set_default_planner,
    shape_class_key,
)

# A deterministic 2-core profile so planner tests never run the ~0.3 s
# calibration and never depend on this host's measured constants.
STUB = HostProfile(cpu_count=2, calibrated=True)
BIG = (100_000, 1000)  # rows, row_len — above the fan-out guard
SMALL = (1000, 500)  # below it: serial is the only candidate


def make_planner(**kwargs):
    kwargs.setdefault("cache_path", None)
    return ExecutionPlanner(STUB, **kwargs)


class TestModel:
    def test_predictions_positive_for_every_engine(self):
        for engine in ("serial", "thread", "process"):
            ms = predict_ms(STUB, engine, *BIG, np.float32, workers=2, shards=2)
            assert ms > 0

    def test_serial_prediction_scales_with_rows(self):
        small = predict_ms(STUB, "serial", 1000, 1000, np.float32)
        big = predict_ms(STUB, "serial", 100_000, 1000, np.float32)
        assert big > small * 10

    def test_process_costs_more_overhead_than_thread(self):
        t = predict_ms(STUB, "thread", *BIG, np.float32, workers=2, shards=2)
        p = predict_ms(STUB, "process", *BIG, np.float32, workers=2, shards=2)
        assert p > t  # staging copies + spawn cost

    def test_profile_dict_round_trip(self):
        data = STUB.as_dict()
        assert HostProfile.from_dict(data) == STUB
        data["future_field"] = 123  # forward compat: unknown keys ignored
        assert HostProfile.from_dict(data) == STUB

    def test_radix_prediction_positive_and_dtype_aware(self):
        f32 = predict_ms(STUB, "radix", *BIG, np.float32)
        f64 = predict_ms(STUB, "radix", *BIG, np.float64)
        assert f32 > 0
        assert f64 > f32  # wider keys: more passes and more bytes copied

    def test_unknown_engine_error_lists_every_engine(self):
        from repro.planner.model import ENGINE_NAMES

        assert ENGINE_NAMES == ("serial", "thread", "process", "radix")
        with pytest.raises(ValueError) as excinfo:
            predict_ms(STUB, "quantum", *BIG, np.float32)
        for engine in ENGINE_NAMES:
            assert engine in str(excinfo.value)


class TestShapeClassKey:
    def test_quantizes_log2(self):
        a = shape_class_key(1000, 1000, np.float32)
        b = shape_class_key(1100, 950, np.float32)  # same rounded log2s
        assert a == b

    def test_separates_dtypes_and_scales(self):
        assert shape_class_key(1000, 1000, np.float32) != shape_class_key(
            1000, 1000, np.float64
        )
        assert shape_class_key(1000, 1000, np.float32) != shape_class_key(
            4000, 1000, np.float32
        )


class TestCalibration:
    def test_calibrate_host_measures_everything(self):
        profile = calibrate_host(rows=64, row_len=256)
        assert profile.calibrated
        assert profile.sort_ns > 0
        assert profile.copy_ns_per_byte > 0
        assert profile.gather_ns > 0
        assert 0.1 <= profile.thread_efficiency <= 1.0
        assert profile.cpu_count >= 1

    def test_cache_round_trip(self, tmp_path):
        path = tmp_path / "planner.json"
        obs = {"k": {"serial": {"ema_ms": 1.5, "count": 3}}}
        assert save_profile(STUB, obs, path)
        profile, loaded_obs = load_profile(path)
        assert profile == STUB
        assert loaded_obs == obs

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "planner.json"
        save_profile(STUB, {}, path)
        data = json.loads(path.read_text())
        data["schema"] = "something-else"
        path.write_text(json.dumps(data))
        assert load_profile(path) == (None, {})

    def test_load_rejects_foreign_fingerprint(self, tmp_path):
        path = tmp_path / "planner.json"
        save_profile(STUB, {}, path)
        data = json.loads(path.read_text())
        data["fingerprint"] = "other-host|Linux|cpus=64|numpy=0.0"
        path.write_text(json.dumps(data))
        assert load_profile(path) == (None, {})

    def test_load_missing_file_is_a_miss_not_an_error(self, tmp_path):
        assert load_profile(tmp_path / "absent.json") == (None, {})

    def test_env_var_overrides_cache_path(self, tmp_path, monkeypatch):
        target = tmp_path / "custom" / "cache.json"
        monkeypatch.setenv("REPRO_PLANNER_CACHE", str(target))
        assert default_cache_path() == target

    def test_cache_schema_written(self, tmp_path):
        path = tmp_path / "planner.json"
        save_profile(STUB, {}, path)
        data = json.loads(path.read_text())
        assert data["schema"] == CACHE_SCHEMA
        assert data["fingerprint"] == host_fingerprint()

    def test_stale_engine_set_invalidates_the_cache(self, tmp_path):
        """Regression: a cache written before the radix engine existed
        must read as a miss, not warm-start a planner whose EMA table
        has no radix entries (it would never explore the new engine).

        Pre-radix caches differ from current ones in two ways — the v1
        schema string and a fingerprint without the ``engines=`` token —
        and either alone must be sufficient to reject the file.
        """
        path = tmp_path / "planner.json"
        save_profile(STUB, {"k": {"serial": {"ema_ms": 1.0, "count": 9}}}, path)
        data = json.loads(path.read_text())

        v1 = dict(data)
        v1["schema"] = "repro-planner-cache/v1"
        path.write_text(json.dumps(v1))
        assert load_profile(path) == (None, {})

        engineless = dict(data)
        fingerprint = data["fingerprint"]
        assert "engines=" in fingerprint  # the engine set is part of identity
        engineless["fingerprint"] = "|".join(
            part for part in fingerprint.split("|")
            if not part.startswith("engines=")
        )
        path.write_text(json.dumps(engineless))
        assert load_profile(path) == (None, {})

    def test_fingerprint_names_every_engine(self):
        from repro.planner.model import ENGINE_NAMES

        fingerprint = host_fingerprint()
        assert f"engines={','.join(ENGINE_NAMES)}" in fingerprint
        assert "radix" in fingerprint

    def test_calibrate_host_measures_radix_pass(self):
        profile = calibrate_host(rows=32, row_len=128)
        assert profile.radix_pass_ns > 0

    @pytest.mark.parametrize(
        "garbage", [b"", b"{truncated", b"\x00\xff\x00", b"[1, 2, 3]"]
    )
    def test_corrupted_cache_is_a_miss_not_an_error(self, tmp_path, garbage):
        """A torn or garbage cache file (e.g. from a pre-atomic-write
        crash) must read as a miss, never raise."""
        path = tmp_path / "planner.json"
        path.write_bytes(garbage)
        assert load_profile(path) == (None, {})

    def test_concurrent_writers_leave_one_complete_file(self, tmp_path):
        """The persistence race: many threads saving at once must leave
        exactly one writer's complete payload — never an interleaving —
        and no stray temp files."""
        import threading

        path = tmp_path / "planner.json"
        workers = 8

        def writer(worker_id):
            obs = {"winner": {"serial": {"ema_ms": float(worker_id),
                                         "count": worker_id}}}
            for _ in range(25):
                assert save_profile(STUB, obs, path)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        profile, obs = load_profile(path)
        assert profile == STUB
        # The observations must be one writer's intact payload.
        count = obs["winner"]["serial"]["count"]
        assert obs["winner"]["serial"]["ema_ms"] == float(count)
        assert count in range(workers)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_failed_publish_is_silent_and_leaves_no_temp(self, tmp_path):
        """An unwritable cache location disables persistence without
        raising and without littering temp files."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        path = blocker / "planner.json"  # parent is a file: mkdir fails
        assert save_profile(STUB, {}, path) is False
        assert [p for p in tmp_path.iterdir()] == [blocker]


class TestExecutionPlanner:
    def test_small_batch_skips_the_fanout_engines(self):
        # Below the fan-out guard there is no thread/process candidate,
        # but radix stays in: it runs in-caller, so sharding economics
        # never apply to it.
        planner = make_planner()
        engines = set()
        for _ in range(4):
            plan = planner.plan(*SMALL, np.float32)
            engines.add(plan.engine)
            planner.observe(plan, 5.0 if plan.engine == "serial" else 50.0)
        assert engines == {"serial", "radix"}
        assert planner.plan(*SMALL, np.float32).engine == "serial"

    def test_exploration_visits_each_candidate_then_settles(self):
        planner = make_planner()
        seen = []
        for _ in range(6):
            plan = planner.plan(*BIG, np.float32)
            seen.append((plan.engine, plan.source))
            # Feed timings that make "thread" the measured winner.
            planner.observe(plan, 10.0 if plan.engine == "thread" else 100.0)
        engines = [e for e, _ in seen]
        assert set(engines[:4]) == {"serial", "thread", "process", "radix"}
        assert seen[0][1] == "model"  # nothing observed yet
        assert seen[1][1] == "explore"
        assert seen[4] == ("thread", "observed")
        assert seen[5] == ("thread", "observed")

    def test_explore_factor_skips_hopeless_candidates(self):
        # A profile where process spawn cost is enormous relative to the
        # serial sort pushes "process" past the exploration cutoff.
        slow_spawn = HostProfile(
            cpu_count=2, process_spawn_ms=1e6, calibrated=True
        )
        planner = ExecutionPlanner(
            slow_spawn, cache_path=None, explore_factor=2.0
        )
        engines = set()
        for _ in range(6):
            plan = planner.plan(*BIG, np.float32)
            engines.add(plan.engine)
            planner.observe(plan, 50.0)
        assert "process" not in engines

    def test_ema_tracks_drift(self):
        planner = make_planner(ema_alpha=0.5)
        plan = planner.plan(*BIG, np.float32)
        planner.observe(plan, 100.0)
        planner.observe(plan, 200.0)
        entry = planner.observations(plan.shape_key)[plan.engine]
        assert entry["count"] == 2
        assert entry["ema_ms"] == pytest.approx(150.0)

    def test_persistence_warm_starts_a_new_planner(self, tmp_path):
        path = tmp_path / "planner.json"
        first = ExecutionPlanner(STUB, cache_path=path)
        for _ in range(4):
            plan = first.plan(*BIG, np.float32)
            first.observe(plan, 10.0 if plan.engine == "serial" else 500.0)
        assert first.save()

        second = ExecutionPlanner(cache_path=path)
        plan = second.plan(*BIG, np.float32)
        assert plan.source == "observed"
        assert plan.engine == "serial"

    def test_validation(self):
        with pytest.raises(ValueError):
            make_planner(explore_factor=0.5)
        with pytest.raises(ValueError):
            make_planner(ema_alpha=0.0)

    def test_executor_for_serial_is_none_and_engines_are_cached(self):
        planner = make_planner()
        serial = ExecutionPlan(engine="serial")
        assert planner.executor_for(serial) is None
        sharded = ExecutionPlan(engine="thread", workers=2)
        engine = planner.executor_for(sharded)
        assert engine is not None
        assert planner.executor_for(sharded) is engine  # no per-batch churn

    def test_executor_for_radix_is_none(self):
        # Radix runs in-caller like serial: no executor, no shards.
        assert make_planner().executor_for(ExecutionPlan(engine="radix")) is None

    def test_radix_candidate_requires_a_supported_dtype(self):
        planner = make_planner()
        engines_f32 = set()
        engines_obj = set()
        for _ in range(6):
            plan = planner.plan(*BIG, np.float32)
            engines_f32.add(plan.engine)
            planner.observe(plan, 50.0)
            plan = planner.plan(*BIG, np.dtype("datetime64[ns]"))
            engines_obj.add(plan.engine)
            planner.observe(plan, 50.0)
        assert "radix" in engines_f32
        assert "radix" not in engines_obj

    def test_plan_counts_track_selections_per_shape(self):
        planner = make_planner()
        for _ in range(3):
            plan = planner.plan(*SMALL, np.float32)
            planner.observe(plan, 5.0)
        counts = planner.plan_counts()
        assert len(counts) == 1
        (shape_counts,) = counts.values()
        assert sum(shape_counts.values()) == 3
        # The snapshot is a copy: mutating it never corrupts the planner.
        shape_counts["serial"] = 10**6
        (fresh,) = planner.plan_counts().values()
        assert sum(fresh.values()) == 3


class TestStaticPlanner:
    @pytest.mark.parametrize(
        "mode,engine",
        [
            ("fused", "serial"),
            ("serial", "serial"),
            ("sharded", "thread"),
            ("thread", "thread"),
            ("process", "process"),
            ("radix", "radix"),
        ],
    )
    def test_mode_mapping(self, mode, engine):
        plan = StaticPlanner(mode).plan(*BIG, np.float32)
        assert plan.engine == engine
        assert plan.source == "static"

    def test_static_planner_records_plan_counts(self):
        planner = StaticPlanner("radix")
        planner.plan(*BIG, np.float32)
        planner.plan(*BIG, np.float32)
        (shape_counts,) = planner.plan_counts().values()
        assert shape_counts == {"radix": 2}

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            StaticPlanner("quantum")

    def test_observe_and_save_are_noops(self):
        planner = StaticPlanner("fused")
        planner.observe(planner.plan(*BIG, np.float32), 1.0)
        assert planner.save() is False


class TestResolvePlanner:
    def test_none_passthrough(self):
        assert resolve_planner(None) is None
        assert resolve_planner("none") is None

    def test_auto_returns_the_shared_planner(self):
        probe = make_planner()
        set_default_planner(probe)
        try:
            assert resolve_planner("auto") is probe
            assert resolve_planner("auto") is probe
        finally:
            set_default_planner(None)

    def test_mode_names_build_static_planners(self):
        planner = resolve_planner("sharded", workers=3)
        assert isinstance(planner, StaticPlanner)
        assert planner.workers == 3

    def test_instance_passthrough(self):
        planner = make_planner()
        assert resolve_planner(planner) is planner

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_planner("warp-drive")
        with pytest.raises(TypeError):
            resolve_planner(42)


class TestSorterIntegration:
    def _batch(self, rng, rows=600, cols=300):
        return rng.uniform(0, 1e6, (rows, cols)).astype(np.float32)

    def test_planner_and_parallel_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            GpuArraySort(parallel="thread", planner="auto")

    def test_planner_requires_vectorized(self):
        with pytest.raises(ValueError):
            GpuArraySort(engine="model", planner="fused")

    def test_output_identical_across_planner_choices(self, rng):
        batch = self._batch(rng)
        baseline = GpuArraySort().sort(batch)
        planners = [
            "fused",
            StaticPlanner("sharded", workers=2, min_rows_per_worker=1),
            make_planner(),
        ]
        for planner in planners:
            result = GpuArraySort(planner=planner).sort(batch)
            assert result.batch.tobytes() == baseline.batch.tobytes(), planner

    def test_planned_result_records_the_plan_and_feeds_the_ema(self, rng):
        planner = make_planner()
        sorter = GpuArraySort(planner=planner)
        batch = self._batch(rng)
        result = sorter.sort(batch)
        plan = result.execution_plan
        # Below the fan-out guard the candidates are serial and radix;
        # whichever the model seeds first, the plan must round-trip into
        # the EMA for that engine.
        assert plan.engine in ("serial", "radix")
        entry = planner.observations(plan.shape_key)[plan.engine]
        assert entry["count"] == 1
        assert entry["ema_ms"] > 0

    def test_arena_result_repeated_sorts_stay_correct(self, rng):
        sorter = GpuArraySort(planner=StaticPlanner("fused"))
        for _ in range(3):
            batch = self._batch(rng)
            result = sorter.sort(batch)
            assert result.scratch is True
            assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_streaming_accepts_planner(self, rng):
        from repro.core import StreamingSorter

        sorter = StreamingSorter(
            array_size=64, batch_arrays=100, planner="fused",
            dtype=np.float32,
        )
        slab = rng.uniform(0, 100, (250, 64)).astype(np.float32)
        sorter.push_slab(slab)
        sorter.flush()
        merged = np.vstack(sorter.results)
        assert merged.shape == (250, 64)
        assert np.all(np.diff(merged, axis=1) >= 0)

    def test_resilient_accepts_planner(self, rng):
        from repro.resilience import ResilientSorter

        batch = self._batch(rng, rows=130, cols=50)
        result = ResilientSorter(planner="fused").sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_resilient_rejects_planner_plus_parallel(self):
        from repro.resilience import ResilientSorter

        with pytest.raises(ValueError):
            ResilientSorter(planner="fused", parallel="thread")
