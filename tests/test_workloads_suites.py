"""Tests for the workload suite registry."""

import numpy as np
import pytest

from repro.core import sort_arrays
from repro.workloads import STANDARD_SUITE, get_workload, list_workloads


class TestRegistry:
    def test_paper_recipes_present(self):
        assert "paper_uniform_small" in STANDARD_SUITE
        assert "paper_uniform_large_arrays" in STANDARD_SUITE
        assert "spectra_intensity" in STANDARD_SUITE

    def test_get_workload_miss_lists_choices(self):
        with pytest.raises(KeyError, match="paper_uniform_small"):
            get_workload("nope")

    def test_list_workloads_descriptions(self):
        listing = list_workloads()
        assert len(listing) == len(STANDARD_SUITE)
        assert all(desc for desc in listing.values())

    def test_every_workload_generates_and_sorts(self):
        for name, spec in STANDARD_SUITE.items():
            batch = spec.generate(seed=1, num_arrays=20, array_size=100)
            assert batch.data.shape == (20, 100), name
            out = sort_arrays(batch.data, verify=True)
            assert np.all(np.diff(out, axis=1) >= 0), name

    def test_generation_deterministic(self):
        spec = get_workload("paper_uniform_small")
        a = spec.generate(seed=9, num_arrays=5, array_size=50)
        b = spec.generate(seed=9, num_arrays=5, array_size=50)
        assert np.array_equal(a.data, b.data)

    def test_default_shapes(self):
        spec = get_workload("paper_uniform_large_arrays")
        batch = spec.generate(seed=0)
        assert batch.array_size == 4000

    def test_shape_overrides(self):
        spec = get_workload("clustered")
        batch = spec.generate(seed=0, num_arrays=7, array_size=33)
        assert batch.data.shape == (7, 33)

    def test_provenance_recorded(self):
        spec = get_workload("presorted")
        batch = spec.generate(seed=4, num_arrays=3, array_size=30)
        assert batch.seed == 4
        assert batch.description == spec.description

    def test_presorted_actually_sorted(self):
        batch = get_workload("presorted").generate(seed=1, num_arrays=5,
                                                   array_size=40)
        assert np.all(np.diff(batch.data, axis=1) >= 0)

    def test_spectra_workload_within_peak_cap(self):
        spec = get_workload("spectra_intensity")
        batch = spec.generate(seed=1, num_arrays=4, array_size=100)
        assert batch.data.min() >= 0
