"""ResilientSorter: retry, fallback, re-sampling, quarantine.

The contract under test: injected faults may cost attempts and time but
never data — every delivered row is sorted and a permutation of its
input, rows that cannot be delivered are quarantined with their original
content, and the whole trajectory (and therefore the stats) replays
byte-identically from the FaultPlan seed.
"""

import numpy as np
import pytest

from repro.core import SortConfig
from repro.gpusim.faults import FaultPlan
from repro.resilience import (
    ResilientSorter,
    RetryPolicy,
    sort_arrays_resilient,
)
from repro.workloads import uniform_arrays

pytestmark = pytest.mark.faultinject


def make_sorter(plan=None, **kwargs):
    kwargs.setdefault("engine", "vectorized")
    kwargs.setdefault("sleep", None)
    return ResilientSorter(SortConfig(), fault_plan=plan, **kwargs)


class TestHappyPath:
    def test_no_faults_matches_numpy(self):
        batch = uniform_arrays(12, 100, seed=1)
        result = make_sorter().sort(batch)
        assert result.ok
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        assert result.stats.attempts == 1
        assert result.stats.retries == 0
        assert result.stats.fallbacks == {}

    def test_input_batch_not_mutated(self):
        batch = uniform_arrays(5, 60, seed=2)
        pristine = batch.copy()
        make_sorter(FaultPlan(1, corruption_rate=1.0)).sort(batch)
        assert np.array_equal(batch, pristine)

    def test_empty_batch(self):
        result = make_sorter().sort(np.empty((0, 10), dtype=np.float32))
        assert result.ok and result.batch.shape == (0, 10)

    def test_malformed_batch_still_raises(self):
        with pytest.raises(ValueError):
            make_sorter().sort(np.zeros((2, 0), dtype=np.float32))


class TestRetryAndFallback:
    def test_transient_faults_recovered_by_retry(self):
        batch = uniform_arrays(16, 80, seed=3)
        # Seed 1 draws fault, ok on its first launches: a transient
        # fault followed by a clean retry.
        plan = FaultPlan(1, kernel_fault_rate=0.5)
        result = make_sorter(plan).sort(batch)
        assert result.ok
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        assert result.stats.faults_seen > 0
        assert result.stats.retries > 0

    def test_always_faulting_device_falls_back_to_numpy(self):
        batch = uniform_arrays(8, 64, seed=4)
        plan = FaultPlan(9, kernel_fault_rate=1.0)
        result = make_sorter(plan).sort(batch)
        assert result.ok
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        assert result.stats.fallbacks == {"numpy": 1}
        # vectorized: 1 attempt + 3 retries, then numpy succeeds.
        assert result.stats.attempts == 5
        assert result.stats.rows_recovered == 8

    def test_oom_window_drains_then_recovers(self):
        batch = uniform_arrays(6, 64, seed=5)
        plan = FaultPlan(9, oom_windows=[(0, 2)])
        result = make_sorter(plan).sort(batch)
        assert result.ok
        assert result.stats.oom_seen == 2
        assert result.stats.faults_seen == 2

    def test_backoff_schedule_is_capped_and_recorded(self):
        waits = []
        policy = RetryPolicy(
            max_retries=3, base_backoff_s=0.1, multiplier=2.0, max_backoff_s=0.15
        )
        plan = FaultPlan(9, kernel_fault_rate=1.0)
        sorter = ResilientSorter(
            SortConfig(),
            engine="vectorized",
            fallback_chain=("vectorized",),
            fault_plan=plan,
            retry_policy=policy,
            sleep=waits.append,
        )
        result = sorter.sort(uniform_arrays(4, 32, seed=6))
        assert waits == [0.1, 0.15, 0.15]
        assert result.stats.backoff_seconds == pytest.approx(0.4)
        assert not result.ok  # single-engine chain, every attempt faulted

    def test_custom_chain_is_honored(self):
        plan = FaultPlan(9, kernel_fault_rate=1.0)
        sorter = make_sorter(plan, fallback_chain=("vectorized", "numpy"))
        result = sorter.sort(uniform_arrays(4, 32, seed=7))
        assert result.ok
        assert list(result.stats.fallbacks) == ["numpy"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ResilientSorter(SortConfig(), engine="cuda")
        with pytest.raises(ValueError, match="unknown engine"):
            ResilientSorter(SortConfig(), fallback_chain=("vectorized", "gpu"))


class TestCorruptionAndQuarantine:
    def test_corruption_detected_and_healed(self):
        batch = uniform_arrays(32, 100, seed=8)
        plan = FaultPlan(13, corruption_rate=0.5)
        result = make_sorter(plan).sort(batch)
        if result.stats.corrupt_rows_detected:
            assert result.stats.retries + sum(result.stats.fallbacks.values()) > 0
        # Whatever was delivered is clean.
        delivered = np.ones(batch.shape[0], dtype=bool)
        delivered[result.quarantined] = False
        assert np.array_equal(
            result.batch[delivered], np.sort(batch[delivered], axis=1)
        )

    def test_persistent_corruption_quarantines_with_original_content(self):
        batch = uniform_arrays(4, 64, seed=9)
        plan = FaultPlan(5, corruption_rate=1.0)
        result = make_sorter(plan).sort(batch)
        assert not result.ok
        assert result.stats.quarantined_rows == result.quarantined.size
        for row in result.quarantined:
            assert result.quarantine_reasons[int(row)] == "validation-failed"
            # Quarantined rows surface their input verbatim, never
            # half-sorted or corrupted fabrications.
            assert np.array_equal(result.batch[row], batch[row])

    def test_nan_rows_quarantined_under_raise_policy(self):
        batch = uniform_arrays(6, 50, seed=10)
        batch[2, 7] = np.nan
        batch[5, 0] = np.nan
        result = make_sorter().sort(batch)
        assert result.quarantined.tolist() == [2, 5]
        assert result.quarantine_reasons[2] == "nan-input"
        clean = [0, 1, 3, 4]
        assert np.array_equal(
            result.batch[clean], np.sort(batch[clean], axis=1)
        )

    def test_nan_rows_sorted_under_sort_to_end(self):
        batch = uniform_arrays(6, 50, seed=10)
        batch[2, 7] = np.nan
        sorter = ResilientSorter(
            SortConfig(nan_policy="sort_to_end"), engine="vectorized", sleep=None
        )
        result = sorter.sort(batch)
        assert result.ok
        assert np.array_equal(
            result.batch, np.sort(batch, axis=1), equal_nan=True
        )


class TestDegeneracyResampling:
    def test_duplicate_heavy_data_triggers_resample(self):
        rng = np.random.default_rng(11)
        batch = np.full((8, 256), 5.0, dtype=np.float32)
        mask = rng.random(batch.shape) < 0.05
        batch[mask] = rng.uniform(0, 10, int(mask.sum())).astype(np.float32)
        result = make_sorter(max_resample_boosts=2).sort(batch)
        assert result.ok
        assert result.stats.resamples >= 1
        assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_uniform_data_does_not_resample(self):
        batch = uniform_arrays(8, 256, seed=12)
        result = make_sorter().sort(batch)
        assert result.stats.resamples == 0

    def test_boosts_capped(self):
        batch = np.full((4, 256), 1.0, dtype=np.float32)
        result = make_sorter(max_resample_boosts=2).sort(batch)
        assert result.stats.resamples <= 2
        assert result.ok


class TestDeterminismAndSessionStats:
    def test_same_seed_identical_stats_and_output(self):
        batch = uniform_arrays(24, 90, seed=13)
        runs = []
        for _ in range(2):
            plan = FaultPlan(17, kernel_fault_rate=0.4, corruption_rate=0.2)
            result = make_sorter(plan).sort(batch)
            runs.append(result)
        assert runs[0].stats.as_dict() == runs[1].stats.as_dict()
        assert np.array_equal(runs[0].batch, runs[1].batch)
        assert np.array_equal(runs[0].quarantined, runs[1].quarantined)

    def test_session_stats_accumulate(self):
        sorter = make_sorter()
        sorter.sort(uniform_arrays(4, 40, seed=14))
        sorter.sort(uniform_arrays(4, 40, seed=15))
        assert sorter.stats.attempts == 2

    def test_convenience_wrapper(self):
        batch = uniform_arrays(4, 40, seed=16)
        result = sort_arrays_resilient(batch, sleep=None)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
