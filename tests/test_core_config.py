"""Unit tests for repro.core.config."""

import numpy as np
import pytest

from repro.core.config import DEFAULT_CONFIG, SortConfig


class TestDefaults:
    def test_paper_bucket_size(self):
        # Section 5.1: "at least 20 elements per bucket"
        assert DEFAULT_CONFIG.bucket_size == 20

    def test_paper_sampling_rate(self):
        # Section 5.1: "10% regular sampling gave most evenly balanced buckets"
        assert DEFAULT_CONFIG.sampling_rate == pytest.approx(0.10)

    def test_paper_dtype_is_float32(self):
        # Section 7.2: "using float as the data type"
        assert DEFAULT_CONFIG.dtype == np.float32


class TestDerivedQuantities:
    def test_bucket_count_definition_2(self):
        # Definition 2: p = floor(n / 20)
        assert DEFAULT_CONFIG.num_buckets(1000) == 50
        assert DEFAULT_CONFIG.num_buckets(4000) == 200
        assert DEFAULT_CONFIG.num_buckets(2019) == 100

    def test_splitters_q_is_p_minus_1(self):
        # Definition 3: q = p - 1
        assert DEFAULT_CONFIG.num_splitters(1000) == 49

    def test_sample_size_10_percent(self):
        assert DEFAULT_CONFIG.sample_size(1000) == 100
        assert DEFAULT_CONFIG.sample_size(4000) == 400

    def test_sample_size_at_least_one(self):
        assert DEFAULT_CONFIG.sample_size(1) == 1
        assert DEFAULT_CONFIG.sample_size(5) == 1

    def test_tiny_arrays_get_single_bucket(self):
        for n in range(1, 20):
            assert DEFAULT_CONFIG.num_buckets(n) == 1

    def test_bucket_count_clamped_by_sample_size(self):
        # With an extreme config, p must never exceed the sample size,
        # otherwise there are not enough sample points to pick q splitters.
        cfg = SortConfig(bucket_size=1, sampling_rate=0.05)
        for n in (10, 50, 200):
            assert cfg.num_buckets(n) <= cfg.sample_size(n)

    def test_bucket_count_clamped_by_max_buckets(self):
        cfg = SortConfig(bucket_size=1, sampling_rate=1.0, max_buckets=64)
        assert cfg.num_buckets(10_000) == 64

    def test_sample_stride_covers_array(self):
        for n in (1, 7, 100, 1000, 4096):
            stride = DEFAULT_CONFIG.sample_stride(n)
            assert stride >= 1
            assert (DEFAULT_CONFIG.sample_size(n) - 1) * stride < n

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.num_buckets(0)


class TestValidation:
    def test_rejects_zero_bucket_size(self):
        with pytest.raises(ValueError):
            SortConfig(bucket_size=0)

    def test_rejects_bad_sampling_rate(self):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                SortConfig(sampling_rate=rate)

    def test_rejects_bad_max_buckets(self):
        with pytest.raises(ValueError):
            SortConfig(max_buckets=0)

    def test_full_sampling_allowed(self):
        cfg = SortConfig(sampling_rate=1.0)
        assert cfg.sample_size(100) == 100


class TestHelpers:
    def test_with_updates_functionally(self):
        cfg = DEFAULT_CONFIG.with_(bucket_size=40)
        assert cfg.bucket_size == 40
        assert DEFAULT_CONFIG.bucket_size == 20  # original untouched

    def test_metadata_bytes_small_relative_to_data(self):
        # The in-place story: metadata is O(n/20), not O(n).
        n = 1000
        data_bytes = n * 4
        meta = DEFAULT_CONFIG.metadata_bytes_per_array(n)
        assert meta < 0.15 * data_bytes

    def test_metadata_bytes_formula(self):
        n = 1000
        expected = 49 * 4 + 50 * 4
        assert DEFAULT_CONFIG.metadata_bytes_per_array(n) == expected

    def test_dtype_coerced_to_np_dtype(self):
        cfg = SortConfig(dtype="float64")
        assert cfg.dtype == np.dtype(np.float64)
