"""Tests for the calibrated performance model (Figs. 4-7 reproduction)."""

import pytest

from repro.analysis.perfmodel import (
    model_arraysort_breakdown,
    model_arraysort_ms,
    model_sta_breakdown,
    model_sta_ms,
    win_factor,
)
from repro.core.config import SortConfig
from repro.gpusim.device import K40C, C2050


class TestShapeClaims:
    """The paper's evaluation claims, asserted against the model."""

    @pytest.mark.parametrize("n", [1000, 2000, 3000, 4000])
    def test_arraysort_beats_sta_at_every_array_size(self, n):
        # Figs. 4-7: "GPU-ArraySort out performs the STA technique for
        # all the array sizes."
        gas = model_arraysort_ms(K40C, 200_000, n)
        sta = model_sta_ms(K40C, 200_000, n)
        assert sta > 1.5 * gas

    @pytest.mark.parametrize("n", [1000, 2000, 3000, 4000])
    def test_win_factor_in_paper_band(self, n):
        # Read off the figures, the gap is roughly 2.5-4x.
        assert 1.8 <= win_factor(K40C, 200_000, n) <= 5.0

    def test_linear_in_number_of_arrays(self):
        # Figs. 4-7 are near-straight lines in N.
        t1 = model_arraysort_ms(K40C, 50_000, 1000)
        t2 = model_arraysort_ms(K40C, 100_000, 1000)
        t4 = model_arraysort_ms(K40C, 200_000, 1000)
        assert t2 == pytest.approx(2 * t1, rel=0.05)
        assert t4 == pytest.approx(4 * t1, rel=0.05)

    def test_sta_linear_in_n_too(self):
        t1 = model_sta_ms(K40C, 50_000, 1000)
        t4 = model_sta_ms(K40C, 200_000, 1000)
        assert t4 == pytest.approx(4 * t1, rel=0.05)

    def test_grows_with_array_size(self):
        times = [model_arraysort_ms(K40C, 100_000, n) for n in (500, 1000, 2000, 4000)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_paper_headline_seconds_scale(self):
        # "we can sort up to 2 million arrays having 1000 elements each,
        # within few seconds" — the model must land in single-digit
        # tens of seconds for the full 2M capacity load.
        ms = model_arraysort_ms(K40C, 2_000_000, 1000)
        assert 5_000 < ms < 60_000

    def test_fig4_anchor_magnitude(self):
        # Calibration anchor: ~2 s at N = 2e5, n = 1000 (read off Fig. 4).
        ms = model_arraysort_ms(K40C, 200_000, 1000)
        assert 1_500 < ms < 3_500

    def test_sta_fig4_magnitude(self):
        # STA reaches ~8 s at N = 2e5 in Fig. 4.
        ms = model_sta_ms(K40C, 200_000, 1000)
        assert 6_000 < ms < 10_000


class TestModelInternals:
    def test_breakdown_sums_to_total(self):
        bd = model_arraysort_breakdown(K40C, 100_000, 1000)
        assert bd.total_ms == pytest.approx(
            model_arraysort_ms(K40C, 100_000, 1000)
        )

    def test_breakdown_has_three_phases(self):
        bd = model_arraysort_breakdown(K40C, 1000, 1000)
        assert set(bd.phases) == {"phase1", "phase2", "phase3"}

    def test_sta_breakdown_stages(self):
        bd = model_sta_breakdown(K40C, 1000, 1000)
        assert set(bd.phases) == {
            "tagging", "sort_by_tags_redundant", "sort_by_values",
            "sort_by_tags_restore",
        }

    def test_sta_lean_variant_cheaper(self):
        full = model_sta_ms(K40C, 100_000, 1000)
        lean = model_sta_ms(K40C, 100_000, 1000, include_redundant_presort=False)
        assert lean < full
        assert lean == pytest.approx(full * 2 / 3, rel=0.1)

    def test_zero_arrays_zero_time(self):
        assert model_arraysort_ms(K40C, 0, 1000) == 0.0
        assert model_sta_ms(K40C, 0, 1000) == 0.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            model_arraysort_ms(K40C, -1, 1000)
        with pytest.raises(ValueError):
            model_sta_ms(K40C, 10, 0)

    def test_weaker_device_slower(self):
        k40 = model_arraysort_ms(K40C, 100_000, 1000)
        fermi = model_arraysort_ms(C2050, 100_000, 1000)
        assert fermi > k40

    def test_bucket_size_tradeoff_exists(self):
        """Ablation sanity: both very small and very large buckets cost
        more than the paper's 20 (phase-3 quadratic vs occupancy/threads)."""
        times = {
            b: model_arraysort_ms(
                K40C, 100_000, 1000, SortConfig(bucket_size=b)
            )
            for b in (2, 20, 500)
        }
        assert times[20] < times[500]
        # tiny buckets explode thread counts; must not be cheapest either
        assert times[20] <= times[2] * 1.5

    def test_calibration_scales_linearly(self):
        base = model_arraysort_ms(K40C, 1000, 1000, calibration=1.0)
        double = model_arraysort_ms(K40C, 1000, 1000, calibration=2.0)
        assert double == pytest.approx(2 * base)
