"""Unit tests for repro.gpusim.coalescing."""

import pytest

from repro.gpusim.coalescing import classify_pattern, coalesce_transactions


class TestCoalesceTransactions:
    def test_consecutive_4byte_lanes_one_transaction(self):
        # 32 lanes x 4 bytes = 128 bytes = one transaction (Section 3.1)
        addrs = [i * 4 for i in range(32)]
        assert coalesce_transactions(addrs) == 1

    def test_fully_scattered_one_per_lane(self):
        addrs = [i * 128 for i in range(32)]
        assert coalesce_transactions(addrs) == 32

    def test_stride_two_doubles_transactions(self):
        addrs = [i * 8 for i in range(32)]  # 256-byte span
        assert coalesce_transactions(addrs) == 2

    def test_same_address_broadcast_is_one(self):
        assert coalesce_transactions([64] * 32) == 1

    def test_empty_access_is_zero(self):
        assert coalesce_transactions([]) == 0

    def test_single_lane(self):
        assert coalesce_transactions([1000]) == 1

    def test_unaligned_span_crossing_boundary(self):
        # 4-byte accesses straddling a 128-byte line boundary
        addrs = [124, 128]
        assert coalesce_transactions(addrs) == 2

    def test_custom_transaction_size(self):
        addrs = [0, 32, 64]
        assert coalesce_transactions(addrs, transaction_bytes=32) == 3
        assert coalesce_transactions(addrs, transaction_bytes=128) == 1

    def test_rejects_nonpositive_transaction_size(self):
        with pytest.raises(ValueError):
            coalesce_transactions([0], transaction_bytes=0)

    def test_order_independent(self):
        addrs = [12, 4, 8, 0]
        assert coalesce_transactions(addrs) == coalesce_transactions(sorted(addrs))


class TestClassifyPattern:
    def test_unit_stride_is_coalesced(self):
        assert classify_pattern([0, 4, 8, 12]) == "coalesced"

    def test_constant_stride_is_strided(self):
        assert classify_pattern([0, 8, 16, 24]) == "strided"

    def test_random_is_scattered(self):
        assert classify_pattern([0, 52, 8, 1000]) == "scattered"

    def test_single_access_is_coalesced(self):
        assert classify_pattern([40]) == "coalesced"

    def test_empty_is_coalesced(self):
        assert classify_pattern([]) == "coalesced"
