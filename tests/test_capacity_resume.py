"""Kill-resume property test: SIGKILL a capacity run mid-flight, resume.

A child process runs ``CapacitySorter.run`` against a file-backed input
with a paced progress callback; the parent polls the spill manifest and
SIGKILLs the child once at least two chunks are durably committed.  The
resumed run must adopt every committed chunk (zero re-emission), finish
the rest, and produce output byte-identical to a one-shot ``np.sort``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.outofcore.capacity import CapacitySorter
from repro.outofcore.spill import BatchFile, SpillStore, write_batch_file

pytestmark = pytest.mark.capacity

ROWS = 600
COLS = 32
CHUNK_ROWS = 25  # forced via max_chunk_rows => 24 chunks
DELAY_S = 0.08

CHILD_SCRIPT = """\
import sys, time
import numpy as np
from repro.outofcore.capacity import CapacitySorter
from repro.outofcore.spill import BatchFile

input_path, spill_dir = sys.argv[1], sys.argv[2]
source = BatchFile(path=input_path, rows={rows}, row_len={cols},
                   dtype=np.float64)
sorter = CapacitySorter(
    "1M", max_chunk_rows={chunk_rows},
    progress=lambda info: time.sleep({delay}),
)
sorter.run(source, spill_dir=spill_dir)
print("CHILD_DONE")
"""


def _block(block_index, start, take):
    rng = np.random.default_rng([97, block_index])
    return rng.random((take, COLS))


def _manifest_chunks(spill_dir: Path):
    manifest = spill_dir / "manifest.json"
    if not manifest.exists():
        return []
    try:
        return json.loads(manifest.read_text()).get("chunks", [])
    except ValueError:
        return []  # mid-rewrite; atomic replace makes this transient


def test_sigkill_mid_run_resumes_without_reemission(tmp_path):
    input_path = tmp_path / "input.bin"
    spill_dir = tmp_path / "spill"
    source = write_batch_file(input_path, _block, rows=ROWS, row_len=COLS,
                              dtype=np.float64)

    script = tmp_path / "kill_child.py"
    script.write_text(CHILD_SCRIPT.format(
        rows=ROWS, cols=COLS, chunk_rows=CHUNK_ROWS, delay=DELAY_S
    ))
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")

    child = subprocess.Popen(
        [sys.executable, str(script), str(input_path), str(spill_dir)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    num_chunks = -(-ROWS // CHUNK_ROWS)
    deadline = time.monotonic() + 60
    try:
        while True:
            committed = _manifest_chunks(spill_dir)
            if 2 <= len(committed) < num_chunks:
                break
            if child.poll() is not None:
                out, err = child.communicate()
                pytest.fail(
                    "child finished before it could be killed:\n"
                    + err.decode()
                )
            assert time.monotonic() < deadline, "child made no progress"
            time.sleep(0.01)
        child.kill()  # SIGKILL: no atexit, no cleanup
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    pre_kill = _manifest_chunks(spill_dir)
    pre_indices = {c["index"] for c in pre_kill}
    assert len(pre_indices) >= 2

    # Resume in this process: adopt the manifest, finish the run.
    resumed = CapacitySorter("1M", max_chunk_rows=CHUNK_ROWS).run(
        BatchFile(path=input_path, rows=ROWS, row_len=COLS,
                  dtype=np.float64),
        spill_dir=spill_dir, resume=True,
    )
    stats = resumed.stats
    assert stats.chunks_resumed == len(pre_indices)
    assert stats.chunks_recommitted == 0  # zero re-emitted batches
    assert stats.chunks_resumed + stats.chunks_committed >= num_chunks
    assert resumed.store.complete

    # Every new chunk index is strictly beyond the pre-kill frontier.
    all_indices = {r.index for r in resumed.store.committed}
    new_indices = all_indices - pre_indices
    assert all(i > max(pre_indices) for i in new_indices)
    assert all_indices == set(range(len(all_indices)))  # contiguous

    # Byte-identity against the one-shot reference.
    expected = np.sort(source.read(0, ROWS), axis=1)
    np.testing.assert_array_equal(resumed.gather(), expected)


def test_restart_without_resume_flag_is_refused(tmp_path):
    batch = np.random.default_rng(5).random((40, 8))
    spill_dir = tmp_path / "spill"
    sorter = CapacitySorter("1M", max_chunk_rows=10)

    class Interrupt(RuntimeError):
        pass

    def trip(info):
        if info["index"] == 1:
            raise Interrupt()

    with pytest.raises(Interrupt):
        CapacitySorter("1M", max_chunk_rows=10, progress=trip).run(
            batch, spill_dir=spill_dir
        )
    # The dead run's state must not be silently overwritten.
    from repro.outofcore.spill import SpillDirectoryError

    with pytest.raises(SpillDirectoryError):
        sorter.run(batch, spill_dir=spill_dir)
    # reclaim=True starts over cleanly.
    result = sorter.run(batch, spill_dir=spill_dir, reclaim=True)
    assert result.stats.chunks_resumed == 0
    np.testing.assert_array_equal(result.gather(), np.sort(batch, axis=1))
