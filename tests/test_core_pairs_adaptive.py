"""Tests for key-value pair sorting and adaptive sampling."""

import numpy as np
import pytest

from repro.core import SortConfig, sort_pairs
from repro.core.adaptive import (
    AdaptiveSampler,
    choose_strategy,
    probe_skew,
    select_splitters_adaptive,
)
from repro.core.bucketing import bucketize
from repro.core.splitters import select_splitters
from repro.workloads import (
    clustered_arrays,
    duplicate_heavy_arrays,
    generate_spectra,
    uniform_arrays,
)


class TestSortPairs:
    def test_sorts_keys_and_carries_values(self, rng):
        keys = rng.uniform(0, 1e6, (30, 200)).astype(np.float32)
        vals = rng.uniform(0, 1, (30, 200)).astype(np.float32)
        res = sort_pairs(keys, vals, verify=True)
        order = np.argsort(keys, axis=1, kind="stable")
        assert np.array_equal(res.keys, np.take_along_axis(keys, order, axis=1))
        assert np.array_equal(res.values, np.take_along_axis(vals, order, axis=1))

    def test_stable_on_duplicate_keys(self):
        keys = np.array([[1.0, 0.0, 1.0, 0.0]], dtype=np.float32)
        vals = np.array([[10.0, 20.0, 11.0, 21.0]], dtype=np.float32)
        res = sort_pairs(keys, vals, stable=True)
        assert res.values[0].tolist() == [20.0, 21.0, 10.0, 11.0]

    def test_unstable_variant_orders_values_within_ties(self):
        keys = np.array([[5.0, 5.0, 5.0]], dtype=np.float32)
        vals = np.array([[3.0, 1.0, 2.0]], dtype=np.float32)
        res = sort_pairs(keys, vals, stable=False)
        assert res.values[0].tolist() == [1.0, 2.0, 3.0]

    def test_mass_spec_pairs_scenario(self):
        spectra = generate_spectra(20, 500, seed=4)
        res = sort_pairs(spectra.mz, spectra.intensity, verify=True)
        # m/z ordered, and the (mz, intensity) pairing preserved.
        assert np.all(np.diff(res.keys, axis=1) >= 0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            sort_pairs(rng.random((2, 5)), rng.random((2, 6)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            sort_pairs(np.arange(4.0), np.arange(4.0))

    def test_nan_keys_rejected(self):
        keys = np.array([[1.0, np.nan]], dtype=np.float32)
        with pytest.raises(ValueError):
            sort_pairs(keys, keys.copy())

    def test_empty_batch(self):
        keys = np.empty((0, 5), dtype=np.float32)
        res = sort_pairs(keys, keys.copy())
        assert res.keys.shape == (0, 5)

    def test_exposes_phase_artifacts(self, rng):
        keys = rng.uniform(0, 1, (5, 100)).astype(np.float32)
        res = sort_pairs(keys, keys.copy())
        assert res.splitters is not None
        assert res.buckets.sizes.sum() == 500

    def test_custom_config(self, rng):
        keys = rng.uniform(0, 1, (10, 150)).astype(np.float32)
        vals = rng.uniform(0, 1, (10, 150)).astype(np.float32)
        res = sort_pairs(keys, vals, config=SortConfig(bucket_size=5),
                         verify=True)
        assert np.all(np.diff(res.keys, axis=1) >= 0)


class TestSkewProbe:
    def test_uniform_not_flagged(self):
        probe = probe_skew(uniform_arrays(50, 500, seed=1))
        assert not probe.is_duplicate_heavy
        assert probe.duplicate_mass < 0.2

    def test_duplicates_flagged(self):
        probe = probe_skew(duplicate_heavy_arrays(50, 500, distinct_values=4,
                                                  seed=1))
        assert probe.is_duplicate_heavy

    def test_clustered_has_higher_dispersion_than_uniform(self):
        uni = probe_skew(uniform_arrays(50, 500, seed=1))
        clu = probe_skew(clustered_arrays(50, 500, seed=1))
        assert clu.gap_dispersion > uni.gap_dispersion

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            probe_skew(np.empty((0, 0)))

    def test_strategy_mapping(self):
        from repro.core.adaptive import SkewProbe

        assert choose_strategy(SkewProbe(0.9, 1.0)) == "regular"
        assert choose_strategy(SkewProbe(0.0, 5.0)) == "oversample"
        assert choose_strategy(SkewProbe(0.0, 1.0)) == "regular"


class TestAdaptiveSplitters:
    @pytest.mark.parametrize("strategy", ["regular", "random", "oversample"])
    def test_all_strategies_yield_valid_phase1(self, strategy, rng):
        batch = rng.uniform(0, 1e6, (20, 300)).astype(np.float32)
        res = select_splitters_adaptive(batch, strategy=strategy)
        assert np.all(np.diff(res.splitters.astype(np.float64), axis=1) >= 0)
        assert res.splitters.shape == (20, res.num_buckets - 1)
        # Pipeline completes correctly regardless of strategy.
        out = bucketize(batch.copy(), res.splitters)
        assert np.all(out.sizes.sum(axis=1) == 300)

    def test_regular_matches_published_phase1(self, rng):
        batch = rng.uniform(0, 1, (10, 200)).astype(np.float32)
        adaptive = select_splitters_adaptive(batch, strategy="regular")
        published = select_splitters(batch)
        assert np.array_equal(adaptive.splitters, published.splitters)

    def test_oversample_balances_clustered_data_better(self):
        """The point of Section 9's multi-sampling plan: tighter quantile
        estimates on clustered data -> tighter bucket-size spread."""
        from repro.analysis.metrics import bucket_balance

        batch = clustered_arrays(60, 1000, num_clusters=3, seed=5)
        stds = {}
        for strategy in ("regular", "oversample"):
            spl = select_splitters_adaptive(batch, strategy=strategy, seed=1)
            res = bucketize(batch.copy(), spl.splitters)
            stds[strategy] = bucket_balance(res.sizes).std
        assert stds["oversample"] <= stds["regular"] * 1.05

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(ValueError):
            select_splitters_adaptive(rng.random((2, 30)), strategy="psychic")

    def test_sampler_auto_resolution(self):
        dup = duplicate_heavy_arrays(20, 300, distinct_values=3, seed=2)
        clu = clustered_arrays(20, 300, cluster_std=10.0, seed=2)
        sampler = AdaptiveSampler("auto")
        assert sampler.resolve_strategy(dup) == "regular"
        # clustered data with tiny clusters must trip the skew probe
        assert sampler.resolve_strategy(clu) in ("oversample", "regular")

    def test_sampler_explicit_strategy(self, rng):
        batch = rng.uniform(0, 1, (5, 100)).astype(np.float32)
        res = AdaptiveSampler("random", seed=3).select(batch)
        assert res.splitters.shape[0] == 5

    def test_sampler_rejects_unknown(self):
        with pytest.raises(ValueError):
            AdaptiveSampler("bogus")

    def test_sampler_plugs_into_gpu_arraysort(self, rng):
        from repro.core import GpuArraySort

        batch = clustered_arrays(20, 300, seed=7)
        sorter = GpuArraySort(sampler=AdaptiveSampler("auto"), verify=True)
        res = sorter.sort(batch)
        assert np.array_equal(res.batch, np.sort(batch, axis=1))
