"""Tests for workload generators, spectra, and batch containers."""

import numpy as np
import pytest

from repro.workloads import (
    ArrayBatch,
    PAPER_VALUE_MAX,
    RaggedBatch,
    adversarial_constant_arrays,
    clustered_arrays,
    duplicate_heavy_arrays,
    generate_spectra,
    nearly_sorted_arrays,
    normal_arrays,
    reverse_sorted_arrays,
    sorted_arrays,
    uniform_arrays,
)


class TestUniformArrays:
    def test_shape_and_dtype(self):
        batch = uniform_arrays(10, 100, seed=0)
        assert batch.shape == (10, 100)
        assert batch.dtype == np.float32

    def test_paper_value_range(self):
        # Section 7.2: uniform between 0 and 2^31 - 1.
        batch = uniform_arrays(100, 1000, seed=0)
        assert batch.min() >= 0
        assert batch.max() <= PAPER_VALUE_MAX

    def test_deterministic_with_seed(self):
        a = uniform_arrays(5, 10, seed=7)
        b = uniform_arrays(5, 10, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = uniform_arrays(5, 10, seed=7)
        b = uniform_arrays(5, 10, seed=8)
        assert not np.array_equal(a, b)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            uniform_arrays(-1, 10)
        with pytest.raises(ValueError):
            uniform_arrays(10, 0)

    def test_roughly_uniform(self):
        batch = uniform_arrays(10, 10_000, seed=0)
        mean = batch.mean() / PAPER_VALUE_MAX
        assert 0.45 < mean < 0.55


class TestOtherDistributions:
    def test_sorted_rows_are_sorted(self):
        batch = sorted_arrays(10, 100, seed=1)
        assert np.all(np.diff(batch, axis=1) >= 0)

    def test_reverse_rows_are_descending(self):
        batch = reverse_sorted_arrays(10, 100, seed=1)
        assert np.all(np.diff(batch, axis=1) <= 0)

    def test_nearly_sorted_mostly_ordered(self):
        batch = nearly_sorted_arrays(10, 200, swap_fraction=0.05, seed=1)
        frac_ordered = np.mean(np.diff(batch, axis=1) >= 0)
        assert frac_ordered > 0.85

    def test_nearly_sorted_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            nearly_sorted_arrays(2, 10, swap_fraction=1.5)

    def test_duplicate_heavy_few_distinct(self):
        batch = duplicate_heavy_arrays(5, 500, distinct_values=4, seed=1)
        assert len(np.unique(batch)) <= 4

    def test_duplicate_heavy_rejects_zero_palette(self):
        with pytest.raises(ValueError):
            duplicate_heavy_arrays(5, 10, distinct_values=0)

    def test_clustered_within_range(self):
        batch = clustered_arrays(5, 500, seed=1)
        assert batch.min() >= 0
        assert batch.max() <= PAPER_VALUE_MAX

    def test_clustered_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            clustered_arrays(5, 10, num_clusters=0)

    def test_constant_arrays(self):
        batch = adversarial_constant_arrays(3, 10, value=1.5)
        assert np.all(batch == 1.5)

    def test_normal_shape(self):
        assert normal_arrays(4, 8, seed=0).shape == (4, 8)


class TestSpectra:
    def test_shapes(self):
        batch = generate_spectra(8, 500, seed=1)
        assert batch.mz.shape == (8, 500)
        assert batch.intensity.shape == (8, 500)
        assert batch.num_spectra == 8
        assert batch.peaks_per_spectrum == 500

    def test_mz_within_acquisition_window(self):
        batch = generate_spectra(5, 300, seed=1)
        assert batch.mz.min() >= 200.0
        assert batch.mz.max() <= 2000.0

    def test_intensities_positive(self):
        batch = generate_spectra(5, 300, seed=1)
        assert batch.intensity.min() >= 0

    def test_not_presorted(self):
        # Acquisition interleave: rows must not arrive sorted.
        batch = generate_spectra(5, 300, seed=1)
        assert not np.all(np.diff(batch.mz, axis=1) >= 0)
        assert not np.all(np.diff(batch.intensity, axis=1) >= 0)

    def test_view_selector(self):
        batch = generate_spectra(2, 50, seed=1)
        assert batch.view("mz") is batch.mz
        assert batch.view("intensity") is batch.intensity
        with pytest.raises(ValueError):
            batch.view("charge")

    def test_peak_cap_enforced(self):
        # Section 4: at most ~4000 peaks per spectrum.
        with pytest.raises(ValueError):
            generate_spectra(1, 4001)

    def test_deterministic(self):
        a = generate_spectra(3, 100, seed=5)
        b = generate_spectra(3, 100, seed=5)
        assert np.array_equal(a.mz, b.mz)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            generate_spectra(1, 100, true_peak_fraction=0.6, impurity_fraction=0.5)
        with pytest.raises(ValueError):
            generate_spectra(1, 100, true_peak_fraction=-0.1)

    def test_true_peaks_brighter_than_noise(self):
        batch = generate_spectra(20, 1000, seed=2)
        # The brightest 1% of peaks should far outshine the median (the
        # lognormal fragment peaks vs the exponential noise floor).
        bright = np.quantile(batch.intensity, 0.99)
        assert bright > 20 * np.median(batch.intensity)


class TestArrayBatch:
    def test_wraps_and_reports(self):
        data = uniform_arrays(4, 9, seed=0)
        ab = ArrayBatch(data, description="test", seed=0)
        assert ab.num_arrays == 4
        assert ab.array_size == 9
        assert ab.nbytes == data.nbytes
        assert len(ab) == 4

    def test_iteration(self):
        ab = ArrayBatch(uniform_arrays(3, 5, seed=0))
        rows = list(ab)
        assert len(rows) == 3

    def test_copy_is_independent(self):
        ab = ArrayBatch(uniform_arrays(2, 4, seed=0))
        cp = ab.copy()
        cp.data[0, 0] = -1
        assert ab.data[0, 0] != -1

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ArrayBatch(np.arange(5.0))


class TestRaggedBatch:
    def test_from_arrays_roundtrip(self, rng):
        arrays = [rng.uniform(0, 1, k).astype(np.float32) for k in (3, 0, 7)]
        rb = RaggedBatch.from_arrays(arrays)
        assert rb.num_arrays == 3
        assert rb.lengths().tolist() == [3, 0, 7]
        for orig, back in zip(arrays, rb.to_list()):
            assert np.array_equal(orig, back)

    def test_padded_pads_with_inf(self, rng):
        arrays = [np.array([3.0, 1.0]), np.array([5.0])]
        rb = RaggedBatch.from_arrays(arrays)
        dense = rb.padded()
        assert dense.shape == (2, 2)
        assert dense[1, 1] == np.inf

    def test_pad_sort_unpad_pipeline(self, rng):
        from repro.core import sort_arrays

        arrays = [rng.uniform(0, 100, k).astype(np.float32) for k in (30, 25, 40)]
        rb = RaggedBatch.from_arrays(arrays)
        dense = rb.padded()
        sorted_dense = sort_arrays(dense)
        out = rb.unpad(sorted_dense)
        for orig, got in zip(arrays, out.to_list()):
            assert np.array_equal(np.sort(orig), got)

    def test_integer_padding_uses_dtype_max(self):
        rb = RaggedBatch.from_arrays([np.array([3, 1], dtype=np.int32),
                                      np.array([5], dtype=np.int32)])
        dense = rb.padded()
        assert dense[1, 1] == np.iinfo(np.int32).max

    def test_empty_batch(self):
        rb = RaggedBatch.from_arrays([])
        assert rb.num_arrays == 0
        assert rb.padded().shape == (0, 0)

    def test_getitem(self):
        rb = RaggedBatch.from_arrays([np.array([1.0]), np.array([2.0, 3.0])])
        assert rb[1].tolist() == [2.0, 3.0]

    def test_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            RaggedBatch(np.arange(4.0), np.array([0, 2]))
        with pytest.raises(ValueError):
            RaggedBatch(np.arange(4.0), np.array([0, 3, 2, 4]))
