"""Tests for repro.core.radix: sortable-key bijections and the batched
radix row sort (direct and LSD strategies), including the engine's
byte-level agreement with ``np.sort`` and the fused pipeline.

The bijection grids deliberately cover every IEEE-754 corner the
order-preserving transform has to get right: both zeros, both
infinities, subnormals, NaNs with distinct payloads, and the extreme
finite values of each dtype.
"""

import numpy as np
import pytest

from repro.core import (
    GpuArraySort,
    RADIX_STRATEGIES,
    RadixInfo,
    keys_to_values,
    radix_sort_rows,
    sortable_keys,
)
from repro.core.radix import supports_dtype
from repro.core.workspace import ScratchArena

FLOAT_DTYPES = [np.float16, np.float32, np.float64]
INT_DTYPES = [np.int8, np.int16, np.int32, np.int64]
UINT_DTYPES = [np.uint8, np.uint16, np.uint32, np.uint64]
ALL_DTYPES = FLOAT_DTYPES + INT_DTYPES + UINT_DTYPES + [np.bool_]


def special_floats(dtype):
    """Every IEEE-754 corner for ``dtype``, incl. two NaN payloads."""
    info = np.finfo(dtype)
    base = np.array(
        [
            0.0, -0.0, np.inf, -np.inf, np.nan,
            info.max, info.min, info.tiny, -info.tiny,
            info.smallest_subnormal, -info.smallest_subnormal,
            1.0, -1.0, info.eps,
        ],
        dtype=dtype,
    )
    # A second NaN payload: set the lowest mantissa bit of the quiet NaN.
    utype = np.dtype(f"u{np.dtype(dtype).itemsize}")
    payload = base[4:5].view(utype) | np.asarray(1, utype)
    return np.concatenate([base, payload.view(dtype)])


def int_extremes(dtype):
    info = np.iinfo(dtype)
    if np.dtype(dtype).kind == "i":
        vals = [info.min, -1, 0, 1, info.max]
    else:
        vals = [0, 1, info.max // 2, info.max - 1, info.max]
    return np.array(vals, dtype=dtype)


class TestSupportsDtype:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_supported(self, dtype):
        assert supports_dtype(dtype)

    @pytest.mark.parametrize(
        "dtype", ["datetime64[ns]", "complex64", "U4", object]
    )
    def test_unsupported(self, dtype):
        assert not supports_dtype(np.dtype(dtype))


class TestBijection:
    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_float_round_trip_is_byte_exact(self, dtype):
        values = special_floats(dtype)
        back = keys_to_values(sortable_keys(values), dtype)
        # tobytes comparison: NaN payloads and -0.0 must survive exactly.
        assert back.tobytes() == values.tobytes()

    @pytest.mark.parametrize("dtype", INT_DTYPES + UINT_DTYPES)
    def test_int_round_trip_is_byte_exact(self, dtype):
        values = int_extremes(dtype)
        back = keys_to_values(sortable_keys(values), dtype)
        assert back.tobytes() == values.tobytes()

    def test_bool_round_trip(self):
        values = np.array([True, False, True, False])
        back = keys_to_values(sortable_keys(values), np.bool_)
        assert back.tobytes() == values.tobytes()

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_float_key_order_matches_value_order(self, dtype):
        # Drop NaNs: they have no defined comparison order.
        values = special_floats(dtype)
        values = values[~np.isnan(values)]
        keys = sortable_keys(values)
        order_v = np.argsort(values, kind="stable")
        assert np.array_equal(values[np.argsort(keys, kind="stable")],
                              values[order_v])
        # Strictly ordered values give strictly ordered keys.
        distinct = np.unique(values)
        assert np.all(np.diff(sortable_keys(distinct).astype(object)) > 0)

    @pytest.mark.parametrize("dtype", INT_DTYPES + UINT_DTYPES)
    def test_int_key_order_matches_value_order(self, dtype):
        values = int_extremes(dtype)
        keys = sortable_keys(values)
        assert np.all(np.diff(keys[np.argsort(values)].astype(object)) > 0)

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_negative_zero_key_below_positive_zero(self, dtype):
        keys = sortable_keys(np.array([-0.0, 0.0], dtype=dtype))
        assert keys[0] < keys[1]  # total order refines IEEE equality

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_nan_keys_exceed_every_finite_and_inf_key(self, dtype):
        values = special_floats(dtype)
        keys = sortable_keys(values)
        nan_keys = keys[np.isnan(values)]
        other = keys[~np.isnan(values)]
        assert np.all(nan_keys.min() > other.max())

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(TypeError):
            sortable_keys(np.array(["a"], dtype="U1"))
        with pytest.raises(TypeError):
            keys_to_values(np.zeros(3, np.uint64), np.complex128)


class TestRadixSortRows:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("strategy", ["direct", "lsd"])
    def test_matches_numpy_sort_on_random_batches(self, rng, dtype, strategy):
        dtype = np.dtype(dtype)
        if dtype.kind == "f":
            batch = rng.standard_normal((17, 33)).astype(dtype) * 100
        elif dtype == np.bool_:
            batch = rng.integers(0, 2, (17, 33)).astype(dtype)
        else:
            info = np.iinfo(dtype)
            batch = rng.integers(
                info.min, info.max, (17, 33), dtype=dtype, endpoint=True
            )
        expected = np.sort(batch, axis=1)
        work = batch.copy()
        info = radix_sort_rows(work, strategy=strategy)
        assert work.tobytes() == expected.tobytes()
        assert info.strategy == strategy
        if strategy == "lsd":
            assert info.passes == -(-dtype.itemsize * 8 // 8)
            assert info.digit_bits == 8

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    @pytest.mark.parametrize("strategy", ["direct", "lsd"])
    def test_specials_sort_to_total_order(self, dtype, strategy):
        # One row of every special value; avoid mixing -0.0/0.0 with
        # np.sort byte-comparison (np.sort is unstable across equal
        # keys), and assert the documented total order directly.
        row = special_floats(dtype)[None, :].copy()
        radix_sort_rows(row, strategy=strategy)
        out = row[0]
        nan_count = int(np.isnan(special_floats(dtype)).sum())
        assert np.all(np.isnan(out[-nan_count:]))  # NaNs at the end
        finite_and_inf = out[:-nan_count]
        assert np.all(np.diff(finite_and_inf) >= 0)  # sorted
        assert finite_and_inf[0] == -np.inf
        assert finite_and_inf[-1] == np.inf

    @pytest.mark.parametrize("strategy", ["direct", "lsd"])
    def test_nan_payload_handling_matches_numpy(self, rng, strategy):
        # np.sort canonicalizes every NaN payload to the quiet NaN; the
        # radix engine does the same, so batches with exotic payloads
        # still agree byte-for-byte.
        batch = rng.standard_normal((8, 64)).astype(np.float32)
        payload = np.uint32(0x7F800001 + 7)  # signalling-range payload
        batch[rng.integers(0, 8, 20), rng.integers(0, 64, 20)] = (
            payload.view(np.float32)
        )
        expected = np.sort(batch, axis=1)
        work = batch.copy()
        radix_sort_rows(work, strategy=strategy)
        assert work.tobytes() == expected.tobytes()

    def test_nan_policy_raise_rejects_nan(self, rng):
        batch = rng.standard_normal((4, 16)).astype(np.float32)
        batch[2, 3] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            radix_sort_rows(batch, nan_policy="raise")
        clean = rng.standard_normal((4, 16)).astype(np.float32)
        radix_sort_rows(clean, nan_policy="raise")  # NaN-free: accepted
        assert np.all(np.diff(clean, axis=1) >= 0)

    @pytest.mark.parametrize("digit_bits", [1, 4, 8, 11, 16])
    def test_lsd_digit_bits_variants_agree(self, rng, digit_bits):
        batch = rng.integers(-(2**31), 2**31 - 1, (9, 40), dtype=np.int32)
        expected = np.sort(batch, axis=1)
        work = batch.copy()
        info = radix_sort_rows(work, strategy="lsd", digit_bits=digit_bits)
        assert work.tobytes() == expected.tobytes()
        assert info.passes == -(-32 // digit_bits)

    def test_validation_errors(self, rng):
        batch = rng.standard_normal((4, 8)).astype(np.float32)
        with pytest.raises(ValueError, match="strategy"):
            radix_sort_rows(batch.copy(), strategy="msd")
        with pytest.raises(ValueError, match="nan_policy"):
            radix_sort_rows(batch.copy(), nan_policy="drop")
        with pytest.raises(ValueError, match="digit_bits"):
            radix_sort_rows(batch.copy(), strategy="lsd", digit_bits=0)
        with pytest.raises(ValueError, match="digit_bits"):
            radix_sort_rows(batch.copy(), strategy="lsd", digit_bits=17)
        with pytest.raises(ValueError, match="shape"):
            radix_sort_rows(np.zeros(8, np.float32))
        with pytest.raises(TypeError):
            radix_sort_rows(np.zeros((2, 2), np.complex64))
        assert RADIX_STRATEGIES == ("auto", "direct", "lsd")

    def test_degenerate_shapes(self):
        for shape in [(0, 8), (4, 0), (4, 1)]:
            work = np.ones(shape, np.float32)
            info = radix_sort_rows(work, strategy="lsd")
            assert isinstance(info, RadixInfo)
            assert info.passes == 0  # nothing to do

    def test_auto_resolves_to_direct(self, rng):
        work = rng.standard_normal((4, 16)).astype(np.float32)
        info = radix_sort_rows(work, strategy="auto")
        assert info.strategy == "direct"

    def test_arena_reuse_allocates_once(self, rng):
        arena = ScratchArena()
        for _ in range(5):
            work = rng.integers(0, 1000, (16, 64), dtype=np.int64)
            expected = np.sort(work, axis=1)
            radix_sort_rows(work, strategy="lsd", workspace=arena)
            assert work.tobytes() == expected.tobytes()
        stats = arena.stats
        assert stats.allocations > 0
        assert stats.hits >= stats.allocations * 3  # steady state reuses


class TestEngineCrossPin:
    """The radix engine, driven end-to-end through GpuArraySort, must be
    byte-identical to the fused serial engine on every supported dtype,
    with and without NaNs."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32,
                                       np.int64, np.uint16])
    def test_radix_engine_matches_fused(self, rng, dtype):
        dtype = np.dtype(dtype)
        if dtype.kind == "f":
            batch = rng.standard_normal((50, 70)).astype(dtype)
        else:
            info = np.iinfo(dtype)
            batch = rng.integers(info.min, info.max, (50, 70), dtype=dtype)
        fused = GpuArraySort(planner="fused").sort(batch).batch
        radix = GpuArraySort(planner="radix").sort(batch).batch
        assert radix.tobytes() == fused.tobytes()

    def test_radix_engine_matches_fused_with_nans(self, rng):
        from repro.core import SortConfig

        config = SortConfig(nan_policy="sort_to_end")
        batch = rng.standard_normal((30, 40)).astype(np.float32)
        batch[rng.integers(0, 30, 25), rng.integers(0, 40, 25)] = np.nan
        fused = GpuArraySort(planner="fused", config=config).sort(batch).batch
        result = GpuArraySort(planner="radix", config=config).sort(batch)
        assert result.batch.tobytes() == fused.tobytes()
        assert "radix_rowsort" in result.phase_seconds

    def test_radix_engine_nan_policy_raise(self, rng):
        batch = rng.standard_normal((5, 12)).astype(np.float32)
        batch[1, 2] = np.nan
        from repro.core import SortConfig

        sorter = GpuArraySort(
            planner="radix", config=SortConfig(nan_policy="raise")
        )
        with pytest.raises(ValueError):
            sorter.sort(batch)
