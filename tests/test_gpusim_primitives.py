"""Tests for the device-kernel primitive library."""

import numpy as np
import pytest

from repro.gpusim import GpuDevice
from repro.gpusim.primitives import run_copy, run_histogram, run_reduce, run_scan


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestReduce:
    def test_matches_numpy_sum(self, gpu, rng):
        data = rng.uniform(-10, 10, 500)
        total, _ = run_reduce(gpu, data)
        assert total == pytest.approx(data.sum())

    def test_single_element(self, gpu):
        total, _ = run_reduce(gpu, np.array([42.0]))
        assert total == 42.0

    def test_non_multiple_of_block(self, gpu, rng):
        data = rng.uniform(0, 1, 173)
        total, _ = run_reduce(gpu, data)
        assert total == pytest.approx(data.sum())

    def test_empty_rejected(self, gpu):
        with pytest.raises(ValueError):
            run_reduce(gpu, np.empty(0))

    def test_no_leaks(self, gpu, rng):
        run_reduce(gpu, rng.uniform(0, 1, 100))
        assert gpu.memory.live_allocations() == 0

    def test_tree_uses_shared_memory(self, gpu, rng):
        _, report = run_reduce(gpu, rng.uniform(0, 1, 256))
        assert report.total_shared_accesses > 0


class TestScan:
    def test_inclusive_matches_cumsum(self, gpu, rng):
        data = rng.uniform(0, 1, 64)
        out, _ = run_scan(gpu, data)
        assert np.allclose(out, np.cumsum(data))

    def test_exclusive(self, gpu, rng):
        data = rng.uniform(0, 1, 64)
        out, _ = run_scan(gpu, data, exclusive=True)
        expected = np.concatenate([[0.0], np.cumsum(data)[:-1]])
        assert np.allclose(out, expected)

    def test_non_pow2_length(self, gpu, rng):
        data = rng.uniform(0, 1, 45)
        out, _ = run_scan(gpu, data)
        assert np.allclose(out, np.cumsum(data))

    def test_single_element(self, gpu):
        out, _ = run_scan(gpu, np.array([7.0]))
        assert out.tolist() == [7.0]

    def test_too_large_for_one_block(self, gpu):
        with pytest.raises(ValueError):
            run_scan(gpu, np.zeros(10_000))

    def test_empty(self, gpu):
        out, _ = run_scan(gpu, np.empty(0))
        assert out.size == 0


class TestGridStrideCopy:
    def test_roundtrip_any_size(self, gpu, rng):
        for n in (1, 31, 256, 777):
            data = rng.uniform(0, 1, n).astype(np.float32)
            out, _ = run_copy(gpu, data)
            assert np.array_equal(out, data), n

    def test_perfectly_coalesced(self, gpu, rng):
        data = rng.uniform(0, 1, 512).astype(np.float32)
        _, report = run_copy(gpu, data)
        assert report.coalescing_efficiency == pytest.approx(1.0)
        assert report.total_divergent_steps <= 2  # tail-iteration edge only


class TestHistogram:
    def test_matches_numpy(self, gpu, rng):
        data = rng.uniform(0, 1, 300)
        counts, _ = run_histogram(gpu, data, 8, lo=0.0, hi=1.0)
        expected = np.histogram(data, bins=8, range=(0, 1))[0]
        assert np.array_equal(counts, expected)

    def test_total_preserved(self, gpu, rng):
        data = rng.normal(0, 5, 400)
        counts, _ = run_histogram(gpu, data, 16)
        assert counts.sum() == 400

    def test_uses_atomics(self, gpu, rng):
        data = rng.uniform(0, 1, 200)
        _, report = run_histogram(gpu, data, 4, lo=0.0, hi=1.0)
        assert report.total_atomic_ops > 0

    def test_rejects_bad_args(self, gpu):
        with pytest.raises(ValueError):
            run_histogram(gpu, np.empty(0), 4)
        with pytest.raises(ValueError):
            run_histogram(gpu, np.ones(4), 0)
