"""Tests: the reproduced claims survive perturbation of model constants."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    DEFAULT_PERTURBATIONS,
    sweep_capacity_advantage,
    sweep_win_factor,
)
from repro.workloads import exponential_arrays, zipf_arrays


class TestWinFactorRobustness:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_win_factor()

    def test_gas_wins_across_all_perturbations(self, points):
        """+-30% on any uncertain constant must not flip the winner."""
        for p in points:
            assert p.value > 1.3, f"{p.parameter} x{p.multiplier}: {p.value:.2f}"

    def test_win_factor_band(self, points):
        values = [p.value for p in points]
        assert 1.3 < min(values)
        assert max(values) < 6.0

    def test_constants_restored_after_sweep(self):
        from repro.analysis import perfmodel

        before = (perfmodel.CACHED_READ_CYCLES,
                  perfmodel.RADIX_SCATTER_EFFICIENCY,
                  perfmodel.SORT_STEP_CYCLES)
        sweep_win_factor()
        after = (perfmodel.CACHED_READ_CYCLES,
                 perfmodel.RADIX_SCATTER_EFFICIENCY,
                 perfmodel.SORT_STEP_CYCLES)
        assert before == after

    def test_covers_every_constant(self, points):
        assert {p.parameter for p in points} == {
            "cached_read", "scatter_eff", "sort_step",
        }
        per_param = len(DEFAULT_PERTURBATIONS)
        assert len(points) == 3 * per_param


class TestCapacityRobustness:
    def test_advantage_invariant_to_memory_fraction(self):
        """The 3x capacity headline is a ratio — perturbing the usable
        fraction must leave it (nearly) unchanged."""
        sweep = sweep_capacity_advantage()
        baseline = sweep[1.0]
        for mult, advantages in sweep.items():
            for a, b in zip(advantages, baseline):
                assert a == pytest.approx(b, rel=0.02), mult

    def test_advantage_stays_in_3x_band(self):
        sweep = sweep_capacity_advantage()
        for advantages in sweep.values():
            for a in advantages:
                assert 2.5 < a < 3.6


class TestNewGenerators:
    def test_zipf_heavy_tail(self):
        batch = zipf_arrays(10, 5000, seed=1)
        # Zipf: median tiny, max enormous.
        assert np.median(batch) <= 2.0
        assert batch.max() > 100 * np.median(batch)

    def test_zipf_sorts_correctly(self):
        from repro.core import sort_arrays

        batch = zipf_arrays(20, 300, seed=2)
        out = sort_arrays(batch, verify=True)
        assert np.all(np.diff(out, axis=1) >= 0)

    def test_zipf_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            zipf_arrays(2, 10, exponent=1.0)

    def test_exponential_positive_and_skewed(self):
        batch = exponential_arrays(10, 2000, seed=3)
        assert batch.min() >= 0
        assert batch.mean() > np.median(batch)  # right-skew

    def test_exponential_sorts_correctly(self):
        from repro.core import sort_arrays

        batch = exponential_arrays(20, 300, seed=4)
        out = sort_arrays(batch, verify=True)
        assert np.all(np.diff(out, axis=1) >= 0)

    def test_exponential_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            exponential_arrays(2, 10, scale=0)
