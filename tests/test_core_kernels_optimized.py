"""Tests for the optimized kernel variants (§5.1's rejected strategies)."""

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.core.kernels import run_arraysort_on_device
from repro.core.kernels_optimized import run_arraysort_optimized
from repro.gpusim import GpuDevice


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestOptimizedPipeline:
    def test_matches_numpy(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (4, 100)).astype(np.float32)
        out, _ = run_arraysort_optimized(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_byte_identical_to_baseline_kernels(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (3, 120)).astype(np.float32)
        base, _ = run_arraysort_on_device(gpu, batch)
        opt, _ = run_arraysort_optimized(gpu, batch)
        assert np.array_equal(base, opt)

    def test_duplicates_and_negatives(self, gpu, rng):
        batch = rng.integers(-3, 3, (3, 80)).astype(np.float32)
        out, _ = run_arraysort_optimized(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_single_bucket_rows(self, gpu, rng):
        batch = rng.uniform(0, 1, (2, 15)).astype(np.float32)
        out, _ = run_arraysort_optimized(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_no_leaks(self, gpu, rng):
        run_arraysort_optimized(
            gpu, rng.uniform(0, 1, (2, 60)).astype(np.float32)
        )
        assert gpu.memory.live_allocations() == 0

    def test_kernel_names(self, gpu, rng):
        batch = rng.uniform(0, 1, (2, 60)).astype(np.float32)
        _, pipeline = run_arraysort_optimized(gpu, batch)
        names = [l.kernel_name for l in pipeline.launches]
        assert names == [
            "phase1_parallel", "phase2_parallel_scan", "phase3_bucket_sort",
        ]


class TestPaperTradeoffClaims:
    """Section 5.1: complex phase-1 strategies had 'too large' overheads.

    The simulator lets us *measure* the claim instead of assuming it."""

    def test_parallel_phase1_pays_barrier_overhead(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (3, 100)).astype(np.float32)
        _, base = run_arraysort_on_device(gpu, batch)
        _, opt = run_arraysort_optimized(gpu, batch)
        base_p1 = base.launches[0]
        opt_p1 = opt.launches[0]
        # The cooperative variant syncs every odd-even round; the serial
        # single-thread kernel never syncs.
        base_syncs = sum(w.syncs for w in base_p1.warp_stats)
        opt_syncs = sum(w.syncs for w in opt_p1.warp_stats)
        assert base_syncs == 0
        assert opt_syncs > batch.shape[1] // 20  # >= sample-size rounds

    def test_parallel_scan_beats_serial_scan_at_large_p(self, gpu, rng):
        """The flip side: at p = 12+ buckets the parallel scan's log2(p)
        rounds cost less than thread 0 walking p counters while p-1
        threads idle — measured as phase-2 modeled time."""
        cfg = SortConfig(bucket_size=5)  # p = 24 for n = 120
        batch = rng.uniform(0, 1e6, (2, 120)).astype(np.float32)
        _, base = run_arraysort_on_device(gpu, batch, cfg)
        _, opt = run_arraysort_optimized(gpu, batch, cfg)
        base_p2 = next(l for l in base.launches if "phase2" in l.kernel_name)
        opt_p2 = next(l for l in opt.launches if "phase2" in l.kernel_name)
        # Not asserting a winner (n dominates the scans); assert both
        # produce the same sizes and the scan variant does not blow up.
        assert opt_p2.milliseconds < 2.0 * base_p2.milliseconds

    def test_modeled_times_comparable(self, gpu, rng):
        """Neither variant should dominate by an order of magnitude at
        micro scale — the paper's 'overheads too large' is a constant
        factor, not an asymptotic blowup."""
        batch = rng.uniform(0, 1e6, (2, 100)).astype(np.float32)
        _, base = run_arraysort_on_device(gpu, batch)
        _, opt = run_arraysort_optimized(gpu, batch)
        ratio = opt.milliseconds / base.milliseconds
        assert 0.1 < ratio < 10.0
