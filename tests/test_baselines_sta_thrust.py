"""Tests for the simulated Thrust layer and the STA baseline."""

import numpy as np
import pytest

from repro.baselines.sta import StaSorter, sta_sort
from repro.baselines.thrust import (
    DeviceVector,
    ThrustCallStats,
    sequence,
    stable_sort_by_key,
)
from repro.gpusim import DeviceOutOfMemoryError, GpuDevice
from repro.workloads import uniform_arrays


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestDeviceVector:
    def test_from_host_data(self, gpu):
        v = DeviceVector(gpu, np.arange(10, dtype=np.float32))
        assert len(v) == 10
        assert np.array_equal(v.to_host(), np.arange(10, dtype=np.float32))
        v.free()

    def test_by_size_needs_dtype(self, gpu):
        with pytest.raises(ValueError):
            DeviceVector(gpu, 10)

    def test_context_manager_frees(self, gpu):
        with DeviceVector(gpu, np.zeros(8, dtype=np.float32)):
            assert gpu.memory.live_allocations() == 1
        assert gpu.memory.live_allocations() == 0

    def test_double_free_is_noop(self, gpu):
        v = DeviceVector(gpu, np.zeros(8, dtype=np.float32))
        v.free()
        v.free()  # second free must not raise
        assert gpu.memory.live_allocations() == 0

    def test_sequence(self, gpu):
        v = sequence(gpu, 6)
        assert v.to_host().tolist() == [0, 1, 2, 3, 4, 5]
        v.free()

    def test_allocation_charged_to_device(self, gpu):
        before = gpu.memory.free_bytes
        v = DeviceVector(gpu, np.zeros(1000, dtype=np.float32))
        assert gpu.memory.free_bytes < before
        v.free()


class TestStableSortByKey:
    def test_sorts_and_permutes(self, gpu, rng):
        keys_host = rng.normal(0, 1e6, 500).astype(np.float32)
        vals_host = np.arange(500, dtype=np.int32)
        keys = DeviceVector(gpu, keys_host)
        vals = DeviceVector(gpu, vals_host)
        stable_sort_by_key(keys, vals)
        order = np.argsort(keys_host, kind="stable")
        assert np.array_equal(keys.to_host(), keys_host[order])
        assert np.array_equal(vals.to_host(), vals_host[order])
        keys.free(); vals.free()

    def test_scratch_freed_even_on_success(self, gpu, rng):
        keys = DeviceVector(gpu, rng.random(100).astype(np.float32))
        vals = DeviceVector(gpu, np.arange(100, dtype=np.int32))
        stable_sort_by_key(keys, vals)
        assert gpu.memory.live_allocations() == 2  # only keys+vals remain
        keys.free(); vals.free()

    def test_oom_when_scratch_does_not_fit(self, rng):
        # Fill the device so the radix scratch cannot be allocated.
        gpu = GpuDevice.micro()
        quarter = gpu.memory.capacity_bytes // 4
        n = int(quarter * 1.2) // 4
        keys = DeviceVector(gpu, rng.random(n).astype(np.float32))
        vals = DeviceVector(gpu, np.arange(n, dtype=np.int32))
        with pytest.raises(DeviceOutOfMemoryError):
            stable_sort_by_key(keys, vals)
        keys.free(); vals.free()
        assert gpu.memory.live_allocations() == 0

    def test_length_mismatch(self, gpu):
        keys = DeviceVector(gpu, np.zeros(4, dtype=np.float32))
        vals = DeviceVector(gpu, np.zeros(5, dtype=np.int32))
        with pytest.raises(ValueError):
            stable_sort_by_key(keys, vals)
        keys.free(); vals.free()

    def test_stats_populated(self, gpu, rng):
        keys = DeviceVector(gpu, rng.random(200).astype(np.float32))
        vals = DeviceVector(gpu, np.arange(200, dtype=np.int32))
        stats = ThrustCallStats()
        stable_sort_by_key(keys, vals, stats=stats)
        assert stats.elements == 200
        assert stats.radix.passes == 4
        assert stats.scratch_bytes == 200 * 8
        keys.free(); vals.free()


class TestStaHost:
    def test_sorts_batch(self):
        batch = uniform_arrays(40, 120, seed=8)
        out = sta_sort(batch, verify=True)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_matches_arraysort(self):
        from repro.core import sort_arrays

        batch = uniform_arrays(30, 150, seed=9)
        assert np.array_equal(sta_sort(batch), sort_arrays(batch))

    def test_phase_breakdown_includes_redundant_presort(self):
        res = StaSorter().sort(uniform_arrays(10, 50, seed=1))
        assert "sort_by_tags_redundant" in res.phase_seconds
        assert "sort_by_values" in res.phase_seconds
        assert "sort_by_tags_restore" in res.phase_seconds

    def test_lean_variant_skips_presort(self):
        res = StaSorter(include_redundant_presort=False).sort(
            uniform_arrays(10, 50, seed=1)
        )
        assert "sort_by_tags_redundant" not in res.phase_seconds
        assert np.all(np.diff(res.batch, axis=1) >= 0)

    def test_lean_and_full_same_result(self):
        batch = uniform_arrays(15, 80, seed=2)
        full = StaSorter().sort(batch).batch
        lean = StaSorter(include_redundant_presort=False).sort(batch).batch
        assert np.array_equal(full, lean)

    def test_radix_stats_charge_three_sorts(self):
        res = StaSorter().sort(uniform_arrays(5, 40, seed=1))
        assert res.thrust_stats.radix.passes == 12  # 3 sorts x 4 passes

    def test_footprint_about_4x_payload(self):
        payload = 1000 * 1000 * 4
        footprint = StaSorter.footprint_bytes(1000, 1000)
        assert footprint == 4 * payload

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sta_sort(np.arange(10.0))


class TestStaDevice:
    def test_device_run_matches_host(self, rng):
        batch = uniform_arrays(20, 60, seed=3)
        gpu = GpuDevice.micro()
        dev = StaSorter(device=gpu).sort(batch)
        host = StaSorter().sort(batch)
        assert np.array_equal(dev.batch, host.batch)

    def test_device_peak_includes_tags_and_scratch(self):
        batch = uniform_arrays(20, 60, seed=3)
        gpu = GpuDevice.micro()
        res = StaSorter(device=gpu).sort(batch)
        payload = batch.nbytes
        # data + tags + 2 scratch buffers, aligned -> at least 4x payload.
        assert res.peak_device_bytes >= 4 * payload

    def test_device_memory_all_freed(self):
        gpu = GpuDevice.micro()
        StaSorter(device=gpu).sort(uniform_arrays(10, 40, seed=3))
        assert gpu.memory.live_allocations() == 0

    def test_in_place_advantage_vs_arraysort(self):
        """The paper's memory headline: STA's peak is ~4x GPU-ArraySort's."""
        from repro.core.kernels import run_arraysort_on_device

        batch = uniform_arrays(20, 100, seed=4)
        gpu_a = GpuDevice.micro()
        run_arraysort_on_device(gpu_a, batch)
        gas_peak = gpu_a.memory.stats.peak_bytes

        gpu_b = GpuDevice.micro()
        StaSorter(device=gpu_b).sort(batch)
        sta_peak = gpu_b.memory.stats.peak_bytes
        assert sta_peak > 3 * gas_peak
