"""Run the kernel pipelines on every catalog device.

The device specs differ in warp residency, shared-memory size, block
limits, and clocks; the algorithms must be correct on all of them and
the modeled times must order sensibly.
"""

import numpy as np
import pytest

from repro.core.kernels import run_arraysort_on_device
from repro.gpusim import GpuDevice
from repro.gpusim.device import DEVICE_CATALOG

DEVICES = sorted(DEVICE_CATALOG)


class TestPipelinePerDevice:
    @pytest.mark.parametrize("device_key", DEVICES)
    def test_arraysort_correct_on_every_device(self, device_key, rng):
        gpu = GpuDevice(DEVICE_CATALOG[device_key])
        batch = rng.uniform(0, 1e6, (3, 80)).astype(np.float32)
        out, pipeline = run_arraysort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1)), device_key
        assert pipeline.milliseconds > 0
        assert gpu.memory.live_allocations() == 0

    @pytest.mark.parametrize("device_key", DEVICES)
    def test_primitives_on_every_device(self, device_key, rng):
        from repro.gpusim.primitives import run_reduce, run_scan

        gpu = GpuDevice(DEVICE_CATALOG[device_key])
        data = rng.uniform(0, 1, 100)
        total, _ = run_reduce(gpu, data)
        assert total == pytest.approx(data.sum())
        scan, _ = run_scan(gpu, data[:32])
        assert np.allclose(scan, np.cumsum(data[:32]))

    def test_faster_devices_model_faster(self, rng):
        batch = rng.uniform(0, 1e6, (4, 64)).astype(np.float32)
        times = {}
        for key in ("c2050", "k40c", "p100"):
            gpu = GpuDevice(DEVICE_CATALOG[key])
            _, pipeline = run_arraysort_on_device(gpu, batch)
            times[key] = pipeline.milliseconds
        assert times["p100"] < times["k40c"]

    def test_micro_device_occupancy_constrained(self, rng):
        """The tiny device fits fewer concurrent blocks, so the same
        launch needs more waves than on the K40c."""
        batch = rng.uniform(0, 1e6, (8, 64)).astype(np.float32)
        waves = {}
        for key in ("micro", "k40c"):
            gpu = GpuDevice(DEVICE_CATALOG[key])
            _, pipeline = run_arraysort_on_device(gpu, batch)
            waves[key] = pipeline.launches[0].timing.waves
        assert waves["micro"] >= waves["k40c"]
