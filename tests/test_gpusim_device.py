"""Unit tests for repro.gpusim.device."""

import dataclasses

import pytest

from repro.gpusim.device import (
    DEVICE_CATALOG,
    K40C,
    MICRO,
    C2050,
    DeviceSpec,
    get_device,
)


class TestK40cSpec:
    """The paper's evaluation hardware (Section 7.2)."""

    def test_total_cuda_cores_match_paper(self):
        # "a total number of CUDA cores equal to 2880"
        assert K40C.cuda_cores == 2880

    def test_sm_count_matches_paper(self):
        # "it consists of 15 Multiprocessors"
        assert K40C.sm_count == 15

    def test_cores_per_sm_matches_paper(self):
        # "each Multiprocessor consisted of 192 CUDA cores"
        assert K40C.cores_per_sm == 192

    def test_global_memory_matches_paper(self):
        # "Total global memory available on the device was 11520 MBytes"
        assert K40C.global_mem_bytes == 11520 * 1024 * 1024

    def test_shared_memory_matches_paper(self):
        # "the shared memory of 48 KBytes was available per block"
        assert K40C.shared_mem_per_block == 48 * 1024

    def test_usable_memory_is_less_than_total(self):
        assert 0 < K40C.usable_global_mem_bytes < K40C.global_mem_bytes

    def test_shared_latency_about_100x_faster_than_global(self):
        # Section 3.3: "shared memory is about 100x faster"
        ratio = K40C.global_latency_cycles / K40C.shared_latency_cycles
        assert 50 <= ratio <= 200

    def test_warp_size_is_32(self):
        assert K40C.warp_size == 32


class TestDeviceSpecDerived:
    def test_warps_per_block_limit(self):
        assert K40C.warps_per_block_limit == 1024 // 32

    def test_clock_hz(self):
        assert K40C.clock_hz == pytest.approx(745e6)

    def test_cycles_to_ms_roundtrip(self):
        # one full second of cycles -> 1000 ms
        assert K40C.cycles_to_ms(K40C.clock_hz) == pytest.approx(1000.0)

    def test_cycles_to_ms_zero(self):
        assert K40C.cycles_to_ms(0) == 0.0


class TestValidation:
    def test_valid_specs_pass(self):
        for spec in (K40C, C2050, MICRO):
            spec.validate()  # must not raise

    def test_rejects_nonpositive_sm_count(self):
        bad = dataclasses.replace(K40C, sm_count=0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_threads_not_multiple_of_warp(self):
        bad = dataclasses.replace(K40C, max_threads_per_block=1000)
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_nonpositive_memory(self):
        bad = dataclasses.replace(K40C, global_mem_bytes=0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_bad_usable_fraction(self):
        for frac in (0.0, -0.5, 1.5):
            bad = dataclasses.replace(K40C, usable_mem_fraction=frac)
            with pytest.raises(ValueError):
                bad.validate()


class TestCatalog:
    def test_catalog_contains_paper_device(self):
        assert "k40c" in DEVICE_CATALOG

    def test_get_device_case_insensitive(self):
        assert get_device("K40C") is K40C
        assert get_device("k40c") is K40C

    def test_get_device_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="k40c"):
            get_device("gtx9000")

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            K40C.sm_count = 1  # type: ignore[misc]

    def test_micro_is_smaller_than_k40c(self):
        assert MICRO.cuda_cores < K40C.cuda_cores
        assert MICRO.global_mem_bytes < K40C.global_mem_bytes
