"""NaN policy and batch-boundary validation.

NaN has no total order, so the bucketing comparisons would silently
mis-place it — the seed behavior (reject loudly) stays the default.
``nan_policy="sort_to_end"`` opts poisoned rows into ``np.sort``
semantics (NaN after everything, including +inf) without giving up the
device path for the clean rows.  The boundary checks make malformed
batches fail with precise errors instead of deep-pipeline surprises.
"""

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig, sort_arrays
from repro.core.array_sort import validate_batch
from repro.core.validation import is_sorted_rows, rows_are_permutations
from repro.workloads import uniform_arrays


class TestNanPolicyConfig:
    def test_default_is_raise(self):
        assert SortConfig().nan_policy == "raise"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="nan_policy"):
            SortConfig(nan_policy="ignore")

    def test_raise_policy_error_mentions_escape_hatch(self):
        batch = uniform_arrays(4, 50, seed=1)
        batch[2, 7] = np.nan
        with pytest.raises(ValueError, match="NaN") as exc:
            sort_arrays(batch)
        assert "sort_to_end" in str(exc.value)


class TestSortToEnd:
    def test_matches_numpy_semantics(self):
        batch = uniform_arrays(6, 80, seed=2)
        batch[1, 3] = np.nan
        batch[4, [0, 10, 79]] = np.nan
        out = GpuArraySort(SortConfig(nan_policy="sort_to_end")).sort(batch).batch
        assert np.array_equal(out, np.sort(batch, axis=1), equal_nan=True)

    def test_nan_lands_after_inf(self):
        batch = uniform_arrays(2, 40, seed=3)
        batch[0, 5] = np.inf
        batch[0, 6] = np.nan
        out = GpuArraySort(SortConfig(nan_policy="sort_to_end")).sort(batch).batch
        assert np.isnan(out[0, -1])
        assert out[0, -2] == np.inf

    def test_clean_rows_unaffected_by_policy(self):
        batch = uniform_arrays(10, 120, seed=4)
        strict = GpuArraySort(SortConfig()).sort(batch).batch
        lenient = GpuArraySort(SortConfig(nan_policy="sort_to_end")).sort(batch).batch
        assert np.array_equal(strict, lenient)

    def test_all_nan_rows(self):
        batch = np.full((3, 16), np.nan, dtype=np.float32)
        out = GpuArraySort(SortConfig(nan_policy="sort_to_end")).sort(batch).batch
        assert np.isnan(out).all()

    def test_integer_batches_never_consult_policy(self):
        batch = np.array([[3, 1, 2], [9, 7, 8]], dtype=np.int32)
        out = GpuArraySort(SortConfig(nan_policy="sort_to_end")).sort(batch).batch
        assert np.array_equal(out, np.sort(batch, axis=1))


class TestNanAwareValidators:
    def test_sorted_with_trailing_nan_accepted(self):
        batch = np.array([[1.0, 2.0, np.nan, np.nan]])
        assert is_sorted_rows(batch).tolist() == [True]

    def test_nan_mid_row_not_sorted(self):
        batch = np.array([[1.0, np.nan, 2.0, 3.0]])
        assert is_sorted_rows(batch).tolist() == [False]

    def test_permutation_check_matches_nan(self):
        out = np.array([[1.0, 2.0, np.nan]])
        ref = np.array([[np.nan, 2.0, 1.0]])
        assert rows_are_permutations(out, ref).tolist() == [True]

    def test_permutation_check_counts_nans(self):
        out = np.array([[1.0, np.nan, np.nan]])
        ref = np.array([[1.0, 2.0, np.nan]])
        assert rows_are_permutations(out, ref).tolist() == [False]


class TestBatchBoundary:
    def test_three_dimensional_rejected(self):
        with pytest.raises(ValueError, match=r"\(N, n\) batch"):
            sort_arrays(np.zeros((2, 3, 4), dtype=np.float32))

    def test_zero_column_batch_rejected(self):
        with pytest.raises(ValueError, match="0-column"):
            sort_arrays(np.empty((5, 0), dtype=np.float32))

    def test_object_dtype_rejected(self):
        batch = np.array([[object(), object()]], dtype=object)
        with pytest.raises(ValueError, match="numeric"):
            sort_arrays(batch)

    def test_complex_dtype_rejected(self):
        batch = np.zeros((2, 4), dtype=np.complex128)
        with pytest.raises(ValueError, match="numeric"):
            sort_arrays(batch)

    def test_integer_batch_sorts(self):
        batch = np.array([[5, 1, 4], [2, 9, 0]], dtype=np.int64)
        assert np.array_equal(sort_arrays(batch), np.sort(batch, axis=1))

    def test_empty_row_batch_passes_through(self):
        out = sort_arrays(np.empty((0, 8), dtype=np.float32))
        assert out.shape == (0, 8)

    def test_validate_batch_returns_ndarray(self):
        batch = [[3.0, 1.0], [2.0, 4.0]]
        out = validate_batch(batch)
        assert isinstance(out, np.ndarray)
        assert out.shape == (2, 2)

    def test_argsort_shares_the_boundary(self):
        with pytest.raises(ValueError, match=r"\(N, n\) batch"):
            GpuArraySort().argsort(np.zeros(4, dtype=np.float32))
