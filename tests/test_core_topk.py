"""Tests for bucket-based batch Top-K selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import SortConfig
from repro.core.topk import top_k, top_k_via_sort
from repro.workloads import (
    duplicate_heavy_arrays,
    generate_spectra,
    uniform_arrays,
)


class TestTopK:
    def test_matches_sort_oracle(self):
        batch = uniform_arrays(30, 500, seed=1)
        for k in (1, 7, 50, 200, 500):
            assert np.array_equal(top_k(batch, k), top_k_via_sort(batch, k)), k

    def test_result_ascending(self):
        batch = uniform_arrays(10, 300, seed=2)
        out = top_k(batch, 50)
        assert np.all(np.diff(out, axis=1) >= 0)

    def test_duplicates_across_cut(self):
        batch = duplicate_heavy_arrays(20, 200, distinct_values=3, seed=3)
        for k in (1, 10, 100):
            assert np.array_equal(top_k(batch, k), top_k_via_sort(batch, k)), k

    def test_k_equals_n_is_full_sort(self):
        batch = uniform_arrays(5, 100, seed=4)
        assert np.array_equal(top_k(batch, 100), np.sort(batch, axis=1))

    def test_k_one_is_row_max(self):
        batch = uniform_arrays(10, 100, seed=5)
        assert np.array_equal(top_k(batch, 1).ravel(), batch.max(axis=1))

    def test_tiny_rows_single_bucket(self):
        batch = uniform_arrays(5, 10, seed=6)
        assert np.array_equal(top_k(batch, 3), top_k_via_sort(batch, 3))

    def test_custom_config(self):
        batch = uniform_arrays(10, 400, seed=7)
        cfg = SortConfig(bucket_size=50)
        assert np.array_equal(top_k(batch, 60, config=cfg),
                              top_k_via_sort(batch, 60))

    def test_verify_mode_passes(self):
        batch = uniform_arrays(5, 200, seed=8)
        top_k(batch, 20, verify=True)  # must not raise

    def test_empty_batch(self):
        batch = np.empty((0, 50), dtype=np.float32)
        assert top_k(batch, 5).shape == (0, 5)

    def test_rejects_bad_k(self):
        batch = uniform_arrays(2, 10, seed=1)
        with pytest.raises(ValueError):
            top_k(batch, 0)
        with pytest.raises(ValueError):
            top_k(batch, 11)

    def test_rejects_nan(self):
        batch = np.array([[1.0, np.nan, 3.0]], dtype=np.float32)
        with pytest.raises(ValueError):
            top_k(batch, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            top_k(np.arange(5.0), 2)

    def test_ms_reduce_scenario(self):
        """The motivating pipeline: keep the 200 most intense peaks."""
        spectra = generate_spectra(50, 2000, seed=9)
        kept = top_k(spectra.intensity, 200)
        oracle = np.sort(spectra.intensity, axis=1)[:, -200:]
        assert np.array_equal(kept, oracle)

    F32 = float(np.float32(1e30))

    @given(
        batch=hnp.arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(1, 6), st.integers(1, 80)),
            elements=st.floats(min_value=-F32, max_value=F32,
                               allow_nan=False, width=32),
        ),
        k_frac=st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_oracle(self, batch, k_frac):
        k = max(1, int(k_frac * batch.shape[1]))
        assert np.array_equal(top_k(batch, k), top_k_via_sort(batch, k))
