"""Cross-product correctness grid: engine x workload x dtype x config.

One systematic sweep over the public configuration space, complementing
the targeted unit tests.  Every cell asserts exact agreement with the
NumPy oracle — the matrix a release manager wants green before tagging.
"""

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig
from repro.gpusim import GpuDevice
from repro.workloads import (
    clustered_arrays,
    duplicate_heavy_arrays,
    exponential_arrays,
    nearly_sorted_arrays,
    reverse_sorted_arrays,
    uniform_arrays,
    zipf_arrays,
)

GENERATORS = {
    "uniform": uniform_arrays,
    "reverse": reverse_sorted_arrays,
    "nearly_sorted": nearly_sorted_arrays,
    "duplicates": duplicate_heavy_arrays,
    "clustered": clustered_arrays,
    "zipf": zipf_arrays,
    "exponential": exponential_arrays,
}


class TestVectorizedGrid:
    @pytest.mark.parametrize("workload", sorted(GENERATORS))
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_workload_dtype(self, workload, dtype):
        batch = GENERATORS[workload](25, 256, seed=31).astype(dtype)
        cfg = SortConfig(dtype=dtype)
        out = GpuArraySort(cfg, verify=True).sort(batch)
        assert np.array_equal(out.batch, np.sort(batch, axis=1))

    @pytest.mark.parametrize("workload", sorted(GENERATORS))
    @pytest.mark.parametrize("bucket_size", [5, 20, 100])
    def test_workload_bucket_size(self, workload, bucket_size):
        batch = GENERATORS[workload](20, 200, seed=32)
        cfg = SortConfig(bucket_size=bucket_size)
        out = GpuArraySort(cfg).sort(batch)
        assert np.array_equal(out.batch, np.sort(batch, axis=1))

    @pytest.mark.parametrize("workload", sorted(GENERATORS))
    @pytest.mark.parametrize("rate", [0.02, 0.10, 0.5])
    def test_workload_sampling_rate(self, workload, rate):
        batch = GENERATORS[workload](20, 200, seed=33)
        cfg = SortConfig(sampling_rate=rate)
        out = GpuArraySort(cfg).sort(batch)
        assert np.array_equal(out.batch, np.sort(batch, axis=1))


class TestSimEngineGrid:
    @pytest.mark.parametrize("workload", sorted(GENERATORS))
    def test_sim_engine_per_workload(self, workload):
        batch = GENERATORS[workload](2, 72, seed=34).astype(np.float32)
        sorter = GpuArraySort(engine="sim", device=GpuDevice.micro())
        out = sorter.sort(batch)
        assert np.array_equal(out.batch, np.sort(batch, axis=1))


class TestShapeEdgeGrid:
    @pytest.mark.parametrize("shape", [
        (1, 1), (1, 19), (1, 20), (1, 21), (1, 4000),
        (2, 2), (7, 64), (64, 7), (100, 39), (3, 1023),
    ])
    def test_shape_edges(self, shape):
        batch = uniform_arrays(*shape, seed=35)
        out = GpuArraySort(verify=True).sort(batch)
        assert np.array_equal(out.batch, np.sort(batch, axis=1))
