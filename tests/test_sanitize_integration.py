"""The checked build end-to-end: real workloads under the sanitizer.

``make sanitize`` runs the whole service/fleet/capacity/chaos subset
with ``REPRO_SANITIZE=1``; these tests make the same guarantee portable
into a plain ``pytest`` run by arming the sanitizer in-process — a full
concurrent service workload and a real two-process fleet round-trip must
complete correctly with ZERO recorded violations, and the fleet worker's
input slab must come back byte-identical (the read-only guard held).
"""

from __future__ import annotations

import concurrent.futures
import threading

import numpy as np
import pytest

from repro.statan import runtime as rt

pytestmark = pytest.mark.service


@pytest.fixture
def sanitized_recording():
    """Sanitizer on in record-only mode so violations fail the assert,
    not the workload mid-flight (clearer failure output)."""
    was_enabled = rt.enabled()
    rt.enable()
    rt.reset()
    rt.set_raise_on_violation(False)
    yield
    failures = [str(v) for v in rt.violations()]
    rt.reset()
    rt.set_raise_on_violation(True)
    if not was_enabled:
        rt.disable()
    assert failures == [], "\n".join(failures)


class TestSanitizedService:
    def test_concurrent_service_workload_is_violation_free(
        self, sanitized_recording
    ):
        from repro.service import SortService

        rng = np.random.default_rng(11)
        batches = [
            rng.uniform(size=(rows, 16)).astype(np.float32)
            for rows in (3, 8, 5, 2, 13, 7)
        ]
        with SortService(batch_target_rows=16, linger_ms=1.0) as svc:
            def client(batch, tenant):
                out = svc.submit(batch, tenant=tenant).result(timeout=30)
                np.testing.assert_array_equal(out, np.sort(batch, axis=1))

            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                list(pool.map(
                    client,
                    batches,
                    [f"tenant-{i % 3}" for i in range(len(batches))],
                ))
            svc.flush()
            stats = svc.stats()
        assert stats.completed == len(batches)
        # The workload took nested locks: the observed graph is live.
        assert rt.lock_order_edges()

    def test_flush_close_and_stats_paths_are_violation_free(
        self, sanitized_recording
    ):
        from repro.service import SortService

        rng = np.random.default_rng(12)
        svc = SortService(batch_target_rows=4, linger_ms=0.5)
        svc.submit(rng.uniform(size=(2, 8))).result(timeout=30)
        svc.flush()
        svc.stats()
        svc.close(drain=True)


@pytest.mark.fleet
class TestSanitizedFleet:
    def test_fleet_round_trip_under_sanitizer(self, sanitized_recording):
        from repro.fleet import SortFleet

        rng = np.random.default_rng(13)
        fleet = SortFleet(
            workers=2, linger_ms=1.0, heartbeat_s=0.02,
            liveness_s=2.0, start_timeout_s=60.0,
        )
        try:
            batch = rng.integers(0, 1000, size=(12, 32)).astype(np.float32)
            original = batch.copy()
            result = fleet.submit(batch).result(timeout=30)
            np.testing.assert_array_equal(result, np.sort(batch, axis=1))
            # The failover invariant the worker-side guard_readonly
            # enforces: the input was never mutated.
            np.testing.assert_array_equal(batch, original)
        finally:
            fleet.close(drain=False, timeout=10.0)
