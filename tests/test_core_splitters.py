"""Unit tests for repro.core.splitters (phase 1)."""

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.core.splitters import (
    regular_sample_indices,
    select_splitters,
    splitter_pick_indices,
)


class TestRegularSampleIndices:
    def test_ten_percent_of_1000(self):
        idx = regular_sample_indices(1000)
        assert len(idx) == 100
        assert idx[0] == 0
        # Regular sampling: constant stride
        assert len(set(np.diff(idx))) == 1

    def test_indices_in_bounds(self):
        for n in (1, 3, 19, 20, 999, 4000):
            idx = regular_sample_indices(n)
            assert np.all(idx >= 0)
            assert np.all(idx < n)

    def test_no_duplicate_indices(self):
        for n in (10, 100, 1234):
            idx = regular_sample_indices(n)
            assert len(np.unique(idx)) == len(idx)

    def test_custom_rate(self):
        idx = regular_sample_indices(10, SortConfig(sampling_rate=0.3))
        assert list(idx) == [0, 3, 6]

    def test_full_sampling(self):
        idx = regular_sample_indices(8, SortConfig(sampling_rate=1.0))
        assert list(idx) == list(range(8))


class TestSplitterPickIndices:
    def test_count_is_q(self):
        picks = splitter_pick_indices(100, 50)
        assert len(picks) == 49

    def test_single_bucket_no_splitters(self):
        assert len(splitter_pick_indices(10, 1)) == 0

    def test_picks_are_sorted_and_in_bounds(self):
        picks = splitter_pick_indices(100, 50)
        assert np.all(np.diff(picks) >= 0)
        assert picks[0] >= 0
        assert picks[-1] < 100

    def test_regular_spacing(self):
        picks = splitter_pick_indices(100, 10)
        # Equally spaced: stride 10
        assert list(np.diff(picks)) == [10] * 8

    def test_degenerate_small_sample(self):
        picks = splitter_pick_indices(2, 3)
        assert len(picks) == 2
        assert np.all(picks < 2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            splitter_pick_indices(10, 0)
        with pytest.raises(ValueError):
            splitter_pick_indices(0, 5)


class TestSelectSplitters:
    def test_shape_and_count(self, small_batch):
        res = select_splitters(small_batch)
        n = small_batch.shape[1]
        cfg_p = 128 // 20
        assert res.num_buckets == cfg_p
        assert res.splitters.shape == (small_batch.shape[0], cfg_p - 1)

    def test_splitters_sorted_per_row(self, small_batch):
        res = select_splitters(small_batch)
        assert np.all(np.diff(res.splitters, axis=1) >= 0)

    def test_splitters_are_values_from_the_array(self, small_batch):
        res = select_splitters(small_batch)
        for i in range(small_batch.shape[0]):
            assert np.all(np.isin(res.splitters[i], small_batch[i]))

    def test_uniform_data_splitters_near_quantiles(self, rng):
        # On uniform data with 10% regular sampling, splitters should land
        # near the true quantiles (the load-balance claim of Section 5.1).
        batch = rng.uniform(0, 1, (50, 2000)).astype(np.float32)
        res = select_splitters(batch)
        p = res.num_buckets
        expected = np.arange(1, p) / p
        err = np.abs(res.splitters - expected[None, :])
        assert err.mean() < 0.05

    def test_bucket_override(self, small_batch):
        res = select_splitters(small_batch, num_buckets=4)
        assert res.num_buckets == 4
        assert res.splitters.shape[1] == 3

    def test_single_bucket_gives_empty_splitters(self, small_batch):
        res = select_splitters(small_batch, num_buckets=1)
        assert res.splitters.shape == (small_batch.shape[0], 0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            select_splitters(np.arange(10.0))

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError):
            select_splitters(np.empty((3, 0)))

    def test_constant_rows_all_splitters_equal(self):
        batch = np.full((2, 100), 5.0, dtype=np.float32)
        res = select_splitters(batch)
        assert np.all(res.splitters == 5.0)

    def test_dtype_preserved(self, small_batch):
        res = select_splitters(small_batch)
        assert res.splitters.dtype == small_batch.dtype

    def test_samples_sorted_ascending(self, small_batch):
        res = select_splitters(small_batch)
        assert np.all(np.diff(res.samples_sorted, axis=1) >= 0)


class TestIndexPlanCache:
    """Phase-1 index plans are pure functions of (n, config) — cache them."""

    def setup_method(self):
        from repro.core.splitters import clear_index_plan_cache

        clear_index_plan_cache()

    def test_sample_indices_cached_and_read_only(self):
        from repro.core.splitters import _cached_sample_indices

        a = regular_sample_indices(1000)
        b = regular_sample_indices(1000)
        assert a is b  # same cached plan object
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 99
        assert _cached_sample_indices.cache_info().hits >= 1

    def test_pick_indices_cached_and_read_only(self):
        from repro.core.splitters import _cached_pick_indices

        a = splitter_pick_indices(100, 5)
        b = splitter_pick_indices(100, 5)
        assert a is b
        assert not a.flags.writeable
        assert _cached_pick_indices.cache_info().hits >= 1

    def test_distinct_configs_get_distinct_plans(self):
        a = regular_sample_indices(1000, SortConfig(sampling_rate=0.1))
        b = regular_sample_indices(1000, SortConfig(sampling_rate=0.2))
        assert a is not b
        assert len(b) > len(a)

    def test_clear_resets_cache(self):
        from repro.core.splitters import (
            _cached_sample_indices,
            clear_index_plan_cache,
        )

        regular_sample_indices(500)
        assert _cached_sample_indices.cache_info().currsize >= 1
        clear_index_plan_cache()
        assert _cached_sample_indices.cache_info().currsize == 0

    def test_cached_plans_unchanged_semantics(self):
        # Cached results must equal a fresh computation element-for-element.
        idx = regular_sample_indices(777)
        assert idx.dtype == np.int64
        assert np.all(idx < 777)
        assert np.all(np.diff(idx) > 0)

    def test_validation_still_raises_outside_cache(self):
        with pytest.raises(ValueError):
            splitter_pick_indices(100, 0)

    def test_public_cache_info_and_bound(self):
        from repro.core import INDEX_PLAN_CACHE_MAXSIZE, index_plan_cache_info

        regular_sample_indices(1000)
        splitter_pick_indices(100, 5)
        info = index_plan_cache_info()
        assert set(info) == {"sample_indices", "pick_indices"}
        for entry in info.values():
            assert entry.maxsize == INDEX_PLAN_CACHE_MAXSIZE == 128
            assert entry.currsize >= 1
        with pytest.raises(ValueError):
            splitter_pick_indices(0, 5)
