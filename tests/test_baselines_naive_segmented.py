"""Tests for the naive and segmented baselines."""

import numpy as np
import pytest

from repro.baselines.naive import (
    numpy_rowwise_sort,
    sequential_sort,
    timed_sequential_sort,
)
from repro.baselines.segmented import segmented_sort, segmented_sort_ragged
from repro.workloads import RaggedBatch, uniform_arrays


class TestNaive:
    def test_sequential_matches_oracle(self):
        batch = uniform_arrays(30, 100, seed=1)
        assert np.array_equal(sequential_sort(batch), numpy_rowwise_sort(batch))

    def test_input_not_mutated(self):
        batch = uniform_arrays(5, 50, seed=1)
        snapshot = batch.copy()
        sequential_sort(batch)
        numpy_rowwise_sort(batch)
        assert np.array_equal(batch, snapshot)

    def test_timed_returns_metrics(self):
        batch = uniform_arrays(10, 50, seed=1)
        out, metrics = timed_sequential_sort(batch)
        assert np.array_equal(out, np.sort(batch, axis=1))
        assert metrics["total_seconds"] >= 0
        assert metrics["seconds_per_array"] >= 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sequential_sort(np.arange(5.0))
        with pytest.raises(ValueError):
            numpy_rowwise_sort(np.arange(5.0))


class TestSegmentedSort:
    def test_matches_oracle(self):
        batch = uniform_arrays(40, 130, seed=2)
        assert np.array_equal(segmented_sort(batch), np.sort(batch, axis=1))

    def test_empty_batch(self):
        batch = np.empty((0, 5), dtype=np.float32)
        assert segmented_sort(batch).shape == (0, 5)

    def test_rows_stay_independent(self):
        batch = np.array([[9.0, 8.0], [1.0, 0.0]], dtype=np.float32)
        out = segmented_sort(batch)
        assert out.tolist() == [[8.0, 9.0], [0.0, 1.0]]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            segmented_sort(np.arange(5.0))


class TestSegmentedSortRagged:
    def test_sorts_each_segment(self, rng):
        arrays = [rng.uniform(0, 100, size).astype(np.float32)
                  for size in (5, 0, 12, 3, 7)]
        ragged = RaggedBatch.from_arrays(arrays)
        out = segmented_sort_ragged(ragged.values, ragged.offsets)
        pos = 0
        for a in arrays:
            seg = out[pos : pos + a.size]
            assert np.array_equal(seg, np.sort(a))
            pos += a.size

    def test_empty_values(self):
        out = segmented_sort_ragged(np.empty(0, dtype=np.float32), np.array([0]))
        assert out.size == 0

    def test_rejects_bad_offsets(self):
        vals = np.arange(4.0)
        with pytest.raises(ValueError):
            segmented_sort_ragged(vals, np.array([0, 5]))
        with pytest.raises(ValueError):
            segmented_sort_ragged(vals, np.array([1, 4]))
        with pytest.raises(ValueError):
            segmented_sort_ragged(vals, np.array([0, 3, 2, 4]))

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError):
            segmented_sort_ragged(np.zeros((2, 2)), np.array([0, 4]))

    def test_adjacent_empty_segments(self):
        vals = np.array([3.0, 1.0], dtype=np.float32)
        offsets = np.array([0, 0, 0, 2])
        out = segmented_sort_ragged(vals, offsets)
        assert out.tolist() == [1.0, 3.0]
