"""Property-based tests (hypothesis) on the core data structures.

The invariants under test:

* sorting correctness is a conjunction of *sortedness* and *permutation*
  for every implementation (GPU-ArraySort, STA, segmented, radix);
* phase 2 produces a true partition (sizes sum, half-open ranges,
  stability) for any data and any legal configuration;
* the radix float-key encoding is a strict order embedding;
* the allocator never double-books bytes;
* the pipeline timeline is sandwiched between its max-stage and serial
  bounds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.radix import (
    float32_to_sortable_uint32,
    radix_sort_by_key,
    sortable_uint32_to_float32,
)
from repro.baselines.segmented import segmented_sort
from repro.baselines.sta import sta_sort
from repro.core import SortConfig, sort_arrays
from repro.core.bucketing import bucketize, exclusive_scan
from repro.core.insertion import insertion_sort
from repro.core.pipeline import pipeline_timeline
from repro.core.splitters import select_splitters
from repro.core.validation import check_bucket_partition

# Finite float32 values in a comfortable range (no NaN; bucketize rejects
# it).  Bounds must be exactly representable in float32 for hypothesis.
F32_BOUND = float(np.float32(1e30))
finite_f32 = st.floats(
    min_value=-F32_BOUND, max_value=F32_BOUND, allow_nan=False, width=32
)

small_batches = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 120)),
    elements=finite_f32,
)

configs = st.builds(
    SortConfig,
    bucket_size=st.integers(1, 64),
    sampling_rate=st.floats(0.01, 1.0),
)


class TestSortingProperties:
    @given(batch=small_batches)
    @settings(max_examples=60, deadline=None)
    def test_arraysort_sorts_and_permutes(self, batch):
        out = sort_arrays(batch)
        assert np.all(np.diff(out, axis=1) >= 0)
        assert np.array_equal(np.sort(out, axis=1), np.sort(batch, axis=1))

    @given(batch=small_batches, config=configs)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arraysort_correct_for_any_config(self, batch, config):
        out = sort_arrays(batch, config=config)
        assert np.array_equal(out, np.sort(batch, axis=1))

    @given(batch=small_batches)
    @settings(max_examples=30, deadline=None)
    def test_sta_matches_arraysort(self, batch):
        assert np.array_equal(sta_sort(batch), sort_arrays(batch))

    @given(batch=small_batches)
    @settings(max_examples=30, deadline=None)
    def test_segmented_matches_arraysort(self, batch):
        assert np.array_equal(segmented_sort(batch), sort_arrays(batch))

    @given(values=st.lists(st.integers(-1000, 1000), max_size=60))
    @settings(max_examples=60)
    def test_insertion_sort_matches_sorted(self, values):
        assert insertion_sort(values) == sorted(values)

    @given(batch=small_batches)
    @settings(max_examples=30, deadline=None)
    def test_idempotence(self, batch):
        once = sort_arrays(batch)
        twice = sort_arrays(once)
        assert np.array_equal(once, twice)


class TestBucketingProperties:
    @given(batch=small_batches, config=configs)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_partition_invariants(self, batch, config):
        spl = select_splitters(batch, config)
        res = bucketize(batch.copy(), spl.splitters, config)
        # sizes sum to n per row
        assert np.all(res.sizes.sum(axis=1) == batch.shape[1])
        # offsets consistent with sizes
        assert np.array_equal(np.diff(res.offsets, axis=1), res.sizes)
        # every row is a valid half-open partition and a permutation
        for i in range(batch.shape[0]):
            check_bucket_partition(res.bucketed[i], spl.splitters[i], res.offsets[i])
            assert np.array_equal(
                np.sort(res.bucketed[i]), np.sort(batch[i])
            )

    @given(sizes=hnp.arrays(dtype=np.int64,
                            shape=st.tuples(st.integers(1, 6), st.integers(1, 20)),
                            elements=st.integers(0, 100)))
    @settings(max_examples=60)
    def test_exclusive_scan_properties(self, sizes):
        out = exclusive_scan(sizes)
        assert np.all(out[:, 0] == 0)
        assert np.array_equal(out[:, -1], sizes.sum(axis=1))
        assert np.all(np.diff(out, axis=1) >= 0)

    @given(batch=small_batches)
    @settings(max_examples=30, deadline=None)
    def test_splitters_sorted_and_from_data(self, batch):
        spl = select_splitters(batch)
        assert np.all(np.diff(spl.splitters.astype(np.float64), axis=1) >= 0)
        for i in range(batch.shape[0]):
            assert np.all(np.isin(spl.splitters[i], batch[i]))


class TestRadixProperties:
    @given(values=hnp.arrays(dtype=np.float32, shape=st.integers(0, 300),
                             elements=finite_f32))
    @settings(max_examples=60)
    def test_key_encoding_is_order_embedding(self, values):
        keys = float32_to_sortable_uint32(values).astype(np.int64)
        order_v = np.argsort(values, kind="stable")
        order_k = np.argsort(keys, kind="stable")
        assert np.array_equal(values[order_v], values[order_k])

    @given(values=hnp.arrays(dtype=np.float32, shape=st.integers(0, 300),
                             elements=finite_f32))
    @settings(max_examples=40)
    def test_key_encoding_roundtrip(self, values):
        back = sortable_uint32_to_float32(float32_to_sortable_uint32(values))
        assert np.array_equal(back, values)

    @given(
        keys=hnp.arrays(dtype=np.uint32, shape=st.integers(0, 400),
                        elements=st.integers(0, 2**32 - 1)),
        digit_bits=st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_radix_sorts_any_digit_width(self, keys, digit_bits):
        out, _ = radix_sort_by_key(keys, None, digit_bits=digit_bits)
        assert np.array_equal(out, np.sort(keys))

    @given(n=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_radix_stability_with_equal_keys(self, n):
        keys = np.zeros(n, dtype=np.uint32)
        vals = np.arange(n, dtype=np.int32)
        _, sv = radix_sort_by_key(keys, vals)
        assert np.array_equal(sv, vals)


class TestAllocatorProperties:
    @given(
        sizes=st.lists(st.integers(0, 2000), min_size=1, max_size=30),
        free_order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_alloc_free_conserves_bytes(self, sizes, free_order):
        from repro.gpusim.device import MICRO
        from repro.gpusim.errors import DeviceOutOfMemoryError
        from repro.gpusim.memory import GlobalMemory

        mem = GlobalMemory(MICRO)
        start_free = mem.free_bytes
        live = []
        for size in sizes:
            try:
                live.append(mem.alloc(size, np.float32))
            except DeviceOutOfMemoryError:
                break
        free_order.shuffle(live)
        for arr in live:
            mem.free(arr)
        assert mem.free_bytes == start_free
        assert mem.live_allocations() == 0

    @given(sizes=st.lists(st.integers(1, 500), min_size=2, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        from repro.gpusim.device import MICRO
        from repro.gpusim.errors import DeviceOutOfMemoryError
        from repro.gpusim.memory import GlobalMemory

        mem = GlobalMemory(MICRO)
        arrays = []
        for size in sizes:
            try:
                arrays.append(mem.alloc(size, np.float32))
            except DeviceOutOfMemoryError:
                break
        assume(len(arrays) >= 2)
        for marker, arr in enumerate(arrays):
            arr.fill(float(marker))
        for marker, arr in enumerate(arrays):
            assert np.all(arr.copy_to_host() == float(marker))


class TestPipelineProperties:
    stage_lists = st.integers(1, 10).flatmap(
        lambda k: st.tuples(
            st.lists(st.floats(0, 100), min_size=k, max_size=k),
            st.lists(st.floats(0, 100), min_size=k, max_size=k),
            st.lists(st.floats(0, 100), min_size=k, max_size=k),
        )
    )

    @given(stages=stage_lists)
    @settings(max_examples=60)
    def test_overlap_bounded_between_max_stage_and_serial(self, stages):
        up, comp, down = stages
        overlapped = pipeline_timeline(up, comp, down, overlap=True)
        serial = pipeline_timeline(up, comp, down, overlap=False)
        lower = max(sum(up), sum(comp), sum(down))
        assert overlapped <= serial + 1e-9
        assert overlapped >= lower - 1e-9
