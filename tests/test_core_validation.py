"""Unit tests for repro.core.validation."""

import numpy as np
import pytest

from repro.core.validation import (
    ValidationFailure,
    assert_batch_sorted,
    check_bucket_partition,
    is_sorted_rows,
    rows_are_permutations,
)


class TestIsSortedRows:
    def test_mixed(self):
        batch = np.array([[1, 2, 3], [3, 2, 1], [5, 5, 5]])
        assert is_sorted_rows(batch).tolist() == [True, False, True]

    def test_single_column_always_sorted(self):
        assert is_sorted_rows(np.array([[4], [1]])).all()

    def test_equal_neighbours_count_as_sorted(self):
        assert is_sorted_rows(np.array([[1, 1, 2]])).all()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            is_sorted_rows(np.array([1, 2, 3]))


class TestRowsArePermutations:
    def test_true_permutation(self):
        a = np.array([[3, 1, 2]])
        b = np.array([[1, 2, 3]])
        assert rows_are_permutations(a, b).all()

    def test_multiplicity_matters(self):
        a = np.array([[1, 1, 2]])
        b = np.array([[1, 2, 2]])
        assert not rows_are_permutations(a, b).any()

    def test_value_swap_across_rows_detected(self):
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[1, 3], [2, 4]])
        assert not rows_are_permutations(a, b).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rows_are_permutations(np.ones((2, 2)), np.ones((2, 3)))


class TestAssertBatchSorted:
    def test_passes_on_sorted(self, rng):
        ref = rng.uniform(0, 1, (5, 10))
        assert_batch_sorted(np.sort(ref, axis=1), ref)

    def test_fails_on_unsorted(self):
        with pytest.raises(ValidationFailure, match="not sorted"):
            assert_batch_sorted(np.array([[2.0, 1.0]]))

    def test_fails_on_lost_element(self):
        ref = np.array([[1.0, 2.0]])
        out = np.array([[1.0, 1.0]])
        with pytest.raises(ValidationFailure, match="permutation"):
            assert_batch_sorted(out, ref)

    def test_reference_optional(self):
        assert_batch_sorted(np.array([[1.0, 2.0]]))

    def test_reports_first_bad_row(self):
        out = np.array([[1.0, 2.0], [9.0, 1.0], [4.0, 1.0]])
        with pytest.raises(ValidationFailure, match="first bad row: 1"):
            assert_batch_sorted(out)


class TestCheckBucketPartition:
    def test_valid_partition(self):
        row = np.array([1.0, 2.0, 10.0, 11.0, 20.0])
        check_bucket_partition(row, [10.0, 20.0], [0, 2, 4, 5])

    def test_element_below_range_caught(self):
        row = np.array([1.0, 2.0, 5.0, 11.0, 20.0])
        with pytest.raises(ValidationFailure, match="bucket 1"):
            check_bucket_partition(row, [10.0, 20.0], [0, 2, 4, 5])

    def test_element_at_upper_splitter_caught(self):
        # Half-open [s_j, s_{j+1}): value equal to upper splitter is wrong.
        row = np.array([1.0, 10.0, 15.0, 25.0])
        with pytest.raises(ValidationFailure):
            check_bucket_partition(row, [10.0, 20.0], [0, 2, 3, 4])

    def test_empty_buckets_fine(self):
        row = np.array([1.0, 2.0])
        check_bucket_partition(row, [10.0, 20.0], [0, 2, 2, 2])

    def test_bad_offsets_span(self):
        with pytest.raises(ValidationFailure, match="span"):
            check_bucket_partition(np.array([1.0]), [], [0, 2])

    def test_decreasing_offsets(self):
        with pytest.raises(ValidationFailure, match="non-decreasing"):
            check_bucket_partition(np.array([1.0, 2.0]), [5.0, 6.0], [0, 2, 1, 2])

    def test_wrong_splitter_count(self):
        with pytest.raises(ValidationFailure, match="splitters"):
            check_bucket_partition(np.array([1.0, 2.0]), [5.0, 6.0], [0, 1, 2])
