"""Tests for the m-way merge baseline (paper §2's other family)."""

import numpy as np
import pytest

from repro.baselines.mergesort import (
    merge_pass_count,
    merge_sort_batch,
    run_merge_sort_on_device,
)
from repro.gpusim import GpuDevice
from repro.workloads import duplicate_heavy_arrays, uniform_arrays


class TestMergePassCount:
    def test_powers_of_two(self):
        assert merge_pass_count(1) == 0
        assert merge_pass_count(2) == 1
        assert merge_pass_count(1024) == 10

    def test_non_pow2_rounds_up(self):
        assert merge_pass_count(1000) == 10

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            merge_pass_count(0)


class TestVectorizedMergeSort:
    def test_matches_oracle(self):
        batch = uniform_arrays(25, 100, seed=41)
        assert np.array_equal(merge_sort_batch(batch), np.sort(batch, axis=1))

    def test_pow2_and_odd_sizes(self):
        for n in (1, 2, 3, 7, 64, 100, 129):
            batch = uniform_arrays(5, n, seed=n)
            assert np.array_equal(
                merge_sort_batch(batch), np.sort(batch, axis=1)
            ), n

    def test_stability_via_duplicates(self):
        batch = duplicate_heavy_arrays(10, 80, distinct_values=3, seed=42)
        assert np.array_equal(merge_sort_batch(batch), np.sort(batch, axis=1))

    def test_reverse_sorted_worst_case(self):
        batch = np.tile(np.arange(50, 0, -1, dtype=np.float32), (4, 1))
        assert np.array_equal(merge_sort_batch(batch), np.sort(batch, axis=1))

    def test_empty_and_single(self):
        assert merge_sort_batch(np.empty((0, 4), dtype=np.float32)).shape == (0, 4)
        one = uniform_arrays(3, 1, seed=1)
        assert np.array_equal(merge_sort_batch(one), one)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            merge_sort_batch(np.arange(4.0))

    def test_input_not_mutated(self):
        batch = uniform_arrays(5, 40, seed=43)
        snapshot = batch.copy()
        merge_sort_batch(batch)
        assert np.array_equal(batch, snapshot)


class TestDeviceMergeSort:
    def test_matches_oracle(self, rng):
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1e6, (4, 64)).astype(np.float32)
        out, _ = run_merge_sort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_odd_length_rows(self, rng):
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 100, (3, 45)).astype(np.float32)
        out, _ = run_merge_sort_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_merge_family_pays_barriers_sample_sort_avoids(self, rng):
        """The paper's §2 argument made measurable: the merge family
        synchronizes every pass; GPU-ArraySort's phase 3 sorts buckets
        with no inter-pass barriers at all."""
        from repro.core.kernels import run_arraysort_on_device

        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1e6, (2, 96)).astype(np.float32)
        _, merge_rep = run_merge_sort_on_device(gpu, batch)
        _, gas_pipeline = run_arraysort_on_device(gpu, batch)
        phase3 = gas_pipeline.launches[2]
        merge_syncs = sum(w.syncs for w in merge_rep.warp_stats)
        phase3_syncs = sum(w.syncs for w in phase3.warp_stats)
        # phase 3 syncs only twice (offset staging), independent of n;
        # merge syncs once per pass per lane.
        assert merge_syncs > 3 * phase3_syncs

    def test_no_leaks(self, rng):
        gpu = GpuDevice.micro()
        run_merge_sort_on_device(gpu, rng.uniform(0, 1, (2, 32)).astype(np.float32))
        assert gpu.memory.live_allocations() == 0

    def test_six_way_baseline_agreement(self, rng):
        from repro.baselines import (
            bitonic_sort_batch,
            odd_even_sort_batch,
            segmented_sort,
            sta_sort,
        )
        from repro.core import sort_arrays

        batch = rng.uniform(0, 1e6, (10, 70)).astype(np.float32)
        results = [
            sort_arrays(batch), sta_sort(batch), segmented_sort(batch),
            bitonic_sort_batch(batch), odd_even_sort_batch(batch),
            merge_sort_batch(batch),
        ]
        for out in results[1:]:
            assert np.array_equal(results[0], out)
