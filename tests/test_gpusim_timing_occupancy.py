"""Unit tests for repro.gpusim.timing and repro.gpusim.occupancy."""

import pytest

from repro.gpusim.device import K40C, MICRO
from repro.gpusim.grid import LaunchConfig
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.timing import CostModel, LaunchTiming, StepCost


class TestCostModel:
    def test_shared_much_cheaper_than_global(self):
        # The premise of Section 3.3: exploit shared memory.
        model = CostModel(K40C)
        assert model.shared_access() < model.global_access(1) / 5

    def test_global_cost_scales_with_transactions(self):
        model = CostModel(K40C)
        assert model.global_access(32) > model.global_access(1)

    def test_bank_conflicts_multiply_shared_cost(self):
        model = CostModel(K40C)
        assert model.shared_access(3) == pytest.approx(4 * model.shared_access(0))

    def test_divergence_penalty_zero_for_uniform(self):
        model = CostModel(K40C)
        assert model.divergence(1) == 0.0

    def test_divergence_penalty_grows_with_paths(self):
        model = CostModel(K40C)
        assert model.divergence(3) > model.divergence(2) > 0

    def test_latency_hiding_bounds(self):
        with pytest.raises(ValueError):
            CostModel(K40C, latency_hiding=1.0)
        with pytest.raises(ValueError):
            CostModel(K40C, latency_hiding=-0.1)

    def test_more_hiding_cheaper_global(self):
        lo = CostModel(K40C, latency_hiding=0.5)
        hi = CostModel(K40C, latency_hiding=0.95)
        assert hi.global_access(1) < lo.global_access(1)

    def test_alu_cost_linear(self):
        model = CostModel(K40C)
        assert model.alu(10) == pytest.approx(10 * model.alu(1))


class TestStepCost:
    def test_total_sums_components(self):
        c = StepCost(alu_cycles=1, global_cycles=2, shared_cycles=3,
                     divergence_cycles=4, sync_cycles=5)
        assert c.total == 15

    def test_merge_max_takes_componentwise_max(self):
        a = StepCost(alu_cycles=10, global_cycles=1)
        b = StepCost(alu_cycles=2, global_cycles=8)
        a.merge_max(b)
        assert a.alu_cycles == 10
        assert a.global_cycles == 8


class TestLaunchTiming:
    def test_single_wave(self):
        t = LaunchTiming(block_cycles=100, total_blocks=10,
                         concurrent_blocks=16, device=K40C)
        assert t.waves == 1
        assert t.total_cycles == 100

    def test_multiple_waves_round_up(self):
        t = LaunchTiming(block_cycles=100, total_blocks=33,
                         concurrent_blocks=16, device=K40C)
        assert t.waves == 3
        assert t.total_cycles == 300

    def test_milliseconds_positive(self):
        t = LaunchTiming(block_cycles=K40C.clock_hz / 1000, total_blocks=1,
                         concurrent_blocks=1, device=K40C)
        assert t.milliseconds == pytest.approx(1.0)


class TestOccupancy:
    def test_single_thread_blocks_limited_by_block_slots(self):
        # Phase 1's 1-thread blocks: 16 blocks/SM on Kepler.
        occ = compute_occupancy(K40C, LaunchConfig.create(1000, 1))
        assert occ.blocks_per_sm == K40C.max_blocks_per_sm
        assert occ.concurrent_blocks == 16 * 15

    def test_fat_blocks_limited_by_threads(self):
        occ = compute_occupancy(K40C, LaunchConfig.create(10, 1024))
        assert occ.blocks_per_sm == 2048 // 1024
        assert occ.limiting_factor == "threads"

    def test_shared_memory_limits_residency(self):
        # A block staging a 4000-float row uses 16 KB -> 3 blocks/SM.
        cfg = LaunchConfig.create(100, 200, 16_000)
        occ = compute_occupancy(K40C, cfg)
        assert occ.blocks_per_sm == 48 * 1024 // 16_000
        assert occ.limiting_factor == "shared_memory"

    def test_full_shared_memory_runs_alone(self):
        cfg = LaunchConfig.create(100, 32, K40C.shared_mem_per_block)
        occ = compute_occupancy(K40C, cfg)
        assert occ.blocks_per_sm == 1

    def test_at_least_one_block_resident(self):
        cfg = LaunchConfig.create(1, 1024, K40C.shared_mem_per_block)
        occ = compute_occupancy(K40C, cfg)
        assert occ.blocks_per_sm >= 1

    def test_active_warps(self):
        occ = compute_occupancy(K40C, LaunchConfig.create(100, 64))
        assert occ.warps_per_block == 2
        assert occ.active_warps_per_sm == occ.blocks_per_sm * 2

    def test_micro_device_scales_down(self):
        occ = compute_occupancy(MICRO, LaunchConfig.create(100, 32))
        assert occ.concurrent_blocks <= MICRO.max_blocks_per_sm * MICRO.sm_count
