"""The CI gate: statan over all of ``src/`` must be clean.

This is the enforcement point for the suite's contract — zero
unsuppressed findings, every suppression carrying a reason, no stale
baseline entries.  ``make lint`` runs the same analysis through the CLI;
this test keeps the gate active even where ``make`` is not in the loop.
"""

from __future__ import annotations

from pathlib import Path

from repro.statan import analyze_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def test_src_tree_is_statan_clean():
    result = analyze_paths([SRC], root=REPO_ROOT, baseline=load_baseline())
    assert result.files_analyzed > 50  # the whole tree, not a subset
    assert result.clean, "\n" + result.render_text()


def test_baseline_entries_all_carry_reasons():
    baseline = load_baseline()
    assert baseline.entries, "expected a seeded baseline"
    for entry in baseline.entries.values():
        assert entry.reason.strip(), f"baseline entry {entry.key} has no reason"
