"""The CI gate: statan over ``src/`` AND ``benchmarks/`` must be clean.

This is the enforcement point for the suite's contract — zero
unsuppressed findings, every suppression carrying a reason, no stale
baseline entries, no dead (unused) suppressions.  ``make lint`` runs the
same analysis through the CLI; this test keeps the gate active even
where ``make`` is not in the loop.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.statan import analyze_paths, analyze_source, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BENCHMARKS = REPO_ROOT / "benchmarks"


def test_src_and_benchmarks_are_statan_clean():
    result = analyze_paths(
        [SRC, BENCHMARKS], root=REPO_ROOT, baseline=load_baseline()
    )
    assert result.files_analyzed > 50  # the whole tree, not a subset
    assert result.clean, "\n" + result.render_text()


def test_benchmarks_are_actually_analyzed():
    result = analyze_paths(
        [BENCHMARKS], root=REPO_ROOT, baseline=load_baseline(),
        check_baseline_staleness=False,
    )
    assert result.files_analyzed >= 5, "benchmarks/ missing from the gate"


def test_benchmarks_scope_is_hygiene_and_determinism_only():
    # The concurrency rules (guarded-by, scratch-escape, lock-order,
    # crash-safety) reason about product invariants that benchmark
    # drivers don't carry; only hygiene + determinism apply there.
    source = textwrap.dedent("""
        import threading

        class Driver:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # guarded-by: _lock

            def bump(self):
                self._n += 1

        def leak(arena, shape, dtype):
            return arena.get("work", shape, dtype)

        def stamp():
            import time
            return time.time()
    """)
    in_bench = analyze_source(source, "benchmarks/bench_mod.py")
    # The nondeterminism finding still fires; the guarded-by and
    # scratch-escape ones do not.
    assert [f.rule for f in in_bench] == ["nondeterminism"]
    in_src = analyze_source(source, "src/repro/core/mod.py")
    assert {f.rule for f in in_src} == {
        "guarded-by", "scratch-escape", "nondeterminism",
    }


def test_baseline_entries_all_carry_reasons():
    baseline = load_baseline()
    assert baseline.entries, "expected a seeded baseline"
    for entry in baseline.entries.values():
        assert entry.reason.strip(), f"baseline entry {entry.key} has no reason"


def test_baseline_has_no_dead_entries():
    # The re-audit, continuously enforced: every baseline entry must
    # still match a live finding — a dead entry is a stale-baseline
    # finding, which fails the gate above; this pins the mechanism.
    result = analyze_paths(
        [SRC, BENCHMARKS], root=REPO_ROOT, baseline=load_baseline()
    )
    stale = [f for f in result.findings if f.rule == "stale-baseline"]
    assert stale == [], "\n".join(str(f) for f in stale)
