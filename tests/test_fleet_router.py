"""Unit tests for the fleet's routing policy — pure, clock-free, no
processes.

:class:`FleetRouter` is the fleet's whole decision core, so everything
that matters about dispatch — lane affinity, least-outstanding-rows
spill, the admission bound, the oversized-request escape hatch, the
failover door, and the seeded backpressure hints — is pinned here with
plain integers.
"""

import pytest

from repro.fleet import FleetRouter
from repro.fleet.router import DEFAULT_SPILL_FACTOR, DEFAULT_SPILL_SLACK_ROWS

pytestmark = pytest.mark.fleet

LANE = (64, "<f4")
OTHER_LANE = (128, "<f8")


def make(workers=2, *, bound=1000, **kwargs):
    router = FleetRouter(max_worker_queue_rows=bound, **kwargs)
    for worker_id in range(workers):
        router.add_worker(worker_id)
    return router


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FleetRouter(max_worker_queue_rows=0)
        with pytest.raises(ValueError):
            FleetRouter(max_worker_queue_rows=8, spill_factor=0.5)
        with pytest.raises(ValueError):
            FleetRouter(max_worker_queue_rows=8, spill_slack_rows=-1)
        with pytest.raises(ValueError):
            FleetRouter(max_worker_queue_rows=8, retry_jitter=-0.1)

    def test_defaults_documented(self):
        router = FleetRouter(max_worker_queue_rows=8)
        assert router.spill_factor == DEFAULT_SPILL_FACTOR
        assert router.spill_slack_rows == DEFAULT_SPILL_SLACK_ROWS


class TestAffinity:
    def test_lane_sticks_to_one_worker(self):
        # Within the slack allowance, a lane keeps landing on the worker
        # it first hit, even as its load pulls ahead of an idle peer.
        router = make(workers=4, spill_slack_rows=64)
        first = router.route(LANE, 8)
        assert first is not None
        for _ in range(5):
            assert router.route(LANE, 8) == first
        snap = router.snapshot()
        assert snap[first][1] == 48  # all 6 dispatches on one worker
        assert sum(out for _, out, _ in snap.values()) == 48

    def test_distinct_lanes_spread_across_workers(self):
        # First route picks the least-loaded worker, so distinct lanes
        # land on distinct workers while any worker is still idle.
        router = make(workers=2, spill_slack_rows=0)
        a = router.route(LANE, 10)
        b = router.route(OTHER_LANE, 10)
        assert {a, b} == {0, 1}

    def test_affinity_spills_past_factor_times_least(self):
        # slack=0, factor=2: affinity holds only while the lane's worker
        # carries <= 2x the least-loaded worker's rows.
        router = make(workers=2, spill_factor=2.0, spill_slack_rows=0)
        first = router.route(LANE, 100)  # first: 100, other: 0
        spilled = router.route(LANE, 100)  # 100 > 2*0 -> spill
        assert spilled is not None and spilled != first
        # Affinity follows the spill target (now 100 vs 100: bound holds).
        assert router.route(LANE, 50) == spilled

    def test_slack_defers_spill_when_fleet_near_idle(self):
        # With slack=64, 10 rows vs an idle worker is not "2x ahead".
        router = make(workers=2, spill_factor=2.0, spill_slack_rows=64)
        first = router.route(LANE, 10)
        assert router.route(LANE, 10) == first

    def test_dead_affinity_worker_is_abandoned(self):
        router = make(workers=2, spill_slack_rows=0)
        first = router.route(LANE, 10)
        router.mark_dead(first)
        survivor = router.route(LANE, 10)
        assert survivor is not None and survivor != first


class TestAdmission:
    def test_rejects_when_every_worker_full(self):
        router = make(workers=2, bound=100)
        assert router.route(LANE, 100) is not None
        assert router.route(OTHER_LANE, 100) is not None
        assert router.route(LANE, 1) is None

    def test_completion_restores_admission(self):
        router = make(workers=1, bound=100)
        worker = router.route(LANE, 100)
        assert router.route(LANE, 1) is None
        router.record_done(worker, 100)
        assert router.route(LANE, 1) == worker

    def test_oversized_request_admitted_only_on_idle_worker(self):
        # A request larger than the bound would otherwise be unservable;
        # it is admitted, but only onto a worker with nothing queued.
        router = make(workers=2, bound=100)
        big = router.route(LANE, 500)
        assert big is not None
        # Both workers: one holds 500 rows, the other is idle.
        assert router.route(OTHER_LANE, 500) is not None
        # Now nobody is idle: a further oversized request is declined.
        assert router.route((32, "<i4"), 500) is None

    def test_no_alive_workers_declines(self):
        router = make(workers=2)
        router.mark_dead(0)
        router.mark_dead(1)
        assert router.route(LANE, 1) is None
        assert router.alive_workers() == []


class TestFailover:
    def test_route_failover_ignores_admission_bound(self):
        router = make(workers=2, bound=100)
        router.route(LANE, 100)
        router.route(OTHER_LANE, 100)
        assert router.route(LANE, 50) is None  # normal door: full
        target = router.route_failover(LANE, 50)  # failover door: lands
        assert target is not None
        assert router.snapshot()[target][1] == 150

    def test_route_failover_none_only_when_no_survivors(self):
        router = make(workers=1)
        router.mark_dead(0)
        assert router.route_failover(LANE, 1) is None

    def test_forget_outstanding_zeroes_dead_worker(self):
        router = make(workers=2)
        worker = router.route(LANE, 64)
        router.mark_dead(worker)
        router.forget_outstanding(worker)
        alive, rows, reqs = router.snapshot()[worker]
        assert (alive, rows, reqs) == (False, 0, 0)


class TestBookkeeping:
    def test_record_done_never_goes_negative(self):
        router = make(workers=1)
        router.record_done(0, 999)
        assert router.outstanding_rows(0) == 0
        router.record_done(7, 10)  # unknown worker: ignored
        assert router.outstanding_rows() == 0

    def test_outstanding_rows_totals(self):
        router = make(workers=2, spill_slack_rows=0)
        router.route(LANE, 30)
        router.route(OTHER_LANE, 20)
        assert router.outstanding_rows() == 50


class TestRetryAfter:
    def test_floored_at_linger(self):
        router = make(workers=1, linger_s=0.02, retry_jitter=0.0)
        # Empty fleet at a high drain rate: the hint is still one linger.
        assert router.retry_after(1e9) == pytest.approx(0.02)

    def test_scales_with_deepest_queue(self):
        router = make(workers=2, linger_s=0.001, retry_jitter=0.0,
                      spill_slack_rows=0)
        router.route(LANE, 1000)  # deepest: 1000 rows
        router.route(OTHER_LANE, 10)
        assert router.retry_after(100.0) == pytest.approx(10.0)

    def test_no_rate_gives_two_lingers(self):
        router = make(workers=1, linger_s=0.01, retry_jitter=0.0)
        assert router.retry_after(None) == pytest.approx(0.02)
        assert router.retry_after(0.0) == pytest.approx(0.02)

    def test_jitter_bounded(self):
        router = make(workers=1, linger_s=0.01, retry_jitter=0.25,
                      retry_jitter_seed=3)
        base = 0.02  # no rate -> 2 * linger
        for _ in range(50):
            hint = router.retry_after(None)
            assert base <= hint <= base * 1.25

    def test_seeded_jitter_is_deterministic(self):
        # Same seed -> identical hint sequences (satellite: deterministic
        # backpressure under test, mirroring SortService retry_jitter_seed).
        a = make(workers=1, retry_jitter=0.25, retry_jitter_seed=42)
        b = make(workers=1, retry_jitter=0.25, retry_jitter_seed=42)
        hints_a = [a.retry_after(None) for _ in range(20)]
        hints_b = [b.retry_after(None) for _ in range(20)]
        assert hints_a == hints_b
        c = make(workers=1, retry_jitter=0.25, retry_jitter_seed=43)
        assert [c.retry_after(None) for _ in range(20)] != hints_a
