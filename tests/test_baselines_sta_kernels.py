"""Tests for the device-kernel STA pipeline and the kernel-level duel."""

import numpy as np
import pytest

from repro.baselines.sta_kernels import run_sta_on_device
from repro.core.kernels import run_arraysort_on_device
from repro.gpusim import GpuDevice


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestStaDeviceKernels:
    def test_sorts_batch(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (3, 40)).astype(np.float32)
        out, _ = run_sta_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_matches_host_sta(self, gpu, rng):
        from repro.baselines.sta import sta_sort

        batch = rng.uniform(-100, 100, (2, 30)).astype(np.float32)
        out, _ = run_sta_on_device(gpu, batch)
        assert np.array_equal(out, sta_sort(batch))

    def test_lean_variant(self, gpu, rng):
        batch = rng.uniform(0, 100, (2, 25)).astype(np.float32)
        out, pipeline = run_sta_on_device(
            gpu, batch, include_redundant_presort=False
        )
        assert np.array_equal(out, np.sort(batch, axis=1))
        # tagging + 2 sorts x 4 passes x 3 kernels = 25 launches
        assert len(pipeline.launches) == 1 + 2 * 4 * 3

    def test_full_variant_launch_count(self, gpu, rng):
        batch = rng.uniform(0, 100, (2, 25)).astype(np.float32)
        _, pipeline = run_sta_on_device(gpu, batch)
        assert len(pipeline.launches) == 1 + 3 * 4 * 3

    def test_no_leaks(self, gpu, rng):
        run_sta_on_device(gpu, rng.uniform(0, 1, (2, 20)).astype(np.float32))
        assert gpu.memory.live_allocations() == 0

    def test_duplicates(self, gpu, rng):
        batch = rng.integers(0, 4, (3, 30)).astype(np.float32)
        out, _ = run_sta_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_rejects_1d(self, gpu):
        with pytest.raises(ValueError):
            run_sta_on_device(gpu, np.arange(8.0))


class TestKernelLevelDuel:
    """The paper's comparison at kernel granularity on identical data."""

    def test_sta_moves_far_more_global_data(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (2, 64)).astype(np.float32)
        _, gas = run_arraysort_on_device(gpu, batch)
        _, sta = run_sta_on_device(gpu, batch)
        # 12 radix passes each touching every element vs the three-phase
        # constant number of sweeps: at least 3x the transactions.
        assert sta.total_global_transactions > 3 * gas.total_global_transactions

    def test_sta_needs_an_order_of_magnitude_more_launches(self, gpu, rng):
        batch = rng.uniform(0, 1e6, (2, 40)).astype(np.float32)
        _, gas = run_arraysort_on_device(gpu, batch)
        _, sta = run_sta_on_device(gpu, batch)
        assert len(gas.launches) == 3
        assert len(sta.launches) >= 10 * len(gas.launches)

    def test_both_reach_identical_results(self, gpu, rng):
        batch = rng.uniform(-1e5, 1e5, (3, 48)).astype(np.float32)
        gas_out, _ = run_arraysort_on_device(gpu, batch)
        sta_out, _ = run_sta_on_device(gpu, batch)
        assert np.array_equal(gas_out, sta_out)
