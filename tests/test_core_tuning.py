"""Tests for the configuration auto-tuner."""

import numpy as np
import pytest

from repro.core import SortConfig, sort_arrays
from repro.core.tuning import sweep_bucket_sizes, tune_config
from repro.gpusim.device import C2050, K40C
from repro.workloads import clustered_arrays, uniform_arrays


class TestSweep:
    def test_sorted_by_cost(self):
        sweep = sweep_bucket_sizes(1000)
        costs = [ms for _, ms in sweep]
        assert costs == sorted(costs)

    def test_paper_default_near_front(self):
        """The paper's 20 must rank in the cheaper half of the sweep."""
        sweep = sweep_bucket_sizes(1000)
        order = [bucket for bucket, _ in sweep]
        assert order.index(20) < len(order) / 2

    def test_rejects_bad_candidates(self):
        with pytest.raises(ValueError):
            sweep_bucket_sizes(1000, candidates=[])
        with pytest.raises(ValueError):
            sweep_bucket_sizes(1000, candidates=[0])


class TestTuneConfig:
    def test_basic_result_shape(self):
        result = tune_config(1000)
        assert result.modeled_ms > 0
        assert result.bucket_size in [b for b, _ in result.candidates]
        assert result.config.sampling_rate == SortConfig().sampling_rate

    def test_tuned_config_sorts_correctly(self):
        result = tune_config(500)
        batch = uniform_arrays(50, 500, seed=51)
        out = sort_arrays(batch, config=result.config, verify=True)
        assert np.all(np.diff(out, axis=1) >= 0)

    def test_pilot_refines_sampling_rate(self):
        pilot = clustered_arrays(40, 1000, seed=52)
        result = tune_config(1000, pilot=pilot)
        assert result.config.sampling_rate in (0.05, 0.10, 0.20)

    def test_pilot_uniform_reproduces_paper_rate(self):
        # In the paper's own setting (bucket size 20, uniform data), the
        # diminishing-returns rule lands on the paper's 10 % (5 % is too
        # unbalanced, 20 % buys little).
        pilot = uniform_arrays(60, 1000, seed=53)
        result = tune_config(1000, pilot=pilot, bucket_candidates=(20,))
        assert result.config.sampling_rate == pytest.approx(0.10)

    def test_pilot_rate_never_below_balance_floor(self):
        pilot = uniform_arrays(60, 1000, seed=53)
        result = tune_config(1000, pilot=pilot)
        assert result.config.sampling_rate in (0.05, 0.10, 0.20)

    def test_pilot_shape_validated(self):
        with pytest.raises(ValueError):
            tune_config(100, pilot=np.arange(5.0))

    def test_rate_candidates_validated(self):
        with pytest.raises(ValueError):
            tune_config(100, pilot=uniform_arrays(5, 100, seed=1),
                        rate_candidates=[])

    def test_device_changes_choice_inputs(self):
        # Different devices may tune differently; both must at least run
        # and produce valid configs.
        for device in (K40C, C2050):
            result = tune_config(2000, device=device)
            assert result.config.bucket_size >= 1
