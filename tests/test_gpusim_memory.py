"""Unit tests for repro.gpusim.memory."""

import numpy as np
import pytest

from repro.gpusim.device import MICRO
from repro.gpusim.errors import (
    AllocationError,
    DeviceOutOfMemoryError,
    MemoryAccessError,
    SharedMemoryExceededError,
)
from repro.gpusim.memory import ALLOC_ALIGN, GlobalMemory, SharedMemory


@pytest.fixture
def gmem():
    return GlobalMemory(MICRO)


class TestGlobalAllocation:
    def test_alloc_returns_typed_array(self, gmem):
        arr = gmem.alloc(10, np.float32)
        assert len(arr) == 10
        assert arr.dtype == np.float32
        assert arr.space == "global"

    def test_alloc_like_copies_data(self, gmem):
        host = np.arange(16, dtype=np.int32)
        arr = gmem.alloc_like(host)
        assert np.array_equal(arr.copy_to_host(), host)

    def test_allocations_are_aligned(self, gmem):
        a = gmem.alloc(1, np.uint8)
        b = gmem.alloc(1, np.uint8)
        assert a.byte_offset % ALLOC_ALIGN == 0
        assert b.byte_offset % ALLOC_ALIGN == 0
        assert a.byte_offset != b.byte_offset

    def test_oom_raises_with_sizes(self, gmem):
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            gmem.alloc(gmem.capacity_bytes, np.uint8)
        assert exc.value.requested > exc.value.free

    def test_oom_counted_in_stats(self, gmem):
        with pytest.raises(DeviceOutOfMemoryError):
            gmem.alloc(gmem.capacity_bytes * 2, np.uint8)
        assert gmem.stats.failed_allocations == 1

    def test_negative_length_rejected(self, gmem):
        with pytest.raises(AllocationError):
            gmem.alloc(-1, np.float32)

    def test_zero_length_allowed(self, gmem):
        arr = gmem.alloc(0, np.float32)
        assert len(arr) == 0

    def test_free_returns_capacity(self, gmem):
        before = gmem.free_bytes
        arr = gmem.alloc(1000, np.float64)
        assert gmem.free_bytes < before
        gmem.free(arr)
        assert gmem.free_bytes == before

    def test_double_free_rejected(self, gmem):
        arr = gmem.alloc(10, np.float32)
        gmem.free(arr)
        with pytest.raises(AllocationError):
            gmem.free(arr)

    def test_use_after_free_rejected(self, gmem):
        arr = gmem.alloc(10, np.float32)
        gmem.free(arr)
        with pytest.raises(MemoryAccessError):
            arr.load(0)
        with pytest.raises(MemoryAccessError):
            arr.copy_to_host()

    def test_free_coalesces_spans(self, gmem):
        # Allocate everything in chunks, free all, then the full arena
        # must be allocatable again in one piece.
        chunk = gmem.capacity_bytes // 4
        arrs = [gmem.alloc(chunk, np.uint8) for _ in range(3)]
        for a in arrs:
            gmem.free(a)
        big = gmem.alloc(gmem.capacity_bytes - ALLOC_ALIGN, np.uint8)
        assert len(big) > 0

    def test_peak_tracking(self, gmem):
        a = gmem.alloc(1000, np.float32)
        peak_after_a = gmem.stats.peak_bytes
        gmem.free(a)
        b = gmem.alloc(10, np.float32)
        assert gmem.stats.peak_bytes == peak_after_a
        gmem.free(b)

    def test_live_allocations_counts(self, gmem):
        a = gmem.alloc(4, np.float32)
        b = gmem.alloc(4, np.float32)
        assert gmem.live_allocations() == 2
        gmem.free(a)
        assert gmem.live_allocations() == 1
        gmem.free(b)
        assert gmem.live_allocations() == 0

    def test_reset_clears_everything(self, gmem):
        arr = gmem.alloc(100, np.float32)
        gmem.reset()
        assert gmem.live_allocations() == 0
        assert gmem.free_bytes == gmem.capacity_bytes
        with pytest.raises(MemoryAccessError):
            arr.load(0)

    def test_custom_capacity(self):
        g = GlobalMemory(MICRO, capacity_bytes=4096)
        assert g.capacity_bytes == 4096
        with pytest.raises(DeviceOutOfMemoryError):
            g.alloc(4097, np.uint8)


class TestDeviceArrayAccess:
    def test_load_store_roundtrip(self, gmem):
        arr = gmem.alloc(8, np.float32)
        arr.store(3, 1.5)
        assert arr.load(3) == pytest.approx(1.5)

    def test_out_of_bounds_load(self, gmem):
        arr = gmem.alloc(8, np.float32)
        with pytest.raises(MemoryAccessError):
            arr.load(8)
        with pytest.raises(MemoryAccessError):
            arr.load(-1)

    def test_out_of_bounds_store(self, gmem):
        arr = gmem.alloc(8, np.float32)
        with pytest.raises(MemoryAccessError):
            arr.store(100, 0.0)

    def test_address_of_accounts_for_itemsize(self, gmem):
        arr = gmem.alloc(8, np.float64)
        assert arr.address_of(2) - arr.address_of(0) == 16

    def test_copy_from_host_size_mismatch(self, gmem):
        arr = gmem.alloc(8, np.float32)
        with pytest.raises(MemoryAccessError):
            arr.copy_from_host(np.zeros(9, dtype=np.float32))

    def test_fill(self, gmem):
        arr = gmem.alloc(5, np.int32)
        arr.fill(7)
        assert np.all(arr.copy_to_host() == 7)

    def test_as_ndarray_is_view(self, gmem):
        arr = gmem.alloc(4, np.float32)
        view = arr.as_ndarray()
        view[0] = 9.0
        assert arr.load(0) == pytest.approx(9.0)

    def test_dtype_conversion_on_h2d(self, gmem):
        arr = gmem.alloc(4, np.float32)
        arr.copy_from_host(np.arange(4))  # int host data coerced
        assert arr.copy_to_host().dtype == np.float32


class TestSharedMemory:
    def test_alloc_within_limit(self):
        sm = SharedMemory(MICRO)
        arr = sm.alloc(100, np.float32)
        assert len(arr) == 100
        assert arr.space == "shared"

    def test_exceeding_limit_raises(self):
        sm = SharedMemory(MICRO)
        with pytest.raises(SharedMemoryExceededError):
            sm.alloc(MICRO.shared_mem_per_block, np.float32)

    def test_bump_allocation_no_overlap(self):
        sm = SharedMemory(MICRO)
        a = sm.alloc(10, np.float32)
        b = sm.alloc(10, np.float32)
        a.fill(1.0)
        b.fill(2.0)
        assert np.all(a.copy_to_host() == 1.0)

    def test_used_and_free_bytes(self):
        sm = SharedMemory(MICRO)
        sm.alloc(10, np.float32)
        assert sm.used_bytes >= 40
        assert sm.used_bytes + sm.free_bytes == sm.limit

    def test_custom_limit_must_fit_device(self):
        with pytest.raises(SharedMemoryExceededError):
            SharedMemory(MICRO, limit_bytes=MICRO.shared_mem_per_block + 1)

    def test_negative_length_rejected(self):
        sm = SharedMemory(MICRO)
        with pytest.raises(AllocationError):
            sm.alloc(-5, np.float32)

    def test_paper_array_fits_k40c_shared(self):
        # Section 4: a 4000-peak spectrum (float32) fits 48 KB shared memory.
        from repro.gpusim.device import K40C

        sm = SharedMemory(K40C)
        arr = sm.alloc(4000, np.float32)
        assert len(arr) == 4000
