"""Real memory ceiling: the capacity path under ``RLIMIT_AS``.

The working-set model is only honest if a run actually fits the budget.
A child process measures its post-import address space, pins
``RLIMIT_AS`` to that plus a bounded headroom, then either:

* ``capacity`` — sorts a file-backed batch whose payload is larger than
  the headroom through :class:`CapacitySorter` (must succeed); or
* ``control`` — allocates the whole batch in RAM the way a one-shot
  sort would (must die with ``MemoryError``).

The control run proves the limit is real; the capacity run proves the
chunked path stays under it.  Linux-only (``/proc`` + ``RLIMIT_AS``).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.outofcore.spill import write_batch_file

pytestmark = [
    pytest.mark.capacity,
    pytest.mark.skipif(sys.platform != "linux", reason="RLIMIT_AS + /proc"),
]

ROWS = 12_288
COLS = 1024  # payload: 96 MiB of float64
HEADROOM_MIB = 64
BUDGET = "8M"

CHILD_SCRIPT = """\
import os, resource, sys

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

import numpy as np
from repro.outofcore.capacity import CapacitySorter
from repro.outofcore.spill import BatchFile

mode, input_path, spill_dir = sys.argv[1], sys.argv[2], sys.argv[3]
ROWS, COLS, HEADROOM_MIB = {rows}, {cols}, {headroom}

def vm_size_bytes():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("no VmSize in /proc/self/status")

limit = vm_size_bytes() + HEADROOM_MIB * 1024 * 1024
resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

if mode == "control":
    try:
        batch = np.empty((ROWS, COLS), dtype=np.float64)
        batch[:] = 1.0
        np.sort(batch, axis=1)
    except MemoryError:
        print("CONTROL_OOM")
        sys.exit(0)
    print("CONTROL_SURVIVED")
    sys.exit(1)

source = BatchFile(path=input_path, rows=ROWS, row_len=COLS,
                   dtype=np.float64)
sorter = CapacitySorter({budget!r}, planner=None)
result = sorter.run(source, spill_dir=spill_dir)
assert result.store.complete
print("CAPACITY_OK", result.stats.chunks_committed,
      result.stats.serial_fallback_chunks)
"""


@pytest.fixture(scope="module")
def child_env():
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_child(tmp_path, child_env, mode, input_path, spill_dir):
    script = tmp_path / "rlimit_child.py"
    script.write_text(CHILD_SCRIPT.format(
        rows=ROWS, cols=COLS, headroom=HEADROOM_MIB, budget=BUDGET
    ))
    return subprocess.run(
        [sys.executable, str(script), mode, str(input_path), str(spill_dir)],
        env=child_env, capture_output=True, text=True, timeout=110,
    )


def _ensure_rlimit_supported():
    import resource

    try:
        resource.getrlimit(resource.RLIMIT_AS)
    except (AttributeError, OSError):  # pragma: no cover
        pytest.skip("RLIMIT_AS not supported here")


def test_control_full_ram_sort_exceeds_ceiling(tmp_path, child_env):
    _ensure_rlimit_supported()
    proc = _run_child(tmp_path, child_env, "control", "-", "-")
    assert proc.returncode == 0, proc.stderr
    assert "CONTROL_OOM" in proc.stdout


def test_capacity_run_fits_under_ceiling(tmp_path, child_env):
    _ensure_rlimit_supported()
    input_path = tmp_path / "input.bin"
    rng_block = lambda i, start, take: (  # noqa: E731
        np.random.default_rng([41, i]).random((take, COLS))
    )
    write_batch_file(input_path, rng_block, rows=ROWS, row_len=COLS,
                     dtype=np.float64)
    spill_dir = tmp_path / "spill"
    proc = _run_child(tmp_path, child_env, "capacity", input_path, spill_dir)
    assert proc.returncode == 0, proc.stderr
    assert "CAPACITY_OK" in proc.stdout

    # Verify the output out here, with no rlimit: full byte-identity.
    from repro.outofcore.spill import BatchFile, SpillStore

    store = SpillStore(spill_dir, array_size=COLS, dtype=np.float64,
                       resume=True)
    assert store.rows_committed == ROWS
    source = BatchFile(path=input_path, rows=ROWS, row_len=COLS,
                       dtype=np.float64)
    for start, chunk in store.iter_chunks(verify=True):
        expected = np.sort(source.read(start, start + chunk.shape[0]),
                           axis=1)
        np.testing.assert_array_equal(np.asarray(chunk), expected)
