"""Unit tests for LaunchReport / PipelineReport aggregation."""

import numpy as np
import pytest

from repro.gpusim import GpuDevice, PipelineReport


@pytest.fixture
def gpu():
    return GpuDevice.micro()


def _launch_copy(gpu, name="copy", grid=1, stride=1):
    data = gpu.memory.alloc_like(np.arange(1024, dtype=np.float32))
    out = gpu.memory.alloc(1024, np.float32)

    def k(ctx, shared, src, dst):
        tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
        v = yield ctx.gload(src, (tid * stride) % 1024)
        yield ctx.gstore(dst, tid, v)

    report = gpu.launch(k, grid=grid, block=32, args=(data, out), name=name)
    gpu.memory.free(data)
    gpu.memory.free(out)
    return report


class TestLaunchReport:
    def test_summary_keys(self, gpu):
        summary = _launch_copy(gpu).summary()
        for key in ("kernel", "blocks", "threads_per_block", "ms", "cycles",
                    "global_transactions", "coalescing_efficiency",
                    "divergence_fraction", "waves", "concurrent_blocks"):
            assert key in summary

    def test_kernel_name_propagates(self, gpu):
        assert _launch_copy(gpu, name="mycopy").kernel_name == "mycopy"

    def test_byte_accounting(self, gpu):
        rep = _launch_copy(gpu)
        # 32 lanes x 4 bytes x (1 load + 1 store)
        assert rep.total_global_bytes == 32 * 4 * 2

    def test_coalescing_efficiency_bounds(self, gpu):
        perfect = _launch_copy(gpu, stride=1)
        awful = _launch_copy(gpu, stride=32)
        assert perfect.coalescing_efficiency == pytest.approx(1.0)
        assert 0.0 < awful.coalescing_efficiency < 0.1

    def test_divergence_fraction_zero_without_steps(self):
        from repro.gpusim.occupancy import Occupancy
        from repro.gpusim.profiler import LaunchReport
        from repro.gpusim.timing import LaunchTiming
        from repro.gpusim.device import MICRO

        rep = LaunchReport(
            kernel_name="empty", grid_blocks=1, threads_per_block=1,
            occupancy=Occupancy(1, "blocks", 1, 1),
            timing=LaunchTiming(0.0, 1, 1, MICRO),
            warp_stats=[],
        )
        assert rep.divergence_fraction == 0.0
        assert rep.coalescing_efficiency == 1.0

    def test_milliseconds_consistent_with_timing(self, gpu):
        rep = _launch_copy(gpu)
        assert rep.milliseconds == pytest.approx(rep.timing.milliseconds)


class TestPipelineReport:
    def test_sums_across_launches(self, gpu):
        pipe = PipelineReport()
        pipe.add(_launch_copy(gpu, name="a"))
        pipe.add(_launch_copy(gpu, name="b"))
        assert pipe.milliseconds == pytest.approx(
            sum(l.milliseconds for l in pipe.launches)
        )
        assert pipe.total_global_transactions == sum(
            l.total_global_transactions for l in pipe.launches
        )

    def test_by_kernel_merges_same_names(self, gpu):
        pipe = PipelineReport()
        pipe.add(_launch_copy(gpu, name="same"))
        pipe.add(_launch_copy(gpu, name="same"))
        breakdown = pipe.by_kernel()
        assert list(breakdown) == ["same"]
        assert breakdown["same"] == pytest.approx(pipe.milliseconds)

    def test_divergence_fraction_weighted(self, gpu):
        pipe = PipelineReport()
        pipe.add(_launch_copy(gpu))
        assert pipe.divergence_fraction == 0.0

    def test_empty_pipeline(self):
        pipe = PipelineReport()
        assert pipe.milliseconds == 0.0
        assert pipe.divergence_fraction == 0.0
        assert pipe.by_kernel() == {}
