"""Streaming resilience: lifecycle, at-least-once emission, checkpoints, DLQ.

Also hosts the ISSUE.md acceptance scenario: a 500-array streaming
session under a 20 % transient-fault plan must complete with zero
corrupted emitted rows and replay identical stats from the same seed.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import SortConfig, StreamingSorter
from repro.core.validation import is_sorted_rows, rows_are_permutations
from repro.gpusim.faults import FaultPlan
from repro.resilience import ResilientSorter
from repro.workloads import uniform_arrays

ARRAY_SIZE = 64


def resilient_streamer(plan=None, *, batch_arrays=8, on_batch=None, config=None):
    config = config or SortConfig()
    sorter = ResilientSorter(
        config, engine="vectorized", fault_plan=plan, sleep=None
    )
    return StreamingSorter(
        ARRAY_SIZE,
        config=config,
        batch_arrays=batch_arrays,
        on_batch=on_batch,
        sorter=sorter,
    )


class TestLifecycle:
    def test_flush_is_idempotent(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        s.push_slab(uniform_arrays(3, ARRAY_SIZE, seed=1))
        assert s.flush() == 1
        assert s.flush() == 0
        assert s.closed

    def test_close_is_idempotent_alias(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        s.push(uniform_arrays(1, ARRAY_SIZE, seed=2)[0])
        assert s.close() == 1
        assert s.close() == 0

    def test_close_with_empty_buffer_emits_nothing(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        assert s.close() == 0
        assert s.closed and s.results == []

    def test_push_after_close_rejected(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.push(np.zeros(ARRAY_SIZE, dtype=np.float32))
        with pytest.raises(RuntimeError, match="closed"):
            s.push_slab(np.zeros((2, ARRAY_SIZE), dtype=np.float32))

    def test_context_manager_closes(self):
        data = uniform_arrays(3, ARRAY_SIZE, seed=3)
        with StreamingSorter(ARRAY_SIZE, batch_arrays=4) as s:
            s.push_slab(data)
        assert s.closed
        assert np.array_equal(np.vstack(s.results), np.sort(data, axis=1))

    def test_context_manager_does_not_mask_exceptions(self):
        with pytest.raises(KeyError):
            with StreamingSorter(ARRAY_SIZE, batch_arrays=4) as s:
                s.push(np.zeros(ARRAY_SIZE, dtype=np.float32))
                raise KeyError("boom")
        # The in-flight exception aborted the session without a drain.
        assert not s.closed
        assert s.results == []

    def test_batch_ids_are_monotonic(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        s.push_slab(uniform_arrays(18, ARRAY_SIZE, seed=4))
        s.flush()
        assert s.emitted_batch_ids == [0, 1, 2, 3, 4]


class _FlakyConsumer:
    """Consumer that fails the first delivery of selected batch numbers."""

    def __init__(self, fail_on: set):
        self.fail_on = set(fail_on)
        self.deliveries = 0
        self.batches = []

    def __call__(self, batch: np.ndarray) -> None:
        self.deliveries += 1
        if self.deliveries in self.fail_on:
            raise IOError("consumer hiccup")
        self.batches.append(batch.copy())


class TestAtLeastOnce:
    def test_failed_consumer_delivery_is_retried_same_id(self):
        data = uniform_arrays(8, ARRAY_SIZE, seed=5)
        consumer = _FlakyConsumer(fail_on={1})
        s = StreamingSorter(
            ARRAY_SIZE, batch_arrays=4, on_batch=consumer
        )
        s.push_slab(data[:3])
        with pytest.raises(IOError):
            s.push(data[3])  # fills the batch; its emission fails
        assert s.emitted_batch_ids == []
        assert s.stats.batches_out == 0
        # Retry: same staging content re-emitted under the same id.
        s.push_slab(data[4:])
        s.flush()
        assert s.emitted_batch_ids == [0, 1]
        assert consumer.deliveries == 3  # batch 0 twice, batch 1 once
        assert np.array_equal(
            np.vstack(consumer.batches), np.sort(data, axis=1)
        )

    def test_failed_flush_keeps_session_open_then_retries(self):
        data = uniform_arrays(3, ARRAY_SIZE, seed=6)
        consumer = _FlakyConsumer(fail_on={1})
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=8, on_batch=consumer)
        s.push_slab(data)
        with pytest.raises(IOError):
            s.flush()
        assert not s.closed
        assert s.flush() == 1
        assert s.closed
        assert s.emitted_batch_ids == [0]

    def test_flaky_sorter_is_retried_same_id(self):
        class FlakySorter:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def sort(self, batch):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("device wedged")
                return self.inner.sort(batch)

        from repro.core import GpuArraySort

        data = uniform_arrays(4, ARRAY_SIZE, seed=7)
        flaky = FlakySorter(GpuArraySort(SortConfig()))
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4, sorter=flaky)
        with pytest.raises(RuntimeError):
            s.push_slab(data)
        s.flush()
        assert s.emitted_batch_ids == [0]
        assert np.array_equal(np.vstack(s.results), np.sort(data, axis=1))


class TestCheckpointRestore:
    def test_restore_resumes_identically(self):
        data = uniform_arrays(11, ARRAY_SIZE, seed=8)
        original = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        original.push_slab(data[:6])
        cp = original.checkpoint()

        original.push_slab(data[6:])
        original.flush()

        resumed = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        resumed.restore(cp)
        resumed.push_slab(data[6:])
        resumed.flush()

        # The resumed session re-emits only the batches after the
        # checkpoint — ids and contents line up with the original's tail.
        assert resumed.emitted_batch_ids == original.emitted_batch_ids[1:]
        assert all(
            np.array_equal(a, b)
            for a, b in zip(resumed.results, original.results[1:])
        )
        assert resumed.stats.arrays_in == original.stats.arrays_in

    def test_checkpoint_is_a_deep_snapshot(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        s.push_slab(uniform_arrays(2, ARRAY_SIZE, seed=9))
        cp = s.checkpoint()
        s.push_slab(uniform_arrays(2, ARRAY_SIZE, seed=10))
        assert cp.fill == 2
        assert cp.stats.arrays_in == 2
        assert s.stats.arrays_in == 4

    def test_restore_validates_shape(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=8)
        s.push_slab(uniform_arrays(6, ARRAY_SIZE, seed=11))
        cp = s.checkpoint()
        other = StreamingSorter(ARRAY_SIZE + 1, batch_arrays=8)
        with pytest.raises(ValueError, match="array_size"):
            other.restore(cp)
        small = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        with pytest.raises(ValueError, match="stages at most"):
            small.restore(cp)

    def test_restored_closed_session_stays_closed(self):
        s = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        s.close()
        cp = s.checkpoint()
        fresh = StreamingSorter(ARRAY_SIZE, batch_arrays=4)
        fresh.restore(cp)
        assert fresh.closed


@pytest.mark.faultinject
class TestQuarantineIntegration:
    def test_quarantined_rows_never_emitted_and_nothing_lost(self):
        data = uniform_arrays(24, ARRAY_SIZE, seed=12)
        plan = FaultPlan(21, corruption_rate=1.0)
        s = resilient_streamer(plan, batch_arrays=8)
        s.push_slab(data)
        s.flush()
        assert s.dead_letters is not None and len(s.dead_letters) > 0
        assert s.stats.arrays_quarantined == len(s.dead_letters)

        emitted = np.vstack(s.results)
        assert emitted.shape[0] == 24 - len(s.dead_letters)
        assert bool(np.all(is_sorted_rows(emitted)))
        # Multiset completeness: emitted + dead-lettered == input.
        recombined = np.vstack([emitted, s.dead_letters.payloads()])
        assert np.array_equal(
            np.sort(np.sort(recombined, axis=1), axis=0),
            np.sort(np.sort(data, axis=1), axis=0),
        )
        for letter in s.dead_letters:
            # Provenance points at the exact input row.
            row = letter.batch_id * 8 + letter.row_index
            assert np.array_equal(letter.payload, data[row])
            assert letter.reason == "validation-failed"

    def test_nan_rows_dead_lettered_with_reason(self):
        data = uniform_arrays(8, ARRAY_SIZE, seed=13)
        data[3, 5] = np.nan
        s = resilient_streamer(batch_arrays=8)
        s.push_slab(data)
        s.flush()
        assert len(s.dead_letters) == 1
        letter = next(iter(s.dead_letters))
        assert letter.reason == "nan-input"
        assert letter.row_index == 3
        assert np.vstack(s.results).shape[0] == 7


@pytest.mark.faultinject
class TestAcceptanceScenario:
    """The ISSUE.md acceptance bar, verbatim."""

    N, SIZE, BATCH = 500, 128, 100
    SEED = 2016

    def _run(self):
        data = uniform_arrays(self.N, self.SIZE, seed=self.SEED)
        plan = FaultPlan(self.SEED, kernel_fault_rate=0.2)
        sorter = ResilientSorter(
            SortConfig(), engine="vectorized", fault_plan=plan, sleep=None
        )
        streamer = StreamingSorter(
            self.SIZE, batch_arrays=self.BATCH, sorter=sorter
        )
        streamer.push_slab(data)
        streamer.flush()
        return data, streamer, sorter

    def test_completes_with_zero_corrupted_rows(self):
        data, streamer, sorter = self._run()
        emitted = np.vstack(streamer.results)
        assert emitted.shape == data.shape
        assert streamer.stats.arrays_quarantined == 0
        assert bool(np.all(is_sorted_rows(emitted)))
        assert bool(np.all(rows_are_permutations(emitted, data)))
        assert streamer.emitted_batch_ids == list(range(self.N // self.BATCH))
        # The fault plan actually fired, and the sorter reports the
        # recovery work it did.
        assert sorter.stats.faults_seen > 0
        assert sorter.stats.retries > 0
        assert sorter.stats.attempts > self.N // self.BATCH

    def test_same_seed_reproduces_identical_stats(self):
        _, _, first = self._run()
        _, _, second = self._run()
        assert first.stats.as_dict() == second.stats.as_dict()


class TestDeadLetterBound:
    """The DLQ must hold memory steady in unattended sessions: beyond the
    capacity the oldest letters age out and the drop is visible in stats."""

    def _poisoned_session(self, capacity):
        s = resilient_streamer(batch_arrays=4)
        if capacity != -1:
            s = StreamingSorter(
                ARRAY_SIZE,
                config=SortConfig(),
                batch_arrays=4,
                sorter=ResilientSorter(
                    SortConfig(), engine="vectorized", sleep=None
                ),
                dead_letter_capacity=capacity,
            )
        data = uniform_arrays(12, ARRAY_SIZE, seed=11)
        data[::2, 0] = np.nan  # 6 poisoned rows -> 6 dead letters
        s.push_slab(data)
        s.flush()
        return s

    def test_default_bound_applies(self):
        from repro.resilience import DEFAULT_DEAD_LETTER_CAPACITY

        s = self._poisoned_session(-1)
        assert s.dead_letters.capacity == DEFAULT_DEAD_LETTER_CAPACITY
        assert s.stats.arrays_quarantined == 6
        assert s.stats.dead_letters_dropped == 0

    def test_overflow_drops_oldest_and_counts(self):
        s = self._poisoned_session(2)
        assert len(s.dead_letters) == 2
        assert s.stats.dead_letters_dropped == 4
        assert s.dead_letters.dropped == 4
        # Quarantine accounting survives the drop: receipts, not bodies.
        assert s.stats.arrays_quarantined == 6
        # The survivors are the *newest* letters (drop-oldest).
        kept = [letter.batch_id * 4 + letter.row_index
                for letter in s.dead_letters]
        assert kept == sorted(kept)
        assert min(kept) >= 6  # the six oldest poisoned rows aged out

    def test_unbounded_opt_out(self):
        s = self._poisoned_session(None)
        assert s.dead_letters.capacity is None
        assert len(s.dead_letters) == 6
        assert s.stats.dead_letters_dropped == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="dead_letter_capacity"):
            StreamingSorter(ARRAY_SIZE, batch_arrays=4, dead_letter_capacity=0)

    def test_tenant_tagging_on_letters(self):
        from repro.resilience.quarantine import DeadLetterQueue

        q = DeadLetterQueue(capacity=8)
        row = np.zeros(4)
        q.add(batch_id=0, row_index=0, payload=row, tenant="alpha")
        q.add(batch_id=0, row_index=1, payload=row, tenant="alpha")
        q.add(batch_id=1, row_index=0, payload=row)  # untagged session
        letters = list(q)
        assert [l.tenant for l in letters] == ["alpha", "alpha", None]
        assert q.tenants() == {"alpha": 2, "": 1}
