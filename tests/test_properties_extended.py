"""Property-based tests for the second wave of components.

Covers: bitonic network algebra, odd-even correctness, pair sorting,
adaptive-strategy correctness, the streams scheduler, and MGF round
trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines.bitonic import bitonic_network, bitonic_sort_batch
from repro.baselines.oddeven import odd_even_sort_batch
from repro.core.adaptive import SAMPLING_STRATEGIES, select_splitters_adaptive
from repro.core.bucketing import bucketize
from repro.core.pairs import sort_pairs
from repro.gpusim.streams import SimTimeline, build_double_buffered_schedule

F32_BOUND = float(np.float32(1e30))
finite_f32 = st.floats(min_value=-F32_BOUND, max_value=F32_BOUND,
                       allow_nan=False, width=32)

small_batches = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 100)),
    elements=finite_f32,
)


class TestNetworkSorts:
    @given(batch=small_batches)
    @settings(max_examples=40, deadline=None)
    def test_bitonic_equals_npsort(self, batch):
        assert np.array_equal(bitonic_sort_batch(batch), np.sort(batch, axis=1))

    @given(batch=small_batches)
    @settings(max_examples=40, deadline=None)
    def test_odd_even_equals_npsort(self, batch):
        assert np.array_equal(odd_even_sort_batch(batch), np.sort(batch, axis=1))

    @given(log_n=st.integers(0, 7))
    @settings(max_examples=8)
    def test_bitonic_network_is_a_sorting_network(self, log_n):
        """0-1 principle: a comparator network sorts all inputs iff it
        sorts all 0-1 inputs.  Exhaustive for n <= 2^7 would be 2^128;
        we verify on all 0-1 vectors for n <= 16 and random ones above."""
        n = 2 ** log_n
        if n <= 16:
            vectors = np.array(
                [[(i >> b) & 1 for b in range(n)] for i in range(2 ** n)],
                dtype=np.float32,
            ) if n <= 12 else None
            if vectors is None:
                rng = np.random.default_rng(n)
                vectors = rng.integers(0, 2, (512, n)).astype(np.float32)
        else:
            rng = np.random.default_rng(n)
            vectors = rng.integers(0, 2, (256, n)).astype(np.float32)
        out = bitonic_sort_batch(vectors)
        assert np.array_equal(out, np.sort(vectors, axis=1))

    @given(log_n=st.integers(1, 8))
    @settings(max_examples=8)
    def test_network_stage_count(self, log_n):
        n = 2 ** log_n
        stages = list(bitonic_network(n))
        assert len(stages) == log_n * (log_n + 1) // 2


class TestPairProperties:
    @given(batch=small_batches)
    @settings(max_examples=40, deadline=None)
    def test_pairs_keys_sorted_and_pairing_preserved(self, batch):
        values = np.arange(batch.size, dtype=np.float32).reshape(batch.shape)
        res = sort_pairs(batch, values)
        assert np.all(np.diff(res.keys, axis=1) >= 0)
        for i in range(batch.shape[0]):
            got = sorted(zip(res.keys[i].tolist(), res.values[i].tolist()))
            want = sorted(zip(batch[i].tolist(), values[i].tolist()))
            assert got == want

    @given(batch=small_batches)
    @settings(max_examples=30, deadline=None)
    def test_pairs_stable_matches_numpy(self, batch):
        values = np.arange(batch.size, dtype=np.int64).reshape(batch.shape)
        res = sort_pairs(batch, values, stable=True)
        order = np.argsort(batch, axis=1, kind="stable")
        assert np.array_equal(res.values, np.take_along_axis(values, order, axis=1))


class TestAdaptiveProperties:
    @given(
        batch=small_batches,
        strategy=st.sampled_from(SAMPLING_STRATEGIES),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_strategy_yields_valid_partition(self, batch, strategy, seed):
        spl = select_splitters_adaptive(batch, strategy=strategy, seed=seed)
        res = bucketize(batch.copy(), spl.splitters)
        assert np.all(res.sizes.sum(axis=1) == batch.shape[1])
        # splitters sorted
        assert np.all(np.diff(spl.splitters.astype(np.float64), axis=1) >= 0)


class TestStreamsProperties:
    stage_lists = st.integers(1, 8).flatmap(
        lambda k: st.tuples(
            st.lists(st.floats(0, 50), min_size=k, max_size=k),
            st.lists(st.floats(0, 50), min_size=k, max_size=k),
            st.lists(st.floats(0, 50), min_size=k, max_size=k),
        )
    )

    @given(stages=stage_lists)
    @settings(max_examples=50)
    def test_schedule_equals_closed_form(self, stages):
        from repro.core.pipeline import pipeline_timeline

        up, comp, down = stages
        tl = SimTimeline()
        makespan = build_double_buffered_schedule(tl, up, comp, down)
        assert makespan == pytest.approx(
            pipeline_timeline(up, comp, down, overlap=True)
        )

    @given(stages=stage_lists)
    @settings(max_examples=50)
    def test_no_engine_overlaps_itself(self, stages):
        up, comp, down = stages
        tl = SimTimeline()
        build_double_buffered_schedule(tl, up, comp, down)
        by_engine = {}
        for op in tl.ops:
            by_engine.setdefault(op.engine, []).append((op.start_ms, op.finish_ms))
        for intervals in by_engine.values():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9


class TestTopKProperties:
    @given(batch=small_batches, k_frac=st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_topk_is_suffix_of_full_sort(self, batch, k_frac):
        from repro.core.topk import top_k

        k = max(1, int(k_frac * batch.shape[1]))
        out = top_k(batch, k)
        assert np.array_equal(out, np.sort(batch, axis=1)[:, -k:])

    @given(batch=small_batches)
    @settings(max_examples=25, deadline=None)
    def test_topk_full_k_equals_sort(self, batch):
        from repro.core.topk import top_k

        out = top_k(batch, batch.shape[1])
        assert np.array_equal(out, np.sort(batch, axis=1))


class TestStreamingProperties:
    @given(
        total=st.integers(1, 60),
        batch_arrays=st.integers(1, 20),
        cut_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_slab_partition_equals_full_sort(self, total, batch_arrays,
                                                 cut_seed):
        """However the stream is chopped into pushes, the concatenated
        output equals sorting the whole input."""
        from repro.core.streaming import StreamingSorter

        rng = np.random.default_rng(cut_seed)
        data = rng.uniform(0, 1e6, (total, 24)).astype(np.float32)
        sorter = StreamingSorter(24, batch_arrays=batch_arrays)
        offset = 0
        while offset < total:
            take = int(rng.integers(1, total - offset + 1))
            sorter.push_slab(data[offset : offset + take])
            offset += take
        sorter.flush()
        assert np.array_equal(np.vstack(sorter.results),
                              np.sort(data, axis=1))
        assert sorter.stats.arrays_out == total


class TestMergeSortProperties:
    @given(batch=small_batches)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_npsort(self, batch):
        from repro.baselines.mergesort import merge_sort_batch

        assert np.array_equal(merge_sort_batch(batch), np.sort(batch, axis=1))


class TestMgfProperties:
    @given(
        num=st.integers(0, 5),
        peaks=st.integers(1, 30),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_mgf_roundtrip_any_shape(self, num, peaks, seed, tmp_path_factory):
        from repro.workloads import generate_spectra, read_mgf, write_mgf

        path = tmp_path_factory.mktemp("mgf") / "f.mgf"
        spectra = generate_spectra(num, peaks, seed=seed)
        write_mgf(path, spectra)
        loaded = read_mgf(path)
        assert loaded.num_spectra == num
        if num:
            assert np.allclose(loaded.mz, spectra.mz, atol=1e-3)
