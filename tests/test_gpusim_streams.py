"""Tests for the streams/events/copy-engine timeline simulator."""

import pytest

from repro.core.pipeline import pipeline_timeline
from repro.gpusim.streams import (
    EngineKind,
    SimTimeline,
    build_double_buffered_schedule,
)


class TestBasicScheduling:
    def test_single_stream_serializes(self):
        tl = SimTimeline()
        s = tl.stream()
        s.copy_h2d(10)
        s.launch(20)
        s.copy_d2h(5)
        assert tl.run() == 35

    def test_two_streams_on_different_engines_overlap(self):
        tl = SimTimeline()
        a = tl.stream("a")
        b = tl.stream("b")
        a.copy_h2d(10)
        b.launch(10)
        assert tl.run() == 10  # full overlap: distinct engines

    def test_same_engine_is_exclusive(self):
        tl = SimTimeline()
        a = tl.stream("a")
        b = tl.stream("b")
        a.launch(10)
        b.launch(10)
        assert tl.run() == 20  # one compute engine

    def test_event_ordering(self):
        tl = SimTimeline()
        copies = tl.stream("copies")
        kernels = tl.stream("kernels")
        uploaded = tl.event("uploaded")
        copies.copy_h2d(10, record=uploaded)
        kernels.launch(5, waits_on=[uploaded])
        tl.run()
        kernel_op = tl.ops[1]
        assert kernel_op.start_ms == 10
        assert kernel_op.finish_ms == 15

    def test_wait_on_unrecorded_event_raises(self):
        tl = SimTimeline()
        s = tl.stream()
        ghost = tl.event("never-recorded")
        s.launch(5, waits_on=[ghost])
        with pytest.raises(ValueError, match="deadlock"):
            tl.run()

    def test_rejects_bad_engine(self):
        tl = SimTimeline()
        s = tl.stream()
        with pytest.raises(ValueError):
            s.enqueue("tensor-core", 5)

    def test_rejects_negative_duration(self):
        tl = SimTimeline()
        s = tl.stream()
        with pytest.raises(ValueError):
            s.launch(-1)

    def test_empty_timeline(self):
        tl = SimTimeline()
        assert tl.makespan() == 0.0


class TestReporting:
    def test_engine_busy_accounting(self):
        tl = SimTimeline()
        s = tl.stream()
        s.copy_h2d(10)
        s.launch(20)
        s.copy_d2h(30)
        busy = tl.engine_busy_ms()
        assert busy == {EngineKind.H2D: 10, EngineKind.COMPUTE: 20,
                        EngineKind.D2H: 30}

    def test_utilization_fractions(self):
        tl = SimTimeline()
        a, b = tl.stream("a"), tl.stream("b")
        a.launch(10)
        b.copy_h2d(5)
        tl.run()
        util = tl.utilization()
        assert util[EngineKind.COMPUTE] == pytest.approx(1.0)
        assert util[EngineKind.H2D] == pytest.approx(0.5)

    def test_utilization_empty(self):
        assert SimTimeline().utilization()[EngineKind.COMPUTE] == 0.0


class TestDoubleBufferedSchedule:
    def test_matches_closed_form_pipeline(self):
        """The constructed stream schedule must equal the closed-form
        recurrence in repro.core.pipeline for the same stage durations."""
        cases = [
            ([3, 3, 3], [5, 5, 5], [2, 2, 2]),
            ([10, 1], [1, 10], [5, 5]),
            ([1] * 8, [4] * 8, [1] * 8),
            ([7], [2], [9]),
        ]
        for up, comp, down in cases:
            tl = SimTimeline()
            makespan = build_double_buffered_schedule(tl, up, comp, down)
            closed = pipeline_timeline(up, comp, down, overlap=True)
            assert makespan == pytest.approx(closed), (up, comp, down)

    def test_overlap_beats_serial(self):
        up, comp, down = [4.0] * 6, [4.0] * 6, [4.0] * 6
        tl = SimTimeline()
        overlapped = build_double_buffered_schedule(tl, up, comp, down)
        serial = sum(up) + sum(comp) + sum(down)
        assert overlapped < serial
        # steady state: one chunk per stage period -> ~ k*stage + 2 edges
        assert overlapped == pytest.approx(4.0 * 8)

    def test_compute_engine_saturated_when_compute_bound(self):
        up, comp, down = [1.0] * 10, [10.0] * 10, [1.0] * 10
        tl = SimTimeline()
        build_double_buffered_schedule(tl, up, comp, down)
        util = tl.utilization()
        assert util[EngineKind.COMPUTE] > 0.95

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            build_double_buffered_schedule(SimTimeline(), [1], [1, 2], [1])
