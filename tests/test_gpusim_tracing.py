"""Tests for the memory-access tracer."""

import numpy as np
import pytest

from repro.gpusim import GpuDevice, Tracer


@pytest.fixture
def gpu():
    return GpuDevice.micro()


def _copy_kernel(ctx, shared, src, dst):
    tid = ctx.thread_idx.x
    v = yield ctx.gload(src, tid)
    yield ctx.gstore(dst, tid, v)


def _strided_kernel(ctx, shared, src, dst):
    tid = ctx.thread_idx.x
    v = yield ctx.gload(src, tid * 32)
    yield ctx.gstore(dst, tid, v)


class TestTracer:
    def test_records_loads_and_stores(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        tracer = Tracer()
        gpu.launch(_copy_kernel, grid=1, block=32, args=(data, out),
                   trace=tracer)
        assert tracer.by_op() == {"GLD": 1, "GST": 1}

    def test_pattern_classification(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32 * 32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        tracer = Tracer()
        gpu.launch(_copy_kernel, grid=1, block=32, args=(data, out),
                   trace=tracer)
        gpu.launch(_strided_kernel, grid=1, block=32, args=(data, out),
                   trace=tracer)
        hist = tracer.pattern_histogram("GLD")
        assert hist.get("coalesced", 0) >= 1
        assert hist.get("strided", 0) >= 1

    def test_worst_accesses_surface_the_strided_load(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32 * 32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        tracer = Tracer()
        gpu.launch(_strided_kernel, grid=1, block=32, args=(data, out),
                   trace=tracer)
        worst = tracer.worst_accesses(1)[0]
        assert worst.op == "GLD"
        assert worst.transactions == 32

    def test_transactions_for_kernel(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        tracer = Tracer()
        report = gpu.launch(_copy_kernel, grid=1, block=32, args=(data, out),
                            trace=tracer, name="traced_copy")
        assert tracer.transactions_for("traced_copy") == \
            report.total_global_transactions

    def test_overflow_flag(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        tracer = Tracer(max_records=1)
        gpu.launch(_copy_kernel, grid=1, block=32, args=(data, out),
                   trace=tracer)
        assert len(tracer) == 1
        assert tracer.overflowed

    def test_clear(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        tracer = Tracer()
        gpu.launch(_copy_kernel, grid=1, block=32, args=(data, out),
                   trace=tracer)
        tracer.clear()
        assert len(tracer) == 0
        assert not tracer.overflowed

    def test_no_tracer_no_overhead_records(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))
        out = gpu.memory.alloc(32, np.float32)
        report = gpu.launch(_copy_kernel, grid=1, block=32, args=(data, out))
        assert report.total_global_transactions > 0  # runs fine untraced

    def test_rejects_bad_max_records(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)

    def test_phase2_staging_is_coalesced(self, gpu, rng):
        """Trace the paper's phase-2 kernel: its cooperative staging
        loads must classify as coalesced (Section 3.1 compliance)."""
        from repro.core.config import SortConfig
        from repro.core.kernels import run_arraysort_on_device

        # Route the launch through a traced device: re-run just phase 2
        # via the orchestrator with tracing by monkey-launching is
        # overkill; instead sort a tiny batch with trace plumbed through
        # a manual launch of the bucketing kernel.
        import numpy as np
        from repro.core.kernels import bucketing_kernel
        from repro.core.splitters import select_splitters

        batch = rng.uniform(0, 1e6, (2, 64)).astype(np.float32)
        cfg = SortConfig()
        p = cfg.num_buckets(64)
        spl = select_splitters(batch, cfg)
        d_data = gpu.memory.alloc_like(batch.ravel())
        d_split = gpu.memory.alloc_like(spl.splitters.ravel())
        d_sizes = gpu.memory.alloc(2 * p, np.int32)
        tracer = Tracer()

        def phase2_shared(sm):
            return {
                "row": sm.alloc(64, np.float32, "row"),
                "splitters": sm.alloc(p + 1, np.float64, "splitters"),
                "counts": sm.alloc(p, np.int32, "counts"),
                "offsets": sm.alloc(p, np.int32, "offsets"),
            }

        gpu.launch(
            bucketing_kernel, grid=2, block=p,
            args=(d_data, d_split, d_sizes, 64, p),
            shared_setup=phase2_shared, trace=tracer, name="phase2",
        )
        gld = [r for r in tracer.records if r.op == "GLD"]
        assert gld, "no global loads traced"
        coalesced = sum(1 for r in gld if r.pattern == "coalesced")
        assert coalesced / len(gld) > 0.5
