"""Checked-build sanitizer tests: each detector fires on a seeded bug.

The acceptance bar for the runtime sanitizer is demonstrative, not
abstract: a seeded data race, a seeded lock-order inversion, a stale
arena view read, and a write to the fleet's read-only slab half must
each be *caught*, with reports naming both sides of the conflict.  The
flip side is also asserted: with ``REPRO_SANITIZE`` unset every hook is
an identity/no-op and the product classes are structurally untouched.
"""

from __future__ import annotations

import pickle
import threading
import time

import numpy as np
import pytest

from repro.statan import runtime as rt

# ---------------------------------------------------------------------------
# fixtures


@pytest.fixture
def sanitized():
    """Sanitizer on, bookkeeping clean, restored afterwards."""
    was_enabled = rt.enabled()
    rt.enable()
    rt.reset()
    rt.set_raise_on_violation(True)
    yield
    rt.reset()
    rt.set_raise_on_violation(True)
    if not was_enabled:
        rt.disable()


@pytest.fixture
def unsanitized():
    """Sanitizer off (the default production state), restored afterwards."""
    was_enabled = rt.enabled()
    rt.disable()
    yield
    if was_enabled:
        rt.enable()


# A guarded class instrumented unconditionally (``force=True``) so the
# fixture works whether or not the module was imported under
# REPRO_SANITIZE=1.  Instances must be built while the sanitizer is ON
# (so make_lock returns an instrumented lock).
@rt.sanitize_guarded(force=True)
class _Counter:
    def __init__(self):
        self._lock = rt.make_lock("_Counter._lock")
        self._n = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._n += 1

    def bump_racy(self):
        # The seeded bug: a write to a guarded field with no lock held.
        self._n += 1

    def read_locked(self):
        with self._lock:
            return self._n


# ---------------------------------------------------------------------------
# detector 1: lockset / guarded-by (the seeded race)


class TestGuardedAccess:
    def test_locked_accesses_are_clean(self, sanitized):
        counter = _Counter()
        counter.bump()
        assert counter.read_locked() == 1
        assert rt.violations() == []

    def test_seeded_race_detected_with_both_stacks(self, sanitized):
        counter = _Counter()
        # A legal access from another thread seeds the "other side" of
        # the conflict report.
        writer = threading.Thread(target=counter.bump, name="legal-writer")
        writer.start()
        writer.join()
        with pytest.raises(rt.GuardedAccessError) as exc_info:
            counter.bump_racy()
        report = exc_info.value.report
        assert report["check"] == "guarded-access"
        assert report["class"] == "_Counter"
        assert report["attr"] == "_n"
        assert "bump_racy" in report["stack"]
        assert "bump" in report["other_thread_stack"]
        assert [type(v) for v in rt.violations()] == [rt.GuardedAccessError]

    def test_external_reads_are_exempt(self, sanitized):
        # The static checker only examines ``self.X`` inside the class;
        # the runtime mirrors that: an outside reader is not a violation.
        counter = _Counter()
        counter.bump()
        assert counter._n == 1
        assert rt.violations() == []

    def test_init_is_exempt(self, sanitized):
        # Construction happens-before publication: ``self._n = 0`` in
        # __init__ runs without the lock and must not fire.
        counter = _Counter()
        assert rt.violations() == []
        del counter

    def test_record_only_mode_collects_instead_of_raising(self, sanitized):
        rt.set_raise_on_violation(False)
        counter = _Counter()
        counter.bump_racy()
        counter.bump_racy()
        kinds = {v.report["check"] for v in rt.violations()}
        assert kinds == {"guarded-access"}
        # ``self._n += 1`` is a read AND a write: two violations per call.
        modes = [v.report["mode"] for v in rt.violations()]
        assert modes == ["read", "write", "read", "write"]
        rt.reset()
        assert rt.violations() == []

    def test_condition_wrapping_sanitized_lock_counts_as_held(self, sanitized):
        # The service idiom: a Condition built over the instrumented
        # lock.  Acquiring the condition IS acquiring the lock.
        @rt.sanitize_guarded(force=True)
        class Waiter:
            def __init__(self):
                self._lock = rt.make_lock("Waiter._lock")
                self._wakeup = threading.Condition(self._lock)
                self._state = 0  # guarded-by: _lock

            def poke(self):
                with self._wakeup:
                    self._state += 1
                    self._wakeup.notify_all()
                    return self._state

        waiter = Waiter()
        assert waiter.poke() == 1
        assert rt.violations() == []

    def test_any_of_several_annotated_locks_suffices(self, sanitized):
        @rt.sanitize_guarded(force=True)
        class TwoDoors:
            def __init__(self):
                self._a = rt.make_lock("TwoDoors._a")
                self._b = rt.make_lock("TwoDoors._b")
                self._n = 0  # guarded-by: _a, _b

            def via_a(self):
                with self._a:
                    self._n += 1

            def via_b(self):
                with self._b:
                    self._n += 1

        doors = TwoDoors()
        doors.via_a()
        doors.via_b()
        assert rt.violations() == []


# ---------------------------------------------------------------------------
# detector 2: lock order (the seeded inversion)


class TestLockOrder:
    def test_consistent_order_records_edges_without_violation(self, sanitized):
        a = rt.make_lock("Consistent.A")
        b = rt.make_lock("Consistent.B")
        with a:
            with b:
                pass
        with a:
            with b:
                pass
        edges = rt.lock_order_edges()
        assert ("Consistent.A", "Consistent.B") in edges
        assert "test_statan_runtime" in edges[("Consistent.A", "Consistent.B")]
        assert rt.violations() == []

    def test_seeded_inversion_detected(self, sanitized):
        a = rt.make_lock("Inverted.A")
        b = rt.make_lock("Inverted.B")
        with a:
            with b:
                pass
        with pytest.raises(rt.LockOrderError) as exc_info:
            b.acquire()
            try:
                a.acquire()
            finally:
                b.release()
        report = exc_info.value.report
        assert report["check"] == "lock-order"
        assert report["edge"] == "Inverted.B->Inverted.A"
        assert "Inverted.A" in report["cycle"] and "Inverted.B" in report["cycle"]
        # Both first-seen stacks ride along in the report.
        assert any(stack for stack in report["stacks"].values())

    def test_three_lock_cycle_detected(self, sanitized):
        a = rt.make_lock("Ring.A")
        b = rt.make_lock("Ring.B")
        c = rt.make_lock("Ring.C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(rt.LockOrderError):
            with c:
                with a:
                    pass

    def test_rlock_reentry_adds_no_edges(self, sanitized):
        lock = rt.make_rlock("Reentrant.L")
        with lock:
            with lock:
                pass
        assert ("Reentrant.L", "Reentrant.L") not in rt.lock_order_edges()
        assert rt.violations() == []


# ---------------------------------------------------------------------------
# detector 3: view lifetime (the stale-epoch read)


class TestViewLifetime:
    def test_stale_arena_view_read_detected(self, sanitized):
        from repro.core.workspace import ScratchArena

        with ScratchArena() as arena:
            first = arena.get("work", (4, 4), np.float32)
            first[:] = 1.0  # fresh view: fully usable
            second = arena.get("work", (4, 4), np.float32)
            second[:] = 2.0  # the current view stays valid
            with pytest.raises(rt.StaleViewError) as exc_info:
                first[0, 0]
            report = exc_info.value.report
            assert "ScratchArena.get" in report["label"]
            assert report["view_epoch"] < report["region_epoch"]
            assert report["invalidated_at"]  # who reused the storage
            assert report["use_at"]  # who touched the corpse

    def test_distinct_keys_do_not_invalidate_each_other(self, sanitized):
        from repro.core.workspace import ScratchArena

        with ScratchArena() as arena:
            work = arena.get("work", (4, 4), np.float32)
            arena.get("sample", (2, 2), np.float32)
            work[:] = 3.0  # different tag: no epoch bump for "work"
            assert rt.violations() == []

    def test_derived_views_inherit_the_region(self, sanitized):
        from repro.core.workspace import ScratchArena

        with ScratchArena() as arena:
            first = arena.get("work", (4, 4), np.float32)
            row = first[0]
            arena.get("work", (4, 4), np.float32)
            with pytest.raises(rt.StaleViewError):
                row[0]

    def test_stale_view_in_ufunc_detected(self, sanitized):
        from repro.core.workspace import ScratchArena

        with ScratchArena() as arena:
            first = arena.get("work", (4, 4), np.float32)
            first[:] = 1.0
            total = first + 1.0  # fresh: fine, and the result is plain
            assert type(total) is np.ndarray
            arena.get("work", (4, 4), np.float32)
            with pytest.raises(rt.StaleViewError):
                first + 1.0

    def test_copy_of_fresh_view_is_untracked(self, sanitized):
        from repro.core.workspace import ScratchArena

        with ScratchArena() as arena:
            first = arena.get("work", (4, 4), np.float32)
            first[:] = 5.0
            kept = first.copy()
            arena.get("work", (4, 4), np.float32)
            # The copy predates the reuse; it must stay readable.
            assert float(kept[0, 0]) == 5.0

    def test_service_copy_false_view_goes_stale_at_next_dispatch(
        self, sanitized
    ):
        from repro.service import SortService

        rng = np.random.default_rng(7)
        with SortService(batch_target_rows=4, linger_ms=0.5) as svc:
            view = svc.submit(
                rng.uniform(size=(2, 16)), copy=False
            ).result(timeout=10)
            assert view.shape == (2, 16)  # valid until the next dispatch
            svc.submit(rng.uniform(size=(2, 16))).result(timeout=10)
            with pytest.raises(rt.StaleViewError) as exc_info:
                view[0, 0]
            assert "copy=False" in exc_info.value.report["label"]

    def test_readonly_guard_blocks_writes(self, sanitized):
        slab = np.zeros((4, 4), dtype=np.float32)
        guarded = rt.guard_readonly(slab, "fleet-input-slab:test")
        with pytest.raises(ValueError):
            guarded[0, 0] = 1.0
        assert float(slab[0, 0]) == 0.0  # the write never landed


# ---------------------------------------------------------------------------
# fleet serialization: sanitizer reports cross the process boundary


class TestFleetErrorSerialization:
    def test_sanitizer_error_round_trips(self):
        from repro.fleet.worker import describe_error, rebuild_error

        err = rt.GuardedAccessError(
            "SortService._batcher written without _lock",
            report={
                "attr": "_batcher",
                "stack": "worker-side stack",
                "other_thread_stack": "batcher-thread stack",
            },
        )
        kind, message, fields = describe_error(err)
        assert kind == "sanitizer"
        # The tuple must survive the fleet's queue (pickling).
        kind, message, fields = pickle.loads(
            pickle.dumps((kind, message, fields))
        )
        rebuilt = rebuild_error(kind, message, fields)
        assert isinstance(rebuilt, rt.SanitizerError)
        assert rebuilt.report["check"] == "guarded-access"
        assert rebuilt.report["attr"] == "_batcher"
        assert rebuilt.report["stack"] == "worker-side stack"
        assert rebuilt.report["other_thread_stack"] == "batcher-thread stack"
        assert "without _lock" in str(rebuilt)

    def test_lock_order_report_round_trips(self):
        from repro.fleet.worker import describe_error, rebuild_error

        err = rt.LockOrderError(
            "cycle", report={"cycle": "A -> B -> A", "edge": "B->A"}
        )
        rebuilt = rebuild_error(*describe_error(err))
        assert rebuilt.report["check"] == "lock-order"
        assert rebuilt.report["cycle"] == "A -> B -> A"


# ---------------------------------------------------------------------------
# disabled mode: identity hooks, untouched classes, bounded overhead


class TestDisabledMode:
    def test_make_lock_returns_plain_locks(self, unsanitized):
        assert type(rt.make_lock("X.Y")) is type(threading.Lock())
        assert type(rt.make_rlock("X.Y")) is type(threading.RLock())

    def test_track_view_and_guard_readonly_are_identity(self, unsanitized):
        arr = np.zeros(4, dtype=np.float32)
        assert rt.track_view(arr, ("k",), label="x") is arr
        assert rt.guard_readonly(arr, "x") is arr
        assert arr.flags.writeable

    def test_sanitize_guarded_is_identity(self, unsanitized):
        class Plain:
            def __init__(self):
                self._lock = rt.make_lock("Plain._lock")
                self._n = 0  # guarded-by: _lock

        decorated = rt.sanitize_guarded(Plain)
        assert decorated is Plain
        assert not hasattr(Plain, "_san_guarded")
        instance = Plain()
        instance._n = 5  # no descriptor, no check, no violation
        assert rt.violations() == []

    def test_new_epoch_is_a_no_op(self, unsanitized):
        before = dict(rt._STATE.regions)
        rt.new_epoch(("some", "region"))
        assert rt._STATE.regions == before

    def test_disabled_hook_overhead_within_two_percent(self, unsanitized):
        # The hot-path hooks compile down to ``if _sanitizer.enabled():``
        # when REPRO_SANITIZE is unset.  Budget: a sort touches the
        # arena a handful of times per batch; even at a generous 64
        # hook sites per batch the total must stay under 2% of one
        # bench-smoke cell's sort time.  Medians are interleaved so a
        # background frequency shift hits both measurements alike.
        from repro.core import sort_arrays

        rng = np.random.default_rng(0xBEEF)
        batch = rng.random((256, 512), dtype=np.float32)
        sort_arrays(batch)  # warm caches / one-time setup

        hook_calls = 4096
        sort_times, hook_times = [], []
        for _ in range(5):
            t0 = time.perf_counter()
            sort_arrays(batch)
            sort_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            for _ in range(hook_calls):
                rt.enabled()
            hook_times.append(time.perf_counter() - t0)
        sort_s = sorted(sort_times)[len(sort_times) // 2]
        per_hook_s = sorted(hook_times)[len(hook_times) // 2] / hook_calls
        assert 64 * per_hook_s <= 0.02 * sort_s, (
            f"disabled-sanitizer hook cost {64 * per_hook_s * 1e6:.2f}us "
            f"exceeds 2% of a {sort_s * 1e3:.2f}ms smoke-cell sort"
        )
