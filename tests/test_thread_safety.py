"""Regression tests for the guarded-by fixes statan surfaced.

Each test hammers one of the now-internally-locked classes from many
threads and asserts *exact* totals — a lost update (the pre-fix failure
mode of ``counter += 1`` without a lock) shows up as an off-by-N.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.workspace import ScratchArena
from repro.resilience.quarantine import DeadLetterQueue
from repro.service.batcher import DynamicBatcher, QueuedRequest
from repro.service.stats import StatsRecorder

THREADS = 8
PER_THREAD = 500


def hammer(worker) -> None:
    """Run ``worker(thread_index)`` in THREADS threads; re-raise failures."""
    errors = []

    def wrapped(i):
        try:
            worker(i)
        except Exception as exc:  # noqa: BLE001 - surfaced via errors below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestStatsRecorderConcurrency:
    def test_counter_increments_are_exact(self):
        recorder = StatsRecorder()

        def worker(_):
            for _ in range(PER_THREAD):
                recorder.record_submitted()
                recorder.record_rejected()
                recorder.record_failed()
                recorder.record_shed(2)
                recorder.record_deadline_missed()
                recorder.record_latency(0.001)
                recorder.record_batch(16)

        hammer(worker)
        total = THREADS * PER_THREAD
        snap = recorder.snapshot(queue_requests=0, queue_rows=0)
        assert snap.submitted == total
        assert snap.rejected == total
        assert snap.failed == total
        assert snap.shed == 2 * total
        assert snap.deadline_missed == total
        assert snap.completed == total
        assert snap.batches == total
        assert snap.batched_rows == 16 * total
        assert sum(snap.occupancy_histogram.values()) == total

    def test_latency_ring_stays_bounded_under_contention(self):
        recorder = StatsRecorder(latency_window=64)

        def worker(_):
            for _ in range(PER_THREAD):
                recorder.record_latency(0.002)

        hammer(worker)
        assert len(recorder._latencies) == 64
        percentiles = recorder.latency_percentiles()
        assert percentiles["p50"] == pytest.approx(2.0)

    def test_throughput_ema_concurrent_updates(self):
        recorder = StatsRecorder()

        def worker(_):
            for _ in range(PER_THREAD):
                recorder.record_throughput(1000, 0.01)

        hammer(worker)
        # All samples equal -> the EMA must sit exactly on the rate.
        assert recorder.rows_per_s() == pytest.approx(100_000.0)


class TestDeadLetterQueueConcurrency:
    def test_concurrent_adds_all_land(self):
        dlq = DeadLetterQueue()
        row = np.arange(4.0)

        def worker(i):
            for k in range(PER_THREAD):
                dlq.add(batch_id=i, row_index=k, payload=row, reason=f"t{i}")

        hammer(worker)
        assert len(dlq) == THREADS * PER_THREAD
        assert sum(dlq.reasons().values()) == THREADS * PER_THREAD
        assert dlq.payloads().shape == (THREADS * PER_THREAD, 4)

    def test_capacity_accounting_is_exact_under_contention(self):
        capacity = 100
        dlq = DeadLetterQueue(capacity=capacity)
        row = np.zeros(2)

        def worker(i):
            for k in range(PER_THREAD):
                dlq.add(batch_id=i, row_index=k, payload=row)

        hammer(worker)
        assert len(dlq) == capacity
        assert dlq.dropped == THREADS * PER_THREAD - capacity

    def test_drain_empties_atomically(self):
        dlq = DeadLetterQueue()
        row = np.zeros(2)
        for k in range(10):
            dlq.add(batch_id=0, row_index=k, payload=row)
        drained = dlq.drain()
        assert len(drained) == 10
        assert len(dlq) == 0


class TestDynamicBatcherConcurrency:
    @staticmethod
    def _request(seq: int) -> QueuedRequest:
        return QueuedRequest(
            seq=seq,
            arrays=np.zeros((2, 8)),
            deadline=None,
            priority=0,
            enqueued_at=0.0,
            future=None,
        )

    def test_concurrent_adds_keep_exact_totals(self):
        batcher = DynamicBatcher(
            target_rows=10**9, max_batch_rows=10**9, linger_s=60.0
        )

        def worker(i):
            for k in range(PER_THREAD):
                batcher.add(self._request(i * PER_THREAD + k))

        hammer(worker)
        assert batcher.total_requests == THREADS * PER_THREAD
        assert batcher.total_rows == 2 * THREADS * PER_THREAD
        dropped = batcher.drop_all()
        assert len(dropped) == THREADS * PER_THREAD
        assert batcher.total_requests == 0
        assert batcher.total_rows == 0


class TestScratchArenaClosedProperty:
    def test_closed_flips_under_lock(self):
        arena = ScratchArena()
        assert arena.closed is False
        arena.get("x", (4,), np.float64)
        arena.close()
        assert arena.closed is True
        with pytest.raises(RuntimeError):
            arena.get("x", (4,), np.float64)

    def test_concurrent_close_is_idempotent(self):
        arena = ScratchArena()
        arena.get("x", (128,), np.float64)

        def worker(_):
            for _ in range(50):
                arena.close()

        hammer(worker)
        assert arena.closed is True


class TestSortServiceClosedProperty:
    def test_closed_reflects_lifecycle(self):
        from repro.service import SortService

        service = SortService(batch_target_rows=4, linger_ms=1.0)
        try:
            assert service.closed is False
            future = service.submit(np.array([3.0, 1.0, 2.0]))
            assert np.array_equal(future.result(timeout=30), [1.0, 2.0, 3.0])
        finally:
            service.close()
        assert service.closed is True
