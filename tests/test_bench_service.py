"""Schema + gate tests for benchmarks/bench_service.py (tiny grid)."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_service  # noqa: E402

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def smoke_report():
    """One real run of the smallest grid — a second or two, not minutes."""
    return bench_service.run_grid(
        "smoke",
        size_mix=bench_service.parse_size_mix("1:0.7,4:0.3"),
        seed=0,
    )


class TestRunGrid:
    def test_schema_self_valid(self, smoke_report):
        assert bench_service.check_schema(smoke_report) == []

    def test_covers_every_cell(self, smoke_report):
        names = [r["name"] for r in smoke_report["results"]]
        assert names == [c[0] for c in bench_service.GRIDS["smoke"]]

    def test_both_sides_measured(self, smoke_report):
        for cell in smoke_report["results"]:
            for side in ("batched", "unbatched"):
                block = cell[side]
                assert block["requests_issued"] > 0
                assert block["completed"] > 0
                assert block["wall_seconds"] > 0
                assert block["throughput_rps"] > 0
                assert block["latency_ms"]["p99"] >= block["latency_ms"]["p50"]
            assert cell["speedup_batched_vs_unbatched"] > 0

    def test_service_stats_embedded(self, smoke_report):
        for cell in smoke_report["results"]:
            stats = cell["service_stats"]
            assert stats["batches"] >= 1
            assert stats["batched_rows"] >= stats["batches"]
            # Coalescing must actually have happened: fewer batches than
            # completed requests.
            assert stats["batches"] < cell["batched"]["completed"]

    def test_speedup_summary_consistent(self, smoke_report):
        by_cell = smoke_report["speedups"]["batched_vs_unbatched_by_cell"]
        assert by_cell == {
            r["name"]: r["speedup_batched_vs_unbatched"]
            for r in smoke_report["results"]
        }
        assert smoke_report["speedups"]["batched_vs_unbatched_max"] == max(
            by_cell.values()
        )

    def test_gate_pass_fail_and_missing_cell(self, smoke_report):
        report = json.loads(json.dumps(smoke_report))  # work on a copy
        # The smoke grid has no load-mid cell: the gate must fail loudly,
        # not silently pass.
        assert bench_service.apply_gate(report, min_speedup=0.0) is False
        assert any("load-mid" in f for f in report["gate"]["failures"])
        # Gating against the smoke cell itself exercises both branches.
        assert bench_service.apply_gate(
            report, min_speedup=0.0, p99_budget_ms=1e9, cell_name="smoke"
        ) is True
        assert report["gate"]["passed"] is True
        assert bench_service.apply_gate(
            report, min_speedup=1e9, cell_name="smoke"
        ) is False
        assert report["gate"]["failures"]
        # p99 budget violation is its own failure mode
        assert bench_service.apply_gate(
            report, min_speedup=0.0, p99_budget_ms=-1e9, cell_name="smoke"
        ) is False
        assert any("p99" in f for f in report["gate"]["failures"])
        # gate block itself must stay schema-valid
        assert bench_service.check_schema(report) == []

    def test_json_round_trip(self, smoke_report, tmp_path):
        out = tmp_path / "report.json"
        out.write_text(json.dumps(smoke_report))
        assert bench_service.check_schema(json.loads(out.read_text())) == []


class TestCheckSchema:
    def test_rejects_wrong_schema_tag(self):
        assert bench_service.check_schema({"schema": "nope"})
        assert bench_service.check_schema({"schema": "bench-hotpath/v2"})

    def test_rejects_empty_results(self):
        errors = bench_service.check_schema(
            {"schema": bench_service.SCHEMA, "results": [], "speedups": {}}
        )
        assert any("non-empty" in e for e in errors)

    def _valid_side(self):
        return {
            "requests_issued": 1, "completed": 1, "wall_seconds": 1.0,
            "throughput_rps": 1.0, "throughput_rows_per_s": 1.0,
            "latency_ms": {"p50": 1.0, "p95": 1.0, "p99": 1.0},
        }

    def _valid_cell(self, **overrides):
        cell = {
            "name": "x", "clients": 1, "total_requests": 1,
            "array_size": 1, "linger_ms": 1.0, "deadline_ms": None,
            "batched": self._valid_side(),
            "unbatched": self._valid_side(),
            "service_stats": {},
            "speedup_batched_vs_unbatched": 1.0,
        }
        cell.update(overrides)
        return cell

    def _report(self, cell):
        return {
            "schema": bench_service.SCHEMA,
            "results": [cell],
            "speedups": {"batched_vs_unbatched_max": 1.0},
        }

    def test_accepts_minimal_valid_report(self):
        assert bench_service.check_schema(self._report(self._valid_cell())) == []

    def test_rejects_missing_latency_percentile(self):
        cell = self._valid_cell()
        del cell["batched"]["latency_ms"]["p99"]
        errors = bench_service.check_schema(self._report(cell))
        assert any("p99" in e for e in errors)

    def test_rejects_missing_side(self):
        cell = self._valid_cell()
        del cell["unbatched"]
        errors = bench_service.check_schema(self._report(cell))
        assert any("unbatched" in e for e in errors)


class TestCommittedArtifact:
    """The repo-level BENCH_service.json must stay valid and gate-worthy."""

    @pytest.fixture()
    def artifact(self):
        path = REPO_ROOT / "BENCH_service.json"
        assert path.exists(), "BENCH_service.json missing from repo root"
        return json.loads(path.read_text())

    def test_artifact_schema_valid(self, artifact):
        assert bench_service.check_schema(artifact) == []

    def test_artifact_passed_its_gate(self, artifact):
        gate = artifact["gate"]
        assert gate["passed"] is True
        assert gate["min_speedup"] >= bench_service.DEFAULT_MIN_SPEEDUP

    def test_artifact_mid_cell_hits_two_x(self, artifact):
        """The PR's acceptance claim: >= 2x batched throughput at the
        mid traffic cell, p99 inside the linger + deadline budget."""
        cell = next(
            r for r in artifact["results"]
            if r["name"] == bench_service.GATE_CELL
        )
        assert cell["speedup_batched_vs_unbatched"] >= 2.0
        budget = cell["linger_ms"] + cell["deadline_ms"]
        assert cell["batched"]["latency_ms"]["p99"] <= budget
