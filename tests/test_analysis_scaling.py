"""Unit tests for the device-scaling study module."""

import pytest

from repro.analysis.scaling import (
    device_comparison,
    residency_knee,
    sm_scaling_curve,
)
from repro.gpusim.device import DEVICE_CATALOG, K40C, P100


class TestSmScaling:
    def test_monotone_speedup(self):
        points = sm_scaling_curve([1, 4, 15])
        speedups = [p.speedup for p in points]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups == sorted(speedups)

    def test_first_point_is_baseline(self):
        points = sm_scaling_curve([2, 8])
        assert points[0].speedup == pytest.approx(1.0)

    def test_rejects_empty_and_bad(self):
        with pytest.raises(ValueError):
            sm_scaling_curve([])
        with pytest.raises(ValueError):
            sm_scaling_curve([0, 4])

    def test_sublinear_at_high_sm_counts(self):
        points = sm_scaling_curve([1, 120])
        assert points[-1].speedup < 120


class TestDeviceComparison:
    def test_covers_catalog_minus_micro(self):
        rows = device_comparison()
        names = set(rows)
        assert "Tesla K40c" in names
        assert "Tesla P100" in names
        assert all("Micro" not in n for n in names)

    def test_rows_have_phases_and_total(self):
        rows = device_comparison()
        for row in rows.values():
            assert {"phase1", "phase2", "phase3", "total"} <= set(row)
            assert row["total"] == pytest.approx(
                row["phase1"] + row["phase2"] + row["phase3"]
            )

    def test_pascal_beats_kepler(self):
        rows = device_comparison()
        assert rows["Tesla P100"]["total"] < rows["Tesla K40c"]["total"]

    def test_custom_device_set(self):
        rows = device_comparison(devices={"p100": P100})
        assert list(rows) == ["Tesla P100"]


class TestResidencyKnee:
    def test_knee_positive_and_reasonable(self):
        result = residency_knee()
        # K40c: 15 SMs x <=16 blocks = at most 240 resident blocks.
        assert 15 <= result["knee_arrays"] <= 240 * 1

    def test_flat_below_knee(self):
        times = residency_knee()["times_at_multiples"]
        assert times[0.5] == pytest.approx(times[1.0], rel=0.01)

    def test_staircase_above_knee(self):
        times = residency_knee()["times_at_multiples"]
        assert times[2.0] == pytest.approx(2 * times[1.0], rel=0.05)


class TestNewCatalogEntries:
    def test_catalog_lookup(self):
        from repro.gpusim.device import get_device

        assert get_device("k80").cores_per_sm == 192
        assert get_device("P100").sm_count == 56

    def test_all_entries_validate(self):
        for spec in DEVICE_CATALOG.values():
            spec.validate()

    def test_p100_bandwidth_advantage(self):
        assert P100.mem_bandwidth_gbps > 2 * K40C.mem_bandwidth_gbps
