"""Schema + gate tests for benchmarks/bench_fleet.py.

The full load grid takes minutes; these tests run the smoke grid once
(real fleets, small request counts) and otherwise exercise
``check_schema``/``apply_gate`` on synthetic reports, so every gate
failure mode is covered without re-measuring throughput.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_fleet  # noqa: E402

pytestmark = [pytest.mark.fleet, pytest.mark.service]


@pytest.fixture(scope="module")
def smoke_report():
    """One real run of the smallest grid (includes the failover cell)."""
    return bench_fleet.run_grid(
        "smoke",
        size_mix=bench_fleet.parse_size_mix("64:1.0"),
        seed=0,
        linger_ms=5.0,
        worker_bound=bench_fleet.DEFAULT_WORKER_BOUND,
        batch_target=bench_fleet.DEFAULT_BATCH_TARGET,
    )


@pytest.mark.timeout(300)
class TestRunGrid:
    def test_schema_self_valid(self, smoke_report):
        assert bench_fleet.check_schema(smoke_report) == []

    def test_covers_every_cell(self, smoke_report):
        names = [r["name"] for r in smoke_report["results"]]
        grid_names = [c[0] for c in bench_fleet.GRIDS["smoke"]]
        # Smoke has no load-mid-1w so no derived p99 cell, but it does
        # append the failover-drain cell.
        assert names == grid_names + [bench_fleet.FAILOVER_CELL]

    def test_load_cells_measured(self, smoke_report):
        load = [r for r in smoke_report["results"] if r["kind"] == "load"]
        assert load
        for cell in load:
            assert cell["traffic"]["completed"] == cell["total_requests"]
            assert cell["throughput_rps"] > 0
            latency = cell["traffic"]["latency_ms"]
            assert latency["p99"] >= latency["p50"]

    def test_failover_cell_drains_cleanly(self, smoke_report):
        cell = next(r for r in smoke_report["results"]
                    if r["kind"] == "failover")
        assert cell["dropped"] == 0
        assert cell["completed"] == cell["requests_issued"]
        assert cell["correct"] == cell["requests_issued"]
        assert cell["failovers"] >= 1
        assert cell["inflight_at_kill"] > 0

    def test_scaling_summary_consistent(self, smoke_report):
        by_workers = smoke_report["scaling"]["throughput_rps_by_workers"]
        assert by_workers == {
            str(r["workers"]): r["throughput_rps"]
            for r in smoke_report["results"] if r["kind"] == "load"
        }
        # No 4-worker cell in the smoke grid -> no 4w/1w ratio.
        assert smoke_report["scaling"]["speedup_4w_vs_1w"] is None

    def test_json_round_trip(self, smoke_report, tmp_path):
        out = tmp_path / "report.json"
        out.write_text(json.dumps(smoke_report))
        assert bench_fleet.check_schema(json.loads(out.read_text())) == []


def _load_cell(name, workers, rps, p99=10.0):
    return {
        "name": name, "kind": "load", "workers": workers, "clients": 8,
        "total_requests": 64, "array_size": 64, "linger_ms": 5.0,
        "mode": "closed", "offered_rate_rps": None,
        "traffic": {
            "requests_issued": 64, "completed": 64, "wall_seconds": 1.0,
            "throughput_rps": rps,
            "latency_ms": {"p50": 1.0, "p95": 5.0, "p99": p99},
        },
        "fleet_stats": {},
        "throughput_rps": rps,
        "throughput_rows_per_s": rps * 64,
    }


def _failover_cell(**overrides):
    cell = {
        "name": bench_fleet.FAILOVER_CELL, "kind": "failover", "workers": 2,
        "requests_issued": 16, "completed": 16, "correct": 16,
        "dropped": 0, "failovers": 1, "redispatched": 9,
        "fleet_stats": {},
    }
    cell.update(overrides)
    return cell


def _report(*cells):
    results = list(cells)
    return {
        "schema": bench_fleet.SCHEMA,
        "grid": "load",
        "results": results,
        "scaling": {
            "throughput_rps_by_workers": {
                str(r["workers"]): r["throughput_rps"]
                for r in results if r.get("kind") == "load"
            },
            "speedup_4w_vs_1w": None,
        },
    }


def _gateable_report(*, rps_1w=100.0, rps_4w=350.0, p99_2x=50.0,
                     failover=None):
    return _report(
        _load_cell(bench_fleet.GATE_CELL_1W, 1, rps_1w),
        _load_cell(bench_fleet.GATE_CELL_4W, 4, rps_4w),
        _load_cell(bench_fleet.P99_CELL, 4, rps_1w * 2, p99=p99_2x),
        failover if failover is not None else _failover_cell(),
    )


class TestCheckSchema:
    def test_rejects_wrong_schema_tag(self):
        assert bench_fleet.check_schema({"schema": "nope"})
        assert bench_fleet.check_schema({"schema": "bench-service/v1"})

    def test_rejects_empty_results(self):
        errors = bench_fleet.check_schema(
            {"schema": bench_fleet.SCHEMA, "results": [], "scaling": {}}
        )
        assert any("non-empty" in e for e in errors)

    def test_accepts_minimal_valid_report(self):
        assert bench_fleet.check_schema(_gateable_report()) == []

    def test_rejects_missing_latency_percentile(self):
        report = _gateable_report()
        del report["results"][0]["traffic"]["latency_ms"]["p99"]
        assert any("p99" in e for e in bench_fleet.check_schema(report))

    def test_rejects_unknown_cell_kind(self):
        report = _gateable_report()
        report["results"][0]["kind"] = "mystery"
        errors = bench_fleet.check_schema(report)
        assert any("kind" in e for e in errors)

    def test_rejects_failover_cell_missing_counts(self):
        report = _gateable_report()
        del report["results"][-1]["dropped"]
        errors = bench_fleet.check_schema(report)
        assert any("dropped" in e for e in errors)

    def test_rejects_missing_scaling_block(self):
        report = _gateable_report()
        del report["scaling"]
        errors = bench_fleet.check_schema(report)
        assert any("scaling" in e for e in errors)

    def test_rejects_malformed_gate_block(self):
        report = _gateable_report()
        report["gate"] = {"passed": "yes"}
        errors = bench_fleet.check_schema(report)
        assert any("gate" in e for e in errors)


class TestApplyGate:
    def test_passes_good_report_and_stays_schema_valid(self):
        report = _gateable_report()
        assert bench_fleet.apply_gate(report, min_scaling=3.0) is True
        assert report["gate"]["passed"] is True
        assert report["gate"]["failures"] == []
        assert bench_fleet.check_schema(report) == []

    def test_fails_on_low_scaling(self):
        report = _gateable_report(rps_1w=100.0, rps_4w=250.0)
        assert bench_fleet.apply_gate(report, min_scaling=3.0) is False
        assert any("2.50x < 3.00x" in f for f in report["gate"]["failures"])

    def test_fails_on_p99_over_budget(self):
        report = _gateable_report(p99_2x=900.0)
        assert bench_fleet.apply_gate(
            report, min_scaling=3.0, p99_budget_ms=400.0
        ) is False
        assert any("p99" in f for f in report["gate"]["failures"])

    def test_fails_on_dropped_requests(self):
        report = _gateable_report(
            failover=_failover_cell(dropped=1, completed=15, correct=15)
        )
        assert bench_fleet.apply_gate(report, min_scaling=3.0) is False
        failures = report["gate"]["failures"]
        assert any("dropped" in f for f in failures)
        assert any("completed" in f for f in failures)

    def test_fails_on_corrupt_results(self):
        report = _gateable_report(failover=_failover_cell(correct=15))
        assert bench_fleet.apply_gate(report, min_scaling=3.0) is False
        assert any("byte-correct" in f for f in report["gate"]["failures"])

    def test_fails_when_no_failover_happened(self):
        report = _gateable_report(failover=_failover_cell(failovers=0))
        assert bench_fleet.apply_gate(report, min_scaling=3.0) is False
        assert any("no failover" in f for f in report["gate"]["failures"])

    def test_fails_loudly_on_missing_cells(self):
        report = _report(_load_cell("smoke-1w", 1, 100.0))
        assert bench_fleet.apply_gate(report, min_scaling=3.0) is False
        failures = report["gate"]["failures"]
        assert any(bench_fleet.GATE_CELL_4W in f for f in failures)
        assert any(bench_fleet.P99_CELL in f for f in failures)
        assert any(bench_fleet.FAILOVER_CELL in f for f in failures)


class TestCommittedArtifact:
    """The repo-level BENCH_fleet.json must stay valid and gate-worthy."""

    @pytest.fixture()
    def artifact(self):
        path = REPO_ROOT / "BENCH_fleet.json"
        assert path.exists(), "BENCH_fleet.json missing from repo root"
        return json.loads(path.read_text())

    def test_artifact_schema_valid(self, artifact):
        assert bench_fleet.check_schema(artifact) == []

    def test_artifact_passed_its_gate(self, artifact):
        gate = artifact["gate"]
        assert gate["passed"] is True
        assert gate["min_scaling_4w"] >= bench_fleet.DEFAULT_MIN_SCALING

    def test_artifact_acceptance_claims(self, artifact):
        """The PR's acceptance criteria, re-checked from the artifact:
        >= 3x single-worker throughput at 4 workers, p99 bounded under
        2x single-worker load, failover drain with zero drops."""
        cells = {r["name"]: r for r in artifact["results"]}
        one = cells[bench_fleet.GATE_CELL_1W]["throughput_rps"]
        four = cells[bench_fleet.GATE_CELL_4W]["throughput_rps"]
        assert four / one >= 3.0
        p99 = cells[bench_fleet.P99_CELL]["traffic"]["latency_ms"]["p99"]
        assert p99 <= artifact["gate"]["p99_budget_ms"]
        failover = cells[bench_fleet.FAILOVER_CELL]
        assert failover["dropped"] == 0
        assert failover["correct"] == failover["requests_issued"]
