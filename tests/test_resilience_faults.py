"""FaultPlan unit tests: the injected faults are deterministic and loud.

The whole resilience story rests on :class:`FaultPlan` being a *seeded
schedule*: a fault trajectory that differs between reruns is untestable.
These tests pin the determinism contract (same seed, same trace; reset
replays; decisions keyed by launch index, not call history) and the
integration with :class:`GpuDevice` launches.
"""

import numpy as np
import pytest

from repro.gpusim import GpuDevice
from repro.gpusim.errors import DeviceOutOfMemoryError, KernelFault
from repro.gpusim.faults import FaultPlan, FaultStats

pytestmark = pytest.mark.faultinject


def fault_trace(plan: FaultPlan, launches: int) -> list:
    """Classify each of ``launches`` consultations of ``plan``."""
    trace = []
    for _ in range(launches):
        try:
            plan.begin_launch()
            trace.append("ok")
        except DeviceOutOfMemoryError:
            trace.append("oom")
        except KernelFault:
            trace.append("fault")
    return trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = fault_trace(FaultPlan(7, kernel_fault_rate=0.3), 200)
        b = fault_trace(FaultPlan(7, kernel_fault_rate=0.3), 200)
        assert a == b
        assert "fault" in a and "ok" in a

    def test_different_seed_different_trace(self):
        a = fault_trace(FaultPlan(7, kernel_fault_rate=0.3), 200)
        b = fault_trace(FaultPlan(8, kernel_fault_rate=0.3), 200)
        assert a != b

    def test_reset_replays_identically(self):
        plan = FaultPlan(7, kernel_fault_rate=0.3, corruption_rate=0.5)
        a = fault_trace(plan, 100)
        stats_a = plan.stats.as_dict()
        plan.reset()
        assert plan.next_launch_index == 0
        b = fault_trace(plan, 100)
        assert a == b
        assert plan.stats.as_dict() == stats_a

    def test_corruption_keyed_by_launch_index(self):
        """The bit-flip position depends only on (seed, launch index)."""
        batches = []
        for _ in range(2):
            plan = FaultPlan(11, corruption_rate=1.0)
            batch = np.arange(40, dtype=np.float32).reshape(4, 10)
            index = plan.begin_launch()
            rows = plan.corrupt_rows(batch, index)
            assert rows.size == 1
            batches.append(batch)
        assert np.array_equal(batches[0], batches[1])


class TestFaultClasses:
    def test_rate_zero_never_faults(self):
        assert fault_trace(FaultPlan(3), 50) == ["ok"] * 50

    def test_rate_one_always_faults(self):
        assert fault_trace(FaultPlan(3, kernel_fault_rate=1.0), 50) == ["fault"] * 50

    def test_oom_window_is_half_open(self):
        plan = FaultPlan(3, oom_windows=[(2, 4)])
        assert fault_trace(plan, 6) == ["ok", "ok", "oom", "oom", "ok", "ok"]
        assert plan.stats.oom_faults == 2

    def test_oom_window_beats_kernel_fault(self):
        plan = FaultPlan(3, kernel_fault_rate=1.0, oom_windows=[(0, 1)])
        assert fault_trace(plan, 2) == ["oom", "fault"]

    def test_kernel_fault_names_the_launch(self):
        plan = FaultPlan(3, kernel_fault_rate=1.0)
        with pytest.raises(KernelFault, match=r"phase1.*launch 0"):
            plan.begin_launch("phase1")

    def test_corrupt_rows_flips_exactly_one_element(self):
        plan = FaultPlan(5, corruption_rate=1.0)
        batch = np.linspace(1, 2, 60, dtype=np.float64).reshape(6, 10)
        pristine = batch.copy()
        rows = plan.corrupt_rows(batch, plan.begin_launch())
        diffs = np.argwhere(batch != pristine)
        assert diffs.shape[0] == 1
        assert rows.tolist() == [int(diffs[0, 0])]
        assert plan.stats.rows_corrupted == 1

    def test_corrupt_rows_rate_zero_is_noop(self):
        plan = FaultPlan(5)
        batch = np.ones((3, 3), dtype=np.float32)
        assert plan.corrupt_rows(batch, plan.begin_launch()).size == 0
        assert np.all(batch == 1)

    def test_trusted_launch_never_faults(self):
        plan = FaultPlan(
            5, kernel_fault_rate=1.0, oom_windows=[(0, 100)], corruption_rate=1.0
        )
        for expected_index in range(10):
            assert plan.begin_trusted_launch() == expected_index
        assert plan.stats.launches_seen == 10
        assert plan.stats.kernel_faults == 0
        assert plan.stats.oom_faults == 0
        # ...but corruption still applies to trusted launches' output.
        batch = np.ones((2, 8), dtype=np.float32)
        index = plan.begin_trusted_launch()
        assert plan.corrupt_rows(batch, index).size == 1


class TestValidationAndStats:
    @pytest.mark.parametrize("kwargs", [
        {"kernel_fault_rate": -0.1},
        {"kernel_fault_rate": 1.5},
        {"corruption_rate": 2.0},
        {"oom_windows": [(-1, 3)]},
        {"oom_windows": [(5, 2)]},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(0, **kwargs)

    def test_total_faults_rolls_up(self):
        stats = FaultStats(kernel_faults=2, oom_faults=3, rows_corrupted=4)
        assert stats.total_faults == 9
        assert stats.as_dict()["oom_faults"] == 3


class TestDeviceIntegration:
    def _noop_kernel(self):
        def k(ctx, shared, *args):
            yield ctx.alu(1)
        return k

    def test_launch_raises_injected_fault(self):
        gpu = GpuDevice.micro(fault_plan=FaultPlan(1, kernel_fault_rate=1.0))
        with pytest.raises(KernelFault, match="injected transient fault"):
            gpu.launch(self._noop_kernel(), grid=1, block=4)

    def test_launch_oom_window_then_recovers(self):
        gpu = GpuDevice.micro(fault_plan=FaultPlan(1, oom_windows=[(0, 2)]))
        kernel = self._noop_kernel()
        for _ in range(2):
            with pytest.raises(DeviceOutOfMemoryError):
                gpu.launch(kernel, grid=1, block=4)
        report = gpu.launch(kernel, grid=1, block=4)
        assert report.grid_blocks == 1
        assert gpu.fault_plan.stats.oom_faults == 2

    def test_launch_corrupts_device_buffer(self):
        gpu = GpuDevice.micro(fault_plan=FaultPlan(2, corruption_rate=1.0))
        host = np.linspace(1, 2, 64, dtype=np.float32)
        arr = gpu.memory.alloc_like(host)
        gpu.launch(self._noop_kernel(), grid=1, block=4, args=(arr,))
        corrupted = arr.copy_to_host()
        assert (corrupted != host).sum() == 1
        assert gpu.fault_plan.stats.rows_corrupted == 1
        gpu.memory.free(arr)

    def test_clean_plan_leaves_launches_untouched(self):
        gpu = GpuDevice.micro(fault_plan=FaultPlan(2))
        host = np.linspace(1, 2, 64, dtype=np.float32)
        arr = gpu.memory.alloc_like(host)
        gpu.launch(self._noop_kernel(), grid=1, block=4, args=(arr,))
        assert np.array_equal(arr.copy_to_host(), host)
        assert gpu.fault_plan.stats.launches_seen == 1
        gpu.memory.free(arr)
