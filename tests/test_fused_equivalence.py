"""Fused vs unfused equivalence: the pin behind ``SortConfig.fuse_phases``.

The fused fast path (:mod:`repro.core.fused`) must be indistinguishable
from the paper-faithful three-phase pipeline: byte-identical sorted
batches, element-identical bucket ``sizes``/``offsets``, across dtypes,
duplicate-heavy rows, ragged +inf padding, and any shard decomposition.
"""

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig, sort_arrays
from repro.core.fused import bucket_ids_rows, fused_bucket_sort, searchsorted_rows
from repro.core.bucketing import bucket_ids_for_row

DTYPES = [np.int32, np.int64, np.float32, np.float64]


def _batch(rng, dtype, num_arrays=60, array_size=257):
    if np.dtype(dtype).kind == "f":
        return rng.uniform(0.0, 1e6, (num_arrays, array_size)).astype(dtype)
    return rng.integers(0, 2**30, (num_arrays, array_size)).astype(dtype)


def _assert_equivalent(batch):
    fused = GpuArraySort(SortConfig(fuse_phases=True)).sort(batch)
    unfused = GpuArraySort(SortConfig(fuse_phases=False)).sort(batch)
    assert fused.batch.tobytes() == unfused.batch.tobytes()
    assert fused.buckets is not None and unfused.buckets is not None
    assert np.array_equal(fused.buckets.sizes, unfused.buckets.sizes)
    assert np.array_equal(fused.buckets.offsets, unfused.buckets.offsets)
    assert np.array_equal(fused.batch, np.sort(batch, axis=1))


class TestSearchsortedRows:
    def test_matches_numpy_per_row(self, rng):
        a = np.sort(rng.uniform(0, 100, (40, 33)), axis=1)
        v = rng.uniform(-10, 110, (40, 7))
        for side in ("left", "right"):
            got = searchsorted_rows(a, v, side=side)
            expected = np.stack(
                [np.searchsorted(a[i], v[i], side=side) for i in range(40)]
            )
            assert np.array_equal(got, expected)

    def test_ties_respect_side(self):
        a = np.array([[1.0, 2.0, 2.0, 2.0, 5.0]])
        v = np.array([[2.0]])
        assert searchsorted_rows(a, v, side="left")[0, 0] == 1
        assert searchsorted_rows(a, v, side="right")[0, 0] == 4

    def test_queries_outside_range(self):
        a = np.array([[10.0, 20.0, 30.0]])
        v = np.array([[-1.0, 100.0]])
        assert searchsorted_rows(a, v).tolist() == [[0, 3]]

    def test_empty_queries_and_rows(self):
        assert searchsorted_rows(
            np.empty((3, 0)), np.ones((3, 2))
        ).tolist() == [[0, 0]] * 3
        assert searchsorted_rows(
            np.ones((2, 4)), np.empty((2, 0))
        ).shape == (2, 0)

    def test_rejects_mismatched_rows_and_bad_side(self):
        with pytest.raises(ValueError):
            searchsorted_rows(np.ones((2, 3)), np.ones((3, 1)))
        with pytest.raises(ValueError):
            searchsorted_rows(np.ones((2, 3)), np.ones((2, 1)), side="up")

    def test_bucket_ids_rows_matches_scalar_rule(self, rng):
        batch = rng.uniform(0, 100, (20, 64)).astype(np.float32)
        splitters = np.sort(rng.uniform(0, 100, (20, 5)), axis=1).astype(
            np.float32
        )
        ids = bucket_ids_rows(batch, splitters)
        for i in range(20):
            expected = bucket_ids_for_row(batch[i], splitters[i])
            assert np.array_equal(ids[i], expected)


class TestFusedEquivalence:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_uniform_batches(self, rng, dtype):
        _assert_equivalent(_batch(rng, dtype))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_duplicate_heavy_rows(self, rng, dtype):
        batch = rng.integers(0, 4, (50, 200)).astype(dtype)
        _assert_equivalent(batch)

    def test_ragged_inf_padding(self, rng):
        batch = rng.uniform(0, 1000, (30, 120)).astype(np.float32)
        lengths = rng.integers(1, 120, 30)
        for i, length in enumerate(lengths):
            batch[i, length:] = np.inf
        _assert_equivalent(batch)

    def test_constant_rows(self):
        _assert_equivalent(np.full((8, 64), 3.25, dtype=np.float64))

    def test_single_column_and_single_row(self, rng):
        _assert_equivalent(rng.uniform(0, 1, (40, 1)))
        _assert_equivalent(rng.uniform(0, 1, (1, 333)))

    def test_negative_and_mixed_sign(self, rng):
        _assert_equivalent(rng.uniform(-1e5, 1e5, (40, 180)).astype(np.float32))

    def test_fused_is_default(self):
        assert SortConfig().fuse_phases is True

    def test_sort_arrays_respects_flag(self, rng):
        batch = _batch(rng, np.float32)
        assert np.array_equal(
            sort_arrays(batch, config=SortConfig(fuse_phases=True)),
            sort_arrays(batch, config=SortConfig(fuse_phases=False)),
        )


class TestFusedBucketSort:
    def test_sorts_in_place_and_aliases_input(self, rng):
        work = rng.uniform(0, 100, (10, 50))
        splitters = np.sort(rng.uniform(0, 100, (10, 4)), axis=1)
        result = fused_bucket_sort(work, splitters, num_buckets=5)
        assert result.bucketed is work
        assert np.all(np.diff(work, axis=1) >= 0)
        assert result.offsets.dtype == np.int64
        assert np.array_equal(result.sizes.sum(axis=1), np.full(10, 50))

    def test_duplicate_splitters_give_empty_buckets(self):
        work = np.array([[5.0, 1.0, 9.0, 1.0]])
        splitters = np.array([[3.0, 3.0, 7.0]])
        result = fused_bucket_sort(work, splitters, num_buckets=4)
        # bucket 1 covers [3, 3) — empty by construction
        assert result.sizes[0].tolist() == [2, 0, 1, 1]

    def test_rejects_inconsistent_splitter_count(self):
        with pytest.raises(ValueError):
            fused_bucket_sort(np.ones((2, 4)), np.ones((2, 3)), num_buckets=2)
        with pytest.raises(ValueError):
            fused_bucket_sort(np.ones(4), np.ones((1, 1)), num_buckets=2)


class TestShardedDeterminism:
    """Row sharding must never change the answer — any worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_thread_matches_serial(self, rng, workers):
        batch = _batch(rng, np.float32, num_arrays=200, array_size=128)
        serial = GpuArraySort().sort(batch)
        sharded = GpuArraySort(parallel="thread", workers=workers).sort(batch)
        assert sharded.batch.tobytes() == serial.batch.tobytes()
        assert np.array_equal(sharded.buckets.sizes, serial.buckets.sizes)
        assert np.array_equal(sharded.buckets.offsets, serial.buckets.offsets)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_process_matches_serial(self, rng, workers):
        batch = _batch(rng, np.float64, num_arrays=150, array_size=96)
        serial = GpuArraySort().sort(batch)
        sharded = GpuArraySort(parallel="process", workers=workers).sort(batch)
        assert sharded.batch.tobytes() == serial.batch.tobytes()
        assert np.array_equal(sharded.buckets.offsets, serial.buckets.offsets)

    def test_sharded_unfused_matches_serial_unfused(self, rng):
        from repro.parallel import ThreadPoolEngine

        batch = _batch(rng, np.float32, num_arrays=120, array_size=80)
        cfg = SortConfig(fuse_phases=False)
        serial = GpuArraySort(cfg).sort(batch)
        engine = ThreadPoolEngine(workers=3, min_rows_per_shard=16,
                                  min_rows_per_worker=1)
        sharded = GpuArraySort(cfg, parallel=engine).sort(batch)
        assert sharded.batch.tobytes() == serial.batch.tobytes()
        assert np.array_equal(sharded.buckets.sizes, serial.buckets.sizes)
