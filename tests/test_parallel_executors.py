"""Unit tests for repro.parallel (shard planner + sharded executors)."""

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig
from repro.parallel import (
    ProcessPoolEngine,
    SerialEngine,
    Shard,
    ShardPlan,
    ThreadPoolEngine,
    plan_shards,
    resolve_executor,
)
from repro.parallel import executors as executors_mod
from repro.parallel.plan import (
    DEFAULT_MIN_ROWS_PER_SHARD,
    DEFAULT_MIN_ROWS_PER_WORKER,
)


class TestShardPlan:
    def test_covers_every_row_exactly_once(self):
        for num_rows in (1, 7, 64, 100, 1000):
            for workers in (1, 2, 3, 8):
                plan = plan_shards(
                    num_rows, workers,
                    min_rows_per_shard=1, min_rows_per_worker=1,
                )
                spans = [(s.start, s.stop) for s in plan]
                assert spans[0][0] == 0
                assert spans[-1][1] == num_rows
                for (_, stop), (start, _) in zip(spans, spans[1:]):
                    assert stop == start  # contiguous, no gaps/overlap

    def test_remainder_goes_to_leading_shards(self):
        plan = plan_shards(10, 3, min_rows_per_shard=1, min_rows_per_worker=1)
        assert [(s.start, s.stop) for s in plan] == [(0, 4), (4, 7), (7, 10)]

    def test_min_rows_per_shard_caps_shard_count(self):
        # 100 rows at >= 64/shard: only one shard no matter the workers.
        plan = plan_shards(100, 8, min_rows_per_shard=64,
                           min_rows_per_worker=1)
        assert len(plan) == 1
        plan = plan_shards(128, 8, min_rows_per_shard=64,
                           min_rows_per_worker=1)
        assert len(plan) == 2

    def test_default_floor_matches_constant(self):
        plan = plan_shards(DEFAULT_MIN_ROWS_PER_SHARD * 2, 16,
                           min_rows_per_worker=1)
        assert plan.num_rows == DEFAULT_MIN_ROWS_PER_SHARD * 2
        assert len(plan) == 2

    def test_default_fanout_guard(self):
        # Below the per-worker floor the plan degenerates to one shard, so
        # small batches (where sharding measured slower than serial) never
        # pay thread/process dispatch.
        assert len(plan_shards(DEFAULT_MIN_ROWS_PER_WORKER, 8)) == 1
        assert len(plan_shards(DEFAULT_MIN_ROWS_PER_WORKER * 2, 8)) == 2
        assert len(plan_shards(5000, 8)) == 1  # the 0.90x regression shape

    def test_zero_rows_yields_empty_plan(self):
        plan = plan_shards(0, 4)
        assert plan.num_rows == 0 and len(plan) == 0
        assert list(plan) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(10, 2, min_rows_per_shard=0)
        with pytest.raises(ValueError):
            plan_shards(10, 2, min_rows_per_worker=0)
        with pytest.raises(ValueError):
            Shard(index=0, start=5, stop=4)

    def test_plan_is_iterable_and_sized(self):
        plan = plan_shards(20, 2, min_rows_per_shard=1, min_rows_per_worker=1)
        assert isinstance(plan, ShardPlan)
        assert len(list(plan)) == len(plan) == 2


class TestResolveExecutor:
    def test_none_passthrough(self):
        assert resolve_executor(None) is None
        assert resolve_executor("none") is None

    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("serial", SerialEngine),
            ("thread", ThreadPoolEngine),
            ("threads", ThreadPoolEngine),
            ("process", ProcessPoolEngine),
            ("processes", ProcessPoolEngine),
        ],
    )
    def test_names(self, spec, cls):
        engine = resolve_executor(spec, workers=3)
        assert isinstance(engine, cls)
        assert engine.workers == 3

    def test_instance_passthrough(self):
        engine = ThreadPoolEngine(workers=2)
        assert resolve_executor(engine) is engine

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_executor("cluster")
        with pytest.raises(TypeError):
            resolve_executor(42)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ThreadPoolEngine(workers=0)


class TestEngines:
    def _batch(self, rng, num_arrays=150, array_size=120):
        return rng.uniform(0, 1e4, (num_arrays, array_size)).astype(np.float32)

    def test_serial_engine_matches_plain_sorter(self, rng):
        batch = self._batch(rng)
        plain = GpuArraySort().sort(batch)
        engine_result = GpuArraySort(parallel="serial").sort(batch)
        assert engine_result.batch.tobytes() == plain.batch.tobytes()
        assert np.array_equal(
            engine_result.buckets.offsets, plain.buckets.offsets
        )
        assert engine_result.parallel_info["engine"] == "serial"

    def test_thread_engine_sharded_info(self, rng):
        batch = self._batch(rng)
        engine = ThreadPoolEngine(workers=3, min_rows_per_shard=16,
                                  min_rows_per_worker=1)
        result = GpuArraySort(parallel=engine).sort(batch)
        assert result.parallel_info["engine"] == "thread"
        assert result.parallel_info["shards"] == 3
        assert not result.parallel_info["fell_back_to_serial"]
        assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_process_engine_round_trip(self, rng):
        batch = self._batch(rng)
        engine = ProcessPoolEngine(workers=2, min_rows_per_shard=16,
                                   min_rows_per_worker=1)
        result = GpuArraySort(parallel=engine).sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))
        assert result.parallel_info["engine"] == "process"
        assert engine.fallbacks == 0

    def test_small_batch_degenerates_to_serial_shard(self, rng):
        batch = self._batch(rng, num_arrays=10)
        engine = ThreadPoolEngine(workers=4)  # default 64-row floor
        result = GpuArraySort(parallel=engine).sort(batch)
        assert result.parallel_info["shards"] == 1
        assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_parallel_requires_vectorized_engine(self):
        with pytest.raises(ValueError):
            GpuArraySort(engine="sim", parallel="thread")

    def test_parallel_result_has_no_splitters(self, rng):
        batch = self._batch(rng)
        result = GpuArraySort(parallel="serial").sort(batch)
        assert result.splitters is None


class TestProcessCrashFallback:
    def test_worker_crash_falls_back_to_serial(self, rng, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("worker died")

        monkeypatch.setattr(executors_mod, "_sort_shard_shm", boom)
        batch = rng.uniform(0, 100, (120, 60)).astype(np.float64)
        expected = np.sort(batch, axis=1)
        engine = ProcessPoolEngine(workers=2, min_rows_per_shard=16,
                                   min_rows_per_worker=1)
        result = GpuArraySort(parallel=engine).sort(batch)
        assert np.array_equal(result.batch, expected)
        assert engine.fallbacks == 1
        assert result.parallel_info["fell_back_to_serial"] is True
        assert result.parallel_info["shards"] == 1

    def test_fallback_result_still_equivalent_to_serial(self, rng, monkeypatch):
        monkeypatch.setattr(
            executors_mod, "_sort_shard_shm",
            lambda *a, **k: (_ for _ in ()).throw(OSError("shm gone")),
        )
        batch = rng.uniform(0, 100, (120, 60)).astype(np.float32)
        serial = GpuArraySort().sort(batch.copy())
        engine = ProcessPoolEngine(workers=2, min_rows_per_shard=16,
                                   min_rows_per_worker=1)
        fallen = GpuArraySort(parallel=engine).sort(batch)
        assert fallen.batch.tobytes() == serial.batch.tobytes()
        assert np.array_equal(fallen.buckets.offsets, serial.buckets.offsets)


class TestIntegrationSurfaces:
    def test_streaming_sorter_accepts_parallel(self, rng):
        from repro.core import StreamingSorter

        sorter = StreamingSorter(
            array_size=64, batch_arrays=100, parallel="thread", workers=2,
            dtype=np.float32,
        )
        slab = rng.uniform(0, 100, (250, 64)).astype(np.float32)
        sorter.push_slab(slab)
        sorter.flush()
        assert sorter.stats.arrays_out == 250
        merged = np.vstack(sorter.results)
        assert np.all(np.diff(merged, axis=1) >= 0)

    def test_resilient_sorter_accepts_parallel(self, rng):
        from repro.resilience import ResilientSorter

        sorter = ResilientSorter(parallel="thread", workers=2)
        batch = rng.uniform(0, 100, (130, 50)).astype(np.float32)
        result = sorter.sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_gpu_array_sort_workers_kwarg(self, rng):
        batch = rng.uniform(0, 100, (130, 50)).astype(np.float32)
        result = GpuArraySort(parallel="thread", workers=2).sort(batch)
        assert np.array_equal(result.batch, np.sort(batch, axis=1))


class TestAttachShmView:
    def test_views_segment_at_offset(self):
        from multiprocessing import shared_memory

        from repro.parallel import attach_shm_view

        owner = shared_memory.SharedMemory(create=True, size=64)
        try:
            base = np.ndarray((16,), dtype=np.float32, buffer=owner.buf)
            base[:] = np.arange(16, dtype=np.float32)
            # Attach the back half (offset 8 floats = 32 bytes).
            shm, view = attach_shm_view(owner.name, (8,), "<f4", 32)
            try:
                assert np.array_equal(view, np.arange(8, 16, dtype=np.float32))
                view[0] = -1.0  # shared storage: writes flow back
                assert base[8] == -1.0
            finally:
                del view  # the view borrows shm.buf; drop it before close
                shm.close()
        finally:
            del base
            owner.close()
            owner.unlink()


class TestZeroCopyShmCrashFallback:
    """Crash fallback while the batch lives in an arena shared-memory
    slab — the ``zero_copy_shm`` path, where a dying worker *has* been
    mutating the caller's buffer in place."""

    def _slab_batch(self, rng, arena, rows=120, row_len=60):
        from repro.core.workspace import find_shared_slab

        view = arena.get_shared("work", (rows, row_len), np.float32)
        view[:] = rng.uniform(0, 100, (rows, row_len)).astype(np.float32)
        assert find_shared_slab(view) is not None
        return view

    def _engine(self):
        return ProcessPoolEngine(workers=2, min_rows_per_shard=16,
                                 min_rows_per_worker=1)

    def test_zero_copy_path_engages_on_arena_slab(self, rng):
        from repro.core.workspace import ScratchArena

        arena = ScratchArena()
        try:
            view = self._slab_batch(rng, arena)
            expected = np.sort(np.array(view, copy=True), axis=1)
            result = self._engine().sort_batch(view, SortConfig())
            assert result.parallel_info["zero_copy_shm"] is True
            assert result.parallel_info["engine"] == "process"
            assert np.array_equal(view, expected)
        finally:
            arena.close()

    def test_crash_with_slab_in_flight_matches_serial(self, rng, monkeypatch):
        from repro.core.workspace import ScratchArena

        def boom(*args, **kwargs):
            raise RuntimeError("worker died mid-shard")

        monkeypatch.setattr(executors_mod, "_sort_shard_shm", boom)
        arena = ScratchArena()
        try:
            view = self._slab_batch(rng, arena)
            expected = np.sort(np.array(view, copy=True), axis=1)
            engine = self._engine()
            result = engine.sort_batch(view, SortConfig())
            assert engine.fallbacks == 1
            assert result.parallel_info["fell_back_to_serial"] is True
            # Serial fallback sorted the slab rows byte-identically to
            # what the parallel path would have produced.
            assert view.tobytes() == expected.tobytes()
        finally:
            arena.close()

    def test_crash_after_partial_inplace_sort_still_correct(
        self, rng, monkeypatch
    ):
        # The zero-copy hazard: a worker dies *after* sorting some of
        # the caller's rows in place.  Row-local sorting only permutes
        # within a row, so the serial fallback over the half-mutated
        # slab must still produce exactly np.sort of the original.
        from repro.core.workspace import ScratchArena

        def boom(*args, **kwargs):
            raise RuntimeError("worker died mid-shard")

        monkeypatch.setattr(executors_mod, "_sort_shard_shm", boom)
        arena = ScratchArena()
        try:
            view = self._slab_batch(rng, arena)
            expected = np.sort(np.array(view, copy=True), axis=1)
            view[: view.shape[0] // 2].sort(axis=1)  # simulate the dead
            # worker's partial progress before the pool failure
            engine = self._engine()
            result = engine.sort_batch(view, SortConfig())
            assert engine.fallbacks == 1
            assert result.parallel_info["fell_back_to_serial"] is True
            assert view.tobytes() == expected.tobytes()
            assert result.batch is view
        finally:
            arena.close()
