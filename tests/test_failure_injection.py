"""Failure-injection tests: every error path fails loudly and cleans up.

An in-place sorter's worst failure mode is silent corruption; these
tests force each failure class (device OOM at every allocation point,
kernel faults mid-pipeline, bad launch shapes, poisoned inputs,
allocator misuse) and assert (a) a precise exception, (b) no leaked
device memory, (c) no half-written results masquerading as success.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig, sort_arrays
from repro.core.kernels import run_arraysort_on_device
from repro.gpusim import (
    DeviceOutOfMemoryError,
    GpuDevice,
    InvalidLaunchError,
    KernelFault,
    MemoryAccessError,
    SharedMemoryExceededError,
)
from repro.gpusim.device import MICRO
from repro.workloads import uniform_arrays


class TestDeviceOomPaths:
    def _device_with_bytes(self, capacity):
        return GpuDevice(MICRO, memory_capacity=capacity)

    def test_oom_on_data_allocation(self, rng):
        # Capacity below the data matrix itself.
        batch = rng.uniform(0, 1, (100, 100)).astype(np.float32)
        gpu = self._device_with_bytes(batch.nbytes // 2)
        with pytest.raises(DeviceOutOfMemoryError):
            run_arraysort_on_device(gpu, batch)
        assert gpu.memory.live_allocations() == 0

    def test_oom_on_metadata_allocation(self, rng):
        # Data fits; splitters/sizes push past the boundary.
        batch = rng.uniform(0, 1, (100, 100)).astype(np.float32)
        gpu = self._device_with_bytes(batch.nbytes + 1024)
        with pytest.raises(DeviceOutOfMemoryError):
            run_arraysort_on_device(gpu, batch)
        assert gpu.memory.live_allocations() == 0

    def test_sta_oom_mid_pipeline(self, rng):
        from repro.baselines.sta import StaSorter

        batch = rng.uniform(0, 1, (100, 100)).astype(np.float32)
        # Room for data + tags but not the radix scratch.
        gpu = self._device_with_bytes(int(batch.nbytes * 2.5))
        with pytest.raises(DeviceOutOfMemoryError):
            StaSorter(device=gpu).sort(batch)
        assert gpu.memory.live_allocations() == 0

    def test_oom_error_carries_sizes(self, rng):
        gpu = self._device_with_bytes(1024)
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            gpu.memory.alloc(10_000, np.float32)
        assert exc.value.requested >= 40_000
        assert exc.value.total == 1024


class TestKernelFaultPaths:
    def test_nan_rejected_by_kernel_path_too(self, rng):
        """NaN would silently vanish in the bucketing range checks (every
        'lo <= v < hi' is false); the kernel runner must refuse it up
        front like the vectorized engine does, leaking nothing."""
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1, (2, 50)).astype(np.float32)
        batch[1, 10] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            run_arraysort_on_device(gpu, batch)
        assert gpu.memory.live_allocations() == 0

    def test_exception_inside_kernel_has_context(self):
        gpu = GpuDevice.micro()

        def exploding(ctx, shared):
            yield ctx.alu(1)
            raise ZeroDivisionError("injected")

        with pytest.raises(KernelFault, match="injected"):
            gpu.launch(exploding, grid=2, block=4)

    def test_out_of_bounds_store_is_loud(self):
        gpu = GpuDevice.micro()
        arr = gpu.memory.alloc(4, np.float32)

        def oob(ctx, shared, a):
            yield ctx.gstore(a, 99, 1.0)

        with pytest.raises((KernelFault, MemoryAccessError)):
            gpu.launch(oob, grid=1, block=1, args=(arr,))
        # The in-bounds prefix must be untouched by the failed store.
        assert np.all(arr.copy_to_host() == 0)


class TestBadLaunchShapes:
    def test_zero_thread_block(self):
        gpu = GpuDevice.micro()

        def k(ctx, shared):
            yield ctx.alu(1)

        with pytest.raises((InvalidLaunchError, ValueError)):
            gpu.launch(k, grid=1, block=0)

    def test_block_beyond_device_limit(self):
        gpu = GpuDevice.micro()

        def k(ctx, shared):
            yield ctx.alu(1)

        with pytest.raises(InvalidLaunchError):
            gpu.launch(k, grid=1, block=MICRO.max_threads_per_block + 32)

    def test_shared_setup_overflow(self):
        gpu = GpuDevice.micro()

        def k(ctx, shared):
            yield ctx.alu(1)

        with pytest.raises(SharedMemoryExceededError):
            gpu.launch(
                k, grid=1, block=1,
                shared_setup=lambda sm: sm.alloc(10**6, np.float64),
            )


class TestPoisonedInputs:
    def test_nan_rejected_by_vectorized_engine(self):
        batch = uniform_arrays(4, 50, seed=1)
        batch[2, 7] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            sort_arrays(batch)

    def test_inf_handled_not_rejected(self):
        batch = uniform_arrays(4, 50, seed=1)
        batch[2, 7] = np.inf
        batch[3, 3] = -np.inf
        out = sort_arrays(batch)
        assert out[2, -1] == np.inf
        assert out[3, 0] == -np.inf

    def test_wrong_dimensionality(self):
        with pytest.raises(ValueError):
            sort_arrays(np.zeros((2, 3, 4)))

    def test_object_dtype_fails_loudly(self):
        batch = np.array([[object(), object()]], dtype=object)
        with pytest.raises(Exception):
            sort_arrays(batch)


class TestAllocatorMisuse:
    def test_free_foreign_array(self):
        from repro.gpusim.errors import AllocationError

        gpu_a = GpuDevice.micro()
        gpu_b = GpuDevice.micro()
        arr = gpu_a.memory.alloc(4, np.float32)
        with pytest.raises(AllocationError):
            gpu_b.memory.free(arr)
        gpu_a.memory.free(arr)

    def test_fragmentation_then_recovery(self, rng):
        """Alternate alloc/free until fragmented, then verify a big
        allocation still succeeds after freeing (coalescing works)."""
        gpu = GpuDevice.micro()
        keep = []
        toss = []
        for i in range(16):
            (keep if i % 2 else toss).append(
                gpu.memory.alloc(10_000, np.float32)
            )
        for arr in toss:
            gpu.memory.free(arr)
        for arr in keep:
            gpu.memory.free(arr)
        big = gpu.memory.alloc(
            (gpu.memory.capacity_bytes - 4096) // 4, np.float32
        )
        gpu.memory.free(big)
        assert gpu.memory.live_allocations() == 0


class TestVerifyCatchesCorruption:
    def test_verify_detects_a_buggy_pipeline(self, monkeypatch, rng):
        """Force a wrong result through and confirm verify=True trips."""
        from repro.core import array_sort
        from repro.core.config import SortConfig
        from repro.core.validation import ValidationFailure

        def corrupt_sort_buckets(bucketed, offsets):
            bucketed[:, 0] = -1.0  # invent data
            return bucketed

        monkeypatch.setattr(array_sort, "sort_buckets", corrupt_sort_buckets)
        batch = rng.uniform(10, 20, (4, 60)).astype(np.float32)
        with pytest.raises(ValidationFailure):
            GpuArraySort(SortConfig(fuse_phases=False), verify=True).sort(batch)

    def test_verify_detects_a_buggy_fused_pipeline(self, monkeypatch, rng):
        """Same trap for the fused fast path."""
        from repro.core import fused
        from repro.core.validation import ValidationFailure

        real = fused.fused_bucket_sort

        def corrupt_fused(work, splitters, num_buckets, **kwargs):
            result = real(work, splitters, num_buckets)
            work[:, 0] = -1.0  # invent data
            return result

        monkeypatch.setattr(fused, "fused_bucket_sort", corrupt_fused)
        batch = rng.uniform(10, 20, (4, 60)).astype(np.float32)
        with pytest.raises(ValidationFailure):
            GpuArraySort(verify=True).sort(batch)
