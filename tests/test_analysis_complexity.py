"""Tests for the paper's complexity model (Section 6 / Fig. 2)."""

import numpy as np
import pytest

from repro.analysis.complexity import (
    eq2_complexity,
    eq3_complexity,
    fit_scale,
    phase_complexities,
    theoretical_curve,
)
from repro.analysis.perfmodel import model_arraysort_ms
from repro.core.config import SortConfig
from repro.gpusim.device import K40C


class TestComplexityForms:
    def test_monotone_in_n(self):
        values = [eq2_complexity(n) for n in range(100, 4001, 100)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_eq3_monotone_in_n(self):
        values = [eq3_complexity(n) for n in range(100, 4001, 100)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_phase_terms_positive(self):
        terms = phase_complexities(1000)
        assert set(terms) == {"phase1", "phase2", "phase3"}
        assert all(v > 0 for v in terms.values())

    def test_phase2_constant_per_thread(self):
        # n/p with p = n/20 -> 20 elements per bucket, constant.
        t1 = phase_complexities(1000)["phase2"]
        t2 = phase_complexities(4000)["phase2"]
        assert t1 == pytest.approx(t2, rel=0.2)

    def test_rejects_bad_n(self):
        for fn in (eq2_complexity, eq3_complexity, phase_complexities):
            with pytest.raises(ValueError):
                fn(0)

    def test_small_n_degenerate_ok(self):
        # single-bucket regime must not blow up
        assert eq2_complexity(1) > 0
        assert eq3_complexity(5) > 0

    def test_config_sensitivity(self):
        # More sampling -> bigger phase-1 term.
        lo = phase_complexities(1000, SortConfig(sampling_rate=0.05))["phase1"]
        hi = phase_complexities(1000, SortConfig(sampling_rate=0.30))["phase1"]
        assert hi > lo


class TestFitScale:
    def test_perfect_fit_of_own_curve(self):
        sizes = list(range(100, 2001, 100))
        measured = [3.5 * eq2_complexity(n) for n in sizes]
        fit = fit_scale(sizes, measured)
        assert fit.scale == pytest.approx(3.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fig2_shape_agreement(self):
        """The paper's Fig. 2 claim: model times follow the theory curve.

        We fit the theory constant against the perf-model's times for
        N = 50 000 and n in [100, 2000] and require R^2 > 0.97.
        """
        sizes = list(range(100, 2001, 100))
        measured = [model_arraysort_ms(K40C, 50_000, n) for n in sizes]
        fit = fit_scale(sizes, measured)
        assert fit.r_squared > 0.97

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_scale([1, 2], [1.0])

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_scale([], [])

    def test_noise_reduces_r2_but_fit_survives(self, rng):
        sizes = list(range(100, 2001, 100))
        clean = np.array([2.0 * eq2_complexity(n) for n in sizes])
        noisy = clean * rng.uniform(0.9, 1.1, clean.size)
        fit = fit_scale(sizes, noisy)
        assert 0.9 < fit.r_squared <= 1.0
        assert fit.scale == pytest.approx(2.0, rel=0.1)


class TestTheoreticalCurve:
    def test_matches_form_scaled(self):
        sizes = [100, 500, 1000]
        curve = theoretical_curve(sizes, scale=2.0)
        expected = [2.0 * eq2_complexity(n) for n in sizes]
        assert np.allclose(curve, expected)

    def test_alternate_form(self):
        sizes = [100, 500]
        curve = theoretical_curve(sizes, form=eq3_complexity)
        assert np.allclose(curve, [eq3_complexity(n) for n in sizes])
