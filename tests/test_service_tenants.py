"""Multi-tenant QoS: WFQ fairness tags, quotas, per-tenant stats,
retry-after jitter, and the metrics export surface.

The batcher tests exercise the start-time-fair-queuing bookkeeping with
a synthetic clock and no threads; the service tests use tiny real
services; the jitter test is purely statistical on the submit path.
"""

import json

import numpy as np
import pytest

from repro.service import (
    DynamicBatcher,
    QueuedRequest,
    RejectedError,
    SortService,
    StatsRecorder,
    TenantQuota,
    collect_metrics,
    render_prometheus,
)

pytestmark = pytest.mark.service


def _request(seq, rows=1, row_len=8, tenant="default", deadline=None,
             priority=0, enqueued_at=0.0):
    return QueuedRequest(
        seq=seq,
        arrays=np.zeros((rows, row_len), dtype=np.float32),
        deadline=deadline,
        priority=priority,
        enqueued_at=enqueued_at,
        future=None,
        tenant=tenant,
    )


def _batcher(**kwargs):
    kwargs.setdefault("target_rows", 8)
    kwargs.setdefault("max_batch_rows", 32)
    kwargs.setdefault("linger_s", 10.0)
    return DynamicBatcher(**kwargs)


class TestWfqTags:
    def test_finish_tags_scale_inversely_with_weight(self):
        b = _batcher(tenant_weights={"heavy": 2.0, "light": 1.0})
        heavy = _request(0, rows=4, tenant="heavy")
        light = _request(1, rows=4, tenant="light")
        b.add(heavy)
        b.add(light)
        assert heavy.vfinish == pytest.approx(2.0)  # 4 rows / weight 2
        assert light.vfinish == pytest.approx(4.0)  # 4 rows / weight 1

    def test_backlog_accumulates_finish_tags(self):
        b = _batcher()
        tags = []
        for seq in range(3):
            r = _request(seq, rows=2, tenant="flood")
            b.add(r)
            tags.append(r.vfinish)
        assert tags == sorted(tags)
        assert tags[-1] == pytest.approx(6.0)  # 3 requests x 2 rows / 1.0

    def test_idle_tenant_earns_no_credit(self):
        """A tenant that sat out does not get to replay the past: its next
        vstart is floored at the advanced virtual time."""
        b = _batcher(target_rows=2)
        for seq in range(4):
            b.add(_request(seq, rows=2, tenant="busy"))
        lane = b.ready_lane(now=0.0)
        b.pop_batch(lane, now=0.0)  # advances the virtual clock
        late = _request(99, rows=2, tenant="latecomer")
        b.add(late)
        assert late.vstart >= 0.0
        busy_next = _request(100, rows=2, tenant="busy")
        b.add(busy_next)
        # The busy tenant's backlog tags stay ahead of the newcomer's.
        assert busy_next.vfinish > late.vfinish

    def test_flooder_sorts_behind_fresh_tenant_in_pop(self):
        """Equal urgency (no deadlines, default priority): the WFQ finish
        tag decides, so a flooding tenant's 5th queued row loses to
        another tenant's 1st."""
        b = _batcher(target_rows=1, max_batch_rows=2)
        for seq in range(5):
            b.add(_request(seq, rows=1, tenant="flood"))
        b.add(_request(5, rows=1, tenant="fresh"))
        lane = b.ready_lane(now=0.0)
        taken = b.pop_batch(lane, now=0.0)
        tenants = [r.tenant for r in taken]
        # The flooder's first request is legitimately first (earliest
        # finish tag); the fresh tenant beats the flooder's backlog.
        assert tenants == ["flood", "fresh"]

    def test_deadline_still_dominates_fairness(self):
        b = _batcher(target_rows=1, max_batch_rows=1)
        b.add(_request(0, rows=1, tenant="fresh"))
        urgent = _request(1, rows=1, tenant="flood", deadline=1.0)
        b.add(urgent)
        lane = b.ready_lane(now=0.0)
        taken = b.pop_batch(lane, now=0.0)
        assert taken == [urgent]

    def test_tenant_accounting_through_lifecycle(self):
        b = _batcher(target_rows=4)
        b.add(_request(0, rows=3, tenant="a"))
        b.add(_request(1, rows=1, tenant="b", deadline=5.0))
        assert b.tenant_queue_rows("a") == 3
        assert b.tenant_queue_requests("b") == 1
        assert b.tenant_backlog() == {"a": 3, "b": 1}
        assert b.shed_expired(now=10.0)  # b's deadline passed
        assert b.tenant_queue_rows("b") == 0
        lane = b.ready_lane(now=0.0, drain=True)
        b.pop_batch(lane, now=0.0)
        assert b.tenant_queue_rows("a") == 0
        assert b.tenant_backlog() == {}

    def test_idle_tenant_state_garbage_collected(self):
        b = _batcher(target_rows=1)
        b.add(_request(0, rows=1, tenant="transient"))
        lane = b.ready_lane(now=0.0)
        b.pop_batch(lane, now=0.0)
        # Still tracked: its finish tag (1.0) is ahead of the virtual
        # clock, so a quick return submission must start from it.
        assert "transient" in b._tenant_vfinish
        # Once another tenant's dispatches advance the clock past that
        # tag, the entry carries no information and is dropped.
        for seq in range(1, 4):
            b.add(_request(seq, rows=1, tenant="busy"))
        lane = b.ready_lane(now=0.0)
        b.pop_batch(lane, now=0.0)
        assert "transient" not in b._tenant_vfinish

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            _batcher(tenant_weights={"bad": 0.0})
        with pytest.raises(ValueError, match="default_tenant_weight"):
            _batcher(default_tenant_weight=-1.0)


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_queued_rows=0)
        with pytest.raises(ValueError):
            TenantQuota(max_queued_requests=-1)
        assert TenantQuota().max_queued_rows is None

    def test_int_shorthand_and_lookup(self):
        with SortService(batch_target_rows=16,
                         tenant_quotas={"small": 4}) as svc:
            assert svc.tenant_quota("small") == TenantQuota(max_queued_rows=4)
            assert svc.tenant_quota("other") is None

    def test_quota_rejection_is_tenant_scoped(self):
        """A tenant at quota is rejected with reason="tenant-quota" while
        another tenant is still admitted."""
        with SortService(batch_target_rows=64, linger_ms=50.0,
                         tenant_quotas={"capped": 2}) as svc:
            arrays = np.random.default_rng(0).uniform(size=(1, 16))
            f1 = svc.submit(arrays, tenant="capped")
            f2 = svc.submit(arrays, tenant="capped")
            with pytest.raises(RejectedError) as exc_info:
                svc.submit(arrays, tenant="capped")
            assert exc_info.value.reason == "tenant-quota"
            assert exc_info.value.tenant == "capped"
            assert exc_info.value.retry_after > 0
            f3 = svc.submit(arrays, tenant="free")  # shared queue has room
            svc.flush()
            for f in (f1, f2, f3):
                np.testing.assert_array_equal(
                    f.result(timeout=10), np.sort(arrays, axis=1)
                )
            stats = svc.stats()
        capped = stats.tenants["capped"]
        assert capped.rejected == 1
        assert capped.rejected_quota == 1
        assert capped.rejection_rate == pytest.approx(1 / 3)
        assert stats.tenants["free"].rejected == 0

    def test_default_tenant_quota_applies_to_unlisted(self):
        with SortService(batch_target_rows=64, linger_ms=50.0,
                         default_tenant_quota=TenantQuota(
                             max_queued_requests=1)) as svc:
            arrays = np.zeros((1, 8), dtype=np.float32)
            svc.submit(arrays, tenant="anyone")
            with pytest.raises(RejectedError) as exc_info:
                svc.submit(arrays, tenant="anyone")
            assert exc_info.value.reason == "tenant-quota"
            svc.flush()

    def test_empty_tenant_rejected(self):
        with SortService(batch_target_rows=16) as svc:
            with pytest.raises(ValueError, match="tenant"):
                svc.submit(np.zeros((1, 8), dtype=np.float32), tenant="")

    def test_per_tenant_latency_recorded(self):
        with SortService(batch_target_rows=4, linger_ms=0.5) as svc:
            rng = np.random.default_rng(1)
            futures = [
                svc.submit(rng.uniform(size=(1, 16)), tenant=t)
                for t in ("a", "b", "a")
            ]
            for f in futures:
                f.result(timeout=10)
            stats = svc.stats()
        assert stats.tenants["a"].completed == 2
        assert stats.tenants["b"].completed == 1
        assert stats.tenants["a"].latency_ms["p99"] > 0


class TestRetryJitter:
    """Anti-stampede satellite: retry_after hints are floored and carry a
    bounded random stretch so rejected fleets disperse."""

    def _rejected_hints(self, svc, count):
        arrays = np.zeros((8, 8), dtype=np.float32)
        hints = []
        for _ in range(count):
            with pytest.raises(RejectedError) as exc_info:
                svc.submit(arrays, tenant="flood")
            hints.append(exc_info.value.retry_after)
        return hints

    def _stuffed_service(self, **kwargs):
        # Stuff *below* the batch target so the lane cannot become ready
        # until the (long) linger expires — the queue provably stays full
        # while we probe, no matter how the threads get scheduled.
        svc = SortService(batch_target_rows=64, max_queue_rows=64,
                          linger_ms=2000.0, **kwargs)
        svc.submit(np.zeros((63, 8), dtype=np.float32))
        return svc

    def test_hints_disperse_within_bounds(self):
        svc = self._stuffed_service(retry_jitter_seed=123)
        try:
            hints = self._rejected_hints(svc, 40)
        finally:
            svc.close(drain=False)
        floor = max(svc.linger_ms / 1e3, 1e-3)
        base = 2 * floor  # no throughput EMA yet
        assert all(base <= h <= base * (1 + svc.retry_jitter) for h in hints)
        assert len(set(hints)) > 1  # genuinely dispersed
        spread = max(hints) - min(hints)
        assert spread > 0.05 * base

    def test_zero_jitter_is_deterministic(self):
        svc = self._stuffed_service(retry_jitter=0.0)
        try:
            hints = self._rejected_hints(svc, 5)
        finally:
            svc.close(drain=False)
        assert len(set(hints)) == 1

    def test_seeded_jitter_reproduces(self):
        seq = []
        for _ in range(2):
            svc = self._stuffed_service(retry_jitter_seed=7)
            try:
                seq.append(tuple(self._rejected_hints(svc, 10)))
            finally:
                svc.close(drain=False)
        assert seq[0] == seq[1]

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="retry_jitter"):
            SortService(batch_target_rows=16, retry_jitter=-0.1)

    def test_recorder_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            StatsRecorder(latency_window=0)
        with pytest.raises(ValueError):
            StatsRecorder(tenant_latency_window=0)


class TestMetricsExport:
    @pytest.fixture()
    def served(self):
        with SortService(batch_target_rows=4, linger_ms=0.5,
                         tenant_quotas={"capped": 1}) as svc:
            rng = np.random.default_rng(2)
            futures = [
                svc.submit(rng.uniform(size=(1, 16)), tenant=t)
                for t in ("alpha", "beta", "alpha")
            ]
            for f in futures:
                f.result(timeout=10)
            yield svc

    def test_collect_metrics_shape(self, served):
        metrics = collect_metrics(served)
        assert metrics["schema"] == "repro-service-metrics/v1"
        assert metrics["service"]["submitted"] == 3
        assert metrics["service"]["completed"] == 3
        assert metrics["queue"]["depth_rows"] == 0
        assert metrics["queue"]["max_queue_rows"] == served.max_queue_rows
        assert set(metrics["tenants"]) == {"alpha", "beta"}
        assert metrics["tenants"]["alpha"]["admitted"] == 2
        assert metrics["tenants"]["alpha"]["rejection_rate"] == 0.0
        json.dumps(metrics)  # JSON-ready end to end

    def test_backend_block_present_for_resilient(self):
        with SortService(backend="resilient", batch_target_rows=4,
                         linger_ms=0.5) as svc:
            svc.submit(np.random.default_rng(3).uniform(size=(2, 16)))
            svc.flush()
            metrics = collect_metrics(svc)
        assert metrics["backend"]["type"] == "ResilientSorter"
        assert metrics["backend"]["resilience"]["attempts"] >= 1

    def test_plain_backend_has_no_backend_block(self, served):
        assert "backend" not in collect_metrics(served)

    def test_render_prometheus_lines(self, served):
        text = render_prometheus(collect_metrics(served))
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_service_submitted_total 3" in lines
        assert any(
            line.startswith('repro_service_tenant_admitted_total{tenant="alpha"} ')
            for line in lines
        )
        assert any(
            'quantile="p99"' in line
            for line in lines
            if line.startswith("repro_service_latency_ms")
        )
        # every line is "name{labels} value" with a numeric value
        for line in lines:
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name

    def test_label_escaping(self):
        from repro.service.metrics import _label

        assert _label('he said "hi"\n') == r'he said \"hi\"\n'
        assert _label("back\\slash") == r"back\\slash"

    def test_planner_engine_counts_exported(self):
        # A planner-backed service records one selection per dispatched
        # batch; those counts must surface through stats(), the JSON
        # payload, and the Prometheus rendering.
        from repro.planner import StaticPlanner

        with SortService(planner=StaticPlanner("fused"),
                         batch_target_rows=4, linger_ms=0.5) as svc:
            rng = np.random.default_rng(2)
            futures = [svc.submit(rng.uniform(size=(1, 16)))
                       for _ in range(3)]
            for f in futures:
                f.result(timeout=10)
            stats = svc.stats()
            metrics = collect_metrics(svc)
        assert stats.planner_engine_counts
        total = sum(
            n
            for engines in stats.planner_engine_counts.values()
            for n in engines.values()
        )
        assert total == stats.batches
        assert metrics["planner"]["engine_counts"] == {
            shape: dict(engines)
            for shape, engines in stats.planner_engine_counts.items()
        }
        text = render_prometheus(metrics)
        selected = [
            line for line in text.splitlines()
            if line.startswith("repro_service_planner_selected_total{")
        ]
        assert selected
        for line in selected:
            assert 'shape_class="' in line and 'engine="' in line

    def test_plannerless_backend_exports_empty_counts(self):
        from repro.core import GpuArraySort

        with SortService(backend=GpuArraySort(),  # no planner attached
                         batch_target_rows=4, linger_ms=0.5) as svc:
            svc.submit(np.zeros((2, 8), dtype=np.float32))
            svc.flush()
            assert svc.stats().planner_engine_counts == {}
            assert collect_metrics(svc)["planner"]["engine_counts"] == {}

    def test_tenant_backlog_surface(self):
        with SortService(batch_target_rows=64, linger_ms=100.0) as svc:
            svc.submit(np.zeros((3, 8), dtype=np.float32), tenant="x")
            assert svc.tenant_backlog() == {"x": 3}
            metrics = collect_metrics(svc)
            assert metrics["queue"]["tenant_backlog_rows"] == {"x": 3}
            svc.flush()
            assert svc.tenant_backlog() == {}
