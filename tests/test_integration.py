"""End-to-end integration tests crossing subsystem boundaries."""

import numpy as np
import pytest

from repro.baselines import segmented_sort, sta_sort
from repro.core import GpuArraySort, SortConfig, sort_arrays
from repro.core.pipeline import OutOfCoreSorter
from repro.gpusim import GpuDevice
from repro.workloads import RaggedBatch, generate_spectra, uniform_arrays


class TestThreeWayCrossCheck:
    """Three independently-written implementations must agree exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_arraysort_sta_segmented_agree(self, seed):
        batch = uniform_arrays(60, 250, seed=seed)
        a = sort_arrays(batch)
        b = sta_sort(batch)
        c = segmented_sort(batch)
        assert np.array_equal(a, b)
        assert np.array_equal(b, c)

    def test_agreement_on_spectra(self):
        spectra = generate_spectra(40, 500, seed=7)
        for view in ("mz", "intensity"):
            data = spectra.view(view)
            assert np.array_equal(sort_arrays(data), sta_sort(data))


class TestMassSpecScenario:
    """The paper's motivating workload end to end (Sections 1 and 4)."""

    def test_sort_spectra_by_intensity_and_mz(self):
        spectra = generate_spectra(100, 1000, seed=11)
        by_mz = sort_arrays(spectra.mz, verify=True)
        by_intensity = sort_arrays(spectra.intensity, verify=True)
        assert np.all(np.diff(by_mz, axis=1) >= 0)
        assert np.all(np.diff(by_intensity, axis=1) >= 0)

    def test_4000_peak_spectra_fit_paper_limits(self):
        # Section 4: up to 4000 peaks fit in shared memory; the sorter's
        # default config must handle that size.
        spectra = generate_spectra(5, 4000, seed=11)
        out = sort_arrays(spectra.intensity, verify=True)
        assert out.shape == (5, 4000)

    def test_ragged_spectra_via_padding(self, rng):
        # Real runs have variable peak counts; the ragged container
        # bridges them onto the uniform-batch sorter.
        arrays = [
            rng.uniform(0, 1e5, rng.integers(100, 400)).astype(np.float32)
            for _ in range(25)
        ]
        ragged = RaggedBatch.from_arrays(arrays)
        out = ragged.unpad(sort_arrays(ragged.padded()))
        for orig, got in zip(arrays, out.to_list()):
            assert np.array_equal(np.sort(orig), got)


class TestDeviceEndToEnd:
    def test_sim_engine_full_stack(self, rng):
        """Host data -> device alloc -> 3 kernels -> host, with reports."""
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 2**31 - 1, (5, 120)).astype(np.float32)
        sorter = GpuArraySort(engine="sim", device=gpu, verify=True)
        res = sorter.sort(batch)
        assert np.array_equal(res.batch, np.sort(batch, axis=1))
        assert res.reports.milliseconds > 0
        assert gpu.memory.live_allocations() == 0

    def test_sim_vs_sta_device_memory_story(self, rng):
        """GPU-ArraySort's peak device memory ~ payload; STA's ~ 4x."""
        from repro.baselines.sta import StaSorter
        from repro.core.kernels import run_arraysort_on_device

        batch = rng.uniform(0, 1e6, (20, 120)).astype(np.float32)
        payload = batch.nbytes

        gpu1 = GpuDevice.micro()
        run_arraysort_on_device(gpu1, batch)
        gas_peak = gpu1.memory.stats.peak_bytes

        gpu2 = GpuDevice.micro()
        StaSorter(device=gpu2).sort(batch)
        sta_peak = gpu2.memory.stats.peak_bytes

        assert gas_peak < 1.3 * payload
        assert sta_peak > 3.5 * payload

    def test_sim_timing_favors_arraysort_scaling(self, rng):
        """Modeled per-launch time grows with N slower than linearly when
        blocks fit in one wave (the data-parallel payoff)."""
        gpu = GpuDevice.micro()
        small = rng.uniform(0, 1, (1, 64)).astype(np.float32)
        large = rng.uniform(0, 1, (8, 64)).astype(np.float32)
        r_small = GpuArraySort(engine="sim", device=gpu).sort(small)
        r_large = GpuArraySort(engine="sim", device=gpu).sort(large)
        # 8x blocks but same wave count -> much less than 8x modeled time.
        assert r_large.modeled_ms < 4 * r_small.modeled_ms


class TestOutOfCoreEndToEnd:
    def test_huge_host_batch_through_small_device(self):
        from repro.gpusim.device import DeviceSpec

        tiny = DeviceSpec(
            name="tiny", sm_count=2, cores_per_sm=32,
            global_mem_bytes=512 * 1024, shared_mem_per_block=16 * 1024,
            usable_mem_fraction=1.0,
        )
        batch = uniform_arrays(2000, 50, seed=13)  # 400 KB > device budget
        res = OutOfCoreSorter(device=tiny).sort(batch)
        assert res.plan.num_chunks > 1
        assert np.array_equal(res.batch, np.sort(batch, axis=1))
        assert res.overlap_speedup >= 1.0


class TestPublicApiSurface:
    def test_top_level_exports(self):
        import repro

        assert callable(repro.sort_arrays)
        assert repro.__version__
        cfg = repro.SortConfig(bucket_size=30)
        assert cfg.bucket_size == 30

    def test_quickstart_snippet_from_readme(self):
        import repro

        batch = np.random.default_rng(0).uniform(0, 2**31 - 1, (1000, 500))
        out = repro.sort_arrays(batch.astype(np.float32))
        assert np.all(np.diff(out, axis=1) >= 0)
