"""Spill store: crash-safe chunk files, manifest, hygiene, checkpoint."""

import json

import numpy as np
import pytest

from repro.outofcore.spill import (
    MANIFEST_SCHEMA,
    BatchFile,
    SpillCorruptionError,
    SpillDirectoryError,
    SpillError,
    SpillStore,
    write_batch_file,
)

pytestmark = pytest.mark.capacity


def make_chunk(rng, rows, n, dtype=np.float64):
    return rng.random((rows, n)).astype(dtype)


class TestCommitAndRead:
    def test_roundtrip_with_crc(self, tmp_path):
        rng = np.random.default_rng(1)
        store = SpillStore(tmp_path, array_size=16, dtype=np.float64)
        data = make_chunk(rng, 8, 16)
        record = store.commit_chunk(0, 0, data)
        assert record.rows == 8
        assert record.nbytes == data.nbytes
        back = store.open_chunk(record, verify=True)
        np.testing.assert_array_equal(np.asarray(back), data)
        assert store.rows_committed == 8
        assert store.spill_bytes_written == data.nbytes

    def test_manifest_is_valid_json_with_schema(self, tmp_path):
        store = SpillStore(tmp_path, array_size=4, dtype=np.float32,
                           meta={"total_rows": 3})
        store.commit_chunk(0, 0, np.ones((3, 4), dtype=np.float32))
        payload = json.loads((tmp_path / "manifest.json").read_text())
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["array_size"] == 4
        assert payload["meta"]["total_rows"] == 3
        assert len(payload["chunks"]) == 1
        assert payload["chunks"][0]["start_row"] == 0

    def test_iter_chunks_row_order(self, tmp_path):
        rng = np.random.default_rng(2)
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        # Commit out of order; iteration must come back by start_row.
        store.commit_chunk(1, 10, make_chunk(rng, 5, 8))
        store.commit_chunk(0, 0, make_chunk(rng, 10, 8))
        starts = [start for start, _ in store.iter_chunks()]
        assert starts == [0, 10]

    def test_recommit_replaces_and_counts(self, tmp_path):
        rng = np.random.default_rng(3)
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        store.commit_chunk(0, 0, make_chunk(rng, 4, 8))
        newer = make_chunk(rng, 4, 8)
        record = store.commit_chunk(0, 0, newer)
        assert store.recommits == 1
        assert store.rows_committed == 4
        np.testing.assert_array_equal(
            np.asarray(store.open_chunk(record, verify=True)), newer
        )

    def test_shape_mismatch_rejected(self, tmp_path):
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        with pytest.raises(SpillError):
            store.commit_chunk(0, 0, np.zeros((4, 9)))

    def test_corruption_detected(self, tmp_path):
        rng = np.random.default_rng(4)
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        record = store.commit_chunk(0, 0, make_chunk(rng, 4, 8))
        path = tmp_path / record.filename
        raw = bytearray(path.read_bytes())
        raw[11] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert not store.verify_chunk(record)
        with pytest.raises(SpillCorruptionError):
            store.open_chunk(record, verify=True)
        # Unverified open still works (size is unchanged).
        store.open_chunk(record)

    def test_truncation_detected_without_verify(self, tmp_path):
        rng = np.random.default_rng(5)
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        record = store.commit_chunk(0, 0, make_chunk(rng, 4, 8))
        path = tmp_path / record.filename
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(SpillCorruptionError):
            store.open_chunk(record)


class TestDirectoryHygiene:
    def test_refuses_foreign_manifest(self, tmp_path):
        first = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        first.commit_chunk(0, 0, np.zeros((2, 8)))
        with pytest.raises(SpillDirectoryError) as excinfo:
            SpillStore(tmp_path, array_size=8, dtype=np.float64)
        message = str(excinfo.value)
        assert "resume=True" in message and "reclaim=True" in message
        assert first.run_id in message

    def test_reclaim_deletes_previous_run(self, tmp_path):
        first = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        first.commit_chunk(0, 0, np.zeros((2, 8)))
        first.save_checkpoint({"rows_done": 2}, np.zeros((0, 8)))
        fresh = SpillStore(tmp_path, array_size=8, dtype=np.float64,
                           reclaim=True)
        assert fresh.committed == []
        assert fresh.load_checkpoint() is None
        assert not list(tmp_path.glob("chunk_*.bin"))

    def test_refuses_stray_chunks_without_manifest(self, tmp_path):
        (tmp_path / "chunk_000000.bin").write_bytes(b"\x00" * 64)
        with pytest.raises(SpillDirectoryError) as excinfo:
            SpillStore(tmp_path, array_size=8, dtype=np.float64)
        assert "reclaim=True" in str(excinfo.value)
        # reclaim deletes the stray file and proceeds.
        SpillStore(tmp_path, array_size=8, dtype=np.float64, reclaim=True)
        assert not (tmp_path / "chunk_000000.bin").exists()


class TestResume:
    def test_adopts_committed_chunks_and_meta(self, tmp_path):
        rng = np.random.default_rng(6)
        data = make_chunk(rng, 4, 8)
        first = SpillStore(tmp_path, array_size=8, dtype=np.float64,
                           meta={"total_rows": 20, "budget": "1M"})
        first.commit_chunk(0, 0, data)
        second = SpillStore(tmp_path, array_size=8, dtype=np.float64,
                            resume=True, meta={"budget": "2M"})
        assert second.resumed_from == first.run_id
        assert second.run_id == first.run_id
        assert second.rows_committed == 4
        # Stored meta adopted, new keys win on conflict.
        assert second.meta["total_rows"] == 20
        assert second.meta["budget"] == "2M"
        np.testing.assert_array_equal(
            np.asarray(second.open_chunk(second.committed[0], verify=True)),
            data,
        )

    def test_resume_rejects_shape_or_dtype_mismatch(self, tmp_path):
        first = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        first.commit_chunk(0, 0, np.zeros((2, 8)))
        with pytest.raises(SpillError):
            SpillStore(tmp_path, array_size=9, dtype=np.float64, resume=True)
        with pytest.raises(SpillError):
            SpillStore(tmp_path, array_size=8, dtype=np.float32, resume=True)

    def test_resume_detects_missing_chunk_file(self, tmp_path):
        first = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        record = first.commit_chunk(0, 0, np.zeros((2, 8)))
        (tmp_path / record.filename).unlink()
        with pytest.raises(SpillCorruptionError):
            SpillStore(tmp_path, array_size=8, dtype=np.float64, resume=True)

    def test_resume_with_no_manifest_starts_fresh(self, tmp_path):
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64,
                           resume=True)
        assert store.resumed_from is None
        assert store.committed == []

    def test_mark_complete_persists(self, tmp_path):
        first = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        assert not first.complete
        first.mark_complete()
        second = SpillStore(tmp_path, array_size=8, dtype=np.float64,
                            resume=True)
        assert second.complete


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(7)
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        staging = make_chunk(rng, 3, 8)
        store.save_checkpoint({"rows_done": 12, "next_batch_id": 3}, staging)
        loaded = store.load_checkpoint()
        assert loaded is not None
        meta, back = loaded
        assert meta == {"rows_done": 12, "next_batch_id": 3}
        np.testing.assert_array_equal(back, staging)

    def test_absent_and_cleared(self, tmp_path):
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        assert store.load_checkpoint() is None
        store.save_checkpoint({"rows_done": 0}, np.zeros((0, 8)))
        store.clear_checkpoint()
        assert store.load_checkpoint() is None

    def test_garbage_checkpoint_treated_as_absent(self, tmp_path):
        store = SpillStore(tmp_path, array_size=8, dtype=np.float64)
        (tmp_path / "checkpoint.npz").write_bytes(b"not an npz archive")
        assert store.load_checkpoint() is None


class TestBatchFile:
    def test_write_and_windowed_read(self, tmp_path):
        rng = np.random.default_rng(8)
        full = rng.random((100, 8))

        def gen(block_index, start, take):
            return full[start : start + take]

        batch = write_batch_file(tmp_path / "in.bin", gen,
                                 rows=100, row_len=8, dtype=np.float64,
                                 block_rows=32)
        assert batch.shape == (100, 8)
        assert batch.nbytes == full.nbytes
        np.testing.assert_array_equal(batch.read(40, 60), full[40:60])
        out = np.empty((64, 8))
        got = batch.read_into(90, 100, out)
        np.testing.assert_array_equal(got, full[90:100])

    def test_rejects_short_file(self, tmp_path):
        (tmp_path / "short.bin").write_bytes(b"\x00" * 16)
        with pytest.raises(SpillError):
            BatchFile(path=tmp_path / "short.bin", rows=100, row_len=8,
                      dtype=np.float64)

    def test_rejects_bad_window(self, tmp_path):
        full = np.zeros((10, 4))

        def gen(block_index, start, take):
            return full[start : start + take]

        batch = write_batch_file(tmp_path / "in.bin", gen,
                                 rows=10, row_len=4, dtype=np.float64)
        with pytest.raises(SpillError):
            batch.read(8, 12)
        with pytest.raises(SpillError):
            batch.read_into(0, 4, np.empty((2, 4)))
