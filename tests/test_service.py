"""Unit tests for the sort service: batcher decisions, admission control,
deadlines, stats, lifecycle, and backend composition.

The :class:`DynamicBatcher` tests drive the decision surface with a
synthetic clock — no threads, no sleeps.  The :class:`SortService` tests
use a real service but tiny workloads, plus a controllable fake clock
where deadline behaviour must be deterministic.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.service import (
    DeadlineExceededError,
    DynamicBatcher,
    QuarantinedError,
    QueuedRequest,
    RejectedError,
    ServiceClosedError,
    ServiceError,
    ServiceStats,
    SortService,
    StatsRecorder,
    derive_batch_target,
)
from repro.service.stats import _occupancy_bucket

pytestmark = pytest.mark.service


def _request(seq, rows=1, row_len=8, dtype=np.float32, deadline=None,
             priority=0, enqueued_at=0.0):
    return QueuedRequest(
        seq=seq,
        arrays=np.zeros((rows, row_len), dtype=dtype),
        deadline=deadline,
        priority=priority,
        enqueued_at=enqueued_at,
        future=None,
    )


class TestDynamicBatcher:
    def make(self, target=8, cap=None, linger=1.0):
        return DynamicBatcher(
            target_rows=target,
            max_batch_rows=cap if cap is not None else 4 * target,
            linger_s=linger,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(target=0)
        with pytest.raises(ValueError):
            self.make(target=8, cap=4)
        with pytest.raises(ValueError):
            self.make(linger=-1.0)

    def test_lanes_keyed_by_shape_and_dtype(self):
        batcher = self.make()
        batcher.add(_request(0, row_len=8, dtype=np.float32))
        batcher.add(_request(1, row_len=8, dtype=np.float64))
        batcher.add(_request(2, row_len=16, dtype=np.float32))
        batcher.add(_request(3, row_len=8, dtype=np.float32))
        assert batcher.total_requests == 4
        assert len(batcher._lanes) == 3  # only same (n, dtype) coalesce

    def test_not_ready_below_target_within_linger(self):
        batcher = self.make(target=8, linger=1.0)
        batcher.add(_request(0, rows=4, enqueued_at=0.0))
        assert batcher.ready_lane(now=0.5) is None

    def test_ready_at_target_rows(self):
        batcher = self.make(target=8, linger=1.0)
        batcher.add(_request(0, rows=4, enqueued_at=0.0))
        batcher.add(_request(1, rows=4, enqueued_at=0.1))
        assert batcher.ready_lane(now=0.2) is not None

    def test_ready_when_oldest_lingers(self):
        batcher = self.make(target=8, linger=1.0)
        batcher.add(_request(0, rows=1, enqueued_at=0.0))
        assert batcher.ready_lane(now=0.99) is None
        assert batcher.ready_lane(now=1.0) is not None

    def test_drain_makes_everything_ready(self):
        batcher = self.make(target=8, linger=100.0)
        batcher.add(_request(0, rows=1, enqueued_at=0.0))
        assert batcher.ready_lane(now=0.0) is None
        assert batcher.ready_lane(now=0.0, drain=True) is not None

    def test_pop_batch_is_edf_ordered(self):
        batcher = self.make(target=2, linger=0.0)
        batcher.add(_request(0, deadline=9.0, enqueued_at=0.0))
        batcher.add(_request(1, deadline=3.0, enqueued_at=0.0))
        batcher.add(_request(2, deadline=None, enqueued_at=0.0))
        batcher.add(_request(3, deadline=3.0, priority=-1, enqueued_at=0.0))
        lane = batcher.ready_lane(now=0.0)
        taken = batcher.pop_batch(lane, now=0.0)
        # deadline first, priority breaks the 3.0 tie, no-deadline last
        assert [r.seq for r in taken] == [3, 1, 0, 2]
        assert batcher.total_requests == 0

    def test_pop_batch_respects_row_cap(self):
        batcher = self.make(target=4, cap=6, linger=0.0)
        for seq in range(4):
            batcher.add(_request(seq, rows=2, enqueued_at=0.0))
        lane = batcher.ready_lane(now=0.0)
        taken = batcher.pop_batch(lane, now=0.0)
        assert sum(r.rows for r in taken) == 6
        assert batcher.total_requests == 1  # the fourth waits for the next batch
        assert batcher.total_rows == 2

    def test_oversized_request_dispatches_alone(self):
        batcher = self.make(target=4, cap=8, linger=0.0)
        batcher.add(_request(0, rows=32, enqueued_at=0.0))
        lane = batcher.ready_lane(now=0.0)
        taken = batcher.pop_batch(lane, now=0.0)
        assert [r.seq for r in taken] == [0]

    def test_shed_expired_removes_only_past_deadline(self):
        batcher = self.make()
        batcher.add(_request(0, deadline=1.0, enqueued_at=0.0))
        batcher.add(_request(1, deadline=5.0, enqueued_at=0.0))
        batcher.add(_request(2, deadline=None, enqueued_at=0.0))
        shed = batcher.shed_expired(now=2.0)
        assert [r.seq for r in shed] == [0]
        assert batcher.total_requests == 2
        assert batcher.total_rows == 2

    def test_ready_lane_prefers_urgent_deadline_across_lanes(self):
        batcher = self.make(target=1, linger=0.0)
        batcher.add(_request(0, row_len=8, deadline=9.0, enqueued_at=0.0))
        batcher.add(_request(1, row_len=16, deadline=1.0, enqueued_at=0.5))
        lane = batcher.ready_lane(now=1.0)
        assert lane.key[0] == 16

    def test_next_event_at_tracks_linger_and_deadline(self):
        batcher = self.make(target=100, linger=2.0)
        assert batcher.next_event_at(now=0.0) is None
        batcher.add(_request(0, enqueued_at=1.0))
        assert batcher.next_event_at(now=1.0) == pytest.approx(3.0)
        batcher.add(_request(1, deadline=1.5, enqueued_at=1.0))
        assert batcher.next_event_at(now=1.0) == pytest.approx(1.5)

    def test_drop_all_empties_queue(self):
        batcher = self.make()
        for seq in range(3):
            batcher.add(_request(seq, row_len=8 * (seq + 1)))
        dropped = batcher.drop_all()
        assert len(dropped) == 3
        assert batcher.total_requests == 0
        assert batcher.total_rows == 0
        assert batcher.ready_lane(now=1e9, drain=True) is None


class TestDeriveBatchTarget:
    def test_planner_preference_is_power_of_two(self):
        class FakePlanner:
            min_rows_per_worker = 3000

        assert derive_batch_target(FakePlanner()) == 2048

    def test_clamped_to_serviceable_range(self):
        class Tiny:
            min_rows_per_worker = 1

        class Huge:
            min_rows_per_worker = 10**9

        assert derive_batch_target(Tiny()) == 256
        assert derive_batch_target(Huge()) == 8192

    def test_planner_without_attribute_uses_default(self):
        target = derive_batch_target(None)
        assert target >= 256 and (target & (target - 1)) == 0


class TestStats:
    def test_occupancy_bucket_powers_of_two(self):
        assert _occupancy_bucket(1) == "[1,2)"
        assert _occupancy_bucket(5) == "[4,8)"
        assert _occupancy_bucket(1024) == "[1024,2048)"
        assert _occupancy_bucket(0) == "[0,1)"

    def test_latency_ring_is_bounded(self):
        recorder = StatsRecorder(latency_window=4)
        for i in range(10):
            recorder.record_latency(i / 1e3)
        assert recorder.completed == 10
        pct = recorder.latency_percentiles()
        # Only the most recent 4 samples (6..9 ms) survive in the ring.
        assert pct["max"] == pytest.approx(9.0)
        assert pct["p50"] >= 6.0

    def test_snapshot_roundtrip(self):
        recorder = StatsRecorder()
        recorder.record_batch(12)
        recorder.record_batch(20)
        snap = recorder.snapshot(queue_requests=3, queue_rows=7)
        assert isinstance(snap, ServiceStats)
        assert snap.batches == 2
        assert snap.mean_occupancy_rows == pytest.approx(16.0)
        assert snap.queue_depth_requests == 3
        payload = snap.as_dict()
        assert payload["queue_depth_rows"] == 7
        assert "[16,32)" in payload["occupancy_histogram"]


class TestSortService:
    def test_submit_returns_sorted_copy(self, rng):
        arrays = rng.random((5, 32)).astype(np.float32)
        with SortService(batch_target_rows=4, linger_ms=1.0) as service:
            out = service.submit(arrays).result(timeout=30)
        np.testing.assert_array_equal(out, np.sort(arrays, axis=1))
        assert out.base is None or out.base is not arrays  # a private copy

    def test_single_array_round_trips_one_dimensional(self, rng):
        row = rng.random(64).astype(np.float64)
        with SortService(batch_target_rows=4, linger_ms=1.0) as service:
            out = service.submit(row).result(timeout=30)
        assert out.ndim == 1
        np.testing.assert_array_equal(out, np.sort(row))

    def test_invalid_inputs_raise_at_submit(self):
        with SortService(batch_target_rows=4) as service:
            with pytest.raises(ValueError):
                service.submit(np.zeros((2, 2, 2), dtype=np.float32))
            with pytest.raises(ValueError):
                service.submit(np.zeros((0, 4), dtype=np.float32))
            with pytest.raises(ValueError):
                service.submit(np.array([["a", "b"]]))
            with pytest.raises(ValueError):
                service.submit(np.zeros((1, 4), dtype=np.float32), deadline=-1)

    def test_requests_coalesce_into_one_batch(self, rng):
        calls = []

        class SpyBackend:
            def sort(self, batch):
                calls.append(batch.shape)
                from repro.core import GpuArraySort

                return GpuArraySort(SortConfig()).sort(batch)

        with SortService(backend=SpyBackend(), batch_target_rows=8,
                         linger_ms=50.0) as service:
            futures = [
                service.submit(rng.random((2, 16)).astype(np.float32))
                for _ in range(4)
            ]
            for future in futures:
                future.result(timeout=30)
        assert calls == [(8, 16)]  # one fused batch, not four calls

    def test_admission_control_rejects_with_retry_after(self):
        blocker = threading.Event()

        class SlowBackend:
            def sort(self, batch):
                blocker.wait(30)
                from repro.core import GpuArraySort

                return GpuArraySort(SortConfig()).sort(batch)

        service = SortService(backend=SlowBackend(), batch_target_rows=2,
                              max_batch_rows=2, max_queue_rows=4,
                              linger_ms=0.0)
        try:
            futures = [
                service.submit(np.zeros((2, 8), dtype=np.float32))
                for _ in range(2)
            ]
            # Worker is stuck in SlowBackend with <=2 rows; fill the
            # queue back up to its 4-row bound, then overflow it.
            deadline = time.monotonic() + 10
            admitted = []
            with pytest.raises(RejectedError) as exc_info:
                while time.monotonic() < deadline:
                    admitted.append(
                        service.submit(np.zeros((2, 8), dtype=np.float32))
                    )
            assert exc_info.value.retry_after > 0
            assert service.stats().rejected >= 1
        finally:
            blocker.set()
            service.close(drain=True)

    def test_queued_deadline_shed_with_stage(self):
        started = threading.Event()
        blocker = threading.Event()

        class SlowBackend:
            def sort(self, batch):
                started.set()
                blocker.wait(30)
                from repro.core import GpuArraySort

                return GpuArraySort(SortConfig()).sort(batch)

        service = SortService(backend=SlowBackend(), batch_target_rows=1,
                              max_batch_rows=1, linger_ms=0.0)
        try:
            # First request occupies the worker; only then submit the
            # deadlined one, so it provably expires *in the queue*.
            first = service.submit(np.zeros((1, 8), dtype=np.float32))
            assert started.wait(30)
            late = service.submit(np.zeros((1, 8), dtype=np.float32),
                                  deadline=0.01)
            time.sleep(0.03)  # let the deadline pass while queued
            blocker.set()  # first sort completes; worker sheds the late one
            with pytest.raises(DeadlineExceededError) as exc_info:
                late.result(timeout=30)
            assert exc_info.value.stage == "queued"
            assert exc_info.value.waited >= 0.01
            assert service.stats().shed == 1
            first.result(timeout=30)
        finally:
            blocker.set()
            service.close(drain=True)

    def test_post_sort_deadline_miss_discards_result(self):
        class GlacialBackend:
            def sort(self, batch):
                time.sleep(0.05)
                from repro.core import GpuArraySort

                return GpuArraySort(SortConfig()).sort(batch)

        with SortService(backend=GlacialBackend(), batch_target_rows=1,
                         linger_ms=0.0) as service:
            future = service.submit(np.zeros((1, 8), dtype=np.float32),
                                    deadline=0.01)
            with pytest.raises(DeadlineExceededError) as exc_info:
                future.result(timeout=30)
        assert exc_info.value.stage == "sorted"

    def test_copy_false_returns_view_valid_until_next_dispatch(self, rng):
        arrays = rng.random((3, 16)).astype(np.float32)
        with SortService(batch_target_rows=2, linger_ms=1.0) as service:
            out = service.submit(arrays, copy=False).result(timeout=30)
            np.testing.assert_array_equal(out, np.sort(arrays, axis=1))
            assert out.base is not None  # a view into the batch buffer

    def test_batch_failure_isolated_to_culprit(self, rng):
        good = rng.random((2, 16)).astype(np.float32)
        poisoned = np.full((2, 16), np.nan, dtype=np.float32)
        config = SortConfig(nan_policy="raise")
        with SortService(config=config, batch_target_rows=4,
                         linger_ms=50.0) as service:
            f_good = service.submit(good)
            f_bad = service.submit(poisoned)
            np.testing.assert_array_equal(
                f_good.result(timeout=30), np.sort(good, axis=1)
            )
            with pytest.raises(Exception) as exc_info:
                f_bad.result(timeout=30)
        assert not isinstance(exc_info.value, ServiceError)  # the real cause
        assert "nan" in str(exc_info.value).lower()

    def test_resilient_backend_quarantine_is_per_request(self, rng):
        good = rng.random((2, 16)).astype(np.float32)
        poisoned = good.copy()
        poisoned[1, 3] = np.nan
        config = SortConfig(nan_policy="raise")
        with SortService(config=config, backend="resilient",
                         batch_target_rows=4, linger_ms=50.0) as service:
            f_good = service.submit(good)
            f_bad = service.submit(poisoned)
            np.testing.assert_array_equal(
                f_good.result(timeout=30), np.sort(good, axis=1)
            )
            with pytest.raises(QuarantinedError) as exc_info:
                f_bad.result(timeout=30)
        # Row indices are request-relative, not batch-relative.
        assert exc_info.value.rows == (1,)
        assert "nan" in exc_info.value.reasons[1]

    def test_stats_counters_and_occupancy(self, rng):
        with SortService(batch_target_rows=4, linger_ms=1.0) as service:
            futures = [
                service.submit(rng.random((1, 8)).astype(np.float32))
                for _ in range(8)
            ]
            for future in futures:
                future.result(timeout=30)
            service.flush(timeout=30)
            stats = service.stats()
        assert stats.submitted == 8
        assert stats.completed == 8
        # Batching is timing-dependent, but coalescing must have happened:
        # strictly fewer batches than requests, and every row accounted for.
        assert 1 <= stats.batches < 8
        assert stats.batched_rows == 8
        assert sum(stats.occupancy_histogram.values()) == stats.batches
        assert stats.latency_ms["p99"] >= stats.latency_ms["p50"] > 0

    def test_flush_drains_below_target(self, rng):
        with SortService(batch_target_rows=1024, linger_ms=60_000.0) as service:
            future = service.submit(rng.random((2, 8)).astype(np.float32))
            assert service.flush(timeout=30)
            assert future.done()
            assert service.stats().queue_depth_requests == 0

    def test_close_without_drain_fails_queued_requests(self):
        blocker = threading.Event()

        class SlowBackend:
            def sort(self, batch):
                blocker.wait(30)
                from repro.core import GpuArraySort

                return GpuArraySort(SortConfig()).sort(batch)

        service = SortService(backend=SlowBackend(), batch_target_rows=1,
                              max_batch_rows=1, linger_ms=0.0)
        running = service.submit(np.zeros((1, 8), dtype=np.float32))
        queued = service.submit(np.zeros((1, 8), dtype=np.float32))
        blocker.set()
        service.close(drain=False, timeout=30)
        with pytest.raises((ServiceClosedError, Exception)):
            queued.result(timeout=30)
        with pytest.raises(ServiceClosedError):
            service.submit(np.zeros((1, 8), dtype=np.float32))
        assert service.closed

    def test_close_is_idempotent_and_drains(self, rng):
        service = SortService(batch_target_rows=64, linger_ms=60_000.0)
        future = service.submit(rng.random((2, 8)).astype(np.float32))
        service.close(drain=True, timeout=30)
        service.close(drain=True, timeout=30)  # second close is a no-op
        np.testing.assert_array_equal(
            future.result(timeout=1),
            np.sort(np.asarray(future.result(timeout=1)), axis=1),
        )

    def test_backend_type_validation(self):
        with pytest.raises(TypeError):
            SortService(backend=42)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SortService(batch_target_rows=0)
        with pytest.raises(ValueError):
            SortService(batch_target_rows=8, max_queue_rows=4)
        with pytest.raises(ValueError):
            SortService(linger_ms=-1.0)
        with pytest.raises(ValueError):
            SortService(default_deadline_ms=0.0)

    def test_planner_passthrough_reaches_backend(self):
        with SortService(planner="fused", batch_target_rows=4) as service:
            assert service.sorter.planner is not None

    def test_priority_orders_equal_deadlines(self):
        batcher = DynamicBatcher(target_rows=2, max_batch_rows=2,
                                 linger_s=0.0)
        a = _request(0, deadline=5.0, priority=1, enqueued_at=0.0)
        b = _request(1, deadline=5.0, priority=0, enqueued_at=0.0)
        batcher.add(a)
        batcher.add(b)
        lane = batcher.ready_lane(now=0.0, drain=True)
        taken = batcher.pop_batch(lane, now=0.0)
        assert [r.seq for r in taken] == [1, 0]
