"""Tests for the device-kernel radix sort pipeline."""

import numpy as np
import pytest

from repro.baselines.radix_kernels import (
    run_radix_pass_on_device,
    run_radix_sort_on_device,
)
from repro.gpusim import GpuDevice


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestSinglePass:
    def test_orders_by_low_digit(self, gpu, rng):
        keys = rng.integers(0, 2**32, 100, dtype=np.uint32)
        out, _, _ = run_radix_pass_on_device(gpu, keys, shift=0)
        digits = out & 0xFF
        assert np.all(np.diff(digits.astype(np.int64)) >= 0)

    def test_pass_is_stable(self, gpu):
        # Same digit -> original order preserved.
        keys = np.array([0x201, 0x101, 0x202, 0x102], dtype=np.uint32)
        vals = np.arange(4, dtype=np.int32)
        out_k, out_v, _ = run_radix_pass_on_device(gpu, keys, vals, shift=0)
        # low byte: 01,01,02,02 -> stable: 0x201, 0x101, 0x202, 0x102
        assert out_k.tolist() == [0x201, 0x101, 0x202, 0x102]
        assert out_v.tolist() == [0, 1, 2, 3]

    def test_payload_follows(self, gpu, rng):
        keys = rng.integers(0, 256, 50, dtype=np.uint32)
        vals = np.arange(50, dtype=np.int32)
        out_k, out_v, _ = run_radix_pass_on_device(gpu, keys, vals)
        assert np.array_equal(keys[out_v], out_k)

    def test_reports_three_kernels(self, gpu, rng):
        keys = rng.integers(0, 2**16, 40, dtype=np.uint32)
        _, _, pipeline = run_radix_pass_on_device(gpu, keys)
        names = [l.kernel_name for l in pipeline.launches]
        assert names == ["radix_histogram", "radix_scan", "radix_scatter"]

    def test_histogram_uses_atomics(self, gpu, rng):
        keys = rng.integers(0, 2**16, 60, dtype=np.uint32)
        _, _, pipeline = run_radix_pass_on_device(gpu, keys)
        hist = pipeline.launches[0]
        assert hist.total_atomic_ops >= 60

    def test_no_leaks(self, gpu, rng):
        keys = rng.integers(0, 2**16, 30, dtype=np.uint32)
        run_radix_pass_on_device(gpu, keys)
        assert gpu.memory.live_allocations() == 0


class TestFullSort:
    def test_sorts_uint32(self, gpu, rng):
        keys = rng.integers(0, 2**32, 80, dtype=np.uint32)
        out, _, _ = run_radix_sort_on_device(gpu, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_sorts_float32(self, gpu, rng):
        keys = rng.normal(0, 1e6, 60).astype(np.float32)
        out, _, _ = run_radix_sort_on_device(gpu, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_carries_payload(self, gpu, rng):
        keys = rng.uniform(0, 100, 50).astype(np.float32)
        tags = np.arange(50, dtype=np.int32)
        out_k, out_v, _ = run_radix_sort_on_device(gpu, keys, tags)
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(out_v, order.astype(np.int32))

    def test_matches_host_radix(self, gpu, rng):
        from repro.baselines.radix import radix_sort_by_key

        keys = rng.normal(0, 100, 40).astype(np.float32)
        tags = rng.integers(0, 10, 40).astype(np.int32)
        dev_k, dev_v, _ = run_radix_sort_on_device(gpu, keys, tags)
        host_k, host_v = radix_sort_by_key(keys, tags)
        assert np.array_equal(dev_k, host_k)
        assert np.array_equal(dev_v, host_v)

    def test_four_passes_of_three_kernels(self, gpu, rng):
        keys = rng.integers(0, 2**32, 30, dtype=np.uint32)
        _, _, pipeline = run_radix_sort_on_device(gpu, keys)
        assert len(pipeline.launches) == 12  # 4 passes x 3 kernels

    def test_scatter_traffic_dwarfs_arraysort(self, gpu, rng):
        """The kernel-level version of the paper's core argument: radix
        moves every element through global memory every pass, while
        GPU-ArraySort's phases touch each element a constant number of
        times."""
        from repro.core.kernels import run_arraysort_on_device

        batch = rng.uniform(0, 1e6, (2, 64)).astype(np.float32)
        _, gas_pipeline = run_arraysort_on_device(gpu, batch)

        flat = batch.ravel()
        tags = np.repeat(np.arange(2, dtype=np.int32), 64)
        _, _, radix_pipeline = run_radix_sort_on_device(gpu, flat, tags)

        # One radix sort (a third of STA's work) already issues more
        # global transactions than the whole GPU-ArraySort pipeline.
        assert (radix_pipeline.total_global_transactions
                > gas_pipeline.total_global_transactions)
