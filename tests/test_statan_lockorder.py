"""Whole-program lock-order analysis tests.

Fixture programs prove the may-acquire graph is built right (Condition
aliases, cross-class call edges, closures) and that cycles become
``lock-order`` findings; then the real ``src/`` tree is asserted
acyclic, and a sanitized in-process service workload proves the
runtime-observed graph is a subset of the static one — the diff that
keeps the static index honest.
"""

from __future__ import annotations

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np

from repro.statan import runtime as rt
from repro.statan.engine import _HYGIENE_ONLY_RE, iter_python_files
from repro.statan.lockorder import (
    build_lock_graph,
    check_lock_order,
    unexplained_runtime_edges,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def graph_of(**files):
    return build_lock_graph({
        path.replace("__", "/") + ".py": ast.parse(textwrap.dedent(source))
        for path, source in files.items()
    })


def findings_of(**files):
    return check_lock_order({
        path.replace("__", "/") + ".py": ast.parse(textwrap.dedent(source))
        for path, source in files.items()
    })


CONSISTENT = """
    import threading

    class Outer:
        def __init__(self):
            self._lock = threading.Lock()
            self._inner = Inner()

        def work(self):
            with self._lock:
                self._inner.poke()

    class Inner:
        def __init__(self):
            self._lock = threading.Lock()

        def poke(self):
            with self._lock:
                pass
"""


class TestGraphConstruction:
    def test_direct_nesting_edge(self):
        graph = graph_of(mod="""
            import threading

            class Two:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def work(self):
                    with self._a:
                        with self._b:
                            pass
        """)
        assert graph.nodes == {"Two._a", "Two._b"}
        assert set(graph.edges) == {("Two._a", "Two._b")}
        site = graph.edges[("Two._a", "Two._b")]
        assert site.qualname == "Two.work"

    def test_cross_class_call_edge(self):
        graph = graph_of(mod=CONSISTENT)
        assert ("Outer._lock", "Inner._lock") in graph.edges

    def test_cross_module_call_edge(self):
        # The edge SortService._lock -> StatsRecorder._lock spans two
        # modules in the real tree; the fixture mirrors that shape.
        graph = graph_of(
            a__svc="""
                import threading
                from .rec import Recorder

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._recorder = Recorder()

                    def submit(self):
                        with self._lock:
                            self._recorder.record()
            """,
            a__rec="""
                import threading

                class Recorder:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def record(self):
                        with self._lock:
                            pass
            """,
        )
        assert ("Service._lock", "Recorder._lock") in graph.edges

    def test_condition_alias_resolves_to_underlying_lock(self):
        graph = graph_of(mod="""
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._wakeup = threading.Condition(self._lock)
                    self._other = threading.Lock()

                def work(self):
                    with self._wakeup:
                        with self._other:
                            pass
        """)
        # Acquiring the Condition IS acquiring _lock: the node is named
        # for the lock, and no phantom _wakeup node exists.
        assert ("Svc._lock", "Svc._other") in graph.edges
        assert not any("_wakeup" in node for node in graph.nodes)

    def test_make_lock_factory_is_recognized(self):
        graph = graph_of(mod="""
            from repro.statan.runtime import make_lock, make_rlock

            class Hooked:
                def __init__(self):
                    self._a = make_lock("Hooked._a")
                    self._b = make_rlock("Hooked._b")

                def work(self):
                    with self._a:
                        with self._b:
                            pass
        """)
        assert ("Hooked._a", "Hooked._b") in graph.edges

    def test_closure_does_not_inherit_held_locks(self):
        graph = graph_of(mod="""
            import threading

            class Deferred:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def work(self):
                    with self._a:
                        def later():
                            with self._b:
                                pass
                        return later
        """)
        # ``later`` may run on another thread after _a is released; the
        # lexical nesting is not an acquisition-order edge.
        assert ("Deferred._a", "Deferred._b") not in graph.edges

    def test_graph_json_schema(self):
        graph = graph_of(mod=CONSISTENT)
        data = json.loads(graph.as_json())
        assert data["schema"] == "statan-lockgraph/v1"
        assert "Outer._lock" in data["nodes"]
        assert any(
            e["held"] == "Outer._lock" and e["acquired"] == "Inner._lock"
            for e in data["edges"]
        )


class TestCycleFindings:
    def test_consistent_order_is_clean(self):
        assert findings_of(mod=CONSISTENT) == []

    def test_two_lock_inversion_fires(self):
        findings = findings_of(mod="""
            import threading

            class Inverted:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """)
        assert [f.rule for f in findings] == ["lock-order"]
        assert "Inverted._a" in findings[0].message
        assert "Inverted._b" in findings[0].message
        assert "deadlock" in findings[0].message

    def test_cross_class_inversion_fires(self):
        findings = findings_of(mod="""
            import threading

            class Left:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._right = Right()

                def work(self):
                    with self._lock:
                        self._right.poke()

            class Right:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._left = Left()

                def poke(self):
                    with self._lock:
                        pass

                def back(self):
                    with self._lock:
                        self._left.work()
        """)
        assert [f.rule for f in findings] == ["lock-order"]

    def test_cycle_reported_once_not_per_rotation(self):
        findings = findings_of(mod="""
            import threading

            class Ring:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._c = threading.Lock()

                def ab(self):
                    with self._a:
                        with self._b:
                            pass

                def bc(self):
                    with self._b:
                        with self._c:
                            pass

                def ca(self):
                    with self._c:
                        with self._a:
                            pass
        """)
        assert len(findings) == 1


class TestRepoTree:
    def _src_trees(self):
        trees = {}
        for file_path in iter_python_files([SRC]):
            label = file_path.relative_to(REPO_ROOT).as_posix()
            if _HYGIENE_ONLY_RE.search(label):
                continue
            trees[label] = ast.parse(file_path.read_text(encoding="utf-8"))
        return trees

    def test_src_tree_is_acyclic(self):
        trees = self._src_trees()
        assert len(trees) > 50
        assert check_lock_order(trees) == []

    def test_src_graph_contains_the_known_service_edges(self):
        graph = build_lock_graph(self._src_trees())
        for edge in [
            ("SortService._lock", "DynamicBatcher._lock"),
            ("SortService._lock", "StatsRecorder._lock"),
            ("SortFleet._lock", "FleetRouter._lock"),
        ]:
            assert edge in graph.edges, f"expected static edge {edge}"

    def test_runtime_observed_edges_are_subset_of_static(self):
        # Run a real sanitized service workload in-process, then diff
        # the runtime acquisition graph against the static may-acquire
        # graph: every observed edge must be statically explained.
        from repro.service import SortService

        was_enabled = rt.enabled()
        rt.enable()
        rt.reset()
        try:
            rng = np.random.default_rng(3)
            with SortService(batch_target_rows=8, linger_ms=0.5) as svc:
                futures = [
                    svc.submit(rng.uniform(size=(4, 16)), tenant=t)
                    for t in ("a", "b", "a", "c")
                ]
                for f in futures:
                    f.result(timeout=10)
                svc.stats()
            runtime_edges = rt.lock_order_edges()
        finally:
            rt.reset()
            if not was_enabled:
                rt.disable()
        # The workload must actually have exercised nested acquisition.
        assert runtime_edges, "sanitized workload observed no lock edges"
        graph = build_lock_graph(self._src_trees())
        unexplained = unexplained_runtime_edges(graph, runtime_edges)
        assert unexplained == [], (
            f"runtime lock edges missing from the static graph: "
            f"{unexplained} — teach the may-acquire index"
        )


class TestLockGraphCli:
    def test_lock_graph_flag_prints_json(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statan", "--lock-graph", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(SRC),
            },
        )
        assert proc.returncode == 0, proc.stderr
        data = json.loads(proc.stdout)
        assert data["schema"] == "statan-lockgraph/v1"
        assert "SortService._lock" in data["nodes"]
