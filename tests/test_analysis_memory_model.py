"""Tests for the memory model and the Table 1 capacity reproduction."""

import pytest

from repro.analysis.memory_model import (
    PAPER_TABLE1,
    arraysort_bytes_per_array,
    capacity_analytic,
    measure_capacity,
    sta_bytes_per_array,
    table1_rows,
)
from repro.core.config import SortConfig
from repro.gpusim.device import K40C, MICRO


class TestFootprints:
    def test_arraysort_near_payload(self):
        # In-place: total footprint within 15% of the raw data bytes.
        for n in (1000, 2000, 3000, 4000):
            payload = n * 4
            assert payload < arraysort_bytes_per_array(n) < 1.15 * payload

    def test_sta_about_3x_payload(self):
        # Paper: "STA uses about 3 times more memory than may actually be
        # required."
        for n in (1000, 2000, 3000, 4000):
            assert sta_bytes_per_array(n) == 3 * n * 4

    def test_sta_conservative_4x(self):
        assert sta_bytes_per_array(1000, conservative=True) == 4 * 1000 * 4

    def test_memory_advantage_about_3x(self):
        for n in (1000, 2000, 3000, 4000):
            ratio = sta_bytes_per_array(n) / arraysort_bytes_per_array(n)
            assert 2.5 < ratio < 3.0


class TestCapacityAnalytic:
    def test_basic_division(self):
        cap = capacity_analytic(1000, 1000, MICRO)
        assert cap == MICRO.usable_global_mem_bytes // 1000

    def test_step_flooring(self):
        cap = capacity_analytic(1000, 1000, MICRO, step=1000)
        assert cap % 1000 == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            capacity_analytic(1000, 0, MICRO)
        with pytest.raises(ValueError):
            capacity_analytic(1000, 10, MICRO, step=0)


class TestMeasureCapacity:
    def test_matches_analytic_within_alignment(self):
        # Against the micro device (fast binary search).
        measured = measure_capacity("arraysort", 100, device_spec=MICRO)
        analytic = capacity_analytic(
            100, arraysort_bytes_per_array(100), MICRO
        )
        assert measured == pytest.approx(analytic, rel=0.02)

    def test_sta_measured_below_arraysort(self):
        gas = measure_capacity("arraysort", 100, device_spec=MICRO)
        sta = measure_capacity("sta", 100, device_spec=MICRO)
        assert sta < gas

    def test_unknown_technique(self):
        with pytest.raises(ValueError):
            measure_capacity("bogosort", 100, device_spec=MICRO)

    def test_measured_capacity_actually_fits(self):
        from repro.gpusim.executor import GpuDevice
        from repro.analysis.memory_model import _alloc_arraysort

        n = 100
        cap = measure_capacity("arraysort", n, device_spec=MICRO)
        device = GpuDevice(MICRO)
        allocs = _alloc_arraysort(device, cap, n, SortConfig())
        for a in allocs:
            device.memory.free(a)

    def test_one_more_does_not_fit(self):
        from repro.gpusim.errors import DeviceOutOfMemoryError
        from repro.gpusim.executor import GpuDevice
        from repro.analysis.memory_model import _alloc_arraysort

        n = 100
        cap = measure_capacity("arraysort", n, device_spec=MICRO)
        device = GpuDevice(MICRO)
        with pytest.raises(DeviceOutOfMemoryError):
            _alloc_arraysort(device, cap + 50, n, SortConfig())


class TestTable1:
    """The headline Table 1 claims, against the analytic model."""

    @pytest.fixture(scope="class")
    def rows(self):
        return table1_rows(measure=False)

    def test_covers_all_paper_sizes(self, rows):
        assert [r.array_size for r in rows] == sorted(PAPER_TABLE1)

    def test_arraysort_capacity_within_one_step(self, rows):
        for r in rows:
            assert abs(r.model_arraysort - r.paper_arraysort) <= 50_000, r

    def test_sta_capacity_matches_paper_exactly(self, rows):
        for r in rows:
            assert r.model_sta == r.paper_sta, r

    def test_2_million_arrays_headline(self, rows):
        # Abstract: "we can sort up to 2 million arrays having 1000
        # elements each".
        assert rows[0].model_arraysort == 2_000_000

    def test_three_times_more_data(self, rows):
        # Abstract: "sorting three times more data".
        for r in rows:
            assert 2.5 < r.model_advantage < 3.6

    def test_paper_advantage_consistency(self, rows):
        for r in rows:
            assert 2.5 < r.paper_advantage < 3.6

    def test_empirical_measurement_runs_on_k40c(self):
        # One full empirical probe at K40c scale (allocation-only, fast).
        measured = measure_capacity("arraysort", 1000, step=50_000)
        assert measured == 2_000_000
