"""Tests for the one-command reproduction report."""

import pytest

from repro.analysis.report import Claim, build_report, evaluate_claims
from repro.cli import main
from repro.gpusim.device import K40C, MICRO


class TestClaims:
    @pytest.fixture(scope="class")
    def claims(self):
        return evaluate_claims()

    def test_all_paper_claims_pass(self, claims):
        failed = [c for c in claims if not c.passed]
        assert not failed, [f"{c.claim_id}: {c.detail}" for c in failed]

    def test_covers_the_headline_claims(self, claims):
        ids = {c.claim_id for c in claims}
        assert {"fig2-trend", "figs4-7-win", "figs4-7-linear",
                "table1-capacity", "abstract-2m", "abstract-3x",
                "abstract-seconds"} <= ids

    def test_verdict_strings(self):
        assert Claim("x", "s", True, "d").verdict == "PASS"
        assert Claim("x", "s", False, "d").verdict == "FAIL"

    def test_claims_fail_on_wrong_device(self):
        """Sanity: the claims are not vacuous — a tiny device cannot hold
        2M arrays, so the capacity claims must FAIL there."""
        claims = evaluate_claims(device=MICRO)
        by_id = {c.claim_id: c for c in claims}
        assert not by_id["abstract-2m"].passed


class TestBuildReport:
    def test_contains_all_sections(self):
        text = build_report()
        assert "Claims" in text
        assert "Fig 2 series" in text
        assert "Fig 4 series" in text
        assert "Fig 7 series" in text
        assert "Table 1" in text
        assert "7/7 claims reproduced" in text

    def test_claims_only(self):
        text = build_report(include_figures=False)
        assert "Claims" in text
        assert "Fig 4 series" not in text

    def test_device_header(self):
        text = build_report(include_figures=False, device=K40C)
        assert "Tesla K40c" in text


class TestReportCommand:
    def test_stdout(self, capsys):
        rc = main(["report", "--claims-only"])
        assert rc == 0
        assert "claims reproduced" in capsys.readouterr().out

    def test_file_output(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        rc = main(["report", "-o", str(path), "--claims-only"])
        assert rc == 0
        assert "claims reproduced" in path.read_text()
