"""Property-style demux correctness: under concurrency, batch splits,
mixed shapes/dtypes, and mid-stream shedding, every caller gets back
exactly *their own* arrays sorted — byte-identical to a direct
``GpuArraySort`` call — or a typed error.  Never someone else's rows,
never a partial or stale result.

This is the acceptance contract of the service subsystem: dynamic
batching is only admissible if demultiplexing is indistinguishable from
having sorted alone.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import GpuArraySort
from repro.core.config import SortConfig
from repro.service import DeadlineExceededError, ServiceError, SortService

pytestmark = pytest.mark.service

DTYPES = [np.float32, np.float64, np.int32, np.int64]
ROW_LENS = [16, 33, 64]


def _make_arrays(rng, dtype, rows, row_len):
    if np.dtype(dtype).kind == "f":
        return rng.uniform(-1e6, 1e6, (rows, row_len)).astype(dtype)
    return rng.integers(-(2**20), 2**20, (rows, row_len)).astype(dtype)


def _expected(arrays):
    return GpuArraySort(SortConfig()).sort(arrays.copy()).batch


@pytest.mark.timeout(90)
def test_concurrent_random_submits_each_get_their_own_rows(rng):
    """N threads x M submits of random shapes/dtypes, byte-identical demux.

    Shapes and dtypes are drawn so multiple lanes coexist and lanes mix
    requests from different threads — the demux has to slice the fused
    batch back to the right owner every time.
    """
    with SortService(batch_target_rows=16, max_batch_rows=32,
                     linger_ms=2.0, max_queue_rows=4096) as service:

        def worker(worker_id):
            wrng = np.random.default_rng(1000 + worker_id)
            pairs = []
            for _ in range(20):
                dtype = DTYPES[wrng.integers(len(DTYPES))]
                row_len = ROW_LENS[wrng.integers(len(ROW_LENS))]
                rows = int(wrng.integers(1, 9))
                arrays = _make_arrays(wrng, dtype, rows, row_len)
                pairs.append((arrays, service.submit(arrays)))
            return pairs

        with ThreadPoolExecutor(max_workers=8) as pool:
            all_pairs = [
                pair
                for pairs in pool.map(worker, range(8))
                for pair in pairs
            ]

        for arrays, future in all_pairs:
            out = future.result(timeout=60)
            assert out.dtype == arrays.dtype
            assert out.shape == arrays.shape
            expected = _expected(arrays)
            assert out.tobytes() == expected.tobytes()


@pytest.mark.timeout(90)
def test_forced_batch_splits_preserve_ownership(rng):
    """A tiny max_batch_rows forces every lane to split across batches;
    ownership must survive the splits."""
    with SortService(batch_target_rows=4, max_batch_rows=4,
                     linger_ms=1.0, max_queue_rows=4096) as service:
        submissions = []
        for i in range(40):
            arrays = _make_arrays(rng, np.float32, 3, 24)
            submissions.append((arrays, service.submit(arrays)))
        for arrays, future in submissions:
            out = future.result(timeout=60)
            assert out.tobytes() == _expected(arrays).tobytes()


@pytest.mark.timeout(90)
def test_demux_correct_under_mid_stream_shedding(rng):
    """Mixing hopeless deadlines into live traffic must not corrupt the
    survivors: shed requests fail typed, the rest stay byte-identical."""

    class Throttled:
        """Small, bounded delay per batch so deadlines genuinely expire."""

        def __init__(self):
            self.inner = GpuArraySort(SortConfig())

        def sort(self, batch):
            import time

            time.sleep(0.005)
            return self.inner.sort(batch)

    with SortService(backend=Throttled(), batch_target_rows=8,
                     max_batch_rows=8, linger_ms=1.0,
                     max_queue_rows=4096) as service:
        live, doomed = [], []
        for i in range(60):
            arrays = _make_arrays(rng, np.float64, 2, 16)
            if i % 3 == 2:
                # ~20 requests whose deadline has effectively passed on
                # arrival; they must shed, not deliver.
                doomed.append(
                    (arrays, service.submit(arrays, deadline=1e-4))
                )
            else:
                live.append((arrays, service.submit(arrays)))

        shed_count = 0
        for arrays, future in doomed:
            try:
                out = future.result(timeout=60)
            except ServiceError:
                shed_count += 1
            else:
                # Close calls can still win the race — but then the data
                # must be exactly right, never stale or misrouted.
                assert out.tobytes() == _expected(arrays).tobytes()
        assert shed_count > 0  # the throttle guarantees some expire

        for arrays, future in live:
            out = future.result(timeout=60)
            assert out.tobytes() == _expected(arrays).tobytes()

    stats = service.stats()
    assert stats.shed + stats.deadline_missed == shed_count


@pytest.mark.timeout(90)
def test_retained_copies_survive_concurrent_dispatches(rng):
    """The default copy=True contract: results retained across later
    dispatches (from four competing threads) stay byte-identical."""
    with SortService(batch_target_rows=4, max_batch_rows=8,
                     linger_ms=1.0, max_queue_rows=4096) as service:
        checked = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker(worker_id):
            wrng = np.random.default_rng(77 + worker_id)
            barrier.wait()
            for _ in range(15):
                arrays = _make_arrays(wrng, np.float32, 2, 32)
                out = service.submit(arrays).result(timeout=60)
                with lock:
                    checked.append((arrays, out))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Every retained copy must still be correct after all dispatches.
        assert len(checked) == 60
        for arrays, out in checked:
            assert out.tobytes() == _expected(arrays).tobytes()


@pytest.mark.timeout(90)
def test_zero_copy_view_correct_until_next_dispatch(rng):
    """copy=False is the single-caller fast path: the view is exact when
    read before the caller's next submit (which triggers the next
    dispatch and may reuse the buffer)."""
    with SortService(batch_target_rows=2, linger_ms=1.0) as service:
        for _ in range(10):
            arrays = _make_arrays(rng, np.float64, 3, 48)
            out = service.submit(arrays, copy=False).result(timeout=60)
            # Read (and verify) before anything else is submitted.
            assert out.tobytes() == _expected(arrays).tobytes()
