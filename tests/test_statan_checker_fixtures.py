"""False-positive regression fixtures for the guarded-by and
scratch-escape checkers.

Every shape here is legal code that a naive implementation of the rule
WOULD flag.  Each test pins the checker to silence on that shape, so a
future "improvement" that reintroduces the false positive fails loudly
— these are the same exemptions the runtime sanitizer mirrors
(``tests/test_statan_runtime.py``), and the two must not drift.
"""

from __future__ import annotations

import textwrap

from repro.statan import analyze_source

CORE = "src/repro/core/mod.py"


def run(source: str, path: str = CORE):
    return analyze_source(textwrap.dedent(source), path)


class TestGuardedByFalsePositives:
    """Shapes the guarded-by checker must NOT flag."""

    def test_condition_alias_counts_as_the_lock(self):
        # FP shape 1: the service idiom — a Condition wrapping the lock.
        # Holding the condition IS holding the lock; flagging this would
        # force every wait-loop to double-acquire.
        findings = run("""
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._wakeup = threading.Condition(self._lock)
                    self._queue = []  # guarded-by: _lock

                def submit(self, item):
                    with self._wakeup:
                        self._queue.append(item)
                        self._wakeup.notify_all()
        """)
        assert findings == []

    def test_locked_suffix_helpers_are_exempt(self):
        # FP shape 2: the ``*_locked`` convention — helpers documented
        # to run with the lock already held by their caller.
        findings = run("""
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}  # guarded-by: _lock

                def drop(self, key):
                    with self._lock:
                        self._drop_locked(key)

                def _drop_locked(self, key):
                    self._items.pop(key, None)
        """)
        assert findings == []

    def test_init_publication_is_exempt(self):
        # FP shape 3: __init__ writes before the object is published to
        # any other thread; requiring the lock there is pure noise.
        findings = run("""
            import threading

            class Box:
                def __init__(self, seed):
                    self._lock = threading.Lock()
                    self._n = seed  # guarded-by: _lock
                    self._n += 1  # still construction, still exempt
        """)
        assert findings == []

    def test_same_name_on_another_object_is_exempt(self):
        # FP shape 4: ``other._n`` matches the attribute name but not
        # the annotated object — the contract is per-instance, accessed
        # through ``self``.
        findings = run("""
            import threading

            class Node:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def merge(self, other):
                    with self._lock:
                        self._n += other._n
        """)
        assert findings == []

    def test_closure_taking_the_lock_itself_is_clean(self):
        # FP shape 5: closures are analyzed lock-free (they may run on
        # another thread), but a closure that takes the lock itself is
        # doing exactly the right thing.
        findings = run("""
            import threading

            class Deferred:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def work(self):
                    def later():
                        with self._lock:
                            self._n += 1
                    return later
        """)
        assert findings == []


class TestScratchEscapeFalsePositives:
    """Shapes the scratch-escape checker must NOT flag."""

    def test_copy_before_return_is_clean(self):
        # FP shape 1: the documented fix — .copy() allocates fresh
        # storage, so nothing arena-backed escapes.
        findings = run("""
            def snapshot(arena, shape, dtype):
                view = arena.get("work", shape, dtype)
                return view.copy()
        """)
        assert findings == []

    def test_np_array_copy_sanitizes(self):
        # FP shape 2: np.array(view) copies by default; only
        # copy=False keeps the alias.
        findings = run("""
            import numpy as np

            def snapshot(arena, shape, dtype):
                view = arena.get("work", shape, dtype)
                return np.array(view)
        """)
        assert findings == []

    def test_scalar_aggregation_is_clean(self):
        # FP shape 3: reductions produce fresh scalars/arrays — a sum
        # of scratch data is not scratch data.
        findings = run("""
            def checksum(arena, shape, dtype):
                view = arena.get("work", shape, dtype)
                return view.sum()
        """)
        assert findings == []

    def test_tolist_is_clean(self):
        # FP shape 4: .tolist() materializes into Python objects.
        findings = run("""
            def rows(arena, shape, dtype):
                view = arena.get("work", shape, dtype)
                return view.tolist()
        """)
        assert findings == []

    def test_constructor_storing_its_own_arena_is_clean(self):
        # FP shape 5: a sorter OWNING an arena is the design, not an
        # escape — only buffers leaving the owner are hazards.
        findings = run("""
            from repro.core import ScratchArena

            class Sorter:
                def __init__(self):
                    self.workspace = ScratchArena()
        """)
        assert findings == []

    def test_checkers_still_fire_on_the_real_bugs(self):
        # Guard the guards: the exemptions above must not have lobotomized
        # the rules.  One canonical true positive each.
        guarded = run("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    self._n += 1
        """)
        assert [f.rule for f in guarded] == ["guarded-by"]
        escape = run("""
            def leak(arena, shape, dtype):
                return arena.get("work", shape, dtype)
        """)
        assert [f.rule for f in escape] == ["scratch-escape"]
