"""Schema + gate tests for benchmarks/bench_chaos.py, and the committed
BENCH_chaos.json artifact's standing obligations."""

import copy
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_chaos  # noqa: E402

pytestmark = [pytest.mark.service, pytest.mark.chaos]


@pytest.fixture(scope="module")
def smoke_report():
    """One real run of the smallest grid — a second or two."""
    return bench_chaos.run_grid(
        "smoke", seed=0,
        p99_budget_factor=bench_chaos.DEFAULT_P99_BUDGET_FACTOR,
        max_rejection_rate=bench_chaos.DEFAULT_MAX_REJECTION_RATE,
    )


class TestRunGrid:
    def test_schema_self_valid(self, smoke_report):
        assert bench_chaos.check_schema(smoke_report) == []

    def test_covers_every_cell(self, smoke_report):
        names = [r["name"] for r in smoke_report["results"]]
        assert names == [c[0] for c in bench_chaos.GRIDS["smoke"]]

    def test_three_phases_embedded(self, smoke_report):
        for cell in smoke_report["results"]:
            for phase in ("baseline", "faulted", "flood"):
                block = cell["report"][phase]
                assert block["traffic"]
                assert block["tenants"]
                assert block["metrics"]["schema"] == "repro-service-metrics/v1"

    def test_faulted_phase_saw_injected_faults(self, smoke_report):
        for cell in smoke_report["results"]:
            injected = (cell["report"]["faulted"]["metrics"]["backend"]
                        ["fault_plan"]["injected"])
            assert injected["launches_seen"] > 0

    def test_smoke_cell_holds_slos(self, smoke_report):
        for cell in smoke_report["results"]:
            assert cell["slos"]["ok"], cell["slos"]

    def test_json_serializable(self, smoke_report):
        json.dumps(smoke_report)


class TestCheckSchema:
    def test_rejects_wrong_schema_string(self, smoke_report):
        bad = dict(smoke_report, schema="bench-chaos/v0")
        assert any("schema" in e for e in bench_chaos.check_schema(bad))

    def test_rejects_empty_results(self):
        assert bench_chaos.check_schema({"schema": bench_chaos.SCHEMA,
                                         "results": []})

    def test_rejects_missing_slo_fields(self, smoke_report):
        bad = copy.deepcopy(smoke_report)
        del bad["results"][0]["slos"]["isolation_ok"]
        assert any("isolation_ok" in e for e in bench_chaos.check_schema(bad))


def _gated(report):
    """A deep copy of a report with its gate cell renamed to chaos-mid."""
    gated = copy.deepcopy(report)
    gated["results"][0]["name"] = bench_chaos.GATE_CELL
    return gated


class TestApplyGate:
    def test_passes_on_clean_report(self, smoke_report):
        report = _gated(smoke_report)
        assert bench_chaos.apply_gate(
            report, p99_budget_factor=2.0, max_rejection_rate=0.05
        )
        assert report["gate"]["passed"]
        assert report["gate"]["failures"] == []

    def test_missing_cell_fails(self, smoke_report):
        report = copy.deepcopy(smoke_report)  # only chaos-smoke inside
        assert not bench_chaos.apply_gate(
            report, p99_budget_factor=2.0, max_rejection_rate=0.05
        )
        assert "chaos-mid" in report["gate"]["failures"][0]

    def test_cross_tenant_quarantine_fails(self, smoke_report):
        report = _gated(smoke_report)
        report["results"][0]["slos"]["cross_tenant_quarantines"] = 2
        assert not bench_chaos.apply_gate(
            report, p99_budget_factor=2.0, max_rejection_rate=0.05
        )
        assert any("isolation" in f for f in report["gate"]["failures"])

    def test_unfired_probe_fails(self, smoke_report):
        report = _gated(smoke_report)
        cell = report["results"][0]
        traffic = cell["report"]["faulted"]["traffic"]
        traffic[cell["poison_tenant"]]["quarantined"] = 0
        assert not bench_chaos.apply_gate(
            report, p99_budget_factor=2.0, max_rejection_rate=0.05
        )
        assert any("probe" in f for f in report["gate"]["failures"])

    def test_p99_over_budget_fails(self, smoke_report):
        report = _gated(smoke_report)
        report["results"][0]["slos"]["p99_ratio"] = 2.7
        assert not bench_chaos.apply_gate(
            report, p99_budget_factor=2.0, max_rejection_rate=0.05
        )
        assert any("p99" in f for f in report["gate"]["failures"])
        # the gate recomputes from numbers: a hand-edited ok flag is moot
        report2 = _gated(smoke_report)
        report2["results"][0]["slos"]["p99_ratio"] = 2.7
        report2["results"][0]["slos"]["ok"] = True
        assert not bench_chaos.apply_gate(
            report2, p99_budget_factor=2.0, max_rejection_rate=0.05
        )

    def test_innocent_rejection_rate_fails(self, smoke_report):
        report = _gated(smoke_report)
        report["results"][0]["slos"]["innocent_rejection_rates"]["alpha"] = 0.2
        assert not bench_chaos.apply_gate(
            report, p99_budget_factor=2.0, max_rejection_rate=0.05
        )
        assert any("alpha" in f for f in report["gate"]["failures"])


class TestCommittedArtifact:
    """BENCH_chaos.json is a standing claim; it must keep satisfying both
    the schema and the gate exactly as `make chaos-gate` checks them."""

    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_chaos.json"
        assert path.exists(), "BENCH_chaos.json must be committed"
        return json.loads(path.read_text())

    def test_schema_valid(self, committed):
        assert bench_chaos.check_schema(committed) == []

    def test_gate_passes(self, committed):
        report = copy.deepcopy(committed)
        assert bench_chaos.apply_gate(
            report,
            p99_budget_factor=bench_chaos.DEFAULT_P99_BUDGET_FACTOR,
            max_rejection_rate=bench_chaos.DEFAULT_MAX_REJECTION_RATE,
        ), report["gate"]["failures"]

    def test_gate_cell_present_with_flood_pressure(self, committed):
        cell = next(r for r in committed["results"]
                    if r["name"] == bench_chaos.GATE_CELL)
        flood = cell["report"]["flood"]["tenants"][cell["flood_tenant"]]
        # the committed artifact must show the flooder actually being
        # pushed back (otherwise fairness passed vacuously)
        assert flood["rejected_quota"] > 0
