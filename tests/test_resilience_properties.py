"""Property tests for the resilience layer (hypothesis).

Two invariants hold for *every* (seed, rates, input) combination:

1. **replayability** — a fault-injected run is byte-identical across
   reruns with the same FaultPlan seed: same output batch, same
   quarantine set, same stats;
2. **no data invention, no data loss** — rows either arrive verified
   (sorted permutations of their inputs) or are quarantined with their
   original content; corrupted data never reaches the consumer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SortConfig, StreamingSorter
from repro.core.validation import is_sorted_rows, rows_are_permutations
from repro.gpusim.faults import FaultPlan
from repro.resilience import ResilientSorter

pytestmark = pytest.mark.faultinject

plans = st.fixed_dictionaries({
    "seed": st.integers(0, 2**16),
    "kernel_fault_rate": st.sampled_from([0.0, 0.2, 0.5, 1.0]),
    "corruption_rate": st.sampled_from([0.0, 0.3, 1.0]),
})
data_seeds = st.integers(0, 2**16)


def make_batch(data_seed: int) -> np.ndarray:
    rng = np.random.default_rng(data_seed)
    return rng.uniform(0, 1000, (6, 48)).astype(np.float32)


def run_once(plan_kwargs: dict, batch: np.ndarray):
    plan = FaultPlan(plan_kwargs["seed"],
                     kernel_fault_rate=plan_kwargs["kernel_fault_rate"],
                     corruption_rate=plan_kwargs["corruption_rate"])
    sorter = ResilientSorter(
        SortConfig(), engine="vectorized", fault_plan=plan, sleep=None
    )
    return sorter.sort(batch)


@settings(max_examples=25, deadline=None)
@given(plan_kwargs=plans, data_seed=data_seeds)
def test_same_seed_runs_are_byte_identical(plan_kwargs, data_seed):
    batch = make_batch(data_seed)
    first = run_once(plan_kwargs, batch)
    second = run_once(plan_kwargs, batch)
    assert first.batch.tobytes() == second.batch.tobytes()
    assert np.array_equal(first.quarantined, second.quarantined)
    assert first.quarantine_reasons == second.quarantine_reasons
    assert first.stats.as_dict() == second.stats.as_dict()


@settings(max_examples=25, deadline=None)
@given(plan_kwargs=plans, data_seed=data_seeds)
def test_delivered_rows_verified_quarantined_rows_pristine(plan_kwargs, data_seed):
    batch = make_batch(data_seed)
    result = run_once(plan_kwargs, batch)
    delivered = np.ones(batch.shape[0], dtype=bool)
    delivered[result.quarantined] = False
    assert bool(np.all(is_sorted_rows(result.batch[delivered])))
    assert bool(np.all(
        rows_are_permutations(result.batch[delivered], batch[delivered])
    ))
    # Quarantined rows surface their input verbatim.
    assert np.array_equal(result.batch[~delivered], batch[~delivered])


@settings(max_examples=15, deadline=None)
@given(plan_kwargs=plans, data_seed=data_seeds)
def test_streaming_never_emits_quarantined_rows(plan_kwargs, data_seed):
    rng = np.random.default_rng(data_seed)
    data = rng.uniform(0, 1000, (20, 32)).astype(np.float32)
    plan = FaultPlan(plan_kwargs["seed"],
                     kernel_fault_rate=plan_kwargs["kernel_fault_rate"],
                     corruption_rate=plan_kwargs["corruption_rate"])
    sorter = ResilientSorter(
        SortConfig(), engine="vectorized", fault_plan=plan, sleep=None
    )
    streamer = StreamingSorter(32, batch_arrays=5, sorter=sorter)
    streamer.push_slab(data)
    streamer.flush()

    emitted = (
        np.vstack(streamer.results)
        if streamer.results and any(r.size for r in streamer.results)
        else np.empty((0, 32), dtype=np.float32)
    )
    n_quarantined = (
        len(streamer.dead_letters) if streamer.dead_letters is not None else 0
    )
    # Conservation: every input row is emitted exactly once or
    # dead-lettered exactly once.
    assert emitted.shape[0] + n_quarantined == data.shape[0]
    assert bool(np.all(is_sorted_rows(emitted)))
    if n_quarantined:
        quarantined_payloads = streamer.dead_letters.payloads()
        recombined = np.vstack([emitted, quarantined_payloads])
    else:
        recombined = emitted
    assert np.array_equal(
        np.sort(np.sort(recombined, axis=1), axis=0),
        np.sort(np.sort(data, axis=1), axis=0),
    )
    # A quarantined row's payload must be one of the original inputs —
    # never a half-sorted or corrupted fabrication.
    if n_quarantined:
        for letter in streamer.dead_letters:
            row = letter.batch_id * 5 + letter.row_index
            assert np.array_equal(letter.payload, data[row])
