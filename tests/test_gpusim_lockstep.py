"""Deep tests of the lock-step execution semantics.

These pin down the simulator's contract in the corners: barrier
interaction with early-exiting lanes, multi-warp reconvergence, loop
divergence accounting, event delivery order, and determinism — the
semantics kernels (and the paper-claim tests built on them) rely on.
"""

import numpy as np
import pytest

from repro.gpusim import GpuDevice


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestBarrierSemantics:
    def test_exited_lanes_do_not_block_barrier(self, gpu):
        """Threads that return before a barrier must not deadlock it
        (modern CUDA semantics: exited threads are not counted)."""
        out = gpu.memory.alloc(8, np.int32)
        out.fill(0)

        def k(ctx, shared, dst):
            tid = ctx.thread_idx.x
            if tid >= 4:
                return  # early exit, never syncs
            yield ctx.sstore(shared, tid, tid)
            yield ctx.sync()
            v = yield ctx.sload(shared, 3 - tid)
            yield ctx.gstore(dst, tid, v)

        gpu.launch(k, grid=1, block=8, args=(out,),
                   shared_setup=lambda sm: sm.alloc(4, np.int32))
        assert out.copy_to_host()[:4].tolist() == [3, 2, 1, 0]

    def test_multiple_sequential_barriers(self, gpu):
        out = gpu.memory.alloc(4, np.float32)

        def k(ctx, shared, dst):
            tid = ctx.thread_idx.x
            for round_idx in range(3):
                yield ctx.sstore(shared, tid, float(round_idx * 10 + tid))
                yield ctx.sync()
                v = yield ctx.sload(shared, (tid + 1) % 4)
                yield ctx.sync()
            yield ctx.gstore(dst, tid, v)

        gpu.launch(k, grid=1, block=4, args=(out,),
                   shared_setup=lambda sm: sm.alloc(4, np.float32))
        assert out.copy_to_host().tolist() == [21.0, 22.0, 23.0, 20.0]

    def test_barrier_orders_cross_warp_communication(self, gpu):
        """Warp 1 must observe warp 0's pre-barrier stores."""
        out = gpu.memory.alloc(64, np.float32)
        out.fill(-1)

        def k(ctx, shared, dst):
            tid = ctx.thread_idx.x
            if tid < 32:
                yield ctx.sstore(shared, tid, float(tid * 2))
            yield ctx.sync()
            if tid >= 32:
                v = yield ctx.sload(shared, tid - 32)
                yield ctx.gstore(dst, tid, v)

        gpu.launch(k, grid=1, block=64, args=(out,),
                   shared_setup=lambda sm: sm.alloc(32, np.float32))
        assert np.array_equal(
            out.copy_to_host()[32:], np.arange(32, dtype=np.float32) * 2
        )


class TestDivergenceAccounting:
    def test_uniform_loop_counts_no_divergence(self, gpu):
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))

        def k(ctx, shared, src):
            total = 0.0
            for i in range(4):  # same trip count on all lanes
                v = yield ctx.gload(src, ctx.thread_idx.x)
                total += v
            yield ctx.alu(1)

        rep = gpu.launch(k, grid=1, block=32, args=(data,))
        assert rep.total_divergent_steps == 0

    def test_variable_trip_count_diverges(self, gpu):
        data = gpu.memory.alloc_like(np.arange(64, dtype=np.float32))

        def k(ctx, shared, src):
            # lane t loops t % 4 + 1 times: lanes finish at different
            # steps, so late iterations mix loads with ALU from other
            # lanes' epilogues.
            for i in range(ctx.thread_idx.x % 4 + 1):
                v = yield ctx.gload(src, ctx.thread_idx.x)
            yield ctx.alu(1)

        rep = gpu.launch(k, grid=1, block=32, args=(data,))
        assert rep.total_divergent_steps > 0

    def test_divergence_is_per_warp_not_per_block(self, gpu):
        """Lanes in different warps never 'diverge' against each other."""
        data = gpu.memory.alloc_like(np.arange(64, dtype=np.float32))

        def k(ctx, shared, src):
            tid = ctx.thread_idx.x
            if tid < 32:  # whole warp 0 takes this path
                v = yield ctx.gload(src, tid)
            else:         # whole warp 1 takes that path
                yield ctx.alu(5)

        rep = gpu.launch(k, grid=1, block=64, args=(data,))
        assert rep.total_divergent_steps == 0


class TestLoadDelivery:
    def test_load_value_is_pre_step_snapshot_within_warp(self, gpu):
        """All lanes of one warp step load *then* store: a same-step
        exchange must read the pre-step values (lock-step RAW safety)."""
        data = gpu.memory.alloc_like(np.arange(32, dtype=np.float32))

        def swap_neighbor(ctx, shared, arr):
            tid = ctx.thread_idx.x
            partner = tid ^ 1
            v = yield ctx.gload(arr, partner)   # all lanes load first
            yield ctx.gstore(arr, tid, v)       # then all store

        gpu.launch(swap_neighbor, grid=1, block=32, args=(data,))
        expected = np.arange(32, dtype=np.float32).reshape(16, 2)[:, ::-1].ravel()
        assert np.array_equal(data.copy_to_host(), expected)

    def test_deterministic_across_runs(self, gpu, rng):
        host = rng.uniform(0, 1, 64).astype(np.float32)

        def k(ctx, shared, src, dst):
            tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
            v = yield ctx.gload(src, tid)
            yield ctx.atomic_add(dst, 0, float(v))

        results = []
        for _ in range(2):
            src = gpu.memory.alloc_like(host)
            acc = gpu.memory.alloc(1, np.float64)
            acc.fill(0)
            gpu.launch(k, grid=2, block=32, args=(src, acc))
            results.append(acc.copy_to_host()[0])
            gpu.memory.free(src)
            gpu.memory.free(acc)
        assert results[0] == results[1]


class TestGridShapes:
    def test_2d_grid_and_block(self, gpu):
        out = gpu.memory.alloc(36, np.int32)

        def k(ctx, shared, dst):
            linear = (
                ctx.grid_dim.linearize(
                    (ctx.block_idx.x, ctx.block_idx.y, ctx.block_idx.z)
                ) * ctx.block_dim.count
                + ctx.block_dim.linearize(
                    (ctx.thread_idx.x, ctx.thread_idx.y, ctx.thread_idx.z)
                )
            )
            yield ctx.gstore(dst, linear, linear)

        gpu.launch(k, grid=(3, 2), block=(3, 2), args=(out,))
        assert np.array_equal(out.copy_to_host(), np.arange(36, dtype=np.int32))

    def test_lane_id_within_warp(self, gpu):
        out = gpu.memory.alloc(48, np.int32)

        def k(ctx, shared, dst):
            gid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
            yield ctx.gstore(dst, gid, ctx.lane_id)

        gpu.launch(k, grid=1, block=48, args=(out,))
        lanes = out.copy_to_host()
        assert np.array_equal(lanes[:32], np.arange(32))
        assert np.array_equal(lanes[32:], np.arange(16))
