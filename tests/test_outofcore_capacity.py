"""CapacitySorter: array sink, spill sink, degradation, facade wiring."""

import numpy as np
import pytest

from repro.core.array_sort import GpuArraySort
from repro.core.config import SortConfig
from repro.outofcore.capacity import CapacityResult, CapacitySorter
from repro.outofcore.spill import SpillStore, write_batch_file

pytestmark = pytest.mark.capacity

CONFIG = SortConfig(bucket_size=16, sampling_rate=0.2)


def make_batch(rows, n, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(-1000, 1000, size=(rows, n)).astype(dtype)
    return rng.random((rows, n)).astype(dtype)


class _OomOnce:
    """Test-seam sorter: raise MemoryError on the first N sort calls."""

    def __init__(self, failures):
        self.failures = failures

    def sort(self, batch):
        if self.failures > 0:
            self.failures -= 1
            raise MemoryError("injected")
        work = np.array(batch, copy=True)
        work.sort(axis=1)
        return CapacityResult(plan=None, stats=None, batch=work)


class TestArraySink:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
    def test_byte_identity_across_dtypes(self, dtype):
        batch = make_batch(300, 24, dtype=dtype, seed=11)
        sorter = CapacitySorter("64K", config=CONFIG, max_chunk_rows=37)
        result = sorter.sort(batch)
        expected = np.sort(batch, axis=1)
        np.testing.assert_array_equal(result.batch, expected)
        assert result.stats.chunks_committed == result.plan.num_chunks
        assert result.stats.rows_sorted == 300
        assert result.plan.num_chunks > 1  # budget actually forced chunking
        # Input untouched on the copy path.
        assert not np.array_equal(batch, expected)

    def test_inplace_and_descending(self):
        batch = make_batch(100, 16, seed=12)
        expected_desc = np.sort(batch, axis=1)[:, ::-1]
        sorter = CapacitySorter("1M", config=CONFIG, max_chunk_rows=16)
        result = sorter.sort(batch, inplace=True, descending=True)
        assert result.batch is batch
        np.testing.assert_array_equal(batch, expected_desc)

    def test_empty_batch(self):
        result = CapacitySorter("1M").sort(np.empty((0, 8)))
        assert result.rows == 0
        assert result.stats.chunks_committed == 0

    def test_iter_chunks_and_gather(self):
        batch = make_batch(90, 8, seed=13)
        result = CapacitySorter("1M", config=CONFIG,
                                max_chunk_rows=40).sort(batch)
        starts = [start for start, _ in result.iter_chunks()]
        assert starts == [0, 40, 80]
        np.testing.assert_array_equal(result.gather(),
                                      np.sort(batch, axis=1))

    def test_shrink_ladder_on_injected_oom(self):
        batch = make_batch(64, 8, seed=14)
        oom = _OomOnce(2)  # shared: fails exactly twice across rebuilds
        sorter = CapacitySorter(
            "1M", max_chunk_rows=32,
            sorter_factory=lambda rows: oom,
        )
        result = sorter.sort(batch)
        assert result.stats.shrink_events == 2
        assert result.stats.serial_fallback_chunks == 0
        np.testing.assert_array_equal(result.batch, np.sort(batch, axis=1))

    def test_serial_fallback_when_oom_persists(self):
        batch = make_batch(40, 8, seed=15)
        sorter = CapacitySorter(
            "1M", max_chunk_rows=8,
            sorter_factory=lambda rows: _OomOnce(10**9),
        )
        result = sorter.sort(batch, descending=True)
        assert result.stats.serial_fallback_chunks > 0
        # Shrunk all the way to the one-row floor before giving up.
        assert result.stats.shrink_events == 3
        np.testing.assert_array_equal(
            result.batch, np.sort(batch, axis=1)[:, ::-1]
        )


class TestSpillSink:
    def test_run_array_source(self, tmp_path):
        batch = make_batch(120, 12, seed=20)
        sorter = CapacitySorter("1M", config=CONFIG, max_chunk_rows=32)
        result = sorter.run(batch, spill_dir=tmp_path)
        assert result.store is not None
        assert result.rows == 120
        assert result.stats.chunks_committed == 4
        assert result.stats.chunks_recommitted == 0
        assert result.stats.spill_bytes_written == batch.nbytes
        assert result.store.complete
        np.testing.assert_array_equal(result.gather(),
                                      np.sort(batch, axis=1))
        # Checkpoint cleared once the run completes.
        assert result.store.load_checkpoint() is None

    def test_run_batchfile_source(self, tmp_path):
        full = make_batch(200, 10, seed=21)
        batch_file = write_batch_file(
            tmp_path / "in.bin",
            lambda i, start, take: full[start : start + take],
            rows=200, row_len=10, dtype=np.float64, block_rows=64,
        )
        sorter = CapacitySorter("1M", config=CONFIG, max_chunk_rows=50)
        result = sorter.run(batch_file, spill_dir=tmp_path / "spill")
        np.testing.assert_array_equal(result.gather(),
                                      np.sort(full, axis=1))

    def test_resume_of_complete_run_is_noop(self, tmp_path):
        batch = make_batch(60, 8, seed=22)
        sorter = CapacitySorter("1M", config=CONFIG, max_chunk_rows=20)
        first = sorter.run(batch, spill_dir=tmp_path)
        assert first.stats.chunks_committed == 3
        second = CapacitySorter("1M", config=CONFIG, max_chunk_rows=20).run(
            batch, spill_dir=tmp_path, resume=True
        )
        assert second.stats.chunks_committed == 0
        assert second.stats.chunks_resumed == 3
        np.testing.assert_array_equal(second.gather(),
                                      np.sort(batch, axis=1))

    def test_interrupt_and_resume_no_reemission(self, tmp_path):
        batch = make_batch(100, 8, seed=23)

        class Interrupt(RuntimeError):
            pass

        calls = []

        def trip(info):
            calls.append(info["index"])
            if len(calls) == 2:
                raise Interrupt()

        first = CapacitySorter("1M", config=CONFIG, max_chunk_rows=20,
                               progress=trip)
        with pytest.raises(Interrupt):
            first.run(batch, spill_dir=tmp_path)
        survivor = SpillStore(tmp_path, array_size=8, dtype=np.float64,
                              resume=True)
        pre_indices = {r.index for r in survivor.committed}
        assert len(pre_indices) >= 1  # some chunks durably committed

        second = CapacitySorter("1M", config=CONFIG, max_chunk_rows=20)
        result = second.run(batch, spill_dir=tmp_path, resume=True)
        assert result.stats.chunks_resumed == len(pre_indices)
        assert result.stats.chunks_recommitted == 0  # zero re-emission
        new_indices = {r.index for r in result.store.committed} - pre_indices
        assert all(i > max(pre_indices) for i in new_indices)
        np.testing.assert_array_equal(result.gather(),
                                      np.sort(batch, axis=1))

    def test_streaming_oom_degrades_and_completes(self, tmp_path):
        batch = make_batch(80, 8, seed=24)

        def factory(rows):
            # First two pipeline builds fail at sort time; later,
            # smaller ones succeed.
            return _OomOnce(1) if rows > 5 else _OomOnce(0)

        sorter = CapacitySorter("1M", max_chunk_rows=20,
                                sorter_factory=factory)
        result = sorter.run(batch, spill_dir=tmp_path)
        assert result.stats.shrink_events >= 1
        np.testing.assert_array_equal(result.gather(),
                                      np.sort(batch, axis=1))

    def test_streaming_permanent_oom_serial_fallback(self, tmp_path):
        batch = make_batch(40, 8, seed=25)
        sorter = CapacitySorter(
            "1M", max_chunk_rows=8,
            sorter_factory=lambda rows: _OomOnce(10**9),
        )
        result = sorter.run(batch, spill_dir=tmp_path)
        assert result.stats.serial_fallback_chunks > 0
        np.testing.assert_array_equal(result.gather(),
                                      np.sort(batch, axis=1))


class TestFacade:
    def test_memory_budget_kwarg_routes_to_capacity(self):
        batch = make_batch(150, 16, seed=30)
        sorter = GpuArraySort(CONFIG, memory_budget="64K")
        result = sorter.sort(batch)
        np.testing.assert_array_equal(result.batch, np.sort(batch, axis=1))
        assert sorter.memory_budget == 64 * 1024
        # Decision provenance rides on the result like execution_plan.
        assert result.capacity.plan.budget_bytes == 64 * 1024
        assert result.capacity.stats.chunks_committed >= 1
        assert "capacity_chunks" in result.phase_seconds

    def test_memory_budget_matches_plain_sort(self):
        batch = make_batch(64, 32, seed=31)
        plain = GpuArraySort(CONFIG).sort(batch).batch
        budgeted = GpuArraySort(CONFIG, memory_budget="32K").sort(batch).batch
        np.testing.assert_array_equal(budgeted, plain)

    def test_memory_budget_descending_inplace(self):
        batch = make_batch(50, 16, seed=32)
        expected = np.sort(batch, axis=1)[:, ::-1]
        result = GpuArraySort(CONFIG, memory_budget="32K").sort(
            batch, inplace=True, descending=True
        )
        assert result.batch is batch
        np.testing.assert_array_equal(batch, expected)

    def test_conflicting_options_rejected(self):
        with pytest.raises(ValueError, match="engine='vectorized'"):
            GpuArraySort(engine="sim", memory_budget="1M")
        with pytest.raises(ValueError, match="mutually exclusive"):
            GpuArraySort(parallel="thread", memory_budget="1M")
        with pytest.raises(ValueError, match="sampler"):
            GpuArraySort(sampler=object(), memory_budget="1M")

    def test_bad_budget_string_rejected_at_init(self):
        with pytest.raises(ValueError):
            GpuArraySort(memory_budget="lots")
