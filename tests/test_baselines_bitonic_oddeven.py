"""Tests for the bitonic and odd-even batch-sort baselines."""

import numpy as np
import pytest

from repro.baselines.bitonic import (
    bitonic_network,
    bitonic_sort_batch,
    compare_exchange_count,
    run_bitonic_on_device,
)
from repro.baselines.oddeven import (
    odd_even_sort_batch,
    round_count,
    run_odd_even_on_device,
)
from repro.gpusim import GpuDevice
from repro.workloads import uniform_arrays


class TestBitonicNetwork:
    def test_stage_count_is_log_squared(self):
        # log2(16) = 4 -> 4*5/2 = 10 (k,j) stages
        assert len(list(bitonic_network(16))) == 10

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            list(bitonic_network(12))

    def test_compare_exchange_asymptotics(self):
        # n log^2 n growth: doubling n should grow the count by a bit
        # more than 2x.
        c1, c2 = compare_exchange_count(256), compare_exchange_count(512)
        assert 2.0 < c2 / c1 < 3.0

    def test_network_sorts_every_permutation_of_4(self):
        from itertools import permutations

        for perm in permutations(range(4)):
            batch = np.array([perm], dtype=np.float32)
            out = bitonic_sort_batch(batch)
            assert out[0].tolist() == [0, 1, 2, 3], perm


class TestBitonicBatch:
    def test_matches_oracle(self):
        batch = uniform_arrays(30, 100, seed=1)
        assert np.array_equal(bitonic_sort_batch(batch), np.sort(batch, axis=1))

    def test_pow2_sizes(self):
        batch = uniform_arrays(10, 128, seed=2)
        assert np.array_equal(bitonic_sort_batch(batch), np.sort(batch, axis=1))

    def test_non_pow2_padding_invisible(self):
        batch = uniform_arrays(10, 100, seed=3)
        out = bitonic_sort_batch(batch)
        assert out.shape == (10, 100)
        assert np.isfinite(out).all()

    def test_integer_dtype(self, rng):
        batch = rng.integers(0, 1000, (5, 60)).astype(np.int32)
        assert np.array_equal(bitonic_sort_batch(batch), np.sort(batch, axis=1))

    def test_duplicates(self, rng):
        batch = rng.integers(0, 3, (5, 64)).astype(np.float32)
        assert np.array_equal(bitonic_sort_batch(batch), np.sort(batch, axis=1))

    def test_single_element_rows(self):
        batch = uniform_arrays(4, 1, seed=1)
        assert np.array_equal(bitonic_sort_batch(batch), batch)

    def test_empty(self):
        batch = np.empty((0, 8), dtype=np.float32)
        assert bitonic_sort_batch(batch).shape == (0, 8)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            bitonic_sort_batch(np.arange(4.0))


class TestBitonicDevice:
    def test_matches_oracle(self, rng):
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1e6, (4, 64)).astype(np.float32)
        out, _ = run_bitonic_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_non_pow2_on_device(self, rng):
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 100, (3, 50)).astype(np.float32)
        out, _ = run_bitonic_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_divergence_free(self, rng):
        """The bitonic selling point: data-independent network -> the
        compare-exchange stages never split the warp."""
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1, (2, 64)).astype(np.float32)
        _, report = run_bitonic_on_device(gpu, batch)
        assert report.divergence_fraction < 0.05

    def test_no_leaks(self, rng):
        gpu = GpuDevice.micro()
        run_bitonic_on_device(gpu, rng.uniform(0, 1, (2, 32)).astype(np.float32))
        assert gpu.memory.live_allocations() == 0


class TestOddEven:
    def test_round_count(self):
        assert round_count(8) == 8
        assert round_count(0) == 0

    def test_matches_oracle(self):
        batch = uniform_arrays(20, 75, seed=4)
        assert np.array_equal(odd_even_sort_batch(batch), np.sort(batch, axis=1))

    def test_worst_case_reverse(self):
        batch = np.tile(np.arange(50, 0, -1, dtype=np.float32), (3, 1))
        assert np.array_equal(odd_even_sort_batch(batch), np.sort(batch, axis=1))

    def test_single_column(self):
        batch = uniform_arrays(5, 1, seed=1)
        assert np.array_equal(odd_even_sort_batch(batch), batch)

    def test_device_matches_oracle(self, rng):
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 100, (3, 40)).astype(np.float32)
        out, _ = run_odd_even_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_device_odd_length(self, rng):
        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 100, (2, 33)).astype(np.float32)
        out, _ = run_odd_even_on_device(gpu, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            odd_even_sort_batch(np.arange(4.0))


class TestBaselineAgreement:
    def test_five_way_agreement(self, rng):
        """Every batch sorter in the repo produces the same answer."""
        from repro.baselines import segmented_sort, sta_sort
        from repro.core import sort_arrays

        batch = rng.uniform(0, 1e6, (15, 90)).astype(np.float32)
        results = [
            sort_arrays(batch),
            sta_sort(batch),
            segmented_sort(batch),
            bitonic_sort_batch(batch),
            odd_even_sort_batch(batch),
        ]
        for out in results[1:]:
            assert np.array_equal(results[0], out)
