"""Tests for atomic operations in the lock-step simulator."""

import numpy as np
import pytest

from repro.gpusim import GpuDevice


@pytest.fixture
def gpu():
    return GpuDevice.micro()


class TestAtomicAdd:
    def test_warp_wide_counter(self, gpu):
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def k(ctx, shared, c):
            old = yield ctx.atomic_add(c, 0, 1)
            yield ctx.alu(1)

        gpu.launch(k, grid=2, block=32, args=(counter,))
        assert counter.load(0) == 64

    def test_returns_old_value(self, gpu):
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)
        olds = gpu.memory.alloc(32, np.int64)

        def k(ctx, shared, c, out):
            old = yield ctx.atomic_add(c, 0, 1)
            yield ctx.gstore(out, ctx.thread_idx.x, old)

        gpu.launch(k, grid=1, block=32, args=(counter, olds))
        # Each lane saw a distinct pre-increment value in [0, 32).
        seen = sorted(olds.copy_to_host().tolist())
        assert seen == list(range(32))

    def test_same_address_collisions_counted(self, gpu):
        counter = gpu.memory.alloc(1, np.int64)
        counter.fill(0)

        def contended(ctx, shared, c):
            yield ctx.atomic_add(c, 0, 1)

        rep = gpu.launch(contended, grid=1, block=32, args=(counter,))
        assert rep.total_atomic_ops == 32
        assert rep.total_atomic_serializations == 31

    def test_distinct_addresses_no_serialization(self, gpu):
        counters = gpu.memory.alloc(32, np.int64)
        counters.fill(0)

        def uncontended(ctx, shared, c):
            yield ctx.atomic_add(c, ctx.thread_idx.x, 1)

        rep = gpu.launch(uncontended, grid=1, block=32, args=(counters,))
        assert rep.total_atomic_ops == 32
        assert rep.total_atomic_serializations == 0
        assert np.all(counters.copy_to_host() == 1)

    def test_contended_costs_more_than_uncontended(self, gpu):
        one = gpu.memory.alloc(1, np.int64)
        many = gpu.memory.alloc(32, np.int64)
        one.fill(0)
        many.fill(0)

        def contended(ctx, shared, c):
            yield ctx.atomic_add(c, 0, 1)

        def uncontended(ctx, shared, c):
            yield ctx.atomic_add(c, ctx.thread_idx.x, 1)

        rep_c = gpu.launch(contended, grid=1, block=32, args=(one,))
        rep_u = gpu.launch(uncontended, grid=1, block=32, args=(many,))
        assert rep_c.milliseconds > rep_u.milliseconds

    def test_shared_memory_atomics(self, gpu):
        out = gpu.memory.alloc(1, np.int32)

        def k(ctx, shared, dst):
            yield ctx.atomic_add(shared, 0, 1)
            yield ctx.sync()
            if ctx.thread_idx.x == 0:
                total = yield ctx.sload(shared, 0)
                yield ctx.gstore(dst, 0, total)

        def setup(sm):
            arr = sm.alloc(1, np.int32)
            arr.fill(0)
            return arr

        gpu.launch(k, grid=1, block=64, args=(out,), shared_setup=setup)
        assert out.load(0) == 64


class TestMultiThreadBucketingKernel:
    """Actually run the variant the paper rejected (Section 5.2).

    t threads share one bucket's counter via atomics.  The kernel is
    correct, but the launch report shows the serialization overhead the
    paper blamed — measured, not asserted from the model.
    """

    def _count_kernel_single(self):
        def k(ctx, shared, data, sizes, n, p, lo_hi):
            tid = ctx.thread_idx.x
            lo, hi = lo_hi[tid]
            count = 0
            for i in range(n):
                v = yield ctx.gload(data, ctx.block_idx.x * n + i)
                yield ctx.alu(2)
                if lo <= v < hi:
                    count += 1
            yield ctx.gstore(sizes, ctx.block_idx.x * p + tid, count)
        return k

    def _count_kernel_atomic(self, threads_per_bucket):
        t = threads_per_bucket

        def k(ctx, shared, data, sizes, n, p, lo_hi):
            tid = ctx.thread_idx.x
            bucket = tid // t
            lo, hi = lo_hi[bucket]
            for i in range(n):
                v = yield ctx.gload(data, ctx.block_idx.x * n + i)
                yield ctx.alu(2)
                if lo <= v < hi and i % t == tid % t:
                    yield ctx.atomic_add(sizes, ctx.block_idx.x * p + bucket, 1)
        return k

    def test_atomic_variant_correct_but_slower(self, rng):
        gpu = GpuDevice.micro()
        n, p, t = 96, 4, 4
        data_host = rng.uniform(0, 1, (2, n)).astype(np.float32)
        qs = np.quantile(data_host, [0.25, 0.5, 0.75])
        bounds = [(-np.inf, qs[0]), (qs[0], qs[1]), (qs[1], qs[2]),
                  (qs[2], np.inf)]

        data = gpu.memory.alloc_like(data_host.ravel())
        sizes_a = gpu.memory.alloc(2 * p, np.int64)
        sizes_b = gpu.memory.alloc(2 * p, np.int64)
        sizes_a.fill(0)
        sizes_b.fill(0)

        rep_single = gpu.launch(
            self._count_kernel_single(), grid=2, block=p,
            args=(data, sizes_a, n, p, bounds), name="single",
        )
        rep_atomic = gpu.launch(
            self._count_kernel_atomic(t), grid=2, block=p * t,
            args=(data, sizes_b, n, p, bounds), name="atomic",
        )
        # Same counts either way.
        assert np.array_equal(sizes_a.copy_to_host(), sizes_b.copy_to_host())
        # The multi-thread variant paid atomic serializations and did not
        # get faster — the paper's observation, reproduced in execution.
        assert rep_atomic.total_atomic_serializations >= 0
        assert rep_atomic.total_atomic_ops == sizes_a.copy_to_host().sum()
        assert rep_atomic.milliseconds >= 0.9 * rep_single.milliseconds
