"""Schema + gate tests for benchmarks/bench_capacity.py.

The load grid takes minutes; these tests run one real smoke cell plus
the kill-resume cell, and otherwise exercise ``check_schema`` /
``apply_gate`` on synthetic reports so every gate failure mode is
covered without re-benchmarking.  The committed ``BENCH_capacity.json``
must itself pass both checks.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_capacity  # noqa: E402

pytestmark = pytest.mark.capacity


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One real run of the smallest grid (includes the kill-resume cell)."""
    work_dir = tmp_path_factory.mktemp("bench_capacity_smoke")
    return bench_capacity.run_grid("smoke", seed=0, work_dir=work_dir)


@pytest.mark.timeout(300)
class TestRunGrid:
    def test_schema_self_valid(self, smoke_report):
        assert bench_capacity.check_schema(smoke_report) == []

    def test_covers_every_cell(self, smoke_report):
        names = [r["name"] for r in smoke_report["results"]]
        grid_names = [c[0] for c in bench_capacity.GRIDS["smoke"]]
        assert names == grid_names + [bench_capacity.KILL_CELL]

    def test_oversub_cell_measured(self, smoke_report):
        cell = next(r for r in smoke_report["results"]
                    if r["kind"] == "oversubscription")
        assert cell["completed"] and cell["byte_identical"]
        assert cell["oversubscription"] >= bench_capacity.GATE_MIN_RATIO
        assert cell["num_chunks"] > 1
        assert cell["rows_per_gb"] > 0
        assert cell["stats"]["chunks_committed"] == cell["num_chunks"]

    def test_kill_resume_cell_properties(self, smoke_report):
        cell = next(r for r in smoke_report["results"]
                    if r["kind"] == "kill-resume")
        assert cell["killed_mid_run"]
        assert cell["pre_kill_chunks"] >= 2
        assert cell["chunks_resumed"] >= cell["pre_kill_chunks"]
        assert cell["reemitted_chunks"] == 0
        assert cell["completed"] and cell["byte_identical"]

    def test_gate_passes_on_real_smoke_run(self, smoke_report):
        report = copy.deepcopy(smoke_report)
        assert bench_capacity.apply_gate(report)
        assert report["gate"]["passed"]
        assert report["gate"]["failures"] == []
        assert bench_capacity.check_schema(report) == []


def synthetic_report():
    return {
        "schema": bench_capacity.SCHEMA,
        "grid": "synthetic",
        "seed": 0,
        "results": [
            {
                "name": "oversub", "kind": "oversubscription",
                "budget": "1M", "budget_bytes": 2**20,
                "rows": 1000, "row_len": 100, "dtype": "float64",
                "total_bytes": 5 * 2**20, "oversubscription": 5.0,
                "chunk_rows": 100, "num_chunks": 10, "rows_per_gb": 100_000,
                "completed": True, "verified": True, "byte_identical": True,
                "wall_seconds": 1.0, "rows_per_s": 1000.0,
                "stats": {"chunks_committed": 10},
            },
            {
                "name": "kill-resume", "kind": "kill-resume",
                "budget": "64K", "budget_bytes": 65536,
                "rows": 600, "row_len": 64, "dtype": "float64",
                "num_chunks": 10, "killed_mid_run": True,
                "pre_kill_chunks": 3, "chunks_resumed": 3,
                "resumed_committed": 7, "reemitted_chunks": 0,
                "completed": True, "byte_identical": True,
                "resume_wall_seconds": 0.5, "resume_stats": {},
            },
        ],
    }


class TestCheckSchema:
    def test_synthetic_valid(self):
        assert bench_capacity.check_schema(synthetic_report()) == []

    def test_flags_wrong_schema_string(self):
        report = synthetic_report()
        report["schema"] = "bench-capacity/v0"
        assert bench_capacity.check_schema(report)

    def test_flags_missing_key_and_bad_kind(self):
        report = synthetic_report()
        del report["results"][0]["byte_identical"]
        report["results"][1]["kind"] = "mystery"
        errors = bench_capacity.check_schema(report)
        assert any("byte_identical" in e for e in errors)
        assert any("kind" in e for e in errors)

    def test_flags_empty_results(self):
        assert bench_capacity.check_schema(
            {"schema": bench_capacity.SCHEMA, "results": []}
        )


class TestApplyGate:
    def test_passes_on_good_report(self):
        report = synthetic_report()
        assert bench_capacity.apply_gate(report)
        assert report["gate"]["best_oversubscription"] == 5.0

    def test_fails_below_min_ratio(self):
        report = synthetic_report()
        report["results"][0]["oversubscription"] = 2.0
        assert not bench_capacity.apply_gate(report)
        assert any("oversubscription" in f
                   for f in report["gate"]["failures"])

    def test_fails_without_byte_identity(self):
        report = synthetic_report()
        report["results"][0]["byte_identical"] = False
        assert not bench_capacity.apply_gate(report)

    def test_fails_when_child_not_killed(self):
        report = synthetic_report()
        report["results"][1]["killed_mid_run"] = False
        assert not bench_capacity.apply_gate(report)
        assert any("killed" in f for f in report["gate"]["failures"])

    def test_fails_on_reemission(self):
        report = synthetic_report()
        report["results"][1]["reemitted_chunks"] = 2
        assert not bench_capacity.apply_gate(report)
        assert any("re-emitted" in f for f in report["gate"]["failures"])

    def test_fails_when_nothing_resumed(self):
        report = synthetic_report()
        report["results"][1]["chunks_resumed"] = 0
        assert not bench_capacity.apply_gate(report)

    def test_fails_without_kill_cell(self):
        report = synthetic_report()
        report["results"] = report["results"][:1]
        assert not bench_capacity.apply_gate(report)
        assert any("missing" in f for f in report["gate"]["failures"])


class TestCommittedArtifact:
    """The committed BENCH_capacity.json must satisfy its own gate."""

    @pytest.fixture(scope="class")
    def artifact(self):
        path = REPO_ROOT / "BENCH_capacity.json"
        if not path.exists():
            pytest.skip("BENCH_capacity.json not generated yet")
        return json.loads(path.read_text())

    def test_schema_valid(self, artifact):
        assert bench_capacity.check_schema(artifact) == []

    def test_gate_passes(self, artifact):
        report = copy.deepcopy(artifact)
        assert bench_capacity.apply_gate(report), \
            report["gate"]["failures"]

    def test_committed_gate_block_matches(self, artifact):
        assert artifact["gate"]["passed"] is True
        best = artifact["gate"]["best_oversubscription"]
        assert best >= bench_capacity.GATE_MIN_RATIO
