"""Tests for descending order and argsort support."""

import numpy as np
import pytest

from repro.core import GpuArraySort
from repro.workloads import uniform_arrays


class TestDescending:
    def test_descending_rows(self):
        batch = uniform_arrays(20, 200, seed=1)
        res = GpuArraySort().sort(batch, descending=True)
        assert np.array_equal(res.batch, np.sort(batch, axis=1)[:, ::-1])

    def test_descending_with_verify(self):
        # verify checks ascending *before* the reversal; both must coexist.
        batch = uniform_arrays(5, 100, seed=2)
        res = GpuArraySort(verify=True).sort(batch, descending=True)
        assert np.all(np.diff(res.batch, axis=1) <= 0)

    def test_descending_inplace(self):
        batch = uniform_arrays(5, 100, seed=3)
        res = GpuArraySort().sort(batch, inplace=True, descending=True)
        assert res.batch is batch
        assert np.all(np.diff(batch, axis=1) <= 0)

    def test_descending_model_engine(self):
        batch = uniform_arrays(5, 100, seed=4)
        res = GpuArraySort(engine="model").sort(batch, descending=True)
        assert np.all(np.diff(res.batch, axis=1) <= 0)


class TestArgsort:
    def test_matches_numpy_argsort(self):
        batch = uniform_arrays(15, 150, seed=5)
        perm = GpuArraySort().argsort(batch)
        expected = np.argsort(batch, axis=1, kind="stable")
        assert np.array_equal(perm, expected)

    def test_permutation_reorders_to_sorted(self):
        batch = uniform_arrays(10, 120, seed=6)
        perm = GpuArraySort().argsort(batch)
        gathered = np.take_along_axis(batch, perm, axis=1)
        assert np.array_equal(gathered, np.sort(batch, axis=1))

    def test_stability_on_ties(self):
        batch = np.array([[2.0, 1.0, 2.0, 1.0]], dtype=np.float32)
        perm = GpuArraySort().argsort(batch)
        # stable: first 1.0 (col 1) before second (col 3), same for 2.0s
        assert perm[0].tolist() == [1, 3, 0, 2]

    def test_descending_argsort(self):
        batch = uniform_arrays(5, 80, seed=7)
        perm = GpuArraySort().argsort(batch, descending=True)
        gathered = np.take_along_axis(batch, perm, axis=1)
        assert np.all(np.diff(gathered, axis=1) <= 0)

    def test_companion_matrix_use_case(self):
        """The proteomics pattern: argsort m/z, reorder intensity."""
        from repro.workloads import generate_spectra

        spectra = generate_spectra(10, 300, seed=8)
        perm = GpuArraySort().argsort(spectra.mz)
        mz_sorted = np.take_along_axis(spectra.mz, perm, axis=1)
        intensity_reordered = np.take_along_axis(spectra.intensity, perm, axis=1)
        assert np.all(np.diff(mz_sorted, axis=1) >= 0)
        # The pairing is preserved: spot-check one row's multiset.
        row_pairs = set(zip(spectra.mz[0].tolist(), spectra.intensity[0].tolist()))
        out_pairs = set(zip(mz_sorted[0].tolist(), intensity_reordered[0].tolist()))
        assert row_pairs == out_pairs

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            GpuArraySort().argsort(np.arange(5.0))
