"""Cross-feature integration: the extensions composed together.

Each test chains several of the library's features the way a real
pipeline would — ragged input, adaptive sampling, pair sorting, top-K,
streaming, out-of-core — and verifies the end state against plain NumPy.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveSampler,
    GpuArraySort,
    SortConfig,
    StreamingSorter,
    sort_pairs,
    top_k,
    tune_config,
)
from repro.workloads import (
    RaggedBatch,
    clustered_arrays,
    generate_spectra,
    read_mgf,
    uniform_arrays,
    write_mgf,
    zipf_arrays,
)


class TestFullProteomicsPipeline:
    def test_mgf_to_reduced_spectra(self, tmp_path):
        """MGF file -> pair sort by m/z -> top-K by intensity -> verified."""
        spectra = generate_spectra(30, 300, seed=71)
        path = tmp_path / "acquisition.mgf"
        write_mgf(path, spectra)
        loaded = read_mgf(path)

        # Order peaks by m/z, carrying intensity.
        paired = sort_pairs(loaded.mz, loaded.intensity, verify=True)
        assert np.all(np.diff(paired.keys, axis=1) >= 0)

        # Reduce to the 50 most intense peaks per spectrum.
        reduced = top_k(loaded.intensity, 50)
        oracle = np.sort(loaded.intensity, axis=1)[:, -50:]
        assert np.array_equal(reduced, oracle)

    def test_streaming_with_tuned_config(self):
        """Auto-tune from a pilot, then stream with the tuned config."""
        pilot = uniform_arrays(50, 400, seed=72)
        tuned = tune_config(400, pilot=pilot, bucket_candidates=(10, 20, 40))
        stream = StreamingSorter(400, config=tuned.config, batch_arrays=64)
        data = uniform_arrays(200, 400, seed=73)
        stream.push_slab(data)
        stream.flush()
        assert np.array_equal(np.vstack(stream.results), np.sort(data, axis=1))


class TestAdaptiveCombos:
    def test_adaptive_sampler_with_skewed_ragged_input(self, rng):
        """Ragged zipf-skewed arrays -> pad -> adaptive sorter -> unpad."""
        arrays = [
            zipf_arrays(1, int(size), seed=int(size)).ravel()
            for size in rng.integers(50, 200, 20)
        ]
        ragged = RaggedBatch.from_arrays(arrays)
        dense = ragged.padded()
        sorter = GpuArraySort(sampler=AdaptiveSampler("auto", seed=3),
                              verify=True)
        out = ragged.unpad(sorter.sort(dense).batch)
        for orig, got in zip(arrays, out.to_list()):
            assert np.array_equal(np.sort(orig), got)

    def test_adaptive_choice_differs_across_data(self):
        sampler = AdaptiveSampler("auto", seed=9)
        uniform_choice = sampler.resolve_strategy(uniform_arrays(40, 500, seed=9))
        clustered = clustered_arrays(40, 500, cluster_std=1.0, seed=9)
        clustered_choice = sampler.resolve_strategy(clustered)
        # Both valid; the probe must at least run deterministically.
        assert uniform_choice in ("regular", "oversample")
        assert sampler.resolve_strategy(clustered) == clustered_choice


class TestArgsortCombos:
    def test_argsort_drives_multi_matrix_reorder(self):
        """One argsort permutation reorders three companion matrices."""
        spectra = generate_spectra(15, 200, seed=74)
        snr = spectra.intensity / (spectra.intensity.mean(axis=1, keepdims=True))
        perm = GpuArraySort().argsort(spectra.mz)
        mz = np.take_along_axis(spectra.mz, perm, axis=1)
        inten = np.take_along_axis(spectra.intensity, perm, axis=1)
        snr_r = np.take_along_axis(snr, perm, axis=1)
        assert np.all(np.diff(mz, axis=1) >= 0)
        # companion alignment: recompute snr from reordered intensity
        expected = inten / spectra.intensity.mean(axis=1, keepdims=True)
        assert np.allclose(snr_r, expected)

    def test_descending_topk_equivalence(self):
        batch = uniform_arrays(10, 300, seed=75)
        desc = GpuArraySort().sort(batch, descending=True).batch
        assert np.array_equal(desc[:, :50][:, ::-1], top_k(batch, 50))


class TestModelEngineCombos:
    def test_model_engine_inside_streaming_accounting(self):
        """Streaming stats use the same model the figures use."""
        from repro.analysis.perfmodel import model_arraysort_ms
        from repro.gpusim.device import K40C

        stream = StreamingSorter(100, batch_arrays=50, device=K40C)
        data = uniform_arrays(100, 100, seed=76)
        stream.push_slab(data)
        stream.flush()
        expected = 2 * model_arraysort_ms(K40C, 50, 100)
        assert stream.stats.modeled_device_ms == pytest.approx(expected)

    def test_report_claims_use_table1_device(self):
        from repro.analysis.report import evaluate_claims
        from repro.gpusim.device import P100

        claims = {c.claim_id: c for c in evaluate_claims(device=P100)}
        # P100 has more memory: the 2M headline passes there too.
        assert claims["abstract-2m"].passed
