"""Tests for analysis metrics and text reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import bucket_balance, report_metrics, sampling_quality
from repro.analysis.reporting import ascii_plot, format_ms, render_series, render_table
from repro.workloads import clustered_arrays, uniform_arrays


class TestBucketBalance:
    def test_uniform_sizes_perfectly_balanced(self):
        sizes = np.full((5, 10), 20)
        bal = bucket_balance(sizes)
        assert bal.straggler_factor == pytest.approx(1.0)
        assert bal.empty_fraction == 0.0
        assert bal.mean == 20

    def test_skewed_sizes_detected(self):
        sizes = np.zeros((1, 10), dtype=int)
        sizes[0, 0] = 200
        bal = bucket_balance(sizes)
        assert bal.straggler_factor == pytest.approx(10.0)
        assert bal.empty_fraction == pytest.approx(0.9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bucket_balance(np.empty((0, 0)))

    def test_as_dict_roundtrip(self):
        bal = bucket_balance(np.full((2, 2), 5))
        d = bal.as_dict()
        assert d["mean"] == 5


class TestSamplingQuality:
    def test_uniform_data_reasonably_balanced_at_10pct(self):
        # The paper's claim behind "10% regular sampling": no empty
        # buckets, bounded straggler tail, std below the mean.
        batch = uniform_arrays(50, 1000, seed=3)
        bal = sampling_quality(batch, 0.10)
        assert bal.empty_fraction == 0.0
        assert bal.straggler_factor < 8.0
        assert bal.std < bal.mean

    def test_more_sampling_tightens_balance(self):
        batch = uniform_arrays(50, 1000, seed=3)
        low = sampling_quality(batch, 0.05)
        high = sampling_quality(batch, 0.30)
        assert high.std < low.std

    def test_duplicate_heavy_data_worse_than_uniform(self):
        from repro.workloads import duplicate_heavy_arrays

        uni = sampling_quality(uniform_arrays(30, 1000, seed=3), 0.10)
        dup = sampling_quality(duplicate_heavy_arrays(30, 1000, seed=3), 0.10)
        assert dup.std > 2 * uni.std
        assert dup.empty_fraction > 0.5


class TestReportMetrics:
    def test_launch_report_summary(self, micro_gpu):
        def k(ctx, shared):
            yield ctx.alu(1)

        rep = micro_gpu.launch(k, grid=1, block=32)
        metrics = report_metrics(rep)
        assert "ms" in metrics

    def test_pipeline_report_summary(self, micro_gpu):
        from repro.gpusim import PipelineReport

        def k(ctx, shared):
            yield ctx.alu(1)

        pipe = PipelineReport()
        pipe.add(micro_gpu.launch(k, grid=1, block=32))
        metrics = report_metrics(pipe)
        assert "milliseconds" in metrics


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["col", "x"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_render_table_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_render_series(self):
        out = render_series("N", [1, 2], {"gas": [1.0, 2.0], "sta": [3.0, 4.0]})
        assert "gas" in out and "sta" in out
        assert "3.0" in out

    def test_format_ms_scales(self):
        assert format_ms(12_000) == "12.0 s"
        assert format_ms(950) == "950 ms"
        assert format_ms(0.5) == "500 us"

    def test_ascii_plot_contains_markers(self):
        out = ascii_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_ascii_plot_empty(self):
        assert ascii_plot([], {}) == "(empty plot)"

    def test_ascii_plot_constant_series(self):
        out = ascii_plot([1, 2], {"flat": [5.0, 5.0]})
        assert "*" in out
