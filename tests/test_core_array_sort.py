"""Integration tests for the GpuArraySort orchestrator (all engines)."""

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig, sort_arrays
from repro.core.validation import ValidationFailure
from repro.gpusim import GpuDevice
from repro.gpusim.device import K40C
from repro.workloads import (
    adversarial_constant_arrays,
    clustered_arrays,
    duplicate_heavy_arrays,
    nearly_sorted_arrays,
    normal_arrays,
    reverse_sorted_arrays,
    sorted_arrays,
    uniform_arrays,
)


class TestVectorizedEngine:
    def test_sorts_uniform_batch(self):
        batch = uniform_arrays(200, 500, seed=1)
        out = sort_arrays(batch, verify=True)
        assert np.array_equal(out, np.sort(batch, axis=1))

    @pytest.mark.parametrize(
        "generator",
        [
            normal_arrays,
            sorted_arrays,
            reverse_sorted_arrays,
            nearly_sorted_arrays,
            duplicate_heavy_arrays,
            clustered_arrays,
        ],
    )
    def test_sorts_every_distribution(self, generator):
        batch = generator(50, 300, seed=3)
        out = sort_arrays(batch, verify=True)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_constant_arrays(self):
        batch = adversarial_constant_arrays(10, 100)
        out = sort_arrays(batch, verify=True)
        assert np.array_equal(out, batch)

    def test_single_array(self):
        batch = uniform_arrays(1, 777, seed=5)
        assert np.array_equal(sort_arrays(batch), np.sort(batch, axis=1))

    def test_single_element_arrays(self):
        batch = uniform_arrays(10, 1, seed=5)
        assert np.array_equal(sort_arrays(batch), batch)

    def test_empty_batch(self):
        batch = np.empty((0, 100), dtype=np.float32)
        out = sort_arrays(batch)
        assert out.shape == (0, 100)

    def test_tiny_arrays_below_bucket_size(self):
        batch = uniform_arrays(20, 7, seed=2)
        assert np.array_equal(sort_arrays(batch), np.sort(batch, axis=1))

    def test_array_size_not_multiple_of_bucket_size(self):
        batch = uniform_arrays(20, 1013, seed=2)
        assert np.array_equal(sort_arrays(batch), np.sort(batch, axis=1))

    def test_inplace_reuses_storage(self):
        batch = uniform_arrays(10, 100, seed=0)
        sorter = GpuArraySort()
        res = sorter.sort(batch, inplace=True)
        assert res.batch is batch
        assert np.all(np.diff(batch, axis=1) >= 0)

    def test_not_inplace_preserves_input(self):
        batch = uniform_arrays(10, 100, seed=0)
        snapshot = batch.copy()
        GpuArraySort().sort(batch, inplace=False)
        assert np.array_equal(batch, snapshot)

    def test_float64_supported(self):
        batch = uniform_arrays(10, 200, seed=0, dtype=np.float64)
        cfg = SortConfig(dtype=np.float64)
        out = sort_arrays(batch, config=cfg)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_integer_dtype_supported(self, rng):
        batch = rng.integers(0, 2**31 - 1, (20, 300)).astype(np.int32)
        out = sort_arrays(batch, config=SortConfig(dtype=np.int32))
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_phase_timings_populated(self):
        # The default (fused) engine collapses phases 2+3 into one pass.
        res = GpuArraySort().sort(uniform_arrays(50, 200, seed=1))
        assert set(res.phase_seconds) == {
            "phase1_splitters", "phase23_fused",
        }
        assert res.total_seconds >= 0

    def test_phase_timings_populated_unfused(self):
        cfg = SortConfig(fuse_phases=False)
        res = GpuArraySort(cfg).sort(uniform_arrays(50, 200, seed=1))
        assert set(res.phase_seconds) == {
            "phase1_splitters", "phase2_bucketing", "phase3_sorting",
        }
        assert res.total_seconds >= 0

    def test_result_exposes_phase_artifacts(self):
        res = GpuArraySort().sort(uniform_arrays(5, 100, seed=1))
        assert res.splitters is not None
        assert res.buckets is not None
        assert res.buckets.sizes.sum() == 5 * 100

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sort_arrays(np.arange(10.0))

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            GpuArraySort(engine="quantum")

    def test_verify_catches_bad_config_nan(self):
        batch = uniform_arrays(5, 100, seed=1)
        batch[2, 3] = np.nan
        with pytest.raises(ValueError):
            sort_arrays(batch)

    def test_custom_bucket_sizes_all_work(self):
        batch = uniform_arrays(30, 400, seed=9)
        for bucket_size in (5, 10, 20, 40, 80, 400, 1000):
            out = sort_arrays(batch, config=SortConfig(bucket_size=bucket_size))
            assert np.array_equal(out, np.sort(batch, axis=1)), bucket_size

    def test_custom_sampling_rates_all_work(self):
        batch = uniform_arrays(30, 400, seed=9)
        for rate in (0.02, 0.05, 0.1, 0.2, 0.5, 1.0):
            out = sort_arrays(batch, config=SortConfig(sampling_rate=rate))
            assert np.array_equal(out, np.sort(batch, axis=1)), rate


class TestSimEngine:
    def test_matches_numpy(self, tiny_batch):
        sorter = GpuArraySort(engine="sim", device=GpuDevice.micro(), verify=True)
        res = sorter.sort(tiny_batch)
        assert np.array_equal(res.batch, np.sort(tiny_batch, axis=1))

    def test_reports_three_launches(self, tiny_batch):
        sorter = GpuArraySort(engine="sim", device=GpuDevice.micro())
        res = sorter.sort(tiny_batch)
        assert len(res.reports.launches) == 3
        names = [l.kernel_name for l in res.reports.launches]
        assert names == [
            "phase1_splitter_selection", "phase2_bucketing", "phase3_bucket_sort",
        ]

    def test_modeled_time_positive(self, tiny_batch):
        sorter = GpuArraySort(engine="sim", device=GpuDevice.micro())
        res = sorter.sort(tiny_batch)
        assert res.modeled_ms > 0

    def test_no_device_memory_leak(self, tiny_batch):
        gpu = GpuDevice.micro()
        GpuArraySort(engine="sim", device=gpu).sort(tiny_batch)
        assert gpu.memory.live_allocations() == 0

    def test_requires_gpudevice(self, tiny_batch):
        sorter = GpuArraySort(engine="sim", device="not a device")
        with pytest.raises(TypeError):
            sorter.sort(tiny_batch)

    def test_default_device_is_k40c(self, tiny_batch):
        res = GpuArraySort(engine="sim").sort(tiny_batch)
        assert np.array_equal(res.batch, np.sort(tiny_batch, axis=1))


class TestModelEngine:
    def test_returns_sorted_and_modeled_time(self):
        batch = uniform_arrays(100, 500, seed=4)
        sorter = GpuArraySort(engine="model", device=K40C)
        res = sorter.sort(batch)
        assert np.array_equal(res.batch, np.sort(batch, axis=1))
        assert res.modeled_ms > 0

    def test_scales_to_paper_sizes_instantly(self):
        # The whole point: model engine evaluates N = 2e6 without data.
        batch = uniform_arrays(10, 1000, seed=4)  # small real data
        sorter = GpuArraySort(engine="model")
        res = sorter.sort(batch)
        assert res.modeled_ms > 0

    def test_accepts_gpudevice_wrapper(self):
        batch = uniform_arrays(5, 100, seed=4)
        res = GpuArraySort(engine="model", device=GpuDevice.k40c()).sort(batch)
        assert res.modeled_ms > 0

    def test_rejects_garbage_device(self):
        sorter = GpuArraySort(engine="model", device=42)
        with pytest.raises(TypeError):
            sorter.sort(uniform_arrays(5, 100, seed=4))


class TestEngineAgreement:
    def test_sim_and_vectorized_agree_exactly(self, rng):
        batch = rng.uniform(0, 1e6, (3, 80)).astype(np.float32)
        vec = GpuArraySort(engine="vectorized").sort(batch)
        sim = GpuArraySort(engine="sim", device=GpuDevice.micro()).sort(batch)
        assert np.array_equal(vec.batch, sim.batch)

    def test_all_engines_same_result(self, rng):
        batch = rng.uniform(0, 1e6, (2, 64)).astype(np.float32)
        outs = [
            GpuArraySort(engine=e, device=GpuDevice.micro() if e == "sim" else None)
            .sort(batch).batch
            for e in GpuArraySort.ENGINES
        ]
        for out in outs[1:]:
            assert np.array_equal(outs[0], out)
