"""Unit tests for repro.gpusim.grid."""

import pytest

from repro.gpusim.device import K40C, MICRO
from repro.gpusim.errors import InvalidLaunchError, SharedMemoryExceededError
from repro.gpusim.grid import Dim3, Idx3, LaunchConfig


class TestDim3:
    def test_defaults_to_unit(self):
        d = Dim3()
        assert (d.x, d.y, d.z) == (1, 1, 1)

    def test_count(self):
        assert Dim3(4, 3, 2).count == 24

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Dim3(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Dim3(2, -1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Dim3(2.5)  # type: ignore[arg-type]

    def test_of_int(self):
        assert Dim3.of(7) == Dim3(7)

    def test_of_tuple(self):
        assert Dim3.of((2, 3)) == Dim3(2, 3)

    def test_of_dim3_identity(self):
        d = Dim3(5)
        assert Dim3.of(d) is d

    def test_of_rejects_garbage(self):
        with pytest.raises(TypeError):
            Dim3.of("4")  # type: ignore[arg-type]

    def test_linearize_x_fastest(self):
        d = Dim3(4, 3, 2)
        # x varies fastest, matching CUDA warp packing
        assert d.linearize((0, 0, 0)) == 0
        assert d.linearize((1, 0, 0)) == 1
        assert d.linearize((0, 1, 0)) == 4
        assert d.linearize((0, 0, 1)) == 12

    def test_indices_cover_all_in_linear_order(self):
        d = Dim3(3, 2, 2)
        idxs = list(d.indices())
        assert len(idxs) == d.count
        assert [d.linearize(i) for i in idxs] == list(range(d.count))


class TestIdx3:
    def test_zero_allowed(self):
        assert Idx3(0, 0, 0).as_tuple() == (0, 0, 0)

    def test_default_is_origin(self):
        assert Idx3().as_tuple() == (0, 0, 0)


class TestLaunchConfig:
    def test_create_coerces(self):
        cfg = LaunchConfig.create(10, 64)
        assert cfg.total_blocks == 10
        assert cfg.threads_per_block == 64
        assert cfg.total_threads == 640

    def test_warps_per_block_rounds_up(self):
        cfg = LaunchConfig.create(1, 33)
        assert cfg.warps_per_block(32) == 2

    def test_validate_accepts_paper_shapes(self):
        # one block per array, one thread per bucket (p = 200 for n = 4000)
        LaunchConfig.create(200_000, 200).validate(K40C)

    def test_rejects_too_many_threads(self):
        cfg = LaunchConfig.create(1, K40C.max_threads_per_block + 1)
        with pytest.raises(InvalidLaunchError):
            cfg.validate(K40C)

    def test_rejects_excess_shared_memory(self):
        cfg = LaunchConfig.create(1, 32, K40C.shared_mem_per_block + 1)
        with pytest.raises(SharedMemoryExceededError):
            cfg.validate(K40C)

    def test_rejects_negative_shared_memory(self):
        cfg = LaunchConfig.create(1, 32, -1)
        with pytest.raises(InvalidLaunchError):
            cfg.validate(K40C)

    def test_micro_device_tighter_thread_limit(self):
        cfg = LaunchConfig.create(1, 512)
        with pytest.raises(InvalidLaunchError):
            cfg.validate(MICRO)
        cfg.validate(K40C)  # but fine on the big device
