"""Tests for the calibration utilities (and the shipped constants)."""

import pytest

from repro.analysis.calibration import (
    PAPER_CAPACITY_ANCHORS,
    PAPER_TIME_ANCHORS,
    Anchor,
    fit_memory_fraction,
    fit_time_calibration,
)
from repro.analysis.perfmodel import CALIBRATION
from repro.gpusim.device import K40C


class TestTimeCalibration:
    def test_shipped_constant_matches_joint_fit(self):
        """Refitting jointly on the documented anchors must reproduce the
        shipped CALIBRATION — a regression guard on the model."""
        result = fit_time_calibration(PAPER_TIME_ANCHORS)
        assert result.value == pytest.approx(CALIBRATION, rel=0.02)

    def test_all_anchors_within_reading_noise(self):
        """Every figure reading must be within ~50 % of the jointly
        calibrated model (plot readings themselves are +-20 % noisy)."""
        result = fit_time_calibration(PAPER_TIME_ANCHORS)
        assert result.within(0.5), result.residuals

    def test_fig4_edges_balanced(self):
        """The relative-LS joint fit splits the error between the two
        Fig. 4 endpoints (GAS ~+10 %, STA ~-24 %) rather than letting
        the large STA readings dominate; both must stay inside the
        documented bands."""
        result = fit_time_calibration(PAPER_TIME_ANCHORS)
        assert abs(result.residuals["Fig 4 right edge (GAS)"]) < 0.15
        assert abs(result.residuals["Fig 4 right edge (STA)"]) < 0.30

    def test_single_anchor_fit_is_exact_on_itself(self):
        result = fit_time_calibration([PAPER_TIME_ANCHORS[0]])
        primary = result.residuals["Fig 4 right edge (GAS)"]
        assert primary == pytest.approx(0.0, abs=1e-9)

    def test_requires_anchor(self):
        with pytest.raises(ValueError):
            fit_time_calibration([])

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError):
            fit_time_calibration([Anchor(10, 10, 1.0, technique="bogo")])

    def test_sta_anchor_fits_same_scale(self):
        """Because both techniques share the calibration, fitting on the
        STA anchor alone must give a constant of the same magnitude —
        the internal-consistency check of the model (the residual gap is
        the ~30 % by which the model's win factor trails the figures)."""
        gas_fit = fit_time_calibration([PAPER_TIME_ANCHORS[0]])
        sta_fit = fit_time_calibration([PAPER_TIME_ANCHORS[1]])
        assert sta_fit.value == pytest.approx(gas_fit.value, rel=0.5)


class TestMemoryCalibration:
    def test_fitted_fraction_matches_shipped(self):
        result = fit_memory_fraction()
        assert result.value == pytest.approx(K40C.usable_mem_fraction, rel=0.08)

    def test_rows_are_mutually_consistent(self):
        # The paper's capacity rows imply similar usable-bytes values;
        # coarse 50k probing explains the spread.
        result = fit_memory_fraction()
        assert result.within(0.25), result.residuals

    def test_custom_anchor_rows(self):
        result = fit_memory_fraction({1000: PAPER_CAPACITY_ANCHORS[1000]})
        assert 0.5 < result.value < 1.0
