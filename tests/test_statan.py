"""Tests for the statan static-analysis suite itself.

Each rule gets fixture sources proving it fires on the bug, stays quiet
on the correct form, and honors suppressions.  The suppression and
baseline machinery is then tested for its own failure modes: missing
reasons, expired ignores, stale allowlist entries, unknown rules.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.statan import (
    AnalysisResult,
    analyze_paths,
    analyze_source,
    load_baseline,
)
from repro.statan.baseline import Baseline, BaselineEntry
from repro.statan.engine import iter_python_files
from repro.statan.findings import META_RULES, RULES
from repro.statan.suppress import scan_markers

CORE = "src/repro/core/mod.py"  # inside the determinism scope
MISC = "src/repro/analysis/mod.py"  # outside it


def run(source: str, path: str = CORE, baseline: Baseline = None):
    return analyze_source(textwrap.dedent(source), path, baseline=baseline)


def rules_of(findings) -> list:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# guarded-by


class TestGuardedBy:
    def test_fires_on_unlocked_access(self):
        findings = run(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    self._n += 1
            """
        )
        assert rules_of(findings) == ["guarded-by"]
        assert "self._n" in findings[0].message
        assert findings[0].qualname == "Box.bump"

    def test_clean_inside_with_lock(self):
        findings = run(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._n += 1
            """
        )
        assert findings == []

    def test_any_listed_lock_suffices(self):
        findings = run(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self._n = 0  # guarded-by: _cv, _lock

                def via_cv(self):
                    with self._cv:
                        self._n += 1

                def via_lock(self):
                    with self._lock:
                        return self._n
            """
        )
        assert findings == []

    def test_locked_suffix_methods_are_exempt(self):
        findings = run(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def _bump_locked(self):
                    self._n += 1
            """
        )
        assert findings == []

    def test_closure_does_not_inherit_held_locks(self):
        findings = run(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def deferred(self):
                    with self._lock:
                        def later():
                            return self._n
                        return later
            """
        )
        assert rules_of(findings) == ["guarded-by"]


# ---------------------------------------------------------------------------
# scratch-escape


class TestScratchEscape:
    def test_fires_on_returned_arena_view(self):
        findings = run(
            """
            def f(arena):
                buf = arena.get("x", (4,), "f8")
                return buf
            """
        )
        assert rules_of(findings) == ["scratch-escape"]
        assert findings[0].qualname == "f"

    def test_copy_sanitizes(self):
        findings = run(
            """
            def f(arena):
                buf = arena.get("x", (4,), "f8")
                return buf.copy()
            """
        )
        assert findings == []

    def test_copy_false_keeps_taint(self):
        findings = run(
            """
            import numpy as np

            def f(arena):
                buf = arena.get("x", (4,), "f8")
                return np.array(buf, copy=False)
            """
        )
        assert rules_of(findings) == ["scratch-escape"]

    def test_view_methods_propagate(self):
        findings = run(
            """
            def f(workspace):
                buf = workspace.get("x", (4, 2), "f8")
                return buf.reshape(-1)
            """
        )
        assert rules_of(findings) == ["scratch-escape"]

    def test_store_on_self_fires(self):
        findings = run(
            """
            class Holder:
                def grab(self, arena):
                    self.view = arena.get("x", (4,), "f8")
            """
        )
        assert rules_of(findings) == ["scratch-escape"]
        assert "self.view" in findings[0].message

    def test_append_to_self_container_fires(self):
        findings = run(
            """
            class Holder:
                def grab(self, arena):
                    row = arena.get("x", (4,), "f8")
                    self.rows.append(row)
            """
        )
        assert rules_of(findings) == ["scratch-escape"]

    def test_set_result_fires(self):
        findings = run(
            """
            def deliver(future, arena):
                rows = arena.get("x", (4,), "f8")
                future.set_result(rows)
            """
        )
        assert rules_of(findings) == ["scratch-escape"]

    def test_scratch_view_marker_taints_assignment(self):
        findings = run(
            """
            def f(result):
                out = result.batch  # statan: scratch-view
                return out
            """
        )
        assert rules_of(findings) == ["scratch-escape"]

    def test_helper_call_with_arena_propagates(self):
        findings = run(
            """
            def f(batch, workspace):
                offsets = searchsorted_rows(batch, workspace=workspace)
                return offsets
            """
        )
        assert rules_of(findings) == ["scratch-escape"]

    def test_constructor_owning_arena_is_clean(self):
        findings = run(
            """
            class Streamer:
                def __init__(self, workspace):
                    self._sorter = GpuArraySort(workspace=workspace)
            """
        )
        assert findings == []

    def test_baseline_entry_covers_contract(self):
        baseline = Baseline()
        baseline.add(BaselineEntry(
            rule="scratch-escape",
            key=f"{CORE}::f",
            reason="documented scratch contract",
        ))
        findings = run(
            """
            def f(arena):
                return arena.get("x", (4,), "f8")
            """,
            baseline=baseline,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# nondeterminism


class TestNondeterminism:
    def test_time_time_fires_in_scope(self):
        findings = run(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rules_of(findings) == ["nondeterminism"]

    def test_perf_counter_is_fine(self):
        findings = run(
            """
            import time

            def tick():
                return time.perf_counter()
            """
        )
        assert findings == []

    def test_out_of_scope_paths_are_not_audited(self):
        findings = run(
            """
            import time

            def stamp():
                return time.time()
            """,
            path=MISC,
        )
        assert findings == []

    def test_random_import_fires(self):
        assert rules_of(run("import random\n")) == ["nondeterminism"]
        assert rules_of(run("from random import shuffle\n")) == [
            "nondeterminism"
        ]

    def test_unseeded_default_rng_fires(self):
        findings = run(
            """
            import numpy as np

            def draw():
                return np.random.default_rng()
            """
        )
        assert rules_of(findings) == ["nondeterminism"]

    def test_seeded_default_rng_is_fine(self):
        findings = run(
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []

    def test_global_state_sampler_fires(self):
        findings = run(
            """
            import numpy as np

            def draw():
                return np.random.rand(3)
            """
        )
        assert rules_of(findings) == ["nondeterminism"]


# ---------------------------------------------------------------------------
# hygiene


class TestHygiene:
    def test_bare_except_fires(self):
        findings = run(
            """
            def f():
                try:
                    g()
                except:
                    return None
            """,
            path=MISC,
        )
        assert rules_of(findings) == ["silent-except"]

    def test_except_exception_pass_fires(self):
        findings = run(
            """
            def f():
                try:
                    g()
                except Exception:
                    pass
            """,
            path=MISC,
        )
        assert rules_of(findings) == ["silent-except"]

    def test_handled_broad_except_is_fine(self):
        findings = run(
            """
            def f(log):
                try:
                    g()
                except Exception as exc:
                    log.warning("g failed: %s", exc)
            """,
            path=MISC,
        )
        assert findings == []

    def test_narrow_except_pass_is_fine(self):
        findings = run(
            """
            def f():
                try:
                    g()
                except ValueError:
                    pass
            """,
            path=MISC,
        )
        assert findings == []

    def test_mutable_default_fires(self):
        findings = run("def f(x=[]):\n    return x\n", path=MISC)
        assert rules_of(findings) == ["mutable-default"]

    def test_mutable_kwonly_default_fires(self):
        findings = run("def f(*, x={}):\n    return x\n", path=MISC)
        assert rules_of(findings) == ["mutable-default"]

    def test_none_default_is_fine(self):
        findings = run("def f(x=None):\n    return x or []\n", path=MISC)
        assert findings == []


# ---------------------------------------------------------------------------
# suppressions


class TestSuppressions:
    def test_suppression_with_reason_silences(self):
        findings = run(
            "def f(x=[]):  # statan: ignore[mutable-default] -- fixture\n"
            "    return x\n",
            path=MISC,
        )
        assert findings == []

    def test_reasonless_suppression_is_ineffective(self):
        findings = run(
            "def f(x=[]):  # statan: ignore[mutable-default]\n"
            "    return x\n",
            path=MISC,
        )
        assert sorted(rules_of(findings)) == [
            "mutable-default",
            "suppression-missing-reason",
        ]

    def test_unused_suppression_is_a_finding(self):
        findings = run(
            "def f(x=None):  # statan: ignore[mutable-default] -- stale\n"
            "    return x\n",
            path=MISC,
        )
        assert rules_of(findings) == ["unused-suppression"]

    def test_unknown_rule_is_a_finding(self):
        findings = run(
            "x = 1  # statan: ignore[no-such-rule] -- why\n", path=MISC
        )
        assert "unknown-rule" in rules_of(findings)

    def test_meta_rules_cannot_be_suppressed(self):
        findings = run(
            "x = 1  # statan: ignore[stale-baseline] -- nice try\n",
            path=MISC,
        )
        assert "unknown-rule" in rules_of(findings)

    def test_suppression_only_covers_its_own_line(self):
        findings = run(
            """
            def f(x=[]):
                return x  # statan: ignore[mutable-default] -- wrong line
            """,
            path=MISC,
        )
        assert "mutable-default" in rules_of(findings)
        assert "unused-suppression" in rules_of(findings)

    def test_scan_markers_parses_lock_lists(self):
        markers = scan_markers(
            "x = 1  # guarded-by: _wakeup, _lock\n"
            "y = 2  # statan: scratch-view\n"
        )
        assert markers.guarded_by[1] == ("_wakeup", "_lock")
        assert markers.scratch_view_lines == {2}


# ---------------------------------------------------------------------------
# parse errors, baseline, engine


class TestEngineAndBaseline:
    def test_syntax_error_becomes_parse_error_finding(self):
        findings = run("def f(:\n", path=MISC)
        assert rules_of(findings) == ["parse-error"]

    def test_meta_rules_are_registered(self):
        assert META_RULES <= set(RULES)

    def test_baseline_roundtrip(self, tmp_path):
        toml = tmp_path / "baseline.toml"
        toml.write_text(
            '[["scratch-escape"]]\n'
            'key = "src/repro/core/mod.py::f"\n'
            'reason = "documented contract"\n'
        )
        baseline = load_baseline(toml)
        findings = run(
            """
            def f(arena):
                return arena.get("x", (4,), "f8")
            """,
            baseline=baseline,
        )
        assert findings == []
        assert baseline.problems() == []  # entry was used -> not stale

    def test_stale_baseline_entry_is_a_finding(self, tmp_path):
        toml = tmp_path / "baseline.toml"
        toml.write_text(
            '[["scratch-escape"]]\n'
            'key = "src/repro/core/gone.py::f"\n'
            'reason = "the function was deleted"\n'
        )
        baseline = load_baseline(toml)
        problems = baseline.problems()
        assert rules_of(problems) == ["stale-baseline"]

    def test_baseline_entry_without_reason_is_a_finding(self, tmp_path):
        toml = tmp_path / "baseline.toml"
        toml.write_text(
            '[["scratch-escape"]]\nkey = "src/repro/core/mod.py::f"\n'
        )
        baseline = load_baseline(toml)
        findings = run(
            """
            def f(arena):
                return arena.get("x", (4,), "f8")
            """,
            baseline=baseline,
        )
        # Reason-less entries do not cover, and the baseline audit flags them.
        assert "scratch-escape" in rules_of(findings)
        assert rules_of(baseline.problems()) == ["suppression-missing-reason"]

    def test_baseline_unknown_rule_is_a_finding(self, tmp_path):
        toml = tmp_path / "baseline.toml"
        toml.write_text(
            '[["no-such-rule"]]\nkey = "a.py::f"\nreason = "why"\n'
        )
        assert rules_of(load_baseline(toml).problems()) == ["unknown-rule"]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.toml")
        assert baseline.entries == {}

    def test_analyze_paths_relative_labels(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import random\n")
        (pkg / "ok.py").write_text("x = 1\n")
        result = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert isinstance(result, AnalysisResult)
        assert result.files_analyzed == 2
        assert [f.path for f in result.findings] == ["src/repro/core/bad.py"]
        assert result.by_rule() == {"nondeterminism": 1}

    def test_iter_python_files_dedups(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert files == [tmp_path / "a.py"]

    def test_json_schema(self, tmp_path):
        (tmp_path / "bad.py").write_text("import random\n")
        bad = tmp_path / "bad.py"
        # Give the file an in-scope label by analyzing from a fake root.
        result = analyze_paths([bad], root=tmp_path)
        payload = json.loads(result.as_json())
        assert payload["schema"] == "statan/v1"
        assert set(payload) == {
            "schema", "files_analyzed", "findings", "by_rule", "clean",
        }
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "message", "qualname",
            }

    def test_render_text_clean_and_dirty(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        clean = analyze_paths([tmp_path / "ok.py"], root=tmp_path)
        assert "CLEAN" in clean.render_text()
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
        dirty = analyze_paths([tmp_path / "bad.py"], root=tmp_path)
        assert "mutable-default=1" in dirty.render_text()


# ---------------------------------------------------------------------------
# CLI


REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "statan", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


def git(cwd, *args):
    subprocess.run(
        ["git", *args], cwd=cwd, check=True, capture_output=True,
        env={**os.environ,
             "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
    )


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = run_cli(["ok.py", "--baseline", "none.toml"], tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN" in proc.stdout

    def test_finding_exits_one(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
        proc = run_cli(["bad.py", "--baseline", "none.toml"], tmp_path)
        assert proc.returncode == 1
        assert "[mutable-default]" in proc.stdout

    def test_missing_path_exits_two(self, tmp_path):
        proc = run_cli(["no/such/dir"], tmp_path)
        assert proc.returncode == 2
        assert "no such path" in proc.stderr

    def test_json_format(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
        proc = run_cli(
            ["bad.py", "--format=json", "--baseline", "none.toml"], tmp_path
        )
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "statan/v1"
        assert payload["clean"] is False

    def test_changed_mode_analyzes_only_dirty_files(self, tmp_path):
        git(tmp_path, "init", "-q")
        (tmp_path / "committed.py").write_text(
            "def f(x=[]):\n    return x\n"  # a finding, but committed+clean
        )
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        proc = run_cli(["--changed", "--baseline", "none.toml"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no changed python files" in proc.stdout

        # A modified tracked file and a new untracked file both count.
        (tmp_path / "committed.py").write_text(
            "def f(x=[]):\n    return [x]\n"
        )
        (tmp_path / "fresh.py").write_text("import time\nx = 1\n")
        proc = run_cli(["--changed", "--baseline", "none.toml"], tmp_path)
        assert proc.returncode == 1
        assert "committed.py" in proc.stdout
        assert proc.stdout.count("[mutable-default]") == 1

    def test_changed_mode_outside_git_exits_two(self, tmp_path):
        proc = run_cli(["--changed"], tmp_path)
        assert proc.returncode == 2

    def test_changed_mode_survives_a_deleted_file(self, tmp_path):
        # `git diff --name-only` lists a deleted tracked file; analyzing
        # it would crash on read.  The deletion must be skipped while
        # the surviving dirty file is still analyzed.
        git(tmp_path, "init", "-q")
        (tmp_path / "doomed.py").write_text("x = 1\n")
        (tmp_path / "kept.py").write_text("y = 2\n")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "doomed.py").unlink()
        (tmp_path / "kept.py").write_text("def f(x=[]):\n    return x\n")
        proc = run_cli(["--changed", "--baseline", "none.toml"], tmp_path)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "kept.py" in proc.stdout
        assert "doomed.py" not in proc.stdout

    def test_changed_mode_with_only_deletions_is_clean(self, tmp_path):
        git(tmp_path, "init", "-q")
        (tmp_path / "doomed.py").write_text("x = 1\n")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        (tmp_path / "doomed.py").unlink()
        proc = run_cli(["--changed", "--baseline", "none.toml"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no changed python files" in proc.stdout
