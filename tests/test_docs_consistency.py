"""Meta-tests: documentation, exports, and CLI stay consistent with code.

Production repositories rot at the seams — README references files that
moved, ``__all__`` names that no longer resolve, CLI help that lies.
These tests pin the seams.
"""

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gpusim",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_callables_documented(self, package):
        mod = importlib.import_module(package)
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"{package}: no docstring on {undocumented}"

    def test_version_consistent(self):
        import repro

        pyproject = (REPO / "pyproject.toml").read_text()
        declared = re.search(r'version = "([^"]+)"', pyproject).group(1)
        assert repro.__version__ == declared


class TestDocumentsReferenceRealFiles:
    def _referenced_paths(self, text):
        # backtick-quoted repo-relative paths with known roots
        for match in re.finditer(
            r"`((?:src|tests|benchmarks|examples|docs)/[\w./-]+)`", text
        ):
            yield match.group(1)

    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                                     "CONTRIBUTING.md"])
    def test_paths_exist(self, doc):
        text = (REPO / doc).read_text()
        missing = [p for p in self._referenced_paths(text)
                   if not (REPO / p).exists()]
        assert not missing, f"{doc} references missing paths: {missing}"

    def test_readme_examples_table_matches_directory(self):
        text = (REPO / "README.md").read_text()
        listed = set(re.findall(r"`examples/(\w+\.py)`", text))
        actual = {p.name for p in (REPO / "examples").glob("*.py")}
        assert listed == actual, (
            f"README examples table out of sync: "
            f"missing {actual - listed}, stale {listed - actual}"
        )

    def test_design_module_map_matches_source_tree(self):
        text = (REPO / "DESIGN.md").read_text()
        for pkg in ("core", "gpusim", "baselines", "workloads", "analysis"):
            actual = {
                p.name for p in (REPO / "src/repro" / pkg).glob("*.py")
                if p.name != "__init__.py"
            }
            for module in actual:
                assert module in text, f"DESIGN.md omits src/repro/{pkg}/{module}"

    def test_experiments_covers_every_paper_artifact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Fig. 2", "Figs. 4–7", "Table 1"):
            assert artifact in text

    def test_benchmarks_exist_per_artifact(self):
        bench = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_fig2_complexity.py",
            "bench_fig4_runtime_n1000.py",
            "bench_fig5_runtime_n2000.py",
            "bench_fig6_runtime_n3000.py",
            "bench_fig7_runtime_n4000.py",
            "bench_table1_capacity.py",
            "bench_ablations.py",
        ):
            assert required in bench


class TestCliSurface:
    def test_help_lists_all_subcommands(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        for command in ("sort", "figures", "table1", "devices", "pairs",
                        "outofcore", "calibrate", "workloads", "report",
                        "topk"):
            assert command in out

    def test_console_script_declared(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert 'gpu-arraysort = "repro.cli:main"' in pyproject


class TestExamplesAreSelfContained:
    @pytest.mark.parametrize(
        "script", sorted(p.name for p in (REPO / "examples").glob("*.py"))
    )
    def test_has_main_guard_and_docstring(self, script):
        text = (REPO / "examples" / script).read_text()
        assert '__name__ == "__main__"' in text, script
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), script
