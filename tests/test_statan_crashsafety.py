"""Crash-safety lint tests: durable writes must be tmp-write -> fsync -> rename.

The seeded bug the pass exists for is an un-fsynced manifest write: the
rename publishes a name whose data may not be durable yet, so a power
loss can leave the spill manifest pointing at an empty file.  Fixtures
prove both failure shapes fire, the staged shape is clean, the scope is
respected, and suppressions work; then the real spill/calibration
modules are asserted clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.statan import analyze_source, analyze_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent

DURABLE = "src/repro/outofcore/mod.py"  # inside the durable-write scope
PLANNER = "src/repro/planner/mod.py"  # also in scope (calibration cache)
ELSEWHERE = "src/repro/core/mod.py"  # outside it


def run(source: str, path: str = DURABLE):
    return analyze_source(textwrap.dedent(source), path)


def rules_of(findings):
    return [f.rule for f in findings]


class TestCrashSafety:
    def test_seeded_unfsynced_manifest_write_fires(self):
        # The seeded bug: staged write + rename, but no fsync — the
        # rename can become durable before the data does.
        findings = run("""
            import json
            import os

            def write_manifest(path, records):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(json.dumps(records))
                os.replace(tmp, path)
        """)
        assert rules_of(findings) == ["crash-safety"]
        assert "rename without fsync" in findings[0].message
        assert findings[0].qualname == "write_manifest"

    def test_bare_durable_write_fires(self):
        findings = run("""
            def write_manifest(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
        """)
        assert rules_of(findings) == ["crash-safety"]
        assert "bare durable write" in findings[0].message

    def test_path_write_text_always_fires_in_scope(self):
        findings = run("""
            def save(path, payload):
                path.write_text(payload)
        """)
        assert rules_of(findings) == ["crash-safety"]
        assert "write_text" in findings[0].message

    def test_staged_shape_is_clean(self):
        findings = run("""
            import os

            def write_manifest(path, payload):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
        """)
        assert findings == []

    def test_fdopen_write_is_checked_too(self):
        findings = run("""
            import os
            import tempfile

            def write_manifest(path, payload):
                fd, tmp = tempfile.mkstemp(dir=str(path))
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
        """)
        assert rules_of(findings) == ["crash-safety"]
        assert "rename without fsync" in findings[0].message

    def test_read_mode_open_is_exempt(self):
        findings = run("""
            import json

            def load_manifest(path):
                with open(path) as handle:
                    return json.load(handle)
        """)
        assert findings == []

    def test_out_of_scope_paths_are_not_audited(self):
        findings = run(
            """
            def dump(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """,
            path=ELSEWHERE,
        )
        assert findings == []

    def test_planner_scope_is_audited(self):
        findings = run(
            """
            def save_cache(path, payload):
                path.write_text(payload)
            """,
            path=PLANNER,
        )
        assert rules_of(findings) == ["crash-safety"]

    def test_suppression_with_reason_works(self):
        findings = run("""
            def debug_dump(path, payload):
                with open(path, "w") as handle:  # statan: ignore[crash-safety] -- throwaway debug dump, not a durable artifact
                    handle.write(payload)
        """)
        assert findings == []

    def test_nested_function_facts_do_not_leak_to_parent(self):
        # The parent stages-and-renames correctly; the nested helper
        # writes bare.  The nested write must still fire (function-local
        # facts, not file-local).
        findings = run("""
            import os

            def outer(path, payload):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    handle.write(payload)
                    os.fsync(handle.fileno())
                os.replace(tmp, path)

                def sloppy(p, data):
                    with open(p, "w") as handle:
                        handle.write(data)
                return sloppy
        """)
        assert rules_of(findings) == ["crash-safety"]
        assert findings[0].qualname == "outer.sloppy"

    def test_real_spill_and_calibration_modules_are_clean(self):
        result = analyze_paths(
            [
                REPO_ROOT / "src" / "repro" / "outofcore",
                REPO_ROOT / "src" / "repro" / "planner",
            ],
            root=REPO_ROOT,
            baseline=load_baseline(),
            check_baseline_staleness=False,
        )
        crash = [f for f in result.findings if f.rule == "crash-safety"]
        assert crash == [], "\n".join(str(f) for f in crash)
