"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.technique == "arraysort"
        assert args.num_arrays == 10_000

    def test_rejects_unknown_technique(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--technique", "bogo"])


class TestSortCommand:
    def test_arraysort_with_verify(self, capsys):
        rc = main(["sort", "-N", "200", "-n", "100", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GPU-ArraySort" in out
        assert "verification: OK" in out

    def test_sta(self, capsys):
        rc = main(["sort", "-N", "100", "-n", "60", "--technique", "sta", "--verify"])
        assert rc == 0
        assert "STA" in capsys.readouterr().out

    def test_segmented(self, capsys):
        rc = main(["sort", "-N", "100", "-n", "60", "--technique", "segmented"])
        assert rc == 0
        assert "segmented" in capsys.readouterr().out

    def test_sequential(self, capsys):
        rc = main(["sort", "-N", "50", "-n", "60", "--technique", "sequential"])
        assert rc == 0

    def test_model_engine(self, capsys):
        rc = main(["sort", "-N", "100", "-n", "100", "--engine", "model"])
        assert rc == 0
        assert "modeled device time" in capsys.readouterr().out

    def test_sim_engine_micro_scale(self, capsys):
        rc = main(["sort", "-N", "2", "-n", "64", "--engine", "sim", "--verify"])
        assert rc == 0

    @pytest.mark.parametrize(
        "workload", ["uniform", "normal", "clustered", "duplicates", "spectra"]
    )
    def test_all_workloads(self, workload, capsys):
        rc = main([
            "sort", "-N", "50", "-n", "80", "--workload", workload, "--verify",
        ])
        assert rc == 0

    def test_custom_tuning_flags(self, capsys):
        rc = main([
            "sort", "-N", "50", "-n", "100", "--bucket-size", "10",
            "--sampling-rate", "0.2", "--verify",
        ])
        assert rc == 0


class TestFiguresCommand:
    def test_all_figures(self, capsys):
        rc = main(["figures"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 2" in out
        for fig in ("FIG4", "FIG5", "FIG6", "FIG7"):
            assert fig in out

    def test_single_figure(self, capsys):
        rc = main(["figures", "--which", "fig4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FIG4" in out
        assert "FIG5" not in out

    def test_fig2_reports_r2(self, capsys):
        rc = main(["figures", "--which", "fig2"])
        assert rc == 0
        assert "R^2" in capsys.readouterr().out


class TestTable1Command:
    def test_prints_table(self, capsys):
        rc = main(["table1", "--no-measure"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "2000000" in out

    def test_with_measurement(self, capsys):
        rc = main(["table1"])
        assert rc == 0
        assert "2000000" in capsys.readouterr().out


class TestDevicesCommand:
    def test_lists_catalog(self, capsys):
        rc = main(["devices"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Tesla K40c" in out
        assert "2880" in out


class TestPairsCommand:
    def test_sorts_by_mz(self, capsys):
        rc = main(["pairs", "-N", "20", "-n", "50"])
        assert rc == 0
        assert "by mz" in capsys.readouterr().out

    def test_sorts_by_intensity(self, capsys):
        rc = main(["pairs", "-N", "20", "-n", "50", "--by", "intensity"])
        assert rc == 0
        assert "by intensity" in capsys.readouterr().out


class TestOutOfCoreCommand:
    def test_plans_chunks(self, capsys):
        rc = main(["outofcore", "-N", "5000000", "-n", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chunks" in out
        assert "overlapped" in out

    def test_other_device(self, capsys):
        rc = main(["outofcore", "-N", "2000000", "-n", "1000",
                   "--device", "c2050"])
        assert rc == 0
        assert "C2050" in capsys.readouterr().out


class TestTopkCommand:
    def test_keeps_top_peaks(self, capsys):
        rc = main(["topk", "-N", "50", "-n", "200", "-k", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kept top 20/200" in out
        assert "identical" in out


class TestMemcheckCommand:
    def test_pipeline_is_clean(self, capsys):
        rc = main(["memcheck", "-N", "2", "-n", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out
        assert "conflict-free" in out


class TestWorkloadsCommand:
    def test_lists_suite(self, capsys):
        rc = main(["workloads"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "paper_uniform_small" in out
        assert "spectra_intensity" in out


class TestCalibrateCommand:
    def test_reports_fits(self, capsys):
        rc = main(["calibrate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "time calibration" in out
        assert "memory fraction" in out

    def test_show_anchors(self, capsys):
        rc = main(["calibrate", "--show-anchors"])
        assert rc == 0
        assert "Fig 4 right edge" in capsys.readouterr().out


class TestPlannerWorkersConflict:
    def test_error_names_both_flags_and_values(self, capsys):
        """The mutual-exclusion diagnostic must name both conflicting
        flags with their values and suggest the fix."""
        rc = main([
            "sort", "-N", "50", "-n", "40",
            "--planner", "auto", "--workers", "4",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--planner auto" in err
        assert "--workers 4" in err
        assert "drop --workers" in err

    def test_planner_alone_is_fine(self, capsys):
        rc = main(["sort", "-N", "50", "-n", "40", "--planner", "fused"])
        assert rc == 0
        assert "planner: chose" in capsys.readouterr().out

    def test_workers_alone_is_fine(self, capsys):
        rc = main(["sort", "-N", "50", "-n", "40", "--workers", "2"])
        assert rc == 0


@pytest.mark.service
class TestServeBenchCommand:
    def test_reports_throughput_and_occupancy(self, capsys):
        rc = main([
            "serve-bench", "--requests", "64", "--clients", "4",
            "--array-size", "32",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "service traffic" in out
        assert "throughput" in out
        assert "Batch occupancy" in out

    def test_unbatched_comparison(self, capsys):
        rc = main([
            "serve-bench", "--requests", "64", "--clients", "4",
            "--array-size", "32", "--unbatched",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unbatched baseline" in out
        assert "batched speedup" in out

    def test_deadline_and_open_arrival(self, capsys):
        rc = main([
            "serve-bench", "--requests", "64", "--clients", "4",
            "--array-size", "32", "--arrival", "open", "--rate", "5000",
            "--deadline-ms", "250",
        ])
        assert rc == 0
        assert "service traffic (open loop" in capsys.readouterr().out

    def test_bad_size_mix_is_a_usage_error(self, capsys):
        rc = main(["serve-bench", "--size-mix", "nonsense"])
        assert rc == 2
        assert "--size-mix" in capsys.readouterr().err
