"""Live chaos harness: isolation, latency, and fairness SLOs under
injected faults, plus the WFQ fairness property under a flooding tenant.

The end-to-end tests run real (tiny) scenarios — seeded FaultPlan, real
threads, real services — and are marked ``chaos`` (and ``service``) so
``make chaos-smoke`` can select them.  The verdict-logic tests build
synthetic reports by hand, with no services at all.
"""

import numpy as np
import pytest

from repro.service import (
    ChaosReport,
    ChaosScenario,
    ChaosTenant,
    SortService,
    TenantLoad,
    TrafficReport,
    evaluate_slos,
    run_multi_tenant_traffic,
    run_scenario,
)
from repro.service.chaos import PhaseResult
from repro.service.stats import TenantStats

pytestmark = [pytest.mark.service, pytest.mark.chaos]


def _tiny_scenario(**overrides):
    kwargs = dict(
        name="tiny",
        tenants=(
            ChaosTenant(name="alpha", clients=1, total_requests=24,
                        rate_rps=400.0),
            ChaosTenant(name="beta", clients=1, total_requests=24,
                        rate_rps=400.0),
            ChaosTenant(name="poison", clients=1, total_requests=16,
                        rate_rps=300.0, poison_nan_rate=0.5),
        ),
        kernel_fault_rate=0.15,
        oom_windows=((4, 7),),
        corruption_rate=0.05,
        batch_target_rows=32,
        max_queue_rows=512,
        array_size=48,
        seed=5,
    )
    kwargs.update(overrides)
    return ChaosScenario(**kwargs)


class TestScenarioEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return run_scenario(_tiny_scenario(
            flood_tenant=ChaosTenant(name="flood", clients=1,
                                     total_requests=60, rate_rps=3000.0,
                                     quota_rows=24),
        ))

    def test_quarantine_hits_only_the_poison_tenant(self, report):
        for phase in (report.baseline, report.faulted, report.flood):
            assert phase.quarantined_outside(("poison",)) == 0
        # and the probe really fired in both comparable phases
        assert report.baseline.traffic["poison"].quarantined > 0
        assert report.faulted.traffic["poison"].quarantined > 0

    def test_faults_were_actually_injected(self, report):
        injected = report.faulted.metrics["backend"]["fault_plan"]["injected"]
        assert injected["kernel_faults"] + injected["oom_faults"] > 0
        assert report.baseline.metrics["backend"].get("fault_plan") is None

    def test_innocents_complete_under_faults(self, report):
        for name in ("alpha", "beta"):
            faulted = report.faulted.traffic[name]
            assert faulted.completed == faulted.requests_issued
            assert faulted.failed == 0

    def test_server_side_tenant_stats_recorded(self, report):
        tenants = report.faulted.tenants
        assert tenants["poison"].quarantined_rows > 0
        assert tenants["alpha"].quarantined_rows == 0
        assert tenants["alpha"].completed > 0

    def test_slos_hold_on_the_tiny_cell(self, report):
        slos = evaluate_slos(report)
        assert slos["isolation_ok"]
        assert slos["cross_tenant_quarantines"] == 0
        assert slos["fairness_ok"]
        assert slos["p99_ratio"] is not None

    def test_flood_phase_never_rejects_innocents(self, report):
        # The tiny cell drains too fast to guarantee the flooder trips
        # its quota (that mechanism is covered deterministically in
        # test_service_tenants.py); what must hold at any scale is that
        # the innocents ride through untouched.
        flood_stats = report.flood.tenants
        assert flood_stats["flood"].admitted > 0
        for name in ("alpha", "beta"):
            assert flood_stats[name].rejection_rate <= 0.05
            assert report.flood.traffic[name].completed > 0

    def test_report_round_trips_to_json_types(self, report):
        import json

        json.dumps(report.as_dict())


class TestScenarioValidation:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _tiny_scenario(flood_tenant=ChaosTenant(name="alpha"))

    def test_empty_tenants_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            ChaosScenario(name="x", tenants=())

    def test_poison_tenants_derived(self):
        assert _tiny_scenario().poison_tenants == ("poison",)

    def test_fault_plan_is_fresh_per_call(self):
        scenario = _tiny_scenario()
        plan = scenario.fault_plan()
        assert plan.next_launch_index == 0
        assert plan.kernel_fault_rate == 0.15
        assert plan.oom_windows == ((4, 7),)

    def test_poison_rate_needs_float_dtype(self):
        with SortService(batch_target_rows=16) as svc:
            with pytest.raises(ValueError, match="float"):
                from repro.service import run_service_traffic

                run_service_traffic(svc, total_requests=1, clients=1,
                                    dtype="int32", poison_nan_rate=0.5)


def _phase(name, latencies_by_tenant, quarantined_by_tenant=None,
           rejection_by_tenant=None):
    """Hand-built PhaseResult for verdict-logic tests."""
    quarantined_by_tenant = quarantined_by_tenant or {}
    rejection_by_tenant = rejection_by_tenant or {}
    traffic = {}
    tenants = {}
    for tenant, latencies in latencies_by_tenant.items():
        quarantined = quarantined_by_tenant.get(tenant, 0)
        rejected = rejection_by_tenant.get(tenant, 0)
        traffic[tenant] = TrafficReport(
            mode="open", clients=1, requests_issued=len(latencies),
            completed=len(latencies), rejected_retries=0, shed=0,
            deadline_missed=0, failed=quarantined, rows_completed=len(latencies),
            wall_seconds=1.0, latencies_ms=list(latencies),
            quarantined=quarantined,
        )
        tenants[tenant] = TenantStats(
            tenant=tenant, admitted=len(latencies), rejected=rejected,
        )
    return PhaseResult(name=name, traffic=traffic, tenants=tenants, metrics={})


def _report(baseline, faulted, flood=None, poison=("poison",),
            flood_tenant="flood"):
    return ChaosReport(
        scenario_name="synthetic", poison_tenants=poison,
        flood_tenant=flood_tenant if flood is not None else None,
        baseline=baseline, faulted=faulted, flood=flood,
    )


class TestSloVerdicts:
    def test_all_green(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 50, "poison": [12.0] * 10}),
            _phase("faulted", {"a": [15.0] * 50, "poison": [20.0] * 10}),
            _phase("flood", {"a": [10.0] * 50, "flood": [9.0] * 50},
                   rejection_by_tenant={"flood": 40, "a": 1}),
        )
        slos = evaluate_slos(report)
        assert slos["ok"]
        assert slos["p99_ratio"] == pytest.approx(1.5)
        assert "flood" not in slos["innocent_rejection_rates"]
        assert "poison" not in slos["innocent_rejection_rates"]

    def test_cross_tenant_quarantine_breaks_isolation(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 10}),
            _phase("faulted", {"a": [10.0] * 10},
                   quarantined_by_tenant={"a": 1}),
        )
        slos = evaluate_slos(report)
        assert not slos["isolation_ok"]
        assert slos["cross_tenant_quarantines"] == 1
        assert not slos["ok"]

    def test_poison_tenant_quarantines_do_not_count(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 10, "poison": [10.0] * 4},
                   quarantined_by_tenant={"poison": 2}),
            _phase("faulted", {"a": [10.0] * 10, "poison": [10.0] * 4},
                   quarantined_by_tenant={"poison": 3}),
        )
        assert evaluate_slos(report)["isolation_ok"]

    def test_p99_blowout_fails_latency(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 20}),
            _phase("faulted", {"a": [25.0] * 20}),
        )
        slos = evaluate_slos(report)
        assert slos["p99_ratio"] == pytest.approx(2.5)
        assert not slos["latency_ok"]
        assert not slos["ok"]
        # a looser budget flips the verdict
        assert evaluate_slos(report, p99_budget_factor=3.0)["latency_ok"]

    def test_poison_latencies_excluded_from_p99(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 20, "poison": [1.0] * 20}),
            _phase("faulted", {"a": [11.0] * 20, "poison": [500.0] * 20}),
        )
        slos = evaluate_slos(report)
        assert slos["p99_ratio"] == pytest.approx(1.1)
        assert slos["latency_ok"]

    def test_missing_latencies_fail_closed(self):
        report = _report(
            _phase("baseline", {"a": []}),
            _phase("faulted", {"a": []}),
        )
        slos = evaluate_slos(report)
        assert slos["p99_ratio"] is None
        assert not slos["latency_ok"]

    def test_innocent_rejections_fail_fairness(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 10}),
            _phase("faulted", {"a": [10.0] * 10}),
            _phase("flood", {"a": [10.0] * 10, "flood": [9.0] * 10},
                   rejection_by_tenant={"a": 5}),
        )
        slos = evaluate_slos(report)
        assert slos["innocent_rejection_rates"]["a"] == pytest.approx(1 / 3)
        assert not slos["fairness_ok"]
        assert not slos["ok"]

    def test_no_flood_phase_is_vacuously_fair(self):
        report = _report(
            _phase("baseline", {"a": [10.0] * 10}),
            _phase("faulted", {"a": [10.0] * 10}),
        )
        slos = evaluate_slos(report)
        assert slos["fairness_ok"]
        assert slos["innocent_rejection_rates"] == {}


class TestWfqFairnessProperty:
    """Satellite property: one tenant flooding an open-loop mix must not
    starve the others — each innocent keeps throughput within 25% of its
    fair share (its own offered load, which is far below capacity) and a
    bounded p99."""

    def test_flooded_innocents_keep_their_share(self):
        innocents = [
            TenantLoad(name=f"inno-{i}", clients=1, total_requests=40,
                       rate_rps=300.0)
            for i in range(2)
        ]
        flood = TenantLoad(name="flood", clients=2, total_requests=200,
                           rate_rps=5000.0)
        with SortService(
            batch_target_rows=64,
            max_queue_rows=1024,
            linger_ms=1.0,
            tenant_quotas={"flood": 96},
        ) as svc:
            reports = run_multi_tenant_traffic(
                svc, innocents + [flood], mode="open",
                array_size=64, seed=13,
            )
            stats = svc.stats()

        for load in innocents:
            report = reports[load.name]
            # throughput within 25% of fair share = its full offered load
            assert report.completed >= 0.75 * report.requests_issued
            assert report.failed == 0
            p99 = report.latency_percentiles()["p99"]
            assert np.isfinite(p99)
            # bounded p99: queueing behind the flooder's quota-capped
            # backlog, not behind its whole offered load.
            assert p99 < 2000.0
            assert stats.tenants[load.name].rejection_rate <= 0.05
        # sanity: the flooder genuinely offered more than everyone else
        assert reports["flood"].requests_issued > sum(
            reports[l.name].requests_issued for l in innocents
        )
