"""Tests for the out-of-core pipeline (paper Section 9 extension)."""

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.core.pipeline import (
    OutOfCoreSorter,
    pipeline_timeline,
    plan_chunks,
)
from repro.gpusim.device import DeviceSpec, K40C, MICRO
from repro.workloads import uniform_arrays


class TestPlanChunks:
    def test_single_chunk_when_fits(self):
        plan = plan_chunks(1000, 1000, device=K40C)
        assert plan.num_chunks == 1
        assert plan.arrays_per_chunk >= 1000

    def test_multiple_chunks_when_exceeding_memory(self):
        # 5M arrays of 1000 floats = 20 GB > K40c capacity.
        plan = plan_chunks(5_000_000, 1000, device=K40C)
        assert plan.num_chunks > 1
        assert plan.arrays_per_chunk * plan.num_chunks >= 5_000_000

    def test_double_buffering_halves_chunk(self):
        single = plan_chunks(5_000_000, 1000, device=K40C, double_buffered=False)
        double = plan_chunks(5_000_000, 1000, device=K40C, double_buffered=True)
        assert double.arrays_per_chunk == pytest.approx(
            single.arrays_per_chunk / 2, rel=0.01
        )

    def test_chunk_fits_device(self):
        plan = plan_chunks(5_000_000, 1000, device=K40C)
        assert plan.chunk_bytes <= K40C.usable_global_mem_bytes

    def test_slices_cover_batch_disjointly(self):
        plan = plan_chunks(1_234_567, 2000, device=K40C)
        slices = plan.chunk_slices()
        covered = 0
        for sl in slices:
            assert sl.start == covered
            covered = sl.stop
        assert covered == 1_234_567

    def test_rejects_array_too_big_for_device(self):
        with pytest.raises(ValueError):
            plan_chunks(10, 10_000_000, device=MICRO)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            plan_chunks(-1, 100)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)

    def test_zero_arrays(self):
        plan = plan_chunks(0, 1000, device=K40C)
        assert plan.num_chunks == 0
        assert plan.chunk_slices() == []


class TestPipelineTimeline:
    def test_no_overlap_is_sum(self):
        total = pipeline_timeline([1, 1], [2, 2], [1, 1], overlap=False)
        assert total == 8

    def test_overlap_bounded_by_serial(self):
        up, comp, down = [3.0] * 4, [5.0] * 4, [3.0] * 4
        overlapped = pipeline_timeline(up, comp, down, overlap=True)
        serial = pipeline_timeline(up, comp, down, overlap=False)
        assert overlapped < serial

    def test_overlap_dominated_by_longest_stage(self):
        # With many chunks, total -> max-stage sum + edge effects.
        k = 50
        up, comp, down = [1.0] * k, [4.0] * k, [1.0] * k
        total = pipeline_timeline(up, comp, down)
        assert total == pytest.approx(k * 4.0 + 2.0, rel=0.05)

    def test_single_chunk_no_benefit(self):
        assert pipeline_timeline([1], [2], [3], overlap=True) == 6
        assert pipeline_timeline([1], [2], [3], overlap=False) == 6

    def test_empty(self):
        assert pipeline_timeline([], [], []) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pipeline_timeline([1], [1, 2], [1])

    def test_compute_never_precedes_upload(self):
        # Heavily upload-bound: total >= sum of uploads + last compute+down.
        up, comp, down = [10.0] * 3, [1.0] * 3, [1.0] * 3
        total = pipeline_timeline(up, comp, down)
        assert total >= 30.0 + 1.0 + 1.0


class TestOutOfCoreSorter:
    @pytest.fixture
    def small_device(self):
        """A device that can only hold ~200 arrays of 100 floats."""
        return DeviceSpec(
            name="tiny-ooc",
            sm_count=2,
            cores_per_sm=32,
            global_mem_bytes=200 * 110 * 4 * 4,  # a few chunks worth
            shared_mem_per_block=16 * 1024,
            usable_mem_fraction=1.0,
        )

    def test_sorts_batch_larger_than_device(self, small_device):
        batch = uniform_arrays(1000, 100, seed=6)
        sorter = OutOfCoreSorter(device=small_device)
        res = sorter.sort(batch)
        assert np.array_equal(res.batch, np.sort(batch, axis=1))
        assert res.plan.num_chunks > 1

    def test_overlap_speedup_materializes(self, small_device):
        batch = uniform_arrays(1000, 100, seed=6)
        res = OutOfCoreSorter(device=small_device, overlap=True).sort(batch)
        assert res.overlap_speedup > 1.0
        assert res.modeled_ms < res.modeled_ms_no_overlap

    def test_no_overlap_mode(self, small_device):
        batch = uniform_arrays(500, 100, seed=6)
        res = OutOfCoreSorter(device=small_device, overlap=False).sort(batch)
        assert res.modeled_ms == res.modeled_ms_no_overlap
        assert np.array_equal(res.batch, np.sort(batch, axis=1))

    def test_inplace(self, small_device):
        batch = uniform_arrays(300, 100, seed=6)
        res = OutOfCoreSorter(device=small_device).sort(batch, inplace=True)
        assert res.batch is batch

    def test_per_chunk_stage_counts(self, small_device):
        batch = uniform_arrays(1000, 100, seed=6)
        res = OutOfCoreSorter(device=small_device).sort(batch)
        k = res.plan.num_chunks
        assert len(res.per_chunk["upload_ms"]) == k
        assert len(res.per_chunk["compute_ms"]) == k
        assert len(res.per_chunk["download_ms"]) == k

    def test_rejects_bad_pcie(self):
        with pytest.raises(ValueError):
            OutOfCoreSorter(pcie_gbps=0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            OutOfCoreSorter().sort(np.arange(10.0))

    def test_k40c_capacity_batch_single_chunk(self):
        # A batch under capacity goes through as one chunk even without
        # data big enough to test literally; use the plan.
        plan = plan_chunks(100_000, 1000, device=K40C)
        assert plan.num_chunks == 1

    def test_custom_config_respected(self, small_device):
        batch = uniform_arrays(300, 100, seed=6)
        cfg = SortConfig(bucket_size=10)
        res = OutOfCoreSorter(cfg, device=small_device).sort(batch)
        assert np.array_equal(res.batch, np.sort(batch, axis=1))

    def test_build_timeline_matches_closed_form(self, small_device):
        """The stream-schedule construction must reproduce the closed-form
        makespan the sorter reported."""
        batch = uniform_arrays(1000, 100, seed=6)
        res = OutOfCoreSorter(device=small_device, overlap=True).sort(batch)
        timeline = res.build_timeline()
        assert timeline.makespan() == pytest.approx(res.modeled_ms)
        # Three engines, each with one op per chunk.
        assert len(timeline.ops) == 3 * res.plan.num_chunks

    def test_build_timeline_engine_utilization(self, small_device):
        batch = uniform_arrays(1000, 100, seed=6)
        res = OutOfCoreSorter(device=small_device, overlap=True).sort(batch)
        util = res.build_timeline().utilization()
        # Compute-bound configuration: the compute engine dominates.
        assert util["compute"] > util["h2d"]
        assert 0 < util["compute"] <= 1.0
