"""Failover tests: dead workers are drained, accepted work is never
dropped.

The two-region slab invariant (workers never write the input half) is
what makes these tests pass byte-identically: whatever instant a worker
dies — even mid-result-memcpy — the parent re-dispatches from a
pristine input copy.

Three death modes are covered: hard process death (SIGKILL), silent
stall (SIGSTOP past the liveness deadline), and total fleet death
(parent fallback through the resilience layer).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.fleet import SortFleet
from repro.service import RejectedError

pytestmark = [pytest.mark.fleet, pytest.mark.faultinject]

RNG = np.random.default_rng(99)


def lingering_fleet(**kwargs):
    """A fleet whose workers hold requests in their batcher long enough
    for the test to kill a worker with work demonstrably in flight."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("linger_ms", 400.0)
    kwargs.setdefault("batch_target_rows", 100_000)
    kwargs.setdefault("heartbeat_s", 0.02)
    kwargs.setdefault("liveness_s", 0.5)
    kwargs.setdefault("start_timeout_s", 60.0)
    return SortFleet(**kwargs)


def victim_of(fleet, lane_rows=0):
    """The worker currently holding outstanding requests."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        loaded = [
            worker_id
            for worker_id, (alive, rows, reqs) in
            fleet._router.snapshot().items()
            if alive and reqs > 0
        ]
        if loaded:
            return loaded[0]
        time.sleep(0.01)
    raise AssertionError("no worker ever showed outstanding requests")


@pytest.mark.timeout(90)
class TestWorkerDeath:
    def test_sigkill_drains_all_inflight_to_survivor(self):
        batches = [
            RNG.integers(0, 10_000, size=(4, 32)).astype(np.float32)
            for _ in range(8)
        ]
        with lingering_fleet(workers=2) as fl:
            # One lane -> affinity parks every request on one worker,
            # whose long linger keeps them all in flight.
            futures = [fl.submit(b) for b in batches]
            victim = victim_of(fl)
            assert fl._router.snapshot()[victim][2] == len(batches)
            fl.kill_worker(victim)
            # Every accepted request still completes, byte-identically.
            for batch, future in zip(batches, futures):
                np.testing.assert_array_equal(
                    future.result(timeout=60), np.sort(batch, axis=1)
                )
            stats = fl.stats()
            assert stats.failovers == 1
            assert stats.redispatched == len(batches)
            assert stats.workers_alive == 1
            assert not stats.workers[victim].alive
            assert stats.workers[victim].redispatched == len(batches)
            assert stats.frontend.completed == len(batches)
            assert stats.frontend.failed == 0

    def test_sigstop_stall_trips_liveness_and_drains(self):
        batch = RNG.uniform(0, 1, size=(4, 32)).astype(np.float32)
        with lingering_fleet(workers=2, liveness_s=0.3) as fl:
            # Establish affinity with a quick request, then stall that
            # worker silently: it stays process-alive but stops
            # heartbeating, which must read as death.
            warm = fl.submit(np.zeros((2, 32), dtype=np.float32))
            warm.result(timeout=60)
            victim = fl.stats()
            victim = max(
                victim.workers.values(), key=lambda w: w.completed
            ).worker_id
            pid = fl.stats().workers[victim].pid
            os.kill(pid, signal.SIGSTOP)
            try:
                future = fl.submit(batch)
                np.testing.assert_array_equal(
                    future.result(timeout=60), np.sort(batch, axis=1)
                )
                stats = fl.stats()
                assert stats.failovers >= 1
                assert not stats.workers[victim].alive
            finally:
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass  # liveness already reaped it

    def test_dead_worker_leaves_routing(self):
        with lingering_fleet(workers=2) as fl:
            future = fl.submit(np.zeros((2, 16), dtype=np.float32))
            victim = victim_of(fl)
            fl.kill_worker(victim)
            future.result(timeout=60)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if fl.workers_alive() == [1 - victim]:
                    break
                time.sleep(0.01)
            assert fl.workers_alive() == [1 - victim]


@pytest.mark.timeout(90)
class TestTotalFleetDeath:
    def test_parent_fallback_sorts_when_no_survivors(self):
        batches = [
            RNG.integers(0, 1000, size=(3, 16)).astype(np.float32)
            for _ in range(3)
        ]
        with lingering_fleet(workers=1) as fl:
            futures = [fl.submit(b) for b in batches]
            fl.kill_worker(0)
            for batch, future in zip(batches, futures):
                np.testing.assert_array_equal(
                    future.result(timeout=60), np.sort(batch, axis=1)
                )
            stats = fl.stats()
            assert stats.parent_fallbacks == len(batches)
            assert stats.workers_alive == 0
            assert stats.frontend.completed == len(batches)

    def test_submit_after_total_death_rejects_no_workers(self):
        with lingering_fleet(workers=1) as fl:
            fl.kill_worker(0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not fl.workers_alive():
                    break
                time.sleep(0.01)
            with pytest.raises(RejectedError) as excinfo:
                fl.submit(np.zeros((2, 8), dtype=np.float32))
            assert excinfo.value.reason == "no-workers"
            assert excinfo.value.retry_after > 0
