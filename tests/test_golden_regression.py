"""Golden-checksum regression tests.

SHA-256 digests of deterministic end-to-end outputs, pinned at release
1.0.0.  A digest change means the *bytes* of a result changed — either a
deliberate semantic change (update the constants, document it in
CHANGELOG.md) or an accidental one (a bug these tests exist to catch,
e.g. a stability regression that no order-only assertion would see
because `np.sort` oracles change in lockstep).

The input digests are pinned too, so a generator change is distinguished
from an algorithm change.
"""

import hashlib

import numpy as np
import pytest

from repro.baselines import sta_sort
from repro.core import sort_arrays, sort_pairs, top_k
from repro.workloads import generate_spectra, uniform_arrays

GOLDEN = {
    "batch_in": "233697bfb7c0e9a6",
    "sorted": "ac278588189c2937",
    "sta": "ac278588189c2937",
    "topk32": "79863c8ec13fa705",
    "pairs_keys": "79b7948a73b53748",
    "pairs_vals": "d68d6f05ad7ad99a",
    "spec_mz_in": "11579f083e9698da",
}


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


@pytest.fixture(scope="module")
def batch():
    return uniform_arrays(100, 256, seed=777)


@pytest.fixture(scope="module")
def spectra():
    return generate_spectra(20, 128, seed=777)


class TestGoldenDigests:
    def test_generator_unchanged(self, batch, spectra):
        assert _digest(batch) == GOLDEN["batch_in"]
        assert _digest(spectra.mz) == GOLDEN["spec_mz_in"]

    def test_sorted_output(self, batch):
        assert _digest(sort_arrays(batch)) == GOLDEN["sorted"]

    def test_sta_output_identical_bytes(self, batch):
        assert _digest(sta_sort(batch)) == GOLDEN["sta"]

    def test_sta_and_arraysort_same_digest(self):
        # The two techniques' outputs are byte-identical by construction;
        # recording both guards each against drifting alone.
        assert GOLDEN["sorted"] == GOLDEN["sta"]

    def test_topk_output(self, batch):
        assert _digest(top_k(batch, 32)) == GOLDEN["topk32"]

    def test_pair_sort_outputs(self, spectra):
        result = sort_pairs(spectra.mz, spectra.intensity)
        assert _digest(result.keys) == GOLDEN["pairs_keys"]
        # The values digest pins STABILITY: any reordering of equal keys'
        # payloads changes these bytes while every order assertion passes.
        assert _digest(result.values) == GOLDEN["pairs_vals"]

    def test_digest_helper_sensitivity(self, batch):
        mutated = batch.copy()
        # values reach 2^31, where float32 swallows += 1.0; halve instead
        mutated[0, 0] *= 0.5
        assert _digest(mutated) != _digest(batch)
