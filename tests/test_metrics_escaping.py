"""Property tests for Prometheus label escaping.

Tenant ids are caller-supplied strings; a tenant named ``evil"}\\n`` must
not be able to break out of its ``label="..."`` quoting and forge
metrics lines.  These tests feed hostile strings (quotes, newlines,
backslashes, braces, and arbitrary hypothesis-generated text) through
:func:`repro.service.metrics.escape_label_value` and through *real*
renders of both the service and fleet exposition formats, then assert:

* the escaped value round-trips (a scraper that unescapes per the
  exposition-format spec recovers the original tenant id exactly);
* every rendered line still parses under the exposition-line grammar —
  one series per line, label values properly quoted.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import render_fleet_prometheus
from repro.service.metrics import escape_label_value, render_prometheus

pytestmark = pytest.mark.service

# The exposition format's required escapes: backslash, double-quote,
# line-feed.  Everything else passes through raw.
_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}

# One metrics line whose single label is tenant="...": the value part
# admits any char except raw quote/backslash, or a backslash escape.
_TENANT_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'\{tenant="(?P<value>(?:[^"\\\n]|\\.)*)"\}'
    r" (?P<num>\S+)$"
)

# Text heavy in the characters that actually matter for escaping,
# mixed with arbitrary unicode.
hostile_text = st.one_of(
    st.text(alphabet=st.sampled_from(list('\\"\n{}=,x '))),
    st.text(),
)


def unescape(value: str) -> str:
    """Spec-side inverse of :func:`escape_label_value`."""
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            assert i + 1 < len(value), f"dangling backslash in {value!r}"
            nxt = value[i + 1]
            assert nxt in _UNESCAPE, f"unknown escape \\{nxt} in {value!r}"
            out.append(_UNESCAPE[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestEscapeLabelValue:
    @given(hostile_text)
    @settings(max_examples=300)
    def test_round_trips(self, raw):
        assert unescape(escape_label_value(raw)) == raw

    @given(hostile_text)
    @settings(max_examples=300)
    def test_no_raw_newline_or_quote_survives(self, raw):
        escaped = escape_label_value(raw)
        assert "\n" not in escaped
        # Every quote and backslash is part of a valid escape sequence:
        # the whole string matches the quoted-label-value grammar.
        assert re.fullmatch(r'(?:[^"\\\n]|\\[\\"n])*', escaped)

    @given(st.text(), st.text())
    @settings(max_examples=200)
    def test_injective_on_distinct_inputs(self, a, b):
        # Escaping must not collapse two tenant ids into one series.
        if a != b:
            assert escape_label_value(a) != escape_label_value(b)

    @pytest.mark.parametrize("raw,expected", [
        ('say "hi"', r'say \"hi\"'),
        ("two\nlines", r"two\nlines"),
        ("back\\slash", r"back\\slash"),
        ('\\"\n', r'\\\"\n'),
        ("plain", "plain"),
    ])
    def test_documented_examples(self, raw, expected):
        assert escape_label_value(raw) == expected


def tenant_lines(text: str):
    """Parse every tenant-labelled line; fail on any malformed one."""
    found = []
    # Split on "\n" only: the exposition format is line-oriented on
    # line-feed, and str.splitlines would over-split on exotic
    # boundaries (\x1c..\x1e,  ...) that are legal inside labels.
    for line in text.split("\n"):
        if 'tenant="' not in line:
            continue
        match = _TENANT_LINE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        found.append((match.group("name"), unescape(match.group("value"))))
    return found


class TestServiceRenderWithHostileTenants:
    @given(st.lists(hostile_text, min_size=1, max_size=4, unique=True))
    @settings(max_examples=100)
    def test_tenant_series_parse_and_round_trip(self, tenants):
        metrics = {
            "service": {"submitted": 3},
            "queue": {
                "depth_requests": 0,
                "tenant_backlog_rows": {t: 5 for t in tenants},
            },
            "tenants": {t: {"admitted": 1, "completed": 1} for t in tenants},
        }
        text = render_prometheus(metrics)
        parsed = tenant_lines(text)
        assert parsed, "expected tenant-labelled series"
        recovered = {value for _, value in parsed}
        assert recovered == set(tenants)
        # One series per line: line count is exactly what we emitted.
        assert text.endswith("\n")
        assert all("\n" not in name for name, _ in parsed)


class TestFleetRenderWithHostileTenants:
    @given(st.lists(hostile_text, min_size=1, max_size=4, unique=True))
    @settings(max_examples=100)
    def test_tenant_series_parse_and_round_trip(self, tenants):
        metrics = {
            "fleet": {"submitted": 1, "workers_alive": 2},
            "tenants": {
                t: {"admitted": 1, "completed": 1, "shed": 0}
                for t in tenants
            },
            "workers": {
                "0": {"alive": True, "outstanding_rows": 0,
                      "service": {"completed": 1}},
            },
            "aggregate": {"completed": 1},
        }
        text = render_fleet_prometheus(metrics)
        parsed = tenant_lines(text)
        assert parsed, "expected tenant-labelled series"
        recovered = {value for _, value in parsed}
        assert recovered == set(tenants)

    @given(hostile_text)
    @settings(max_examples=100)
    def test_worker_label_is_escaped_too(self, worker_key):
        metrics = {"workers": {worker_key: {"alive": True}}}
        text = render_fleet_prometheus(metrics)
        for line in text.split("\n"):
            if not line:
                continue
            match = re.match(
                r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
                r'\{worker="((?:[^"\\\n]|\\[\\"n])*)"\} \S+$',
                line,
            )
            assert match, f"unparseable worker line: {line!r}"
            assert unescape(match.group(1)) == worker_key
