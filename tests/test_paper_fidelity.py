"""Executable checks of the paper's formal definitions (Defs. 1-6).

Each definition in the paper's Sections 4-7 is restated here as an
assertion against the implementation, so a refactor that drifts from the
published formalism fails visibly with the definition number in the test
name.
"""

import numpy as np
import pytest

from repro.core import GpuArraySort, SortConfig
from repro.core.bucketing import bucketize
from repro.core.splitters import select_splitters
from repro.workloads import uniform_arrays

CFG = SortConfig()


class TestDefinition1SortedSet:
    """Def. 1: I' is a set of sorted arrays, A'_i = {a1 <= ... <= an}."""

    def test_every_output_row_non_decreasing(self):
        batch = uniform_arrays(20, 500, seed=61)
        out = GpuArraySort().sort(batch).batch
        assert np.all(out[:, 1:] >= out[:, :-1])

    def test_output_is_same_multiset_per_row(self):
        batch = uniform_arrays(20, 500, seed=61)
        out = GpuArraySort().sort(batch).batch
        assert np.array_equal(np.sort(out, axis=1), np.sort(batch, axis=1))


class TestDefinition2Buckets:
    """Def. 2: B_i = {b1..bp} with p = floor(n / 20)."""

    @pytest.mark.parametrize("n,expected_p", [
        (1000, 50), (2000, 100), (3000, 150), (4000, 200), (999, 49),
        (20, 1), (39, 1), (40, 2),
    ])
    def test_bucket_count(self, n, expected_p):
        assert CFG.num_buckets(n) == expected_p


class TestDefinition3Splitters:
    """Def. 3: S has N entries; each s_i holds q = p - 1 splitters."""

    def test_splitter_matrix_shape(self):
        batch = uniform_arrays(7, 1000, seed=62)
        res = select_splitters(batch, CFG)
        assert res.splitters.shape == (7, CFG.num_buckets(1000) - 1)

    def test_splitters_sorted_within_each_s_i(self):
        batch = uniform_arrays(7, 1000, seed=62)
        res = select_splitters(batch, CFG)
        assert np.all(np.diff(res.splitters, axis=1) >= 0)


class TestDefinition4BucketSizes:
    """Def. 4: Z has N entries; z_i[j] is the size of bucket j of A_i."""

    def test_sizes_shape_and_total(self):
        batch = uniform_arrays(5, 1000, seed=63)
        spl = select_splitters(batch, CFG)
        res = bucketize(batch.copy(), spl.splitters, CFG)
        p = CFG.num_buckets(1000)
        assert res.sizes.shape == (5, p)
        assert np.all(res.sizes.sum(axis=1) == 1000)

    def test_sizes_match_actual_bucket_populations(self):
        batch = uniform_arrays(3, 400, seed=63)
        spl = select_splitters(batch, CFG)
        res = bucketize(batch.copy(), spl.splitters, CFG)
        for i in range(3):
            lo = np.concatenate(([-np.inf], spl.splitters[i]))
            hi = np.concatenate((spl.splitters[i], [np.inf]))
            for j in range(res.num_buckets):
                inside = np.sum((batch[i] >= lo[j]) & (batch[i] < hi[j]))
                assert inside == res.sizes[i, j], (i, j)


class TestDefinition5SplitterPairs:
    """Def. 5: thread tid owns the pair (sp[tid], sp[tid+1]) after the
    two sentinel splitters are planted — realized in the kernel."""

    def test_sentinels_and_pairs_in_kernel(self, rng):
        from repro.core.kernels import run_arraysort_on_device
        from repro.gpusim import GpuDevice

        # If pair ownership or the sentinels were wrong, boundary
        # elements (== some splitter, == row min, == row max) would be
        # dropped or duplicated; torture exactly those.
        gpu = GpuDevice.micro()
        base = rng.integers(0, 6, (3, 80)).astype(np.float32)  # heavy ties
        out, _ = run_arraysort_on_device(gpu, base)
        assert np.array_equal(out, np.sort(base, axis=1))


class TestDefinition6Tags:
    """Def. 6: STA's tag array T mirrors I with t = i for every element
    of array i."""

    def test_tag_construction(self):
        from repro.baselines.sta import StaSorter

        batch = uniform_arrays(4, 50, seed=64)
        result = StaSorter().sort(batch)
        # Reconstructible: after the final stable sort by tags, row i of
        # the output is array i's sorted contents.
        assert np.array_equal(result.batch, np.sort(batch, axis=1))

    def test_device_tagging_kernel_values(self, rng):
        from repro.baselines.sta_kernels import tagging_kernel
        from repro.gpusim import GpuDevice

        gpu = GpuDevice.micro()
        N, n = 3, 40
        d_tags = gpu.memory.alloc(N * n, np.uint32)
        gpu.launch(tagging_kernel, grid=2, block=32, args=(d_tags, N, n))
        expected = np.repeat(np.arange(N, dtype=np.uint32), n)
        assert np.array_equal(d_tags.copy_to_host(), expected)
        gpu.memory.free(d_tags)


class TestSection51Constants:
    """§5.1's empirical constants, as shipped defaults."""

    def test_bucket_floor_twenty(self):
        assert CFG.bucket_size == 20

    def test_ten_percent_regular_sampling(self):
        assert CFG.sampling_rate == pytest.approx(0.10)

    def test_sampling_is_regular_not_random(self):
        from repro.core.splitters import regular_sample_indices

        idx = regular_sample_indices(1000, CFG)
        strides = np.diff(idx)
        assert len(set(strides.tolist())) == 1  # constant stride


class TestSection4SharedMemoryPremise:
    """§4: up to 4000 peaks fit in shared memory of CC >= 2.0 devices."""

    def test_4000_floats_fit_every_catalog_device_48k(self):
        from repro.gpusim.device import DEVICE_CATALOG

        for key, spec in DEVICE_CATALOG.items():
            if key == "micro":
                continue
            assert 4000 * 4 <= spec.shared_mem_per_block, key
