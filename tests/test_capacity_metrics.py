"""Capacity counters on the service metrics surface (JSON + Prometheus)."""

import json

import numpy as np
import pytest

from repro.outofcore.capacity import CapacitySorter, CapacityStats
from repro.service import SortService
from repro.service.metrics import collect_metrics, render_prometheus

pytestmark = [pytest.mark.capacity, pytest.mark.service]


@pytest.fixture()
def served():
    with SortService(batch_target_rows=4, linger_ms=0.5) as svc:
        rng = np.random.default_rng(9)
        svc.submit(rng.uniform(size=(2, 16))).result(timeout=10)
        yield svc


def capacity_run(tmp_path):
    batch = np.random.default_rng(10).random((60, 8))
    sorter = CapacitySorter("1M", max_chunk_rows=20)
    return sorter.run(batch, spill_dir=tmp_path / "spill")


class TestCollectMetrics:
    def test_no_capacity_block_by_default(self, served):
        assert "capacity" not in collect_metrics(served)

    def test_capacity_block_from_result(self, served, tmp_path):
        result = capacity_run(tmp_path)
        metrics = collect_metrics(served, capacity=result)
        block = metrics["capacity"]
        assert block["chunks_committed"] == 3
        assert block["chunks_resumed"] == 0
        assert block["spill_bytes_written"] == 60 * 8 * 8
        assert block["rows_sorted"] == 60
        assert block["shrink_events"] == 0
        json.dumps(metrics)  # JSON-ready end to end

    def test_capacity_block_from_bare_stats(self, served):
        stats = CapacityStats(chunks_committed=5, chunks_resumed=2,
                              spill_bytes_written=4096)
        block = collect_metrics(served, capacity=stats)["capacity"]
        assert block["chunks_committed"] == 5
        assert block["chunks_resumed"] == 2
        assert block["spill_bytes_written"] == 4096

    def test_capacity_block_from_sorter(self, served, tmp_path):
        batch = np.random.default_rng(11).random((40, 8))
        sorter = CapacitySorter("1M", max_chunk_rows=10)
        sorter.run(batch, spill_dir=tmp_path / "spill")
        block = collect_metrics(served, capacity=sorter)["capacity"]
        assert block["chunks_committed"] == 4


class TestRenderPrometheus:
    def test_capacity_series_with_total_suffix(self, served, tmp_path):
        result = capacity_run(tmp_path)
        text = render_prometheus(collect_metrics(served, capacity=result))
        lines = text.splitlines()
        assert "repro_service_capacity_chunks_committed_total 3" in lines
        assert "repro_service_capacity_chunks_resumed_total 0" in lines
        expected_bytes = 60 * 8 * 8
        assert (
            f"repro_service_capacity_spill_bytes_written_total {expected_bytes}"
            in lines
        )
        # Non-monotonic fields render as plain gauges (no _total).
        assert any(
            line.startswith("repro_service_capacity_shrink_events ")
            for line in lines
        )
        assert not any("shrink_events_total" in line for line in lines)
        # Exposition stays well-formed: every line is "name value".
        for line in lines:
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name

    def test_absent_capacity_renders_no_series(self, served):
        text = render_prometheus(collect_metrics(served))
        assert "_capacity_" not in text
