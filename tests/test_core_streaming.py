"""Tests for the streaming batch sorter."""

import numpy as np
import pytest

from repro.core.streaming import StreamingSorter
from repro.gpusim.device import MICRO
from repro.workloads import uniform_arrays


class TestStreamingSorter:
    def test_batches_emitted_and_sorted(self):
        sorter = StreamingSorter(100, batch_arrays=50)
        data = uniform_arrays(125, 100, seed=1)
        for row in data:
            sorter.push(row)
        sorter.flush()
        assert sorter.stats.batches_out == 3  # 50 + 50 + 25
        assert sorter.stats.arrays_out == 125
        recombined = np.vstack(sorter.results)
        assert np.array_equal(recombined, np.sort(data, axis=1))

    def test_slab_pushes(self):
        sorter = StreamingSorter(60, batch_arrays=40)
        data = uniform_arrays(100, 60, seed=2)
        emitted = sorter.push_slab(data)
        assert emitted == 2
        assert sorter.stats.arrays_pending == 20
        sorter.flush()
        assert sorter.stats.arrays_pending == 0

    def test_slab_larger_than_batch(self):
        sorter = StreamingSorter(30, batch_arrays=10)
        data = uniform_arrays(35, 30, seed=3)
        emitted = sorter.push_slab(data)
        assert emitted == 3
        sorter.flush()
        assert np.array_equal(np.vstack(sorter.results), np.sort(data, axis=1))

    def test_callback_mode(self):
        received = []
        sorter = StreamingSorter(40, batch_arrays=20,
                                 on_batch=lambda b: received.append(b.copy()))
        data = uniform_arrays(45, 40, seed=4)
        sorter.push_slab(data)
        sorter.flush()
        assert len(received) == 3
        assert sorter.results == []
        assert np.array_equal(np.vstack(received), np.sort(data, axis=1))

    def test_flush_empty_is_noop(self):
        sorter = StreamingSorter(10, batch_arrays=5)
        assert sorter.flush() == 0
        assert sorter.stats.batches_out == 0

    def test_push_after_flush_rejected(self):
        sorter = StreamingSorter(10, batch_arrays=5)
        sorter.flush()
        with pytest.raises(RuntimeError):
            sorter.push(np.zeros(10))

    def test_wrong_array_size_rejected(self):
        sorter = StreamingSorter(10, batch_arrays=5)
        with pytest.raises(ValueError):
            sorter.push(np.zeros(11))

    def test_auto_batch_size_from_device(self):
        sorter = StreamingSorter(100, device=MICRO)
        # MICRO usable memory halved for double buffering, / bytes-per-array
        assert 1 <= sorter.batch_arrays < 100_000

    def test_stats_accounting(self):
        sorter = StreamingSorter(50, batch_arrays=25)
        data = uniform_arrays(60, 50, seed=5)
        sorter.push_slab(data)
        sorter.flush()
        s = sorter.stats
        assert s.arrays_in == 60
        assert s.arrays_out == 60
        assert s.batches_out == 3
        assert s.wall_seconds_sorting > 0
        assert s.modeled_device_ms > 0
        assert s.modeled_throughput_arrays_per_s > 0

    def test_staging_reuse_does_not_corrupt_results(self):
        """Emitted batches must be copies, not views of the staging
        buffer that later pushes overwrite."""
        sorter = StreamingSorter(20, batch_arrays=10)
        first = uniform_arrays(10, 20, seed=6)
        second = uniform_arrays(10, 20, seed=7)
        sorter.push_slab(first)
        snapshot = sorter.results[0].copy()
        sorter.push_slab(second)
        sorter.flush()
        assert np.array_equal(sorter.results[0], snapshot)

    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ValueError):
            StreamingSorter(0)
        with pytest.raises(ValueError):
            StreamingSorter(10, batch_arrays=0)

    def test_spectra_acquisition_scenario(self):
        """End-to-end: spectra arriving in acquisition slabs."""
        from repro.workloads import generate_spectra

        spectra = generate_spectra(80, 200, seed=8)
        out_batches = []
        sorter = StreamingSorter(
            200, batch_arrays=32, on_batch=lambda b: out_batches.append(b)
        )
        for start in range(0, 80, 16):  # instrument flushes 16 at a time
            sorter.push_slab(spectra.intensity[start : start + 16])
        sorter.flush()
        combined = np.vstack(out_batches)
        assert np.array_equal(combined, np.sort(spectra.intensity, axis=1))
