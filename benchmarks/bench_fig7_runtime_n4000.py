"""Fig. 7 — runtime vs number of arrays, array size n = 4000.

The paper's N axis stops at 1.5*10^5 here (the biggest arrays); the
common axis helper handles that.
"""

from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort
from repro.workloads import uniform_arrays

from _runtime_common import report_figure

N_ARRAY = 4000
N_WALL = 500


class TestFig7:
    def test_fig7_series_and_claims(self):
        report_figure("Fig 7", N_ARRAY)

    def test_wall_gpu_arraysort(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=7)
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))

    def test_wall_sta(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=7)
        sorter = StaSorter()
        benchmark(lambda: sorter.sort(batch))
