#!/usr/bin/env python
"""Out-of-core capacity harness: sorting past the memory budget.

Standalone (no pytest-benchmark): drives the capacity tier
(:class:`repro.outofcore.CapacitySorter`) over a budget x batch-size
grid and emits ``BENCH_capacity.json`` (schema ``bench-capacity/v1``) —
the artifact ``make capacity-gate`` checks.

Two cell kinds:

* **oversubscription** — write a file-backed input batch several times
  larger than the declared memory budget, sort it through the spill
  path, and verify **byte-identity**: every committed chunk is compared
  against ``np.sort`` of the corresponding input window (chunk-sized
  reads, so verification itself stays in budget).  Reported
  ``rows_per_gb`` is the budget model's max sortable rows per GB of
  budget at that array size — the paper's Table 1 capacity question
  asked of the host.
* **kill-resume** — a child process (this script, ``--child-run``)
  starts the same spill run with a per-chunk delay; the parent polls
  the manifest until some chunks are durably committed, SIGKILLs the
  child mid-run, then reruns it with ``--resume``.  The gate requires
  the resumed run to complete from the checkpoint with **zero
  re-emitted chunks** (no committed index is ever rewritten) and a
  byte-identical final result.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_capacity.py --grid smoke
    PYTHONPATH=src python benchmarks/bench_capacity.py --grid load --gate
    PYTHONPATH=src python benchmarks/bench_capacity.py --grid load --out BENCH_capacity.json
    PYTHONPATH=src python benchmarks/bench_capacity.py --check-gate BENCH_capacity.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Runnable straight from a checkout: python benchmarks/bench_capacity.py
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.outofcore import (
    BatchFile,
    CapacitySorter,
    parse_memory_size,
    plan_budget,
    write_batch_file,
)

SCHEMA = "bench-capacity/v1"

#: The gate's oversubscription floor: the committed artifact must show a
#: batch at least this many times larger than its budget sorted
#: byte-identically.
GATE_MIN_RATIO = 4.0

KILL_CELL = "kill-resume"

# Oversubscription cells: (name, budget, rows, row_len, dtype).
# Budgets use binary units; every cell's batch is >= 4x its budget so
# any of them can carry the gate (the gate picks the best).
GRIDS = {
    "smoke": [
        ("smoke-4x", "256K", 2200, 64, "float64"),
    ],
    "load": [
        ("oversub-n1000-8M", "8M", 4500, 1000, "float64"),
        ("oversub-n1000-16M", "16M", 9000, 1000, "float64"),
        ("oversub-n256-4M", "4M", 9000, 256, "float64"),
        ("oversub-n256-f32-2M", "2M", 9000, 256, "float32"),
    ],
}

# Kill-resume cell parameters (shared by parent and child).
KILL_BUDGET = "64K"
KILL_ROWS = 600
KILL_COLS = 64
KILL_DELAY_MS = 60.0


def _input_block(seed: int, row_len: int, dtype) -> "callable":
    """Deterministic block generator: seeded per block, bounded memory."""

    def block(block_index: int, start: int, take: int) -> np.ndarray:
        rng = np.random.default_rng([seed, block_index])
        return rng.uniform(0.0, 2**31 - 1, (take, row_len)).astype(dtype)

    return block


def _write_input(path: Path, *, rows: int, row_len: int, dtype,
                 seed: int) -> BatchFile:
    dtype = np.dtype(dtype)
    expected = rows * row_len * dtype.itemsize
    if path.exists() and path.stat().st_size >= expected:
        return BatchFile(path=path, rows=rows, row_len=row_len, dtype=dtype)
    return write_batch_file(
        path, _input_block(seed, row_len, dtype),
        rows=rows, row_len=row_len, dtype=dtype,
    )


def _verify_chunks(store, source: BatchFile) -> bool:
    """Chunkwise byte-identity against ``np.sort`` of the input window."""
    for record in store.committed:
        reference = source.read(record.start_row,
                                record.start_row + record.rows)
        reference.sort(axis=1)
        chunk = store.open_chunk(record, verify=True)
        if not np.array_equal(np.asarray(chunk), reference):
            return False
    return True


def run_oversub_cell(name, budget, rows, row_len, dtype, *, seed,
                     work_dir: Path) -> dict:
    budget_bytes = parse_memory_size(budget)
    cell_dir = work_dir / name
    cell_dir.mkdir(parents=True, exist_ok=True)
    source = _write_input(
        cell_dir / "input.bin", rows=rows, row_len=row_len, dtype=dtype,
        seed=seed,
    )
    sorter = CapacitySorter(budget_bytes)
    plan = sorter.plan(rows, row_len, np.dtype(dtype))
    t0 = time.perf_counter()
    result = sorter.run(source, spill_dir=cell_dir / "spill")
    wall = time.perf_counter() - t0
    byte_identical = _verify_chunks(result.store, source)
    completed = result.store.complete and result.rows == rows
    return {
        "name": name,
        "kind": "oversubscription",
        "budget": budget,
        "budget_bytes": budget_bytes,
        "rows": rows,
        "row_len": row_len,
        "dtype": str(np.dtype(dtype)),
        "total_bytes": plan.total_bytes,
        "oversubscription": plan.oversubscription,
        "chunk_rows": plan.chunk_rows,
        "num_chunks": plan.num_chunks,
        "rows_per_gb": int(plan.chunk_rows * (1024**3 / budget_bytes)),
        "completed": bool(completed),
        "verified": True,
        "byte_identical": bool(byte_identical),
        "wall_seconds": wall,
        "rows_per_s": rows / max(wall, 1e-9),
        "stats": result.stats.as_dict(),
    }


# -- kill-resume: child side ---------------------------------------------
def run_child(args) -> int:
    """One spill run with a per-chunk delay; stats JSON on the last line."""
    run_dir = Path(args.child_run)
    run_dir.mkdir(parents=True, exist_ok=True)
    dtype = np.dtype("float64")
    source = _write_input(
        run_dir / "input.bin", rows=args.child_rows, row_len=args.child_cols,
        dtype=dtype, seed=args.seed,
    )

    def pace(info):
        if args.child_delay_ms > 0:
            time.sleep(args.child_delay_ms / 1e3)

    sorter = CapacitySorter(args.child_budget, progress=pace)
    result = sorter.run(
        source, spill_dir=run_dir / "spill", resume=args.child_resume
    )
    print("CHILD_STATS " + json.dumps(result.stats.as_dict()), flush=True)
    return 0


# -- kill-resume: parent side --------------------------------------------
def _manifest_chunks(spill_dir: Path) -> list:
    manifest = spill_dir / "manifest.json"
    if not manifest.exists():
        return []
    try:
        payload = json.loads(manifest.read_text())
    except ValueError:
        return []  # torn read mid-rewrite; poll again
    chunks = payload.get("chunks", [])
    return chunks if isinstance(chunks, list) else []


def _child_argv(run_dir: Path, *, seed: int, delay_ms: float,
                resume: bool) -> list:
    argv = [
        sys.executable, os.fspath(Path(__file__).resolve()),
        "--child-run", os.fspath(run_dir),
        "--child-budget", KILL_BUDGET,
        "--child-rows", str(KILL_ROWS),
        "--child-cols", str(KILL_COLS),
        "--child-delay-ms", str(delay_ms),
        "--seed", str(seed),
    ]
    if resume:
        argv.append("--child-resume")
    return argv


def run_kill_resume_cell(*, seed, work_dir: Path, timeout_s: float = 90.0) -> dict:
    run_dir = work_dir / KILL_CELL
    spill_dir = run_dir / "spill"
    plan = plan_budget(KILL_ROWS, KILL_COLS, "float64", KILL_BUDGET)

    # First run: paced so the parent can observe committed chunks and
    # kill mid-run with work both behind and ahead of the manifest.
    child = subprocess.Popen(
        _child_argv(run_dir, seed=seed, delay_ms=KILL_DELAY_MS, resume=False),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout_s
    pre_kill = []
    while time.monotonic() < deadline:
        chunks = _manifest_chunks(spill_dir)
        if 2 <= len(chunks) < plan.num_chunks:
            pre_kill = chunks
            break
        if child.poll() is not None:
            break  # finished before we could kill: cell fails the gate
        time.sleep(0.01)
    killed = child.poll() is None and bool(pre_kill)
    if killed:
        child.send_signal(signal.SIGKILL)
    child.wait(timeout=timeout_s)
    pre_kill_indices = sorted(int(c["index"]) for c in pre_kill)

    # Resume run: no pacing; must finish from the checkpoint.
    t0 = time.perf_counter()
    resumed = subprocess.run(
        _child_argv(run_dir, seed=seed, delay_ms=0.0, resume=True),
        capture_output=True, text=True, timeout=timeout_s,
    )
    resume_wall = time.perf_counter() - t0
    stats = {}
    for line in resumed.stdout.splitlines():
        if line.startswith("CHILD_STATS "):
            stats = json.loads(line[len("CHILD_STATS "):])

    final = _manifest_chunks(spill_dir)
    final_indices = sorted(int(c["index"]) for c in final)
    rows_final = sum(int(c["rows"]) for c in final)
    # Zero re-emission: every pre-kill index survives untouched
    # (recommit counter zero) and the resumed run only appended new,
    # strictly higher indices.
    new_indices = [i for i in final_indices if i not in set(pre_kill_indices)]
    overlap = (
        min(new_indices) <= max(pre_kill_indices)
        if new_indices and pre_kill_indices else False
    )
    reemitted = int(stats.get("chunks_recommitted", -1))
    if reemitted < 0 or overlap:
        reemitted = max(reemitted, 0) + int(overlap)

    byte_identical = False
    completed = (
        resumed.returncode == 0
        and rows_final == KILL_ROWS
        and final_indices == list(range(len(final_indices)))
    )
    if completed:
        from repro.outofcore import SpillStore

        store = SpillStore(
            spill_dir, array_size=KILL_COLS, dtype="float64", resume=True
        )
        source = BatchFile(
            path=run_dir / "input.bin", rows=KILL_ROWS, row_len=KILL_COLS,
            dtype="float64",
        )
        byte_identical = _verify_chunks(store, source)

    return {
        "name": KILL_CELL,
        "kind": "kill-resume",
        "budget": KILL_BUDGET,
        "budget_bytes": parse_memory_size(KILL_BUDGET),
        "rows": KILL_ROWS,
        "row_len": KILL_COLS,
        "dtype": "float64",
        "num_chunks": plan.num_chunks,
        "killed_mid_run": bool(killed),
        "pre_kill_chunks": len(pre_kill_indices),
        "chunks_resumed": int(stats.get("chunks_resumed", 0)),
        "resumed_committed": int(stats.get("chunks_committed", 0)),
        "reemitted_chunks": reemitted,
        "completed": bool(completed),
        "byte_identical": bool(byte_identical),
        "resume_wall_seconds": resume_wall,
        "resume_stats": stats,
    }


def run_grid(grid: str, *, seed: int, work_dir: Path) -> dict:
    results = []
    for name, budget, rows, row_len, dtype in GRIDS[grid]:
        cell = run_oversub_cell(
            name, budget, rows, row_len, dtype, seed=seed, work_dir=work_dir
        )
        results.append(cell)
        print(
            f"  {name:20s} budget={budget:>5s}"
            f"  {cell['oversubscription']:5.1f}x over"
            f"  {cell['num_chunks']:4d} chunks"
            f"  {cell['rows_per_s']:9.0f} rows/s"
            f"  byte_identical={cell['byte_identical']}",
            flush=True,
        )
    kill = run_kill_resume_cell(seed=seed, work_dir=work_dir)
    results.append(kill)
    print(
        f"  {KILL_CELL:20s} killed={kill['killed_mid_run']}"
        f" pre_kill={kill['pre_kill_chunks']}"
        f" resumed={kill['chunks_resumed']}"
        f" reemitted={kill['reemitted_chunks']}"
        f" byte_identical={kill['byte_identical']}",
        flush=True,
    )
    return {
        "schema": SCHEMA,
        "grid": grid,
        "seed": seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }


def check_schema(report: dict) -> list:
    """Return a list of schema violations (empty == valid)."""
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        results = []
    oversub_required = {
        "name": str,
        "budget_bytes": int,
        "rows": int,
        "row_len": int,
        "total_bytes": int,
        "oversubscription": (int, float),
        "chunk_rows": int,
        "num_chunks": int,
        "rows_per_gb": int,
        "completed": bool,
        "byte_identical": bool,
        "stats": dict,
    }
    kill_required = {
        "name": str,
        "budget_bytes": int,
        "rows": int,
        "killed_mid_run": bool,
        "pre_kill_chunks": int,
        "chunks_resumed": int,
        "reemitted_chunks": int,
        "completed": bool,
        "byte_identical": bool,
    }
    for i, cell in enumerate(results):
        kind = cell.get("kind")
        if kind == "oversubscription":
            required = oversub_required
        elif kind == "kill-resume":
            required = kill_required
        else:
            errors.append(
                f"results[{i}].kind must be 'oversubscription' or "
                f"'kill-resume', got {kind!r}"
            )
            continue
        for key, typ in required.items():
            if not isinstance(cell.get(key), typ):
                errors.append(f"results[{i}].{key} missing or not {typ}")
    if "gate" in report:
        gate = report["gate"]
        if not isinstance(gate, dict) or not isinstance(gate.get("passed"), bool):
            errors.append("gate must be a dict with a boolean 'passed'")
    return errors


def apply_gate(report: dict, min_ratio: float = GATE_MIN_RATIO) -> bool:
    """Gate: a >= ``min_ratio`` oversubscribed byte-identical sort, and a
    kill-resume cell completing from checkpoint with zero re-emits."""
    failures = []
    cells = report["results"]

    oversub = [
        c for c in cells
        if c.get("kind") == "oversubscription"
        and c.get("completed") and c.get("byte_identical")
        and c.get("oversubscription", 0) >= min_ratio
    ]
    if not oversub:
        failures.append(
            f"no completed byte-identical oversubscription cell at >= "
            f"{min_ratio}x budget"
        )

    kill = next((c for c in cells if c.get("kind") == "kill-resume"), None)
    if kill is None:
        failures.append("kill-resume cell missing")
    else:
        if not kill.get("killed_mid_run"):
            failures.append(
                "kill-resume: child was not killed mid-run (no committed "
                "chunks observed before exit)"
            )
        if not kill.get("completed"):
            failures.append("kill-resume: resumed run did not complete")
        if kill.get("chunks_resumed", 0) < 1:
            failures.append("kill-resume: resumed run adopted no chunks")
        if kill.get("reemitted_chunks", 1) != 0:
            failures.append(
                f"kill-resume: {kill.get('reemitted_chunks')} committed "
                "chunk(s) re-emitted after resume"
            )
        if not kill.get("byte_identical"):
            failures.append("kill-resume: final output not byte-identical")

    best = max(
        (c.get("oversubscription", 0) for c in cells
         if c.get("kind") == "oversubscription"),
        default=0,
    )
    report["gate"] = {
        "min_oversubscription": min_ratio,
        "best_oversubscription": best,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", choices=sorted(GRIDS), default="load")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--work-dir", type=Path, default=None,
        help="scratch directory for inputs/spill (default: a temp dir)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless the oversubscription and kill-resume gates pass",
    )
    parser.add_argument("--min-ratio", type=float, default=GATE_MIN_RATIO)
    parser.add_argument(
        "--check-schema", type=Path, metavar="JSON",
        help="validate an existing report file and exit (no benchmarking)",
    )
    parser.add_argument(
        "--check-gate", type=Path, metavar="JSON",
        help="re-evaluate the gate on an existing report file and exit "
             "(no benchmarking)",
    )
    # Child-mode flags (internal: the kill-resume cell's subprocess).
    parser.add_argument("--child-run", type=Path, help=argparse.SUPPRESS)
    parser.add_argument("--child-budget", default=KILL_BUDGET,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-rows", type=int, default=KILL_ROWS,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-cols", type=int, default=KILL_COLS,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-delay-ms", type=float, default=0.0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-resume", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child_run is not None:
        return run_child(args)

    if args.check_schema is not None:
        report = json.loads(args.check_schema.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        print(f"{args.check_schema}: " + ("INVALID" if errors else "ok"))
        return 1 if errors else 0

    if args.check_gate is not None:
        report = json.loads(args.check_gate.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        if errors:
            print(f"{args.check_gate}: INVALID")
            return 1
        ok = apply_gate(report, args.min_ratio)
        for failure in report["gate"]["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(f"{args.check_gate}: gate " + ("passed" if ok else "FAILED"))
        return 0 if ok else 1

    print(f"bench_capacity grid={args.grid} seed={args.seed}", flush=True)
    if args.work_dir is not None:
        args.work_dir.mkdir(parents=True, exist_ok=True)
        report = run_grid(args.grid, seed=args.seed, work_dir=args.work_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="bench_capacity_") as tmp:
            report = run_grid(args.grid, seed=args.seed, work_dir=Path(tmp))
    ok = apply_gate(report, args.min_ratio) if args.gate else True

    errors = check_schema(report)
    if errors:  # self-check: the emitter must satisfy its own schema
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.gate:
        gate = report["gate"]
        for failure in gate["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(
            f"gate: {'passed' if gate['passed'] else 'FAILED'} "
            f"(best oversubscription {gate['best_oversubscription']:.1f}x)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
