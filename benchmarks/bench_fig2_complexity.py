"""Fig. 2 — measured time vs array size n against the theoretical curve.

Paper setup: N fixed at 50 000, n swept; the claim is that measured times
"follow the same trend" as the theoretical complexity (Eq. 2).  We
reproduce it twice:

* wall-clock: the vectorized engine at N = 500 (the same n sweep; the
  N axis only scales the curve), fitted against Eq. 2 — R^2 printed;
* model-scale: the calibrated perf model at the paper's N = 50 000,
  fitted the same way.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.complexity import fit_scale
from repro.analysis.perfmodel import model_arraysort_ms
from repro.analysis.reporting import ascii_plot, render_series
from repro.core import GpuArraySort
from repro.gpusim.device import K40C
from repro.workloads import uniform_arrays

N_WALL = 500
SIZES = list(range(200, 2001, 200))


def _wall_time_ms(batch: np.ndarray) -> float:
    sorter = GpuArraySort()
    t0 = time.perf_counter()
    sorter.sort(batch)
    return (time.perf_counter() - t0) * 1e3


class TestFig2:
    def test_fig2_theory_overlay(self):
        """Regenerates Fig. 2's two curves and asserts shape agreement."""
        wall = []
        for n in SIZES:
            batch = uniform_arrays(N_WALL, n, seed=n)
            wall.append(_wall_time_ms(batch))
        fit_wall = fit_scale(SIZES, wall)

        modeled = [model_arraysort_ms(K40C, 50_000, n) for n in SIZES]
        fit_model = fit_scale(SIZES, modeled)

        print()
        print(render_series(
            "n", SIZES,
            {
                "wall_ms(N=500)": wall,
                "wall_theory": list(fit_wall.predicted),
                "model_ms(N=50k)": modeled,
                "model_theory": list(fit_model.predicted),
            },
            title=(
                "Fig 2 — time vs array size; theory = Eq.2 fit "
                f"(wall R^2={fit_wall.r_squared:.3f}, "
                f"model R^2={fit_model.r_squared:.3f})"
            ),
        ))
        print(ascii_plot(SIZES, {"measured": modeled,
                                 "theory": list(fit_model.predicted)},
                         title="model-scale overlay (paper Fig. 2 analog)"))
        # The paper's claim: same trend. Model fit is exact by
        # construction of similar forms; wall-clock fit must correlate.
        assert fit_model.r_squared > 0.97
        assert fit_wall.r_squared > 0.80

    @pytest.mark.parametrize("n", [500, 1000, 2000])
    def test_wall_clock_point(self, benchmark, n):
        """pytest-benchmark wall measurement for selected Fig. 2 points."""
        batch = uniform_arrays(N_WALL, n, seed=n)
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))
