"""Merge-family comparison (paper §2): bins vs m-way merge, measured.

The paper's §2 justifies sample sort over the merge approach by the
missing merge stage.  With both families implemented, this bench puts
numbers on the argument:

* wall clock: GPU-ArraySort vs batch merge sort vs bitonic vs odd-even
  on identical data;
* simulator: barrier counts and shared-traffic of the merge kernel vs
  GPU-ArraySort's phase 3 (the no-merge dividend).
"""

import time

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.baselines import (
    bitonic_sort_batch,
    merge_sort_batch,
    odd_even_sort_batch,
)
from repro.core import GpuArraySort
from repro.workloads import uniform_arrays

N_ROWS, N_COLS = 500, 512


class TestMergeFamilyComparison:
    def test_family_comparison_table(self):
        batch = uniform_arrays(N_ROWS, N_COLS, seed=23)
        oracle = np.sort(batch, axis=1)
        sorter = GpuArraySort()

        competitors = {
            "GPU-ArraySort (bins)": lambda: sorter.sort(batch).batch,
            "batch merge sort": lambda: merge_sort_batch(batch),
            "bitonic network": lambda: bitonic_sort_batch(batch),
            "odd-even transposition": lambda: odd_even_sort_batch(batch),
        }
        rows = []
        for name, fn in competitors.items():
            t0 = time.perf_counter()
            out = fn()
            ms = (time.perf_counter() - t0) * 1e3
            assert np.array_equal(out, oracle), name
            rows.append([name, f"{ms:.1f}"])
        print()
        print(render_table(
            ["technique", "wall ms"],
            rows,
            title=f"Decomposition families, {N_ROWS} x {N_COLS} uniform",
        ))

    def test_no_merge_stage_dividend_on_simulator(self, rng):
        """§2's claim in kernel metrics: merge pays log(n) barrier
        rounds and log(n) full sweeps; phase 3 pays neither."""
        from repro.baselines.mergesort import run_merge_sort_on_device
        from repro.core.kernels import run_arraysort_on_device
        from repro.gpusim import GpuDevice

        gpu = GpuDevice.micro()
        batch = rng.uniform(0, 1e6, (2, 128)).astype(np.float32)
        _, merge_rep = run_merge_sort_on_device(gpu, batch)
        _, gas = run_arraysort_on_device(gpu, batch)
        phase3 = gas.launches[2]
        merge_shared = sum(w.shared_accesses for w in merge_rep.warp_stats)
        phase3_shared = sum(w.shared_accesses for w in phase3.warp_stats)
        # log2(128) = 7 full sweeps through shared memory vs phase 3's
        # handful of metadata reads: an order of magnitude apart.
        assert merge_shared > 5 * phase3_shared
        print(f"\nshared accesses: merge {merge_shared} vs "
              f"phase3 {phase3_shared}")

    @pytest.mark.parametrize("technique", ["arraysort", "merge"])
    def test_wall(self, benchmark, technique):
        batch = uniform_arrays(200, 512, seed=24)
        if technique == "arraysort":
            sorter = GpuArraySort()
            benchmark(lambda: sorter.sort(batch))
        else:
            benchmark(lambda: merge_sort_batch(batch))
