"""Shared helpers for the benchmark harness.

Every paper artifact gets its own module:

====================  =======================================to==========
bench_fig2_complexity  Fig. 2 — time vs array size + theory overlay
bench_fig4..7_runtime  Figs. 4-7 — time vs N, GPU-ArraySort vs STA
bench_table1_capacity  Table 1 — max arrays per technique
bench_ablations        our design-choice sweeps (bucket size, sampling
                       rate, presort redundancy, out-of-core overlap)
bench_micro            substrate microbenchmarks (radix, phases, kernels)
====================  ==================================================

Wall-clock benchmarking (pytest-benchmark) runs the *vectorized* engines
at a scaled-down N (the full paper points are 2*10^8 elements); the
paper-scale series are produced by the calibrated model and printed next
to the paper's approximate values, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import numpy as np
import pytest

#: Scale factor between the paper's N axis and the wall-clock N used in
#: pytest-benchmark runs (keeps each measurement well under a second).
WALL_SCALE = 100


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20160815)  # the TR's publication date


def paper_n_axis(n: int) -> list:
    """The N sweep used in the paper's figures (Fig. 7 stops at 150k)."""
    points = [25_000, 50_000, 100_000, 150_000, 200_000]
    return points[:-1] if n == 4000 else points
