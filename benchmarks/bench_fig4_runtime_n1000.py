"""Fig. 4 — runtime vs number of arrays, array size n = 1000.

GPU-ArraySort vs STA; the paper shows GPU-ArraySort winning across the
whole sweep (STA reaching ~8 s at N = 2*10^5, GPU-ArraySort ~2 s).
"""

from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort
from repro.workloads import uniform_arrays

from _runtime_common import report_figure

N_ARRAY = 1000
N_WALL = 2000  # 200k / 100


class TestFig4:
    def test_fig4_series_and_claims(self):
        report_figure("Fig 4", N_ARRAY)

    def test_wall_gpu_arraysort(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=4)
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))

    def test_wall_sta(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=4)
        sorter = StaSorter()
        benchmark(lambda: sorter.sort(batch))
