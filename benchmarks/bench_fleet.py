#!/usr/bin/env python
"""Fleet scaling harness: the multi-process serving tier under load.

Standalone (no pytest-benchmark): drives the same closed-loop traffic
generator that exercises the in-process service
(:func:`repro.service.traffic.run_service_traffic` — the fleet keeps the
service's ``submit`` contract, so the driver is reused unchanged)
through :class:`repro.fleet.SortFleet` at 1, 2, and 4 workers, plus a
p99-under-overload cell and a live worker-kill failover-drain cell, and
emits ``BENCH_fleet.json`` (schema ``bench-fleet/v1``) — the artifact
``make fleet-gate`` checks.

What the scaling cells measure — and what they do not
-----------------------------------------------------
Each ``load-mid-{1,2,4}w`` cell offers an identical closed-loop load and
measures completed request throughput.  The cells are deliberately
**SLO-bound, not CPU-bound**: the router's per-worker admission bound
(``--worker-bound`` rows) is set *below* the worker's batch target, so a
worker's batcher never fills and every batch waits out the full linger
before sorting.  Per-worker capacity is then
``worker_bound / (linger + sort)`` rows/s — a latency-SLO budget, the
regime a deadline-driven serving tier actually runs in — and adding
workers multiplies admission capacity because N workers' linger windows
overlap.  On a single-core host (where this benchmark is developed and
gated in CI) that overlap is the *only* honest source of scaling:
aggregate sort FLOPS cannot exceed one core, and a CPU-saturated fleet
would show ~1.0x regardless of worker count.  The ``3x at 4 workers``
gate therefore certifies the serving-tier property (admission/batching
windows shard and overlap across worker processes; the router spreads
lanes without starving any worker), not a parallel-compute speedup.  On
a multi-core host the same cells additionally scale the compute.

``p99-2x`` measures overload absorption: it offers **twice the
throughput the single-worker cell just measured**, open-loop (paced
arrivals), to the full 4-worker fleet and gates p99 latency (which
*includes* backpressure retry sleeps) against ``--p99-budget-ms``.  One
worker at that rate diverges — its queue grows without bound — so the
cell certifies that the fleet absorbs a single worker's overload with
bounded delay rather than latency collapse.

``failover-drain`` submits a burst to a 2-worker fleet whose long
linger keeps every request in flight, SIGKILLs the worker holding them,
and requires 100% completion with byte-correct results and zero drops —
the two-region-slab re-dispatch path measured end to end.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_fleet.py --grid smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --grid load --gate
    PYTHONPATH=src python benchmarks/bench_fleet.py --grid load --out BENCH_fleet.json
    PYTHONPATH=src python benchmarks/bench_fleet.py --check-schema BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Runnable straight from a checkout: python benchmarks/bench_fleet.py
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.fleet import SortFleet
from repro.service import parse_size_mix, run_service_traffic

SCHEMA = "bench-fleet/v1"
DEFAULT_MIN_SCALING = 3.0
#: p99 allowance for the 2x-overload cell: admission retry sleeps plus
#: a few linger windows of queueing on a saturated single-core host.
DEFAULT_P99_BUDGET_MS = 400.0
DEFAULT_SIZE_MIX = "64:1.0"
#: Router-side per-worker outstanding-rows bound for the load cells.
#: Kept below the worker batch target so capacity is linger-bound (see
#: module docstring).
DEFAULT_WORKER_BOUND = 512
#: Worker batch target > worker bound: the batcher never fills early.
DEFAULT_BATCH_TARGET = 1024
DEFAULT_LINGER_MS = 40.0

GATE_CELL_1W = "load-mid-1w"
GATE_CELL_4W = "load-mid-4w"
P99_CELL = "p99-2x"
FAILOVER_CELL = "failover-drain"

# Load cells: (name, workers, clients, total_requests, array_size).
# Every load-mid-* cell offers the identical load; only the worker
# count changes.  p99-2x doubles the clients against the 4-worker
# fleet.  The smoke grid is a fast sanity pass writing to a temp path.
GRIDS = {
    "smoke": [
        ("smoke-1w", 1, 8, 64, 64),
        ("smoke-2w", 2, 8, 64, 64),
    ],
    "load": [
        ("load-mid-1w", 1, 96, 1920, 64),
        ("load-mid-2w", 2, 96, 1920, 64),
        ("load-mid-4w", 4, 96, 1920, 64),
    ],
}
#: Grids that append the failover-drain cell.
FAILOVER_GRIDS = ("load", "smoke")


def _fleet_for_cell(workers: int, *, linger_ms: float, worker_bound: int,
                    batch_target: int, **overrides) -> SortFleet:
    kwargs = dict(
        workers=workers,
        linger_ms=linger_ms,
        max_worker_queue_rows=worker_bound,
        batch_target_rows=batch_target,
        heartbeat_s=0.05,
        liveness_s=2.0,
        retry_jitter_seed=0,
        start_timeout_s=120.0,
    )
    kwargs.update(overrides)
    return SortFleet(**kwargs)


def run_load_cell(name, workers, clients, total_requests, array_size, *,
                  size_mix, seed, linger_ms, worker_bound, batch_target,
                  mode="closed", rate_rps=2000.0):
    fleet = _fleet_for_cell(
        workers, linger_ms=linger_ms, worker_bound=worker_bound,
        batch_target=batch_target,
    )
    with fleet:
        traffic = run_service_traffic(
            fleet,
            mode=mode,
            clients=clients,
            total_requests=total_requests,
            rate_rps=rate_rps,
            array_size=array_size,
            size_mix=size_mix,
            seed=seed,
            stagger=(mode == "open"),
        )
        fleet.flush(timeout=60.0)
        stats = fleet.stats()
    return {
        "name": name,
        "kind": "load",
        "mode": mode,
        "workers": workers,
        "clients": clients,
        "total_requests": total_requests,
        "offered_rate_rps": rate_rps if mode == "open" else None,
        "array_size": array_size,
        "linger_ms": linger_ms,
        "worker_bound_rows": worker_bound,
        "traffic": traffic.as_dict(),
        "fleet_stats": stats.as_dict(),
        "throughput_rps": traffic.throughput_rps,
        "throughput_rows_per_s": traffic.throughput_rows_per_s,
    }


def run_failover_cell(name, *, seed, array_size=64, rows_per_request=8,
                      requests=16):
    """Kill the worker holding a burst of in-flight requests; count the
    drain.  Gate-relevant outputs: issued == completed, drops == 0,
    every result byte-identical to ``np.sort``."""
    rng = np.random.default_rng(seed)
    fleet = _fleet_for_cell(
        2,
        linger_ms=500.0,  # long linger parks the burst in the batcher
        worker_bound=100_000,
        batch_target=1_000_000,
        liveness_s=1.0,
    )
    batches = [
        rng.uniform(0, 1e6, (rows_per_request, array_size)).astype(np.float32)
        for _ in range(requests)
    ]
    t0 = time.perf_counter()
    with fleet:
        futures = [fleet.submit(batch) for batch in batches]
        # Wait until one worker demonstrably holds the burst, then kill it.
        victim = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            snapshot = fleet._router.snapshot()
            loaded = [w for w, (alive, _, reqs) in snapshot.items()
                      if alive and reqs > 0]
            if loaded:
                victim = loaded[0]
                break
            time.sleep(0.005)
        inflight_at_kill = (
            fleet._router.snapshot()[victim][2] if victim is not None else 0
        )
        if victim is not None:
            fleet.kill_worker(victim)
        completed = 0
        correct = 0
        dropped = 0
        for batch, future in zip(batches, futures):
            try:
                result = future.result(timeout=120.0)
            except Exception:
                dropped += 1
                continue
            completed += 1
            if np.array_equal(result, np.sort(batch, axis=1)):
                correct += 1
        stats = fleet.stats()
    wall = time.perf_counter() - t0
    return {
        "name": name,
        "kind": "failover",
        "workers": 2,
        "requests_issued": requests,
        "rows_per_request": rows_per_request,
        "array_size": array_size,
        "victim_worker": victim,
        "inflight_at_kill": inflight_at_kill,
        "completed": completed,
        "correct": correct,
        "dropped": dropped,
        "failovers": stats.failovers,
        "redispatched": stats.redispatched,
        "wall_seconds": wall,
        "fleet_stats": stats.as_dict(),
    }


def run_grid(grid: str, *, size_mix, seed: int, linger_ms: float,
             worker_bound: int, batch_target: int) -> dict:
    results = []
    for cell in GRIDS[grid]:
        name, workers, clients, total_requests, array_size = cell
        result = run_load_cell(
            name, workers, clients, total_requests, array_size,
            size_mix=size_mix, seed=seed, linger_ms=linger_ms,
            worker_bound=worker_bound, batch_target=batch_target,
        )
        results.append(result)
        pct = result["traffic"]["latency_ms"]
        print(
            f"  {name:14s} workers={workers} clients={clients:<3d}"
            f"  {result['throughput_rps']:8.1f} req/s"
            f"  {result['throughput_rows_per_s']:10.0f} rows/s"
            f"  p99 {pct.get('p99', float('nan')):8.2f} ms",
            flush=True,
        )
    # The overload cell is derived, not static: offer 2x the throughput
    # the single-worker cell just *measured* (open loop, paced arrivals)
    # to the full 4-worker fleet.  One worker at that rate diverges —
    # unbounded queue growth; four must absorb it with bounded p99.
    one_rps = next((r["throughput_rps"] for r in results
                    if r["name"] == GATE_CELL_1W), None)
    if one_rps:
        rate = 2.0 * one_rps
        cell_1w = next(r for r in results if r["name"] == GATE_CELL_1W)
        result = run_load_cell(
            P99_CELL, 4, cell_1w["clients"],
            cell_1w["total_requests"], cell_1w["array_size"],
            size_mix=size_mix, seed=seed, linger_ms=linger_ms,
            worker_bound=worker_bound, batch_target=batch_target,
            mode="open", rate_rps=rate,
        )
        results.append(result)
        pct = result["traffic"]["latency_ms"]
        print(
            f"  {P99_CELL:14s} workers=4 offered={rate:7.1f} req/s"
            f"  {result['throughput_rps']:8.1f} req/s"
            f"  {result['throughput_rows_per_s']:10.0f} rows/s"
            f"  p99 {pct.get('p99', float('nan')):8.2f} ms",
            flush=True,
        )

    if grid in FAILOVER_GRIDS:
        result = run_failover_cell(FAILOVER_CELL, seed=seed)
        results.append(result)
        print(
            f"  {FAILOVER_CELL:14s} issued={result['requests_issued']}"
            f" inflight_at_kill={result['inflight_at_kill']}"
            f" completed={result['completed']}"
            f" correct={result['correct']}"
            f" dropped={result['dropped']}"
            f" redispatched={result['redispatched']}",
            flush=True,
        )

    by_workers = {
        str(r["workers"]): r["throughput_rps"]
        for r in results if r.get("kind") == "load"
        and r["name"].startswith(("load-mid", "smoke"))
    }
    one = next((r["throughput_rps"] for r in results
                if r["name"] == GATE_CELL_1W), None)
    four = next((r["throughput_rps"] for r in results
                 if r["name"] == GATE_CELL_4W), None)
    scaling_4w = (four / one) if one and four else None
    return {
        "schema": SCHEMA,
        "grid": grid,
        "size_mix": [[rows, weight] for rows, weight in size_mix],
        "seed": seed,
        "tuning": {
            "linger_ms": linger_ms,
            "worker_bound_rows": worker_bound,
            "batch_target_rows": batch_target,
        },
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "scaling": {
            "throughput_rps_by_workers": by_workers,
            "speedup_4w_vs_1w": scaling_4w,
        },
    }


def check_schema(report: dict) -> list:
    """Return a list of schema violations (empty == valid)."""
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        results = []
    load_required = {
        "name": str,
        "workers": int,
        "clients": int,
        "total_requests": int,
        "array_size": int,
        "linger_ms": (int, float),
        "traffic": dict,
        "fleet_stats": dict,
        "throughput_rps": (int, float),
    }
    failover_required = {
        "name": str,
        "workers": int,
        "requests_issued": int,
        "completed": int,
        "correct": int,
        "dropped": int,
        "failovers": int,
        "redispatched": int,
        "fleet_stats": dict,
    }
    for i, cell in enumerate(results):
        kind = cell.get("kind")
        if kind == "load":
            for key, typ in load_required.items():
                if not isinstance(cell.get(key), typ):
                    errors.append(f"results[{i}].{key} missing or not {typ}")
            traffic = cell.get("traffic")
            if isinstance(traffic, dict):
                for key in ("requests_issued", "completed", "wall_seconds",
                            "throughput_rps", "latency_ms"):
                    if key not in traffic:
                        errors.append(f"results[{i}].traffic.{key} missing")
                latency = traffic.get("latency_ms")
                if isinstance(latency, dict) and latency:
                    for pkey in ("p50", "p95", "p99"):
                        if not isinstance(latency.get(pkey), (int, float)):
                            errors.append(
                                f"results[{i}].traffic.latency_ms.{pkey} "
                                "missing or non-numeric"
                            )
        elif kind == "failover":
            for key, typ in failover_required.items():
                if not isinstance(cell.get(key), typ):
                    errors.append(f"results[{i}].{key} missing or not {typ}")
        else:
            errors.append(f"results[{i}].kind must be 'load' or 'failover', "
                          f"got {kind!r}")
    scaling = report.get("scaling")
    if not isinstance(scaling, dict) or not isinstance(
        scaling.get("throughput_rps_by_workers"), dict
    ):
        errors.append("scaling.throughput_rps_by_workers missing")
    if "gate" in report:
        gate = report["gate"]
        if not isinstance(gate, dict) or not isinstance(gate.get("passed"), bool):
            errors.append("gate must be a dict with a boolean 'passed'")
    return errors


def apply_gate(report: dict, min_scaling: float,
               p99_budget_ms: float = DEFAULT_P99_BUDGET_MS) -> bool:
    """Gate: 4-worker scaling, overload p99, and failover drain."""
    failures = []
    cells = {r["name"]: r for r in report["results"]}

    one = cells.get(GATE_CELL_1W)
    four = cells.get(GATE_CELL_4W)
    if one is None or four is None:
        failures.append(
            f"gate cells {GATE_CELL_1W!r}/{GATE_CELL_4W!r} not in results "
            "(run with --grid load)"
        )
    else:
        base = one["throughput_rps"]
        scaled = four["throughput_rps"]
        ratio = scaled / base if base > 0 else 0.0
        if ratio < min_scaling:
            failures.append(
                f"{GATE_CELL_4W}: {scaled:.1f} req/s vs single-worker "
                f"{base:.1f} req/s ({ratio:.2f}x < {min_scaling:.2f}x)"
            )

    p99_cell = cells.get(P99_CELL)
    if p99_cell is None:
        failures.append(f"gate cell {P99_CELL!r} not in results")
    else:
        p99 = p99_cell["traffic"]["latency_ms"].get("p99")
        if not isinstance(p99, (int, float)):
            failures.append(f"{P99_CELL}: no p99 recorded")
        elif p99 > p99_budget_ms:
            failures.append(
                f"{P99_CELL}: p99 {p99:.2f} ms exceeds budget "
                f"{p99_budget_ms:.2f} ms under 2x load"
            )

    failover = cells.get(FAILOVER_CELL)
    if failover is None:
        failures.append(f"gate cell {FAILOVER_CELL!r} not in results")
    else:
        if failover["dropped"] != 0:
            failures.append(
                f"{FAILOVER_CELL}: {failover['dropped']} request(s) dropped"
            )
        if failover["completed"] != failover["requests_issued"]:
            failures.append(
                f"{FAILOVER_CELL}: completed {failover['completed']} of "
                f"{failover['requests_issued']} issued"
            )
        if failover["correct"] != failover["requests_issued"]:
            failures.append(
                f"{FAILOVER_CELL}: only {failover['correct']} of "
                f"{failover['requests_issued']} results byte-correct"
            )
        if failover["failovers"] < 1:
            failures.append(
                f"{FAILOVER_CELL}: no failover recorded (victim never died?)"
            )

    report["gate"] = {
        "cells": [GATE_CELL_1W, GATE_CELL_4W, P99_CELL, FAILOVER_CELL],
        "min_scaling_4w": min_scaling,
        "p99_budget_ms": p99_budget_ms,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", choices=sorted(GRIDS), default="load")
    parser.add_argument("--size-mix", default=DEFAULT_SIZE_MIX,
                        metavar="R:W,...")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--linger-ms", type=float, default=DEFAULT_LINGER_MS)
    parser.add_argument(
        "--worker-bound", type=int, default=DEFAULT_WORKER_BOUND,
        help="router per-worker outstanding-rows admission bound",
    )
    parser.add_argument(
        "--batch-target", type=int, default=DEFAULT_BATCH_TARGET,
        help="worker service batch target (kept above --worker-bound so "
             "load cells stay linger-bound; see module docstring)",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless 4-worker scaling, overload p99, and the "
             "failover drain all pass",
    )
    parser.add_argument("--min-scaling", type=float,
                        default=DEFAULT_MIN_SCALING)
    parser.add_argument(
        "--p99-budget-ms", type=float, default=DEFAULT_P99_BUDGET_MS,
        help="p99 bound for the 2x-overload cell (includes retry sleeps)",
    )
    parser.add_argument(
        "--check-schema", type=Path, metavar="JSON",
        help="validate an existing report file and exit (no benchmarking)",
    )
    parser.add_argument(
        "--check-gate", type=Path, metavar="JSON",
        help="re-evaluate the gate on an existing report file and exit "
             "(no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None:
        report = json.loads(args.check_schema.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        print(f"{args.check_schema}: " + ("INVALID" if errors else "ok"))
        return 1 if errors else 0

    if args.check_gate is not None:
        report = json.loads(args.check_gate.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        if errors:
            print(f"{args.check_gate}: INVALID")
            return 1
        ok = apply_gate(report, args.min_scaling, args.p99_budget_ms)
        for failure in report["gate"]["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(f"{args.check_gate}: gate "
              + ("passed" if ok else "FAILED"))
        return 0 if ok else 1

    size_mix = parse_size_mix(args.size_mix)
    print(f"bench_fleet grid={args.grid} size_mix={args.size_mix} "
          f"seed={args.seed} linger={args.linger_ms}ms "
          f"bound={args.worker_bound} rows/worker", flush=True)
    report = run_grid(
        args.grid, size_mix=size_mix, seed=args.seed,
        linger_ms=args.linger_ms, worker_bound=args.worker_bound,
        batch_target=args.batch_target,
    )
    ok = (apply_gate(report, args.min_scaling, args.p99_budget_ms)
          if args.gate else True)

    errors = check_schema(report)
    if errors:  # self-check: the emitter must satisfy its own schema
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.gate:
        gate = report["gate"]
        for failure in gate["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(f"gate: {'passed' if gate['passed'] else 'FAILED'} "
              f"(min_scaling_4w={gate['min_scaling_4w']})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
