"""Streaming-ingestion bench (ours): batch size vs throughput.

The streaming sorter trades latency (waiting to fill a batch) against
device efficiency (bigger launches amortize waves better).  This bench
sweeps the batch size and reports wall throughput and modeled device
throughput, plus the end-to-end correctness check.
"""

import time

import numpy as np
import pytest

from repro.analysis.reporting import render_series
from repro.core import StreamingSorter
from repro.workloads import uniform_arrays

ARRAY_SIZE = 500
TOTAL = 4000
BATCH_SIZES = [64, 256, 1024, 4000]


class TestStreamingThroughput:
    def test_batch_size_sweep(self):
        data = uniform_arrays(TOTAL, ARRAY_SIZE, seed=17)
        wall_tp, model_tp = [], []
        for batch_arrays in BATCH_SIZES:
            sorter = StreamingSorter(ARRAY_SIZE, batch_arrays=batch_arrays)
            t0 = time.perf_counter()
            sorter.push_slab(data)
            sorter.flush()
            wall = time.perf_counter() - t0
            wall_tp.append(TOTAL / wall)
            model_tp.append(sorter.stats.modeled_throughput_arrays_per_s)
            assert np.array_equal(
                np.vstack(sorter.results), np.sort(data, axis=1)
            )
        print()
        print(render_series(
            "batch_arrays", BATCH_SIZES,
            {"wall_arrays_per_s": wall_tp, "modeled_arrays_per_s": model_tp},
            title=f"Streaming throughput, {TOTAL} arrays x {ARRAY_SIZE}",
        ))
        # Modeled device throughput must improve (or hold) with batch
        # size: bigger launches fill more residency waves.
        assert model_tp[-1] >= model_tp[0] * 0.9

    @pytest.mark.parametrize("batch_arrays", [256, 2048])
    def test_wall_streaming(self, benchmark, batch_arrays):
        data = uniform_arrays(2000, ARRAY_SIZE, seed=18)

        def run():
            sorter = StreamingSorter(ARRAY_SIZE, batch_arrays=batch_arrays)
            sorter.push_slab(data)
            sorter.flush()
            return sorter

        benchmark(run)
