"""Ablation benches for the design choices DESIGN.md calls out.

1. **Bucket size** (paper: "best performance ... at least 20 elements per
   bucket") — sweep target bucket sizes, report modeled time and wall
   clock; 20 must sit at or near the minimum of the modeled curve.
2. **Sampling rate** (paper: "10% regular sampling gave most evenly
   balanced buckets") — sweep rates, report bucket-balance statistics on
   uniform and clustered data.
3. **Redundant tag presort** (paper Fig. 3 shows it; Section 7.1.1's text
   needs only two sorts) — quantify what the redundant pass costs STA.
4. **Out-of-core transfer overlap** (paper Section 9's goal: "hides data
   transfer latencies") — overlap on/off modeled time.
5. **Single- vs multi-thread bucketing** (paper: multiple threads per
   bucket "slows down the process considerably") — modeled contention.
"""

import time

import numpy as np
import pytest

from repro.analysis.metrics import sampling_quality
from repro.analysis.perfmodel import model_arraysort_ms
from repro.analysis.reporting import render_series, render_table
from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort, SortConfig
from repro.core.pipeline import OutOfCoreSorter
from repro.gpusim.device import DeviceSpec, K40C
from repro.workloads import clustered_arrays, uniform_arrays

BUCKET_SIZES = [5, 10, 20, 40, 80, 160]
SAMPLING_RATES = [0.02, 0.05, 0.10, 0.20, 0.30]


class TestBucketSizeAblation:
    def test_bucket_size_sweep(self):
        modeled = [
            model_arraysort_ms(K40C, 100_000, 1000, SortConfig(bucket_size=b))
            for b in BUCKET_SIZES
        ]
        wall = []
        batch = uniform_arrays(2000, 1000, seed=42)
        for b in BUCKET_SIZES:
            sorter = GpuArraySort(SortConfig(bucket_size=b))
            t0 = time.perf_counter()
            sorter.sort(batch)
            wall.append((time.perf_counter() - t0) * 1e3)
        print()
        print(render_series(
            "bucket_size", BUCKET_SIZES,
            {"modeled_ms(N=100k)": modeled, "wall_ms(N=2k)": wall},
            title="Ablation 1 — target bucket size (paper default: 20)",
        ))
        # The paper's 20 must be within 25% of the modeled minimum.
        best = min(modeled)
        at_20 = modeled[BUCKET_SIZES.index(20)]
        assert at_20 <= 1.25 * best

    @pytest.mark.parametrize("bucket_size", [10, 20, 40])
    def test_wall_point(self, benchmark, bucket_size):
        batch = uniform_arrays(1000, 1000, seed=42)
        sorter = GpuArraySort(SortConfig(bucket_size=bucket_size))
        benchmark(lambda: sorter.sort(batch))


class TestSamplingRateAblation:
    def test_sampling_rate_sweep(self):
        uni = uniform_arrays(50, 1000, seed=9)
        clu = clustered_arrays(50, 1000, seed=9)
        rows = []
        for rate in SAMPLING_RATES:
            bal_u = sampling_quality(uni, rate)
            bal_c = sampling_quality(clu, rate)
            rows.append([
                f"{rate:.0%}",
                f"{bal_u.std:.1f}", f"{bal_u.straggler_factor:.1f}",
                f"{bal_c.std:.1f}", f"{bal_c.straggler_factor:.1f}",
            ])
        print()
        print(render_table(
            ["rate", "uniform std", "uniform straggler",
             "clustered std", "clustered straggler"],
            rows,
            title="Ablation 2 — sampling rate vs bucket balance",
        ))
        # More sampling tightens balance on uniform data; 10% is already
        # within 2x of the 30% std (diminishing returns past the paper's
        # choice).
        stds = [sampling_quality(uni, r).std for r in SAMPLING_RATES]
        assert stds[-1] <= stds[0]
        idx10 = SAMPLING_RATES.index(0.10)
        assert stds[idx10] <= 2.0 * stds[-1]

    def test_wall_sampling_cost(self, benchmark):
        batch = uniform_arrays(1000, 1000, seed=9)
        sorter = GpuArraySort(SortConfig(sampling_rate=0.10))
        benchmark(lambda: sorter.sort(batch))


class TestRedundantPresortAblation:
    def test_redundant_presort_cost(self):
        from repro.analysis.perfmodel import model_sta_ms

        batch = uniform_arrays(1000, 1000, seed=1)
        t0 = time.perf_counter()
        StaSorter(include_redundant_presort=True).sort(batch)
        full = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        StaSorter(include_redundant_presort=False).sort(batch)
        lean = (time.perf_counter() - t0) * 1e3
        model_full = model_sta_ms(K40C, 200_000, 1000)
        model_lean = model_sta_ms(
            K40C, 200_000, 1000, include_redundant_presort=False
        )
        print()
        print(render_table(
            ["variant", "wall_ms(N=1k)", "modeled_ms(N=200k)"],
            [
                ["STA (3 sorts, per Fig. 3)", f"{full:.1f}", f"{model_full:.0f}"],
                ["STA (2 sorts, lean)", f"{lean:.1f}", f"{model_lean:.0f}"],
            ],
            title="Ablation 3 — the redundant tag presort",
        ))
        assert model_lean < model_full
        # Even the lean STA loses to GPU-ArraySort.
        assert model_lean > model_arraysort_ms(K40C, 200_000, 1000)

    def test_wall_lean_sta(self, benchmark):
        batch = uniform_arrays(1000, 1000, seed=1)
        sorter = StaSorter(include_redundant_presort=False)
        benchmark(lambda: sorter.sort(batch))


class TestOutOfCoreOverlapAblation:
    def test_overlap_on_off(self):
        tiny = DeviceSpec(
            name="ooc-ablate", sm_count=4, cores_per_sm=32,
            global_mem_bytes=2 * 1024 * 1024, shared_mem_per_block=16 * 1024,
            usable_mem_fraction=1.0,
        )
        batch = uniform_arrays(4000, 200, seed=3)
        # A constrained link (pageable transfers on an old PCIe slot)
        # makes the transfer stage comparable to compute — the regime
        # where Section 9's latency hiding has something to hide.
        res = OutOfCoreSorter(device=tiny, overlap=True, pcie_gbps=0.02).sort(batch)
        print()
        print(render_table(
            ["timeline (same chunk plan)", "chunks", "modeled_ms"],
            [
                ["overlapped (dual buffer)", res.plan.num_chunks,
                 f"{res.modeled_ms:.1f}"],
                ["serialized", res.plan.num_chunks,
                 f"{res.modeled_ms_no_overlap:.1f}"],
            ],
            title="Ablation 4 — out-of-core transfer/compute overlap",
        ))
        print(f"latency hidden: {res.overlap_speedup:.2f}x")
        assert res.modeled_ms < res.modeled_ms_no_overlap
        assert res.overlap_speedup > 1.3
        assert np.array_equal(res.batch, np.sort(batch, axis=1))

    def test_wall_out_of_core(self, benchmark):
        tiny = DeviceSpec(
            name="ooc-bench", sm_count=4, cores_per_sm=32,
            global_mem_bytes=2 * 1024 * 1024, shared_mem_per_block=16 * 1024,
            usable_mem_fraction=1.0,
        )
        batch = uniform_arrays(2000, 200, seed=3)
        sorter = OutOfCoreSorter(device=tiny)
        benchmark(lambda: sorter.sort(batch))


class TestAdaptiveSamplingAblation:
    def test_strategy_sweep_per_distribution(self):
        """Ablation 6 (ours, §9): sampling strategy x distribution.

        Measures what each §9 strategy buys on each distribution family:
        bucket-size std (phase-3 balance) and phase-1 wall overhead.
        """
        from repro.analysis.metrics import bucket_balance
        from repro.core.adaptive import SAMPLING_STRATEGIES, select_splitters_adaptive
        from repro.core.bucketing import bucketize
        from repro.workloads import duplicate_heavy_arrays

        datasets = {
            "uniform": uniform_arrays(100, 1000, seed=13),
            "clustered": clustered_arrays(100, 1000, seed=13),
            "duplicates": duplicate_heavy_arrays(100, 1000, seed=13),
        }
        rows = []
        stds = {}
        for name, batch in datasets.items():
            row = [name]
            for strategy in SAMPLING_STRATEGIES:
                t0 = time.perf_counter()
                spl = select_splitters_adaptive(batch, strategy=strategy, seed=5)
                phase1_ms = (time.perf_counter() - t0) * 1e3
                res = bucketize(batch.copy(), spl.splitters)
                std = bucket_balance(res.sizes).std
                stds[(name, strategy)] = std
                row.append(f"{std:.1f} / {phase1_ms:.0f}ms")
            rows.append(row)
        print()
        print(render_table(
            ["distribution"] + [f"{s} (std/phase1)" for s in SAMPLING_STRATEGIES],
            rows,
            title="Ablation 6 — §9 sampling strategies vs distributions",
        ))
        # Oversampling must not hurt balance on clustered data, and no
        # strategy can fix duplicate-heavy data (information-theoretic).
        assert stds[("clustered", "oversample")] <= 1.1 * stds[("clustered", "regular")]
        assert stds[("duplicates", "oversample")] > stds[("uniform", "regular")]


class TestMultiThreadBucketingAblation:
    def test_multi_thread_per_bucket_slower(self):
        """Paper Section 5.2: "using multiple threads on single bucket ...
        slows down the process considerably, most possibly because of the
        additional overhead."

        Why partitioning the scan does not work: bucketing must be
        *stable* (each bucket keeps the source order so phase 3's
        in-place sorts compose), so t threads sharing one bucket cannot
        simply split the array — claiming output slots out of order
        destroys stability.  The workable multi-thread variants are:

        * **naive**: every thread still scans the whole array but claims
          slots through an atomic counter — adds atomic serialization on
          every match and buys nothing (this is the paper's observed
          slowdown);
        * **compaction**: partition the scan, then run an extra
          order-restoring compaction pass (per-sub-scan counts, prefix
          scan, re-emit) — the extra pass plus barriers cancels most of
          the scan saving at k ~ 20.

        The model quantifies all three.
        """
        n, p = 1000, 50
        k = n / p
        scan_cycles = 10.0   # cached read per element
        atomic_cycles = 30.0  # one atomicAdd round trip
        sync_cycles = 20.0

        single = 2 * n * scan_cycles  # count scan + emit scan

        def naive(t: int) -> float:
            # full scan per thread (unchanged) + serialized atomics on
            # each of the bucket's k matches, during both scans
            return 2 * n * scan_cycles + 2 * k * atomic_cycles * t

        def compaction(t: int) -> float:
            partitioned = 2 * n * scan_cycles / t
            extra_pass = (n / t) * scan_cycles + k * scan_cycles
            scans_and_merges = 2 * sync_cycles * t + p * t * 2
            return partitioned + extra_pass + scans_and_merges

        rows = [["1 (paper's choice)", f"{single:.0f}", "-"]]
        for t in (2, 4, 8):
            rows.append([str(t), f"{naive(t):.0f}", f"{compaction(t):.0f}"])
        print()
        print(render_table(
            ["threads/bucket", "naive (atomics)", "compaction variant"],
            rows,
            title="Ablation 5 — threads per bucket in phase 2 (cycles/block)",
        ))
        # The paper's observation: the naive variant is strictly slower
        # at every t, and increasingly so.
        assert all(naive(t) > single for t in (2, 4, 8))
        assert naive(8) > naive(2)
        # The compaction variant only breaks even with large t and still
        # pays extra latency-sensitive barriers; at t=2 it must not win
        # by much (< 2x), supporting "overheads were too large".
        assert compaction(2) > 0.5 * single
