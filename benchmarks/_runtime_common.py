"""Shared machinery for the Figs. 4-7 runtime-vs-N reproductions.

Each figure is the same experiment at a different array size n: sweep the
number of arrays N and compare GPU-ArraySort against STA.  The module
provides:

* :func:`wall_clock_sweep` — wall time of both vectorized implementations
  at a scaled-down N sweep (same relative axis as the paper);
* :func:`model_sweep` — the calibrated model at the paper's actual axis;
* :func:`report_figure` — renders both, checks the paper's shape claims
  (GPU-ArraySort wins everywhere; both curves near-linear in N), and
  returns the assembled data for EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.analysis.perfmodel import model_arraysort_ms, model_sta_ms
from repro.analysis.reporting import ascii_plot, render_series
from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort
from repro.gpusim.device import K40C
from repro.workloads import uniform_arrays

#: Paper N axis divided by this for the wall-clock runs.
WALL_DIVISOR = 100


def paper_axis(n: int) -> List[int]:
    points = [25_000, 50_000, 100_000, 150_000, 200_000]
    return points[:-1] if n >= 4000 else points


def wall_clock_sweep(n: int, seed: int = 0) -> Dict[str, List[float]]:
    """Wall milliseconds for both techniques at N/WALL_DIVISOR."""
    gas_sorter = GpuArraySort()
    sta_sorter = StaSorter()
    gas_ms, sta_ms = [], []
    for N in paper_axis(n):
        batch = uniform_arrays(N // WALL_DIVISOR, n, seed=seed + N)
        t0 = time.perf_counter()
        gas_sorter.sort(batch)
        gas_ms.append((time.perf_counter() - t0) * 1e3)
        t0 = time.perf_counter()
        sta_sorter.sort(batch)
        sta_ms.append((time.perf_counter() - t0) * 1e3)
    return {"GPU-ArraySort": gas_ms, "STA": sta_ms}


def model_sweep(n: int) -> Dict[str, List[float]]:
    """Calibrated-model milliseconds at the paper's actual N axis."""
    axis = paper_axis(n)
    return {
        "GPU-ArraySort": [model_arraysort_ms(K40C, N, n) for N in axis],
        "STA": [model_sta_ms(K40C, N, n) for N in axis],
    }


def _linearity_r2(xs: List[int], ys: List[float]) -> float:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    coeffs = np.polyfit(x, y, 1)
    pred = np.polyval(coeffs, x)
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    return 1.0 - ss_res / ss_tot if ss_tot else 1.0


def report_figure(fig_name: str, n: int) -> None:
    """Print the figure reproduction and assert its shape claims."""
    axis = paper_axis(n)
    model = model_sweep(n)
    wall = wall_clock_sweep(n)

    print()
    print(render_series(
        "N", axis, model,
        title=f"{fig_name} — modeled runtime vs N at paper scale (n={n})",
    ))
    print(render_series(
        "N/100", [N // WALL_DIVISOR for N in axis], wall,
        title=f"{fig_name} — wall-clock at N/100 (vectorized engines)",
    ))
    print(ascii_plot(axis, model, title=f"{fig_name} shape"))

    # Claim 1: GPU-ArraySort wins at every point, in model and wall clock.
    for impl_label, series in (("model", model), ("wall", wall)):
        gas, sta = series["GPU-ArraySort"], series["STA"]
        for i, N in enumerate(axis):
            assert sta[i] > gas[i], (
                f"{fig_name} {impl_label}: STA faster at N={N}?"
            )

    # Claim 2: near-linear growth in N for both curves (model scale).
    for name, ys in model.items():
        r2 = _linearity_r2(axis, ys)
        assert r2 > 0.99, f"{fig_name}: {name} not linear in N (R^2={r2:.3f})"

    # Claim 3: the win factor is in the band read off the paper's figures.
    ratio = model["STA"][-1] / model["GPU-ArraySort"][-1]
    assert 1.8 < ratio < 5.0, f"{fig_name}: win factor {ratio:.2f} out of band"
    print(f"{fig_name}: win factor at max N = {ratio:.2f}x  (paper: ~2.5-4x)")
