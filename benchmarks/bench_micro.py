"""Microbenchmarks of the substrates (not a paper artifact).

Wall-clock performance of the building blocks, so regressions in the
substrates show up separately from the figure-level numbers:

* the three vectorized phases in isolation,
* the LSD radix sort at several digit widths,
* the segmented-sort comparator,
* the lock-step simulator's kernel throughput.
"""

import numpy as np
import pytest

from repro.baselines.radix import radix_sort_by_key
from repro.baselines.segmented import segmented_sort
from repro.core.bucketing import bucketize
from repro.core.insertion import sort_buckets
from repro.core.splitters import select_splitters
from repro.gpusim import GpuDevice
from repro.workloads import uniform_arrays


@pytest.fixture(scope="module")
def batch():
    return uniform_arrays(2000, 1000, seed=123)


class TestPhaseMicrobench:
    def test_phase1_splitters(self, benchmark, batch):
        benchmark(lambda: select_splitters(batch))

    def test_phase2_bucketing(self, benchmark, batch):
        spl = select_splitters(batch)
        benchmark(lambda: bucketize(batch.copy(), spl.splitters))

    def test_phase3_bucket_sort(self, benchmark, batch):
        spl = select_splitters(batch)
        res = bucketize(batch.copy(), spl.splitters)
        benchmark(lambda: sort_buckets(res.bucketed.copy(), res.offsets))


class TestRadixMicrobench:
    @pytest.mark.parametrize("digit_bits", [4, 8, 16])
    def test_radix_digit_width(self, benchmark, digit_bits):
        keys = uniform_arrays(1, 500_000, seed=5).ravel()
        tags = np.arange(keys.size, dtype=np.int32)
        benchmark(lambda: radix_sort_by_key(keys, tags, digit_bits=digit_bits))


class TestComparators:
    def test_segmented_sort(self, benchmark, batch):
        benchmark(lambda: segmented_sort(batch))

    def test_numpy_oracle(self, benchmark, batch):
        benchmark(lambda: np.sort(batch, axis=1))


class TestSimulatorThroughput:
    def test_lockstep_kernel_throughput(self, benchmark):
        """Events-per-second of the lock-step interpreter."""
        gpu = GpuDevice.micro()
        data = gpu.memory.alloc_like(
            np.arange(32 * 8, dtype=np.float32)
        )
        out = gpu.memory.alloc(32 * 8, np.float32)

        def saxpy_kernel(ctx, shared, src, dst):
            tid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
            x = yield ctx.gload(src, tid)
            yield ctx.alu(2)
            yield ctx.gstore(dst, tid, 2.0 * x + 1.0)

        benchmark(lambda: gpu.launch(saxpy_kernel, grid=8, block=32,
                                     args=(data, out)))

    def test_sim_engine_small_sort(self, benchmark):
        from repro.core import GpuArraySort

        gpu = GpuDevice.micro()
        small = uniform_arrays(2, 80, seed=3)
        sorter = GpuArraySort(engine="sim", device=gpu)
        benchmark(lambda: sorter.sort(small))
