"""Table 1 — maximum number of arrays sortable on the Tesla K40c.

The paper reports GPU-ArraySort handling ~3x more arrays than STA at
every array size (2.0M vs 0.7M at n = 1000, etc.).  Reproduced three
ways:

* the analytic bytes-per-array model,
* the empirical allocator probe (binary search against the simulated
  device's OOM boundary),
* wall-clock allocation probing as the pytest-benchmark target.
"""

import pytest

from repro.analysis.memory_model import (
    PAPER_TABLE1,
    measure_capacity,
    table1_rows,
)
from repro.analysis.reporting import render_table


class TestTable1:
    def test_table1_reproduction(self):
        rows = table1_rows(measure=True)
        print()
        print(render_table(
            ["n", "paper GAS", "model GAS", "measured GAS",
             "paper STA", "model STA", "measured STA", "capacity adv"],
            [
                [r.array_size, r.paper_arraysort, r.model_arraysort,
                 r.measured_arraysort, r.paper_sta, r.model_sta,
                 r.measured_sta, f"{r.model_advantage:.2f}x"]
                for r in rows
            ],
            title="Table 1 — max arrays sortable on a Tesla K40c (11520 MB)",
        ))
        for r in rows:
            # analytic model within one probing step of the paper
            assert abs(r.model_arraysort - r.paper_arraysort) <= 50_000
            assert abs(r.model_sta - r.paper_sta) <= 50_000
            # ~3x headline
            assert 2.5 < r.model_advantage < 3.6
            # measured (conservative 4x STA scratch) bounds from below
            assert r.measured_sta <= r.model_sta
            assert r.measured_arraysort == r.model_arraysort

    def test_2m_arrays_headline(self):
        assert measure_capacity("arraysort", 1000, step=50_000) == 2_000_000

    @pytest.mark.parametrize("n", sorted(PAPER_TABLE1))
    def test_capacity_probe_speed(self, benchmark, n):
        """Benchmark the allocator-probe binary search itself."""
        benchmark(lambda: measure_capacity("arraysort", n, step=50_000))
