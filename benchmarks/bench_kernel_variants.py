"""Kernel-variant study (ours): measuring §5.1's rejected strategies.

The paper rejected cooperative phase-1 sorting ("overheads were too
large") and used a serial count scan in phase 2.  Both alternatives are
implemented in ``repro.core.kernels_optimized``; this bench runs the
baseline and optimized pipelines on identical data on the simulator and
reports per-phase modeled times, sync counts, and divergence — the
evidence behind (or against) the paper's engineering calls.
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.core.kernels import run_arraysort_on_device
from repro.core.kernels_optimized import run_arraysort_optimized
from repro.gpusim import GpuDevice
from repro.workloads import uniform_arrays


class TestKernelVariants:
    def test_variant_comparison_table(self):
        gpu = GpuDevice.micro()
        batch = uniform_arrays(4, 120, seed=21)
        base_out, base = run_arraysort_on_device(gpu, batch)
        opt_out, opt = run_arraysort_optimized(gpu, batch)
        assert np.array_equal(base_out, opt_out)

        rows = []
        for pipeline, label in ((base, "paper (serial p1/scan)"),
                                (opt, "optimized (parallel)")):
            for launch in pipeline.launches:
                syncs = sum(w.syncs for w in launch.warp_stats)
                rows.append([
                    label, launch.kernel_name,
                    f"{launch.milliseconds:.4f}",
                    syncs,
                    f"{launch.divergence_fraction:.2f}",
                ])
        print()
        print(render_table(
            ["variant", "kernel", "modeled ms", "syncs", "divergence"],
            rows,
            title="Kernel-variant study (micro device, 4 x 120)",
        ))

    def test_phase1_barrier_count_scales_with_sample(self):
        gpu = GpuDevice.micro()
        small = uniform_arrays(2, 60, seed=2)
        large = uniform_arrays(2, 200, seed=2)
        _, opt_small = run_arraysort_optimized(gpu, small)
        _, opt_large = run_arraysort_optimized(gpu, large)
        syncs_small = sum(w.syncs for w in opt_small.launches[0].warp_stats)
        syncs_large = sum(w.syncs for w in opt_large.launches[0].warp_stats)
        # odd-even rounds == sample size -> barrier count grows with n.
        assert syncs_large > syncs_small

    @pytest.mark.parametrize("variant", ["baseline", "optimized"])
    def test_wall_pipeline(self, benchmark, variant):
        gpu = GpuDevice.micro()
        batch = uniform_arrays(2, 80, seed=22)
        runner = (run_arraysort_on_device if variant == "baseline"
                  else run_arraysort_optimized)
        benchmark(lambda: runner(gpu, batch))
