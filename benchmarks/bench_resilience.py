"""Resilience bench (ours): sort throughput under injected fault rates.

The paper's Section 8 pitch is continuous acquisition, where transient
device faults are routine.  This bench streams a fixed workload through
:class:`~repro.resilience.ResilientSorter` while a seeded
:class:`~repro.gpusim.faults.FaultPlan` injects transient kernel faults
(and, in the second sweep, ECC-style output corruption), and reports the
throughput cost of the retry/verify machinery plus the recovery
counters.  Backoff runs on a no-op clock so the numbers isolate compute
overhead; ``backoff_seconds`` reports what a real clock would have
added.

Correctness bar (same as the acceptance scenario in ISSUE.md): every
emitted row must be sorted and a permutation of its input — faults may
cost time, never data.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reporting import render_series
from repro.core import StreamingSorter
from repro.core.config import SortConfig
from repro.core.validation import is_sorted_rows, rows_are_permutations
from repro.gpusim.faults import FaultPlan
from repro.resilience import ResilientSorter
from repro.workloads import uniform_arrays

ARRAY_SIZE = 200
TOTAL = 1500
BATCH_ARRAYS = 250
FAULT_RATES = [0.0, 0.1, 0.2, 0.4]


def _run_stream(data: np.ndarray, plan: FaultPlan | None) -> tuple[float, StreamingSorter, ResilientSorter]:
    sorter = ResilientSorter(
        SortConfig(), engine="vectorized", fault_plan=plan, sleep=None
    )
    streamer = StreamingSorter(
        ARRAY_SIZE, batch_arrays=BATCH_ARRAYS, sorter=sorter
    )
    t0 = time.perf_counter()
    streamer.push_slab(data)
    streamer.flush()
    wall = time.perf_counter() - t0
    return wall, streamer, sorter


class TestFaultRateSweep:
    def test_fault_rate_sweep(self):
        data = uniform_arrays(TOTAL, ARRAY_SIZE, seed=23)
        clean_sorted = np.sort(data, axis=1)
        wall_tp, retries, recovered, backoff = [], [], [], []
        for rate in FAULT_RATES:
            plan = FaultPlan(31, kernel_fault_rate=rate) if rate else None
            wall, streamer, sorter = _run_stream(data, plan)
            emitted = np.vstack(streamer.results)
            # Faults may cost time, never data.
            assert emitted.shape == data.shape
            assert np.array_equal(emitted, clean_sorted)
            assert streamer.stats.arrays_quarantined == 0
            wall_tp.append(TOTAL / wall)
            retries.append(sorter.stats.retries)
            recovered.append(sorter.stats.rows_recovered)
            backoff.append(round(sorter.stats.backoff_seconds, 3))
        print()
        print(render_series(
            "fault_rate", FAULT_RATES,
            {
                "wall_arrays_per_s": wall_tp,
                "retries": retries,
                "rows_recovered": recovered,
                "skipped_backoff_s": backoff,
            },
            title=f"Resilient streaming, {TOTAL} arrays x {ARRAY_SIZE}",
        ))
        # Retries must actually engage as the fault rate climbs.
        assert retries[-1] > retries[0]

    def test_corruption_sweep(self):
        data = uniform_arrays(TOTAL, ARRAY_SIZE, seed=29)
        rates = [0.0, 0.2, 0.5]
        detected, quarantined, emitted_rows = [], [], []
        for rate in rates:
            plan = FaultPlan(37, corruption_rate=rate) if rate else None
            _, streamer, sorter = _run_stream(data, plan)
            emitted = np.vstack(streamer.results) if streamer.results else np.empty((0, ARRAY_SIZE))
            # Nothing corrupted may reach the consumer.
            assert bool(np.all(is_sorted_rows(emitted)))
            detected.append(sorter.stats.corrupt_rows_detected)
            quarantined.append(streamer.stats.arrays_quarantined)
            emitted_rows.append(emitted.shape[0])
            assert emitted.shape[0] + streamer.stats.arrays_quarantined == TOTAL
        print()
        print(render_series(
            "corruption_rate", rates,
            {
                "corrupt_rows_detected": detected,
                "rows_quarantined": quarantined,
                "rows_emitted": emitted_rows,
            },
            title="Verify-after-sort vs injected corruption",
        ))
        assert detected[0] == 0 and detected[-1] > 0

    @pytest.mark.parametrize("fault_rate", [0.0, 0.2])
    def test_wall_resilient_stream(self, benchmark, fault_rate):
        data = uniform_arrays(800, ARRAY_SIZE, seed=41)
        reference = np.sort(data, axis=1)

        def run():
            plan = (
                FaultPlan(43, kernel_fault_rate=fault_rate)
                if fault_rate
                else None
            )
            _, streamer, _ = _run_stream(data, plan)
            return streamer

        streamer = benchmark(run)
        emitted = np.vstack(streamer.results)
        assert bool(np.all(rows_are_permutations(emitted, reference)))
