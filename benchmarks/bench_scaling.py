"""Device-scaling study (ours): the paper's scalability claim, quantified.

Not a paper artifact — the paper asserts scalability qualitatively
("highly scalable", blocks in parallel); these benches turn it into
checkable predictions of the calibrated model:

* strong scaling with SM count until bandwidth saturates,
* K40c vs C2050 generation gap,
* the residency knee: time is flat until N exceeds the number of
  concurrently resident blocks, then grows linearly in waves.
"""

import pytest

from repro.analysis.reporting import render_series, render_table
from repro.analysis.scaling import (
    device_comparison,
    residency_knee,
    sm_scaling_curve,
)
from repro.core import GpuArraySort
from repro.workloads import uniform_arrays

SM_COUNTS = [1, 2, 4, 8, 15, 30, 60]


class TestSmScaling:
    def test_strong_scaling_curve(self):
        points = sm_scaling_curve(SM_COUNTS)
        print()
        print(render_table(
            ["SMs", "modeled_ms", "speedup", "ideal"],
            [[p.sm_count, f"{p.modeled_ms:.0f}", f"{p.speedup:.2f}x",
              f"{p.sm_count / SM_COUNTS[0]:.0f}x"] for p in points],
            title="Strong scaling with SM count (N=200k, n=1000)",
        ))
        # Monotone improvement...
        times = [p.modeled_ms for p in points]
        assert all(b <= a for a, b in zip(times, times[1:]))
        # ...near-ideal at low counts...
        assert points[1].speedup > 1.8
        # ...sublinear by 60 SMs (fixed bandwidth saturates).
        assert points[-1].speedup < 60


class TestDeviceComparison:
    def test_generation_gap(self):
        rows = device_comparison()
        print()
        print(render_table(
            ["device", "phase1", "phase2", "phase3", "total"],
            [[name, f"{r['phase1']:.0f}", f"{r['phase2']:.0f}",
              f"{r['phase3']:.0f}", f"{r['total']:.0f}"]
             for name, r in rows.items()],
            title="Catalog comparison (modeled ms, N=200k, n=1000)",
        ))
        assert rows["Tesla K40c"]["total"] < rows["Tesla C2050"]["total"]
        # The gap is damped well below the raw core-count ratio (6.4x):
        # the model is residency/latency-bound and the C2050's higher
        # clock (1150 vs 745 MHz) claws back ground.  Expect 1.2-8x.
        ratio = rows["Tesla C2050"]["total"] / rows["Tesla K40c"]["total"]
        assert 1.2 < ratio < 8.0


class TestResidencyKnee:
    def test_flat_below_knee_linear_above(self):
        result = residency_knee()
        knee = result["knee_arrays"]
        times = result["times_at_multiples"]
        print()
        print(render_series(
            "multiple-of-knee", list(times.keys()),
            {"modeled_ms": list(times.values())},
            title=f"Residency knee at N = {knee} arrays",
        ))
        # Below the knee: same single wave, same time.
        assert times[0.25] == pytest.approx(times[1.0], rel=0.01)
        # Above: doubling waves ~doubles time.
        assert times[4.0] == pytest.approx(2 * times[2.0], rel=0.05)
        assert times[8.0] == pytest.approx(4 * times[2.0], rel=0.05)

    def test_knee_matches_simulator_occupancy(self):
        """The analytic knee must agree with the lock-step simulator's
        occupancy calculation for the same launch shape."""
        import numpy as np

        from repro.core.config import SortConfig
        from repro.gpusim import GpuDevice
        from repro.gpusim.grid import LaunchConfig
        from repro.gpusim.occupancy import compute_occupancy

        config = SortConfig()
        n = 1000
        p = config.num_buckets(n)
        smem = (p + 1) * 8 + 2 * p * 4
        occ = compute_occupancy(
            GpuDevice.k40c().spec, LaunchConfig.create(1, p, smem)
        )
        knee = residency_knee(n=n)["knee_arrays"]
        assert knee == occ.concurrent_blocks


class TestWallScaling:
    @pytest.mark.parametrize("rows", [500, 1000, 2000])
    def test_wall_scaling_in_batch_size(self, benchmark, rows):
        batch = uniform_arrays(rows, 500, seed=8)
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))
