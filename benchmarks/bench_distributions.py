"""Distribution sensitivity study (ours).

The paper evaluates on uniform data only.  This bench runs every named
workload in the standard suite through GPU-ArraySort, STA, and the
segmented comparator, reporting wall time and bucket balance — the
robustness picture a production adopter needs:

* GPU-ArraySort must stay correct on every distribution (asserted);
* bucket balance degrades on skew/duplicates (measured, not hidden);
* the ranking vs STA must hold across distributions (radix does the
  same work regardless of distribution; GPU-ArraySort's phase 3 varies).
"""

import time

import numpy as np
import pytest

from repro.analysis.metrics import bucket_balance
from repro.analysis.reporting import render_table
from repro.baselines import segmented_sort
from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort
from repro.workloads import STANDARD_SUITE, get_workload

ROWS, COLS = 1000, 1000


def _wall_ms(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


class TestDistributionSweep:
    def test_all_workloads_all_techniques(self):
        gas = GpuArraySort()
        sta = StaSorter()
        rows = []
        for name in sorted(STANDARD_SUITE):
            batch = get_workload(name).generate(
                seed=3, num_arrays=ROWS, array_size=COLS
            ).data
            oracle = np.sort(batch, axis=1)

            res = gas.sort(batch)
            assert np.array_equal(res.batch, oracle), name
            gas_ms = res.total_seconds * 1e3
            balance = bucket_balance(res.buckets.sizes)

            sta_ms = _wall_ms(lambda b=batch: sta.sort(b))
            seg_ms = _wall_ms(lambda b=batch: segmented_sort(b))
            rows.append([
                name, f"{gas_ms:.0f}", f"{sta_ms:.0f}", f"{seg_ms:.0f}",
                f"{balance.std:.1f}", f"{balance.empty_fraction:.0%}",
            ])
        print()
        print(render_table(
            ["workload", "GAS ms", "STA ms", "segmented ms",
             "bucket std", "empty buckets"],
            rows,
            title=f"Distribution sweep ({ROWS} x {COLS}, wall clock)",
        ))

    def test_arraysort_beats_sta_on_every_distribution(self):
        gas = GpuArraySort()
        sta = StaSorter()
        for name in sorted(STANDARD_SUITE):
            batch = get_workload(name).generate(
                seed=5, num_arrays=500, array_size=1000
            ).data
            gas_ms = _wall_ms(lambda: gas.sort(batch))
            sta_ms = _wall_ms(lambda: sta.sort(batch))
            assert sta_ms > gas_ms * 0.8, (
                f"{name}: STA ({sta_ms:.0f} ms) unexpectedly far below "
                f"GPU-ArraySort ({gas_ms:.0f} ms)"
            )

    @pytest.mark.parametrize("name", sorted(STANDARD_SUITE))
    def test_wall_per_workload(self, benchmark, name):
        batch = get_workload(name).generate(
            seed=3, num_arrays=500, array_size=1000
        ).data
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))
