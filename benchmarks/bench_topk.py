"""Top-K selection bench (ours): the MS-REDUCE use case, quantified.

The paper's motivating pipeline keeps the K most intense peaks per
spectrum.  ``repro.core.topk.top_k`` reuses phases 1-2 and sorts only
the straddling bucket; this bench measures where it beats
sort-then-slice and verifies exact agreement throughout.
"""

import time

import numpy as np
import pytest

from repro.analysis.reporting import render_series
from repro.core.topk import top_k, top_k_via_sort
from repro.workloads import generate_spectra, uniform_arrays

N_ROWS, N_COLS = 2000, 2000
K_SWEEP = [10, 50, 200, 500, 1000, 2000]


def _wall(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


class TestTopKStudy:
    def test_crossover_sweep(self):
        from repro.core import GpuArraySort

        batch = uniform_arrays(N_ROWS, N_COLS, seed=11)
        sorter = GpuArraySort()
        full_ms = _wall(lambda: sorter.sort(batch))

        bucket_ms, sort_ms = [], []
        for k in K_SWEEP:
            t0 = time.perf_counter()
            a = top_k(batch, k)
            bucket_ms.append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            b = top_k_via_sort(batch, k)
            sort_ms.append((time.perf_counter() - t0) * 1e3)
            assert np.array_equal(a, b), k
        print()
        print(render_series(
            "k", K_SWEEP,
            {"bucket_topk_ms": bucket_ms,
             "np_sort_slice_ms": sort_ms,
             "full_3phase_ms": [full_ms] * len(K_SWEEP)},
            title=f"Top-K selection, {N_ROWS} x {N_COLS} uniform floats",
        ))
        # The honest apples-to-apples comparison: against the same
        # three-phase machinery doing a FULL sort, skipping phase 3 on
        # the discarded buckets must pay off at small k.  (np.sort's
        # compiled full-width sort remains the CPU wall-clock champion —
        # printed above, not hidden; the operation-count saving is the
        # GPU story.)
        assert bucket_ms[0] < full_ms

    def test_ms_reduce_workload(self):
        spectra = generate_spectra(1000, 2000, seed=12)
        kept = top_k(spectra.intensity, 200)
        assert np.array_equal(kept, top_k_via_sort(spectra.intensity, 200))

    @pytest.mark.parametrize("k", [50, 500])
    def test_wall_bucket_topk(self, benchmark, k):
        batch = uniform_arrays(500, 2000, seed=11)
        benchmark(lambda: top_k(batch, k))

    @pytest.mark.parametrize("k", [50, 500])
    def test_wall_sort_slice(self, benchmark, k):
        batch = uniform_arrays(500, 2000, seed=11)
        benchmark(lambda: top_k_via_sort(batch, k))
