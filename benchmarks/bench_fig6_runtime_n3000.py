"""Fig. 6 — runtime vs number of arrays, array size n = 3000."""

from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort
from repro.workloads import uniform_arrays

from _runtime_common import report_figure

N_ARRAY = 3000
N_WALL = 700


class TestFig6:
    def test_fig6_series_and_claims(self):
        report_figure("Fig 6", N_ARRAY)

    def test_wall_gpu_arraysort(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=6)
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))

    def test_wall_sta(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=6)
        sorter = StaSorter()
        benchmark(lambda: sorter.sort(batch))
