#!/usr/bin/env python
"""Hot-path perf harness: fused vs unfused, serial vs sharded.

Standalone (no pytest-benchmark): measures the vectorized engine's two
code paths over a dtype × (N, n) grid and emits ``BENCH_hotpath.json``
(schema ``bench-hotpath/v1``) — the artifact ``make bench-gate`` checks.

Grids
-----
``smoke``      tiny shapes, finishes in seconds — schema/plumbing check
               (``make bench-smoke``);
``reference``  the gate grid: mid-size shapes where both paths finish
               quickly enough to repeat (``make bench-gate``);
``fig4``       the paper's Fig. 4 anchor config — N=100000, n=1000,
               float32 — plus the reference grid (used to produce the
               committed ``BENCH_hotpath.json``).

Gate
----
``--gate`` exits non-zero unless the fused path is at least
``--min-speedup``× (default 1.0 — "fused must never be slower") faster
than the unfused path on **every** grid cell.  The committed artifact
additionally records the Fig. 4 fused-vs-unfused speedup, pinned ≥ 2 by
``tests/test_bench_hotpath.py``.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_hotpath.py --grid smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --grid reference --gate
    PYTHONPATH=src python benchmarks/bench_hotpath.py --grid fig4 --out BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check-schema BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

# Runnable straight from a checkout: python benchmarks/bench_hotpath.py
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core import GpuArraySort, SortConfig

SCHEMA = "bench-hotpath/v1"

# (name, dtype, N, n) cells.  Shapes chosen so the unfused path stays
# tractable on one host core — the fused/unfused ratio, not absolute
# time, is what the gate consumes.
GRIDS = {
    "smoke": [
        ("smoke-f32", "float32", 200, 200),
        ("smoke-f64", "float64", 200, 200),
        ("smoke-i64", "int64", 100, 400),
    ],
    "reference": [
        ("ref-f32-small", "float32", 1000, 500),
        ("ref-f32-mid", "float32", 5000, 1000),
        ("ref-f64-mid", "float64", 2000, 1000),
        ("ref-i32-mid", "int32", 2000, 1000),
        ("ref-i64-small", "int64", 1000, 500),
    ],
    "fig4": [
        ("ref-f32-small", "float32", 1000, 500),
        ("ref-f32-mid", "float32", 5000, 1000),
        ("ref-f64-mid", "float64", 2000, 1000),
        ("ref-i32-mid", "int32", 2000, 1000),
        ("ref-i64-small", "int64", 1000, 500),
        ("fig4-f32", "float32", 100_000, 1000),
    ],
}


def _make_batch(dtype: str, num_arrays: int, array_size: int) -> np.ndarray:
    rng = np.random.default_rng(20160814)  # the paper's year+venue, fixed
    if np.dtype(dtype).kind == "f":
        return rng.uniform(0.0, 1e6, (num_arrays, array_size)).astype(dtype)
    return rng.integers(0, 2**30, (num_arrays, array_size)).astype(dtype)


def _median_ms(sorter: GpuArraySort, batch: np.ndarray, repeats: int):
    """Median wall ms per repeat, plus median per-phase ms."""
    totals, phases = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = sorter.sort(batch)  # sort() copies; batch is reusable
        totals.append((time.perf_counter() - t0) * 1e3)
        phases.append({k: v * 1e3 for k, v in result.phase_seconds.items()})
    median_phases = {
        key: statistics.median(p[key] for p in phases) for key in phases[0]
    }
    return statistics.median(totals), median_phases


def run_grid(grid: str, repeats: int, workers: int) -> dict:
    cells = GRIDS[grid]
    results = []
    for name, dtype, num_arrays, array_size in cells:
        batch = _make_batch(dtype, num_arrays, array_size)
        fused_ms, fused_phases = _median_ms(
            GpuArraySort(SortConfig(fuse_phases=True)), batch, repeats
        )
        unfused_ms, unfused_phases = _median_ms(
            GpuArraySort(SortConfig(fuse_phases=False)), batch, repeats
        )
        sharded_ms, _ = _median_ms(
            GpuArraySort(parallel="thread", workers=workers), batch, repeats
        )
        results.append(
            {
                "name": name,
                "dtype": dtype,
                "num_arrays": num_arrays,
                "array_size": array_size,
                "repeats": repeats,
                "fused_ms": fused_ms,
                "unfused_ms": unfused_ms,
                "sharded_ms": sharded_ms,
                "fused_phase_ms": fused_phases,
                "unfused_phase_ms": unfused_phases,
                "speedup_fused_vs_unfused": unfused_ms / fused_ms,
                "speedup_sharded_vs_serial": fused_ms / sharded_ms,
            }
        )
        print(
            f"  {name:16s} {dtype:8s} N={num_arrays:<7d} n={array_size:<5d}"
            f"  fused {fused_ms:9.1f} ms  unfused {unfused_ms:9.1f} ms"
            f"  ({unfused_ms / fused_ms:.1f}x)",
            flush=True,
        )
    speedups = [r["speedup_fused_vs_unfused"] for r in results]
    return {
        "schema": SCHEMA,
        "grid": grid,
        "workers": workers,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "speedups": {
            "fused_vs_unfused_min": min(speedups),
            "fused_vs_unfused_median": statistics.median(speedups),
            "sharded_vs_serial_median": statistics.median(
                r["speedup_sharded_vs_serial"] for r in results
            ),
        },
    }


def check_schema(report: dict) -> list:
    """Return a list of schema violations (empty == valid)."""
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        results = []
    required = {
        "name": str,
        "dtype": str,
        "num_arrays": int,
        "array_size": int,
        "repeats": int,
        "fused_ms": (int, float),
        "unfused_ms": (int, float),
        "sharded_ms": (int, float),
        "fused_phase_ms": dict,
        "unfused_phase_ms": dict,
        "speedup_fused_vs_unfused": (int, float),
        "speedup_sharded_vs_serial": (int, float),
    }
    for i, cell in enumerate(results):
        for key, typ in required.items():
            if not isinstance(cell.get(key), typ):
                errors.append(f"results[{i}].{key} missing or not {typ}")
        for key in ("fused_ms", "unfused_ms", "sharded_ms"):
            value = cell.get(key)
            if isinstance(value, (int, float)) and value <= 0:
                errors.append(f"results[{i}].{key} must be > 0")
    speedups = report.get("speedups")
    if not isinstance(speedups, dict):
        errors.append("speedups must be a dict")
    else:
        for key in (
            "fused_vs_unfused_min",
            "fused_vs_unfused_median",
            "sharded_vs_serial_median",
        ):
            if not isinstance(speedups.get(key), (int, float)):
                errors.append(f"speedups.{key} missing or non-numeric")
    if "gate" in report:
        gate = report["gate"]
        if not isinstance(gate, dict) or not isinstance(
            gate.get("passed"), bool
        ):
            errors.append("gate must be a dict with a boolean 'passed'")
    return errors


def apply_gate(report: dict, min_speedup: float) -> bool:
    failures = [
        f"{r['name']}: fused {r['fused_ms']:.1f} ms vs unfused "
        f"{r['unfused_ms']:.1f} ms ({r['speedup_fused_vs_unfused']:.2f}x "
        f"< {min_speedup:.2f}x)"
        for r in report["results"]
        if r["speedup_fused_vs_unfused"] < min_speedup
    ]
    report["gate"] = {
        "min_speedup": min_speedup,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", choices=sorted(GRIDS), default="reference")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="thread workers for the sharded column (0 = cpu count)",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 if fused is slower than --min-speedup x unfused anywhere",
    )
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument(
        "--check-schema", type=Path, metavar="JSON",
        help="validate an existing report file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None:
        report = json.loads(args.check_schema.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        print(f"{args.check_schema}: " + ("INVALID" if errors else "ok"))
        return 1 if errors else 0

    workers = args.workers or (os.cpu_count() or 1)
    print(f"bench_hotpath grid={args.grid} repeats={args.repeats} "
          f"workers={workers}", flush=True)
    report = run_grid(args.grid, max(1, args.repeats), workers)
    ok = apply_gate(report, args.min_speedup) if args.gate else True

    errors = check_schema(report)
    if errors:  # self-check: the emitter must satisfy its own schema
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.gate:
        gate = report["gate"]
        for failure in gate["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(f"gate: {'passed' if ok else 'FAILED'} "
              f"(min_speedup={gate['min_speedup']})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
