#!/usr/bin/env python
"""Hot-path perf harness: fused vs unfused, serial vs sharded vs planned.

Standalone (no pytest-benchmark): measures the vectorized engine's code
paths over a dtype × (N, n) grid and emits ``BENCH_hotpath.json``
(schema ``bench-hotpath/v3``) — the artifact ``make bench-gate`` checks.

Engines measured per cell
-------------------------
``fused``    serial vectorized, phases 2+3 fused (the default);
``unfused``  serial vectorized, paper-faithful separate phases;
``sharded``  ThreadPoolEngine row shards;
``radix``    the flat non-comparison row sort (``planner="radix"``,
             :mod:`repro.core.radix`) — no phase-1 sampling, no bucket
             metadata;
``planner``  adaptive :class:`repro.planner.ExecutionPlanner` choosing
             the engine per batch shape (warmed up before timing so its
             exploration repeats are excluded).

All engines are measured round-robin *within* each repeat so slow drifts
in host load (thermal, cache, sibling processes) wash out across engines
instead of biasing whichever engine was measured last.

Gates
-----
``--gate`` exits non-zero unless the fused path is at least
``--min-speedup``× (default 1.0 — "fused must never be slower") faster
than the unfused path on **every** grid cell.  ``--gate-planner`` exits
non-zero unless the planner lands within ``--planner-tolerance`` (default
1.10×) of the best static engine on **every** cell — since the fused
serial engine is one of the static candidates, this also bounds the
planner against serial.  The committed artifact additionally records the
Fig. 4 fused-vs-unfused speedup, pinned ≥ 2 by
``tests/test_bench_hotpath.py``.

``--gate-radix`` exits non-zero unless, on every large-n cell where the
radix engine should win (``radix_expected`` — uniform float32/int32,
n ≥ 2000), radix beats fused by ``--radix-min-speedup`` (default 1.5×)
**and** the adaptive planner picked the radix engine there without any
flag.  ``--check-radix-gate FILE`` re-evaluates that gate from a
committed artifact's stored numbers (what ``make radix-gate`` runs), so
CI pins the claim without re-benchmarking.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_hotpath.py --grid smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --grid reference --gate --gate-planner --gate-radix
    PYTHONPATH=src python benchmarks/bench_hotpath.py --grid fig4 --out BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check-schema BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check-radix-gate BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

# Runnable straight from a checkout: python benchmarks/bench_hotpath.py
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core import GpuArraySort, SortConfig
from repro.planner import ExecutionPlanner

SCHEMA = "bench-hotpath/v3"
DEFAULT_PLANNER_TOLERANCE = 1.10
DEFAULT_RADIX_MIN_SPEEDUP = 1.5
# Fixed per-sort planning cost (plan lookup + timing + EMA update) is
# ~50 us; on sub-millisecond cells that fixed cost dwarfs the 10%
# relative tolerance, so the gate allows it as an absolute slack.
DEFAULT_PLANNER_SLACK_MS = 0.25
DEFAULT_PLANNER_WARMUP = 4

# (name, dtype, N, n) cells.  Shapes chosen so the unfused path stays
# tractable on one host core — the fused/unfused ratio, not absolute
# time, is what the gate consumes.
GRIDS = {
    "smoke": [
        ("smoke-f32", "float32", 200, 200),
        ("smoke-f64", "float64", 200, 200),
        ("smoke-i64", "int64", 100, 400),
    ],
    "reference": [
        ("ref-f32-small", "float32", 1000, 500),
        ("ref-f32-mid", "float32", 5000, 1000),
        ("ref-f64-mid", "float64", 2000, 1000),
        ("ref-i32-mid", "int32", 2000, 1000),
        ("ref-i64-small", "int64", 1000, 500),
        ("radix-f32-large", "float32", 1000, 4000),
        ("radix-i32-large", "int32", 1000, 4000),
    ],
    "fig4": [
        ("ref-f32-small", "float32", 1000, 500),
        ("ref-f32-mid", "float32", 5000, 1000),
        ("ref-f64-mid", "float64", 2000, 1000),
        ("ref-i32-mid", "int32", 2000, 1000),
        ("ref-i64-small", "int64", 1000, 500),
        ("radix-f32-large", "float32", 1000, 4000),
        ("radix-i32-large", "int32", 1000, 4000),
        ("fig4-f32", "float32", 100_000, 1000),
    ],
}

#: Cells where the radix engine is *expected* to beat fused (large n,
#: uniform keys — the regime the ROADMAP's radix item names).  The
#: radix gate applies only here; elsewhere radix is merely measured.
RADIX_EXPECTED = frozenset({"radix-f32-large", "radix-i32-large"})

STATIC_ENGINES = ("fused", "unfused", "sharded", "radix")


def _make_batch(dtype: str, num_arrays: int, array_size: int) -> np.ndarray:
    rng = np.random.default_rng(20160814)  # the paper's year+venue, fixed
    if np.dtype(dtype).kind == "f":
        return rng.uniform(0.0, 1e6, (num_arrays, array_size)).astype(dtype)
    return rng.integers(0, 2**30, (num_arrays, array_size)).astype(dtype)


def _measure_round_robin(sorters: dict, batch: np.ndarray, repeats: int):
    """Median wall ms + median per-phase ms per engine, interleaved.

    Each repeat times every engine once before moving to the next repeat,
    so host-load drift hits all engines equally.  Returns
    ``{key: (median_ms, median_phase_ms, last_result)}``.
    """
    totals = {key: [] for key in sorters}
    phases = {key: [] for key in sorters}
    last = {}
    for _ in range(repeats):
        for key, sorter in sorters.items():
            t0 = time.perf_counter()
            result = sorter.sort(batch)  # sort() copies; batch is reusable
            totals[key].append((time.perf_counter() - t0) * 1e3)
            phases[key].append(
                {k: v * 1e3 for k, v in result.phase_seconds.items()}
            )
            last[key] = result
    out = {}
    for key in sorters:
        # The planner may switch engines between repeats; median over the
        # repeats that actually ran each phase (keyed off the last repeat).
        keys = phases[key][-1].keys()
        median_phases = {
            k: statistics.median(p[k] for p in phases[key] if k in p)
            for k in keys
        }
        out[key] = (statistics.median(totals[key]), median_phases, last[key])
    return out


def run_grid(grid: str, repeats: int, workers: int,
             planner_warmup: int = DEFAULT_PLANNER_WARMUP) -> dict:
    cells = GRIDS[grid]
    results = []
    # One planner for the whole grid: calibration runs once and per-shape
    # observations never collide (shape-class keys).  cache_path=None keeps
    # benchmark runs hermetic — nothing read from or written to the user's
    # planner cache.
    planner = ExecutionPlanner(cache_path=None)
    for name, dtype, num_arrays, array_size in cells:
        batch = _make_batch(dtype, num_arrays, array_size)
        sorters = {
            "fused": GpuArraySort(SortConfig(fuse_phases=True)),
            "unfused": GpuArraySort(SortConfig(fuse_phases=False)),
            "sharded": GpuArraySort(parallel="thread", workers=workers),
            "radix": GpuArraySort(planner="radix"),
            "planner": GpuArraySort(planner=planner),
        }
        # Warm the planner so its exploration of candidate engines (and
        # the one-time host calibration) happens outside the timed region.
        for _ in range(max(0, planner_warmup)):
            sorters["planner"].sort(batch)
        measured = _measure_round_robin(sorters, batch, repeats)
        fused_ms, fused_phases, _ = measured["fused"]
        unfused_ms, unfused_phases, _ = measured["unfused"]
        sharded_ms, _, _ = measured["sharded"]
        radix_ms, radix_phases, _ = measured["radix"]
        planner_ms, planner_phases, planner_result = measured["planner"]
        plan = getattr(planner_result, "execution_plan", None)
        best_static_ms = min(fused_ms, unfused_ms, sharded_ms, radix_ms)
        results.append(
            {
                "name": name,
                "dtype": dtype,
                "num_arrays": num_arrays,
                "array_size": array_size,
                "repeats": repeats,
                "fused_ms": fused_ms,
                "unfused_ms": unfused_ms,
                "sharded_ms": sharded_ms,
                "radix_ms": radix_ms,
                "planner_ms": planner_ms,
                "fused_phase_ms": fused_phases,
                "unfused_phase_ms": unfused_phases,
                "radix_phase_ms": radix_phases,
                "planner_phase_ms": planner_phases,
                "planner_engine": plan.engine if plan is not None else "serial",
                "planner_plan_source": plan.source if plan is not None else "",
                "radix_expected": name in RADIX_EXPECTED,
                "speedup_fused_vs_unfused": unfused_ms / fused_ms,
                "speedup_sharded_vs_serial": fused_ms / sharded_ms,
                "speedup_radix_vs_fused": fused_ms / radix_ms,
                "planner_vs_best_static": planner_ms / best_static_ms,
            }
        )
        print(
            f"  {name:16s} {dtype:8s} N={num_arrays:<7d} n={array_size:<5d}"
            f"  fused {fused_ms:9.1f} ms  unfused {unfused_ms:9.1f} ms"
            f"  ({unfused_ms / fused_ms:.1f}x)"
            f"  radix {radix_ms:9.1f} ms"
            f"  planner {planner_ms:9.1f} ms"
            f" [{results[-1]['planner_engine']}]",
            flush=True,
        )
    speedups = [r["speedup_fused_vs_unfused"] for r in results]
    radix_expected_speedups = [
        r["speedup_radix_vs_fused"] for r in results if r["radix_expected"]
    ]
    return {
        "schema": SCHEMA,
        "grid": grid,
        "workers": workers,
        "planner_warmup": planner_warmup,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "speedups": {
            "fused_vs_unfused_min": min(speedups),
            "fused_vs_unfused_median": statistics.median(speedups),
            "sharded_vs_serial_median": statistics.median(
                r["speedup_sharded_vs_serial"] for r in results
            ),
            "planner_vs_best_static_max": max(
                r["planner_vs_best_static"] for r in results
            ),
            "radix_vs_fused_median": statistics.median(
                r["speedup_radix_vs_fused"] for r in results
            ),
            # Over the radix_expected cells only; None on grids (smoke)
            # that carry no such cell.
            "radix_vs_fused_expected_min": (
                min(radix_expected_speedups)
                if radix_expected_speedups
                else None
            ),
        },
    }


def check_schema(report: dict) -> list:
    """Return a list of schema violations (empty == valid)."""
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        results = []
    required = {
        "name": str,
        "dtype": str,
        "num_arrays": int,
        "array_size": int,
        "repeats": int,
        "fused_ms": (int, float),
        "unfused_ms": (int, float),
        "sharded_ms": (int, float),
        "radix_ms": (int, float),
        "planner_ms": (int, float),
        "fused_phase_ms": dict,
        "unfused_phase_ms": dict,
        "radix_phase_ms": dict,
        "planner_phase_ms": dict,
        "planner_engine": str,
        "radix_expected": bool,
        "speedup_fused_vs_unfused": (int, float),
        "speedup_sharded_vs_serial": (int, float),
        "speedup_radix_vs_fused": (int, float),
        "planner_vs_best_static": (int, float),
    }
    for i, cell in enumerate(results):
        for key, typ in required.items():
            if not isinstance(cell.get(key), typ):
                errors.append(f"results[{i}].{key} missing or not {typ}")
        for key in ("fused_ms", "unfused_ms", "sharded_ms", "radix_ms",
                    "planner_ms"):
            value = cell.get(key)
            if isinstance(value, (int, float)) and value <= 0:
                errors.append(f"results[{i}].{key} must be > 0")
    speedups = report.get("speedups")
    if not isinstance(speedups, dict):
        errors.append("speedups must be a dict")
    else:
        for key in (
            "fused_vs_unfused_min",
            "fused_vs_unfused_median",
            "sharded_vs_serial_median",
            "planner_vs_best_static_max",
            "radix_vs_fused_median",
        ):
            if not isinstance(speedups.get(key), (int, float)):
                errors.append(f"speedups.{key} missing or non-numeric")
        expected_min = speedups.get("radix_vs_fused_expected_min", None)
        has_expected = any(
            isinstance(cell, dict) and cell.get("radix_expected")
            for cell in results
        )
        if has_expected and not isinstance(expected_min, (int, float)):
            errors.append(
                "speedups.radix_vs_fused_expected_min missing or non-numeric "
                "despite radix_expected cells"
            )
    for block in ("gate", "planner_gate", "radix_gate"):
        if block in report:
            gate = report[block]
            if not isinstance(gate, dict) or not isinstance(
                gate.get("passed"), bool
            ):
                errors.append(f"{block} must be a dict with a boolean 'passed'")
    return errors


def apply_gate(report: dict, min_speedup: float) -> bool:
    failures = [
        f"{r['name']}: fused {r['fused_ms']:.1f} ms vs unfused "
        f"{r['unfused_ms']:.1f} ms ({r['speedup_fused_vs_unfused']:.2f}x "
        f"< {min_speedup:.2f}x)"
        for r in report["results"]
        if r["speedup_fused_vs_unfused"] < min_speedup
    ]
    report["gate"] = {
        "min_speedup": min_speedup,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def apply_planner_gate(report: dict, tolerance: float,
                       slack_ms: float = DEFAULT_PLANNER_SLACK_MS) -> bool:
    """Planner must be within ``tolerance``× (+ ``slack_ms``) of the best
    static engine.

    The fused serial engine is one of the static candidates, so passing
    this gate also guarantees the planner is never materially slower than
    the serial path.  ``slack_ms`` absorbs the fixed per-sort planning
    cost, which is invisible at reference scale but dominates cells that
    finish in well under a millisecond.
    """
    failures = []
    for r in report["results"]:
        best = min(r[f"{engine}_ms"] for engine in STATIC_ENGINES)
        if r["planner_ms"] > tolerance * best + slack_ms:
            failures.append(
                f"{r['name']}: planner {r['planner_ms']:.1f} ms "
                f"[{r['planner_engine']}] vs best static {best:.1f} ms "
                f"({r['planner_ms'] / best:.2f}x > {tolerance:.2f}x "
                f"+ {slack_ms:.2f} ms)"
            )
    report["planner_gate"] = {
        "tolerance": tolerance,
        "slack_ms": slack_ms,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def apply_radix_gate(
    report: dict, min_speedup: float = DEFAULT_RADIX_MIN_SPEEDUP
) -> bool:
    """On every ``radix_expected`` cell, radix must beat fused by
    ``min_speedup``× **and** the adaptive planner must have picked the
    radix engine there on its own.

    Both conditions are recomputed from the stored per-cell numbers, so
    the gate can be re-applied to a committed artifact
    (``--check-radix-gate``) without re-benchmarking — the same pattern
    as the chaos gate.
    """
    failures = []
    expected = [r for r in report["results"] if r.get("radix_expected")]
    if not expected:
        failures.append(
            "no radix_expected cells in this grid - the radix gate needs "
            "at least one large-n cell where radix should win"
        )
    for r in expected:
        if r["speedup_radix_vs_fused"] < min_speedup:
            failures.append(
                f"{r['name']}: radix {r['radix_ms']:.1f} ms vs fused "
                f"{r['fused_ms']:.1f} ms ({r['speedup_radix_vs_fused']:.2f}x "
                f"< {min_speedup:.2f}x)"
            )
        if r["planner_engine"] != "radix":
            failures.append(
                f"{r['name']}: adaptive planner settled on "
                f"{r['planner_engine']!r}, not 'radix'"
            )
    report["radix_gate"] = {
        "min_speedup": min_speedup,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", choices=sorted(GRIDS), default="reference")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="thread workers for the sharded column (0 = cpu count)",
    )
    parser.add_argument(
        "--planner-warmup", type=int, default=DEFAULT_PLANNER_WARMUP,
        help="untimed planner repeats per cell so engine exploration and "
             "host calibration settle before measurement",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 if fused is slower than --min-speedup x unfused anywhere",
    )
    parser.add_argument("--min-speedup", type=float, default=1.0)
    parser.add_argument(
        "--gate-planner", action="store_true",
        help="exit 1 if the planner exceeds --planner-tolerance x the best "
             "static engine on any cell",
    )
    parser.add_argument(
        "--planner-tolerance", type=float, default=DEFAULT_PLANNER_TOLERANCE,
    )
    parser.add_argument(
        "--planner-slack-ms", type=float, default=DEFAULT_PLANNER_SLACK_MS,
        help="absolute allowance on top of the relative tolerance, "
             "covering fixed planning overhead on sub-millisecond cells",
    )
    parser.add_argument(
        "--gate-radix", action="store_true",
        help="exit 1 unless radix beats fused by --radix-min-speedup x on "
             "every radix_expected cell and the planner picked it there",
    )
    parser.add_argument(
        "--radix-min-speedup", type=float, default=DEFAULT_RADIX_MIN_SPEEDUP,
    )
    parser.add_argument(
        "--check-schema", type=Path, metavar="JSON",
        help="validate an existing report file and exit (no benchmarking)",
    )
    parser.add_argument(
        "--check-radix-gate", type=Path, metavar="JSON",
        help="re-apply the radix gate to a committed report file and exit "
             "(no benchmarking); this is what 'make radix-gate' runs",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None:
        report = json.loads(args.check_schema.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        print(f"{args.check_schema}: " + ("INVALID" if errors else "ok"))
        return 1 if errors else 0

    if args.check_radix_gate is not None:
        report = json.loads(args.check_radix_gate.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        if errors:
            print(f"{args.check_radix_gate}: INVALID")
            return 1
        passed = apply_radix_gate(report, args.radix_min_speedup)
        gate = report["radix_gate"]
        for failure in gate["failures"]:
            print(f"RADIX GATE FAIL: {failure}", file=sys.stderr)
        print(f"{args.check_radix_gate}: radix gate "
              f"{'passed' if passed else 'FAILED'} "
              f"(min_speedup={gate['min_speedup']})")
        return 0 if passed else 1

    workers = args.workers or (os.cpu_count() or 1)
    print(f"bench_hotpath grid={args.grid} repeats={args.repeats} "
          f"workers={workers} planner_warmup={args.planner_warmup}",
          flush=True)
    report = run_grid(args.grid, max(1, args.repeats), workers,
                      planner_warmup=args.planner_warmup)
    ok = apply_gate(report, args.min_speedup) if args.gate else True
    if args.gate_planner:
        ok = apply_planner_gate(
            report, args.planner_tolerance, args.planner_slack_ms
        ) and ok
    if args.gate_radix:
        ok = apply_radix_gate(report, args.radix_min_speedup) and ok

    errors = check_schema(report)
    if errors:  # self-check: the emitter must satisfy its own schema
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.gate:
        gate = report["gate"]
        for failure in gate["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(f"gate: {'passed' if gate['passed'] else 'FAILED'} "
              f"(min_speedup={gate['min_speedup']})")
    if args.gate_planner:
        gate = report["planner_gate"]
        for failure in gate["failures"]:
            print(f"PLANNER GATE FAIL: {failure}", file=sys.stderr)
        print(f"planner gate: {'passed' if gate['passed'] else 'FAILED'} "
              f"(tolerance={gate['tolerance']})")
    if args.gate_radix:
        gate = report["radix_gate"]
        for failure in gate["failures"]:
            print(f"RADIX GATE FAIL: {failure}", file=sys.stderr)
        print(f"radix gate: {'passed' if gate['passed'] else 'FAILED'} "
              f"(min_speedup={gate['min_speedup']})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
