#!/usr/bin/env python
"""Chaos harness: multi-tenant SLOs under injected faults.

Standalone (no pytest-benchmark): replays deterministic
:class:`repro.service.ChaosScenario` cells — a fixed tenant mix with one
NaN-poisoning tenant, a seeded :class:`repro.gpusim.faults.FaultPlan`
(transient kernel faults, an OOM window, ECC-style corruption), and a
quota-bounded flooding tenant — and emits ``BENCH_chaos.json`` (schema
``bench-chaos/v1``), the artifact ``make chaos-gate`` checks.

What each cell measures
-----------------------
Every cell runs three phases against fresh resilient-backed services
(see :func:`repro.service.run_scenario`):

``baseline``  the tenant mix with no fault plan — the fault-free SLO
              reference;
``faulted``   the identical mix with the fault plan attached — the only
              variable is the injected faults;
``flood``     the mix plus a flooding tenant offering far more than its
              fair share, probing admission fairness.

Gates
-----
``--gate`` (and ``--check-gate FILE`` on a committed artifact) exits
non-zero unless, at the **chaos-mid** cell,

* **isolation** — quarantined rows failed only the poisoning tenant's
  requests (zero cross-tenant quarantine errors), and the probe
  actually fired (the poison tenant saw at least one quarantine);
* **latency** — faulted p99 is within ``--p99-budget-factor`` (default
  2.0×) of the fault-free p99, over non-poison tenants;
* **fairness** — no innocent tenant's rejection rate exceeded
  ``--max-rejection-rate`` (default 0.05) during the flood phase.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_chaos.py --grid smoke
    PYTHONPATH=src python benchmarks/bench_chaos.py --grid load --gate
    PYTHONPATH=src python benchmarks/bench_chaos.py --grid load --gate --out BENCH_chaos.json
    PYTHONPATH=src python benchmarks/bench_chaos.py --check-gate BENCH_chaos.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

# Runnable straight from a checkout: python benchmarks/bench_chaos.py
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.service import (
    ChaosScenario,
    ChaosTenant,
    evaluate_slos,
    run_scenario,
)

SCHEMA = "bench-chaos/v1"
DEFAULT_P99_BUDGET_FACTOR = 2.0
DEFAULT_MAX_REJECTION_RATE = 0.05

# (name, requests_per_tenant, rate_rps, array_size).  ``chaos-mid`` is
# the gated cell — enough traffic that faults land mid-stream and the
# flooder genuinely contends, small enough for CI.  ``chaos-low`` is
# reported, never gated.
GRIDS = {
    "smoke": [
        ("chaos-smoke", 40, 400.0, 64),
    ],
    "load": [
        ("chaos-low", 80, 400.0, 128),
        ("chaos-mid", 160, 600.0, 128),
        ("chaos-high", 240, 800.0, 128),
    ],
}
GATE_CELL = "chaos-mid"

#: The poisoning tenant's name in every scenario (the blast-radius probe).
POISON_TENANT = "poison"
FLOOD_TENANT = "flood"


def make_scenario(name: str, requests: int, rate_rps: float,
                  array_size: int, *, seed: int) -> ChaosScenario:
    """One deterministic chaos cell.

    Three well-behaved-ish tenants (``alpha`` weighted 2×, ``beta`` and
    ``poison`` at 1×; ``poison`` NaN-poisons a quarter of its requests)
    plus a quota-bounded flooder offering ~8× the per-tenant rate.  The
    fault schedule is fixed per seed: a 10 % transient kernel-fault
    rate, one OOM-pressure window early on, and 2 % ECC-style output
    corruption — all retried/recovered by the resilient backend, which
    is exactly the latency tax the gate budgets.
    """
    return ChaosScenario(
        name=name,
        tenants=(
            ChaosTenant(
                name="alpha", weight=2.0, clients=2,
                total_requests=requests, rate_rps=rate_rps,
            ),
            ChaosTenant(
                name="beta", weight=1.0, clients=2,
                total_requests=requests, rate_rps=rate_rps,
            ),
            ChaosTenant(
                name=POISON_TENANT, weight=1.0, clients=1,
                total_requests=max(20, requests // 2), rate_rps=rate_rps / 2,
                poison_nan_rate=0.25,
            ),
        ),
        flood_tenant=ChaosTenant(
            name=FLOOD_TENANT, weight=1.0, clients=2,
            total_requests=requests * 3, rate_rps=rate_rps * 8,
            quota_rows=96,
        ),
        fault_seed=seed,
        kernel_fault_rate=0.10,
        oom_windows=((8, 14),),
        corruption_rate=0.02,
        batch_target_rows=64,
        linger_ms=1.0,
        max_queue_rows=2048,
        array_size=array_size,
        seed=seed,
    )


def run_cell(name: str, requests: int, rate_rps: float, array_size: int,
             *, seed: int, p99_budget_factor: float,
             max_rejection_rate: float) -> dict:
    scenario = make_scenario(
        name, requests, rate_rps, array_size, seed=seed
    )
    report = run_scenario(scenario)
    slos = evaluate_slos(
        report,
        p99_budget_factor=p99_budget_factor,
        max_rejection_rate=max_rejection_rate,
    )
    return {
        "name": name,
        "requests_per_tenant": requests,
        "rate_rps": rate_rps,
        "array_size": array_size,
        "poison_tenant": POISON_TENANT,
        "flood_tenant": FLOOD_TENANT,
        "report": report.as_dict(),
        "slos": slos,
    }


def run_grid(grid: str, *, seed: int, p99_budget_factor: float,
             max_rejection_rate: float) -> dict:
    results = []
    for name, requests, rate_rps, array_size in GRIDS[grid]:
        result = run_cell(
            name, requests, rate_rps, array_size, seed=seed,
            p99_budget_factor=p99_budget_factor,
            max_rejection_rate=max_rejection_rate,
        )
        results.append(result)
        slos = result["slos"]
        ratio = slos["p99_ratio"]
        print(
            f"  {name:11s} reqs/tenant={requests:<4d}"
            f"  cross-quarantines={slos['cross_tenant_quarantines']}"
            f"  p99 ratio={ratio if ratio is None else format(ratio, '.2f')}"
            f"  innocents' max rejection="
            f"{max(slos['innocent_rejection_rates'].values(), default=0.0):.3f}"
            f"  {'ok' if slos['ok'] else 'VIOLATED'}",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "grid": grid,
        "seed": seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }


def check_schema(report: dict) -> list:
    """Return a list of schema violations (empty == valid)."""
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        results = []
    slo_required = {
        "cross_tenant_quarantines": int,
        "isolation_ok": bool,
        "latency_ok": bool,
        "fairness_ok": bool,
        "innocent_rejection_rates": dict,
        "ok": bool,
    }
    for i, cell in enumerate(results):
        for key, typ in (
            ("name", str),
            ("requests_per_tenant", int),
            ("poison_tenant", str),
            ("flood_tenant", str),
            ("report", dict),
            ("slos", dict),
        ):
            if not isinstance(cell.get(key), typ):
                errors.append(f"results[{i}].{key} missing or not {typ}")
        slos = cell.get("slos")
        if isinstance(slos, dict):
            for key, typ in slo_required.items():
                if not isinstance(slos.get(key), typ):
                    errors.append(f"results[{i}].slos.{key} missing or not {typ}")
            for key in ("baseline_p99_ms", "faulted_p99_ms", "p99_ratio"):
                value = slos.get(key)
                if value is not None and not isinstance(value, (int, float)):
                    errors.append(
                        f"results[{i}].slos.{key} must be numeric or null"
                    )
        block = cell.get("report")
        if isinstance(block, dict):
            for phase in ("baseline", "faulted", "flood"):
                if phase not in block:
                    errors.append(f"results[{i}].report.{phase} missing")
    return errors


def _poison_quarantined(cell: dict) -> int:
    """Quarantine count the poison tenant saw in the faulted phase."""
    try:
        traffic = cell["report"]["faulted"]["traffic"]
        return int(traffic[cell["poison_tenant"]]["quarantined"])
    except (KeyError, TypeError, ValueError):
        return 0


def apply_gate(report: dict, *, p99_budget_factor: float,
               max_rejection_rate: float,
               cell_name: str = GATE_CELL) -> bool:
    """Gate the mid chaos cell from the *stored numbers*, not verdicts.

    Recomputing from ``cross_tenant_quarantines`` / ``p99_ratio`` /
    ``innocent_rejection_rates`` means ``--check-gate`` on a committed
    artifact enforces the thresholds passed *now*, and a hand-edited
    ``ok: true`` cannot sneak past.
    """
    failures = []
    cell = next(
        (r for r in report["results"] if r["name"] == cell_name), None
    )
    if cell is None:
        failures.append(f"gate cell {cell_name!r} not in results "
                        "(run with a grid that includes it)")
    else:
        slos = cell["slos"]
        cross = slos.get("cross_tenant_quarantines")
        if cross != 0:
            failures.append(
                f"{cell_name}: {cross} quarantine failures outside the "
                f"poison tenant (isolation contract broken)"
            )
        if _poison_quarantined(cell) == 0:
            failures.append(
                f"{cell_name}: poison tenant saw no quarantines in the "
                "faulted phase — the isolation probe never fired"
            )
        ratio = slos.get("p99_ratio")
        if not isinstance(ratio, (int, float)):
            failures.append(f"{cell_name}: no faulted/baseline p99 ratio recorded")
        elif ratio > p99_budget_factor:
            failures.append(
                f"{cell_name}: faulted p99 {slos.get('faulted_p99_ms'):.2f} ms "
                f"is {ratio:.2f}x the fault-free "
                f"{slos.get('baseline_p99_ms'):.2f} ms "
                f"(budget {p99_budget_factor:.2f}x)"
            )
        rates = slos.get("innocent_rejection_rates") or {}
        for tenant, rate in sorted(rates.items()):
            if rate > max_rejection_rate:
                failures.append(
                    f"{cell_name}: tenant {tenant!r} rejection rate "
                    f"{rate:.3f} exceeds {max_rejection_rate:.3f} under flood"
                )
        if not rates:
            failures.append(
                f"{cell_name}: no innocent rejection rates recorded "
                "(flood phase missing?)"
            )
    report["gate"] = {
        "cell": cell_name,
        "p99_budget_factor": p99_budget_factor,
        "max_rejection_rate": max_rejection_rate,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def _print_gate(report: dict) -> None:
    gate = report["gate"]
    for failure in gate["failures"]:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    print(f"gate: {'passed' if gate['passed'] else 'FAILED'} "
          f"(cell={gate['cell']}, "
          f"p99_budget_factor={gate['p99_budget_factor']}, "
          f"max_rejection_rate={gate['max_rejection_rate']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", choices=sorted(GRIDS), default="load")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless the mid cell holds all three chaos SLOs",
    )
    parser.add_argument("--p99-budget-factor", type=float,
                        default=DEFAULT_P99_BUDGET_FACTOR)
    parser.add_argument("--max-rejection-rate", type=float,
                        default=DEFAULT_MAX_REJECTION_RATE)
    parser.add_argument(
        "--check-schema", type=Path, metavar="JSON",
        help="validate an existing report file and exit (no chaos run)",
    )
    parser.add_argument(
        "--check-gate", type=Path, metavar="JSON",
        help="validate an existing report file AND re-apply the gate to "
             "its stored numbers; exits 1 on violation (no chaos run)",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None or args.check_gate is not None:
        path = args.check_schema or args.check_gate
        report = json.loads(path.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        print(f"{path}: " + ("INVALID" if errors else "schema ok"))
        if errors:
            return 1
        if args.check_gate is not None:
            ok = apply_gate(
                report,
                p99_budget_factor=args.p99_budget_factor,
                max_rejection_rate=args.max_rejection_rate,
            )
            _print_gate(report)
            return 0 if ok else 1
        return 0

    print(f"bench_chaos grid={args.grid} seed={args.seed}", flush=True)
    report = run_grid(
        args.grid, seed=args.seed,
        p99_budget_factor=args.p99_budget_factor,
        max_rejection_rate=args.max_rejection_rate,
    )
    ok = (apply_gate(report,
                     p99_budget_factor=args.p99_budget_factor,
                     max_rejection_rate=args.max_rejection_rate)
          if args.gate else True)

    errors = check_schema(report)
    if errors:  # self-check: the emitter must satisfy its own schema
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.gate:
        _print_gate(report)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
