"""Fig. 5 — runtime vs number of arrays, array size n = 2000."""

from repro.baselines.sta import StaSorter
from repro.core import GpuArraySort
from repro.workloads import uniform_arrays

from _runtime_common import report_figure

N_ARRAY = 2000
N_WALL = 1000


class TestFig5:
    def test_fig5_series_and_claims(self):
        report_figure("Fig 5", N_ARRAY)

    def test_wall_gpu_arraysort(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=5)
        sorter = GpuArraySort()
        benchmark(lambda: sorter.sort(batch))

    def test_wall_sta(self, benchmark):
        batch = uniform_arrays(N_WALL, N_ARRAY, seed=5)
        sorter = StaSorter()
        benchmark(lambda: sorter.sort(batch))
