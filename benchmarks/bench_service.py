#!/usr/bin/env python
"""Serving harness: batched SortService vs per-request baseline under load.

Standalone (no pytest-benchmark): drives synthetic closed-loop traffic
through :class:`repro.service.SortService` across a ladder of load cells
and emits ``BENCH_service.json`` (schema ``bench-service/v1``) — the
artifact ``make service-gate`` checks.

What each cell measures
-----------------------
A fleet of client threads issues small sort requests (rows-per-request
mix defaults to 70% single-row, 30% four-row) against

``batched``    the sort service — dynamic batcher coalesces queued
               requests into one fused sort per lane, results are
               demultiplexed back to per-caller futures;
``unbatched``  the baseline an adopter without the service layer gets:
               each client thread calls ``GpuArraySort.sort`` once per
               request, paying the ~150 us per-launch fixed cost every
               time.

Load scales with the client count (closed loop: a client only issues
its next request after the previous one resolves), which is exactly the
paper's amortization story replayed at the serving layer: the unbatched
baseline is pinned near ``1 / fixed_cost`` requests/s regardless of
concurrency, while the service's per-batch cost is shared by every
request in the batch.

Gates
-----
``--gate`` exits non-zero unless, at the **mid** load cell,

* batched throughput is at least ``--min-speedup``× (default 2.0) the
  unbatched baseline, and
* batched p99 latency stays within the cell's latency budget:
  ``linger_ms + deadline_ms`` when the cell sets a deadline, else
  ``linger_ms + --p99-budget-ms``.

Usage
-----
    PYTHONPATH=src python benchmarks/bench_service.py --grid smoke
    PYTHONPATH=src python benchmarks/bench_service.py --grid load --gate
    PYTHONPATH=src python benchmarks/bench_service.py --grid load --out BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --check-schema BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

# Runnable straight from a checkout: python benchmarks/bench_service.py
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core.config import SortConfig
from repro.service import (
    SortService,
    parse_size_mix,
    run_service_traffic,
    run_unbatched_traffic,
)

SCHEMA = "bench-service/v1"
DEFAULT_MIN_SPEEDUP = 2.0
#: p99 allowance past the linger for cells without an explicit deadline:
#: queueing + one batch sort + demux copies on a loaded host.
DEFAULT_P99_BUDGET_MS = 25.0
DEFAULT_SIZE_MIX = "1:0.7,4:0.3"

# (name, clients, total_requests, array_size, linger_ms, deadline_ms).
# ``load-mid`` is the gated cell: enough concurrency that batches fill
# before the linger expires, small enough to run in CI.  ``load-low``
# documents the regime where batching cannot win (too few outstanding
# requests to coalesce — throughput is linger-bound); it is reported,
# never gated.
GRIDS = {
    "smoke": [
        ("smoke", 8, 400, 128, 0.3, None),
    ],
    "load": [
        ("load-low", 4, 1200, 256, 0.3, None),
        ("load-mid", 16, 2400, 256, 0.3, 50.0),
        ("load-high", 32, 3200, 256, 0.3, None),
    ],
}
GATE_CELL = "load-mid"


def run_cell(name, clients, total_requests, array_size, linger_ms,
             deadline_ms, *, size_mix, seed, planner=None):
    config = SortConfig()
    service = SortService(
        config=config, planner=planner, linger_ms=linger_ms
    )
    with service:
        batched = run_service_traffic(
            service,
            clients=clients,
            total_requests=total_requests,
            array_size=array_size,
            size_mix=size_mix,
            deadline_s=deadline_ms / 1e3 if deadline_ms is not None else None,
            seed=seed,
        )
        stats = service.stats()
    baseline = run_unbatched_traffic(
        clients=clients,
        total_requests=total_requests,
        array_size=array_size,
        size_mix=size_mix,
        seed=seed,
        config=config,
    )
    speedup = (batched.throughput_rps / baseline.throughput_rps
               if baseline.throughput_rps > 0 else 0.0)
    return {
        "name": name,
        "clients": clients,
        "total_requests": total_requests,
        "array_size": array_size,
        "linger_ms": linger_ms,
        "deadline_ms": deadline_ms,
        "batched": batched.as_dict(),
        "unbatched": baseline.as_dict(),
        "service_stats": stats.as_dict(),
        "speedup_batched_vs_unbatched": speedup,
    }


def run_grid(grid: str, *, size_mix, seed: int, planner=None) -> dict:
    results = []
    for cell in GRIDS[grid]:
        name, clients, total_requests, array_size, linger_ms, deadline_ms = cell
        result = run_cell(
            name, clients, total_requests, array_size, linger_ms,
            deadline_ms, size_mix=size_mix, seed=seed, planner=planner,
        )
        results.append(result)
        pct = result["batched"]["latency_ms"]
        print(
            f"  {name:10s} clients={clients:<3d} n={array_size:<5d}"
            f"  batched {result['batched']['throughput_rps']:8.0f} req/s"
            f"  unbatched {result['unbatched']['throughput_rps']:8.0f} req/s"
            f"  ({result['speedup_batched_vs_unbatched']:.2f}x)"
            f"  p99 {pct.get('p99', float('nan')):.2f} ms",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "grid": grid,
        "size_mix": [[rows, weight] for rows, weight in size_mix],
        "seed": seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "speedups": {
            "batched_vs_unbatched_max": max(
                r["speedup_batched_vs_unbatched"] for r in results
            ),
            "batched_vs_unbatched_by_cell": {
                r["name"]: r["speedup_batched_vs_unbatched"] for r in results
            },
        },
    }


def check_schema(report: dict) -> list:
    """Return a list of schema violations (empty == valid)."""
    errors = []
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {report.get('schema')!r}")
    results = report.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        results = []
    required = {
        "name": str,
        "clients": int,
        "total_requests": int,
        "array_size": int,
        "linger_ms": (int, float),
        "batched": dict,
        "unbatched": dict,
        "service_stats": dict,
        "speedup_batched_vs_unbatched": (int, float),
    }
    side_required = {
        "requests_issued": int,
        "completed": int,
        "wall_seconds": (int, float),
        "throughput_rps": (int, float),
        "throughput_rows_per_s": (int, float),
        "latency_ms": dict,
    }
    for i, cell in enumerate(results):
        for key, typ in required.items():
            if not isinstance(cell.get(key), typ):
                errors.append(f"results[{i}].{key} missing or not {typ}")
        for side in ("batched", "unbatched"):
            block = cell.get(side)
            if not isinstance(block, dict):
                continue
            for key, typ in side_required.items():
                if not isinstance(block.get(key), typ):
                    errors.append(
                        f"results[{i}].{side}.{key} missing or not {typ}"
                    )
            latency = block.get("latency_ms")
            if isinstance(latency, dict):
                for pkey in ("p50", "p95", "p99"):
                    if not isinstance(latency.get(pkey), (int, float)):
                        errors.append(
                            f"results[{i}].{side}.latency_ms.{pkey} "
                            "missing or non-numeric"
                        )
    speedups = report.get("speedups")
    if not isinstance(speedups, dict) or not isinstance(
        speedups.get("batched_vs_unbatched_max"), (int, float)
    ):
        errors.append("speedups.batched_vs_unbatched_max missing or non-numeric")
    if "gate" in report:
        gate = report["gate"]
        if not isinstance(gate, dict) or not isinstance(gate.get("passed"), bool):
            errors.append("gate must be a dict with a boolean 'passed'")
    return errors


def apply_gate(report: dict, min_speedup: float,
               p99_budget_ms: float = DEFAULT_P99_BUDGET_MS,
               cell_name: str = GATE_CELL) -> bool:
    """Gate the mid load cell: speedup and p99-within-budget."""
    failures = []
    cell = next(
        (r for r in report["results"] if r["name"] == cell_name), None
    )
    if cell is None:
        failures.append(f"gate cell {cell_name!r} not in results "
                        "(run with a grid that includes it)")
    else:
        speedup = cell["speedup_batched_vs_unbatched"]
        if speedup < min_speedup:
            failures.append(
                f"{cell_name}: batched "
                f"{cell['batched']['throughput_rps']:.0f} req/s vs unbatched "
                f"{cell['unbatched']['throughput_rps']:.0f} req/s "
                f"({speedup:.2f}x < {min_speedup:.2f}x)"
            )
        budget_ms = cell["linger_ms"] + (
            cell["deadline_ms"] if cell.get("deadline_ms") is not None
            else p99_budget_ms
        )
        p99 = cell["batched"]["latency_ms"].get("p99")
        if not isinstance(p99, (int, float)):
            failures.append(f"{cell_name}: no batched p99 recorded")
        elif p99 > budget_ms:
            failures.append(
                f"{cell_name}: batched p99 {p99:.2f} ms exceeds budget "
                f"{budget_ms:.2f} ms (linger + deadline)"
            )
    report["gate"] = {
        "cell": cell_name,
        "min_speedup": min_speedup,
        "p99_budget_ms": p99_budget_ms,
        "passed": not failures,
        "failures": failures,
    }
    return not failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", choices=sorted(GRIDS), default="load")
    parser.add_argument("--size-mix", default=DEFAULT_SIZE_MIX,
                        metavar="R:W,...")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--planner", choices=["auto", "fused", "sharded"], default=None,
        help="execution planner handed to the service's backing sorter",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless the mid cell hits --min-speedup x unbatched "
             "with p99 inside the latency budget",
    )
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP)
    parser.add_argument(
        "--p99-budget-ms", type=float, default=DEFAULT_P99_BUDGET_MS,
        help="p99 allowance past the linger for cells without a deadline",
    )
    parser.add_argument(
        "--check-schema", type=Path, metavar="JSON",
        help="validate an existing report file and exit (no benchmarking)",
    )
    args = parser.parse_args(argv)

    if args.check_schema is not None:
        report = json.loads(args.check_schema.read_text())
        errors = check_schema(report)
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        print(f"{args.check_schema}: " + ("INVALID" if errors else "ok"))
        return 1 if errors else 0

    size_mix = parse_size_mix(args.size_mix)
    print(f"bench_service grid={args.grid} size_mix={args.size_mix} "
          f"seed={args.seed}", flush=True)
    report = run_grid(args.grid, size_mix=size_mix, seed=args.seed,
                      planner=args.planner)
    ok = (apply_gate(report, args.min_speedup, args.p99_budget_ms)
          if args.gate else True)

    errors = check_schema(report)
    if errors:  # self-check: the emitter must satisfy its own schema
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.gate:
        gate = report["gate"]
        for failure in gate["failures"]:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        print(f"gate: {'passed' if gate['passed'] else 'FAILED'} "
              f"(cell={gate['cell']}, min_speedup={gate['min_speedup']})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
