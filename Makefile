# Convenience targets for the GPU-ArraySort reproduction.

PYTHON ?= python

.PHONY: install test test-resilience bench bench-claims report examples figures table1 clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-resilience:
	$(PYTHON) -m pytest tests/ -m faultinject -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-claims:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -s

report:
	$(PYTHON) -m repro report

figures:
	$(PYTHON) -m repro figures

table1:
	$(PYTHON) -m repro table1

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
