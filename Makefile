# Convenience targets for the GPU-ArraySort reproduction.

PYTHON ?= python

.PHONY: install check lint statan sanitize test test-resilience test-service bench bench-claims bench-smoke bench-gate bench-hotpath planner-gate radix-gate service-gate bench-service chaos-smoke chaos-gate bench-chaos fleet-smoke fleet-gate bench-fleet capacity-smoke capacity-gate bench-capacity report examples figures table1 clean

# Smoke benchmark artifacts are throwaway sanity outputs; they go to the
# temp dir, never the repo root (gate artifacts ARE committed).
SMOKE_DIR ?= $(if $(TMPDIR),$(TMPDIR),/tmp)

install:
	pip install -e . --no-build-isolation

# The default pre-PR gate: static analysis first (fails in seconds),
# then the test suite, the sanitized checked-build subset, then the
# radix and fleet gates re-applied to the committed benchmark artifacts
# (no re-benchmarking; seconds each).
check: lint test sanitize radix-gate fleet-gate capacity-gate

# ruff and mypy run when installed (CI installs them; a bare container
# may not have them) — statan always runs, it is stdlib-only.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		echo "== ruff =="; ruff check src tests || exit 1; \
	else echo "== ruff == (not installed, skipped)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		echo "== mypy =="; mypy || exit 1; \
	else echo "== mypy == (not installed, skipped)"; fi
	@echo "== statan =="
	PYTHONPATH=src $(PYTHON) -m repro statan src benchmarks

# Project-native static analysis alone (see docs/static-analysis.md).
statan:
	PYTHONPATH=src $(PYTHON) -m repro statan src benchmarks

# Checked build: re-run the concurrent tiers (service, fleet, capacity,
# chaos) with the runtime concurrency sanitizer armed — instrumented
# locks (guarded-by + lock-order) and region epochs (stale zero-copy
# views).  Minutes, not hours; see docs/static-analysis.md.
sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=src $(PYTHON) -m pytest tests/ \
		-m "service or fleet or capacity or chaos" -q

# The chaos-marked tests run as part of the default suite (they are in
# tests/), so `make test` already covers the seeded chaos smoke path.
test:
	$(PYTHON) -m pytest tests/

test-resilience:
	$(PYTHON) -m pytest tests/ -m faultinject -q

test-service:
	$(PYTHON) -m pytest tests/ -m service -q

# Seeded small-grid chaos run: the chaos-marked tests plus one smoke
# cell of the live harness.  Seconds; safe for every CI run.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m chaos -q
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py --grid smoke \
		--out $(SMOKE_DIR)/BENCH_chaos_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py \
		--check-schema $(SMOKE_DIR)/BENCH_chaos_smoke.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-claims:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable -s

# Tiny grid + v2 schema self-check (incl. the planner column); seconds.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py --grid smoke \
		--repeats 2 --out $(SMOKE_DIR)/BENCH_hotpath_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py \
		--check-schema $(SMOKE_DIR)/BENCH_hotpath_smoke.json

# Perf-regression gate: fails if the fused path is slower than the
# unfused path anywhere on the reference grid, if the adaptive planner
# misses the best static engine by more than 10%, or if radix loses its
# expected large-n cells.
bench-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py --grid reference \
		--repeats 3 --gate --gate-planner --gate-radix \
		--out BENCH_hotpath.json

# Planner-only gate on the reference grid: the adaptive planner must be
# within 10% of the best static engine on every cell.
planner-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py --grid reference \
		--repeats 3 --gate-planner

# Radix gate re-applied to the committed artifact: on every
# radix_expected cell the radix engine beat the fused serial engine by
# >= 1.5x and the adaptive planner picked radix there without a flag.
radix-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py \
		--check-radix-gate BENCH_hotpath.json

# Serving gate: the dynamically-batched SortService must deliver >= 2x
# the unbatched per-request throughput at the mid traffic cell, with
# p99 latency inside the linger + deadline budget.
service-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --grid load \
		--gate

# Full serving artifact — this is what the committed BENCH_service.json
# was produced with.
bench-service:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py --grid load \
		--gate --out BENCH_service.json

# Chaos gate on the committed artifact: at the chaos-mid cell,
# quarantined rows failed only the poisoning tenant's requests, faulted
# p99 stayed within 2x the fault-free p99, and the flooding tenant
# pushed no innocent tenant's rejection rate above 5%.
chaos-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py \
		--check-gate BENCH_chaos.json

# Full chaos artifact — this is what the committed BENCH_chaos.json was
# produced with (gated live while generating).
bench-chaos:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos.py --grid load \
		--gate --out BENCH_chaos.json

# Fleet smoke: the fleet-marked tests (router units, e2e, failover,
# metrics) plus the smoke bench grid written to the temp dir and
# schema-checked.  A minute or two; no artifact left in the repo.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m fleet -q
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py --grid smoke \
		--linger-ms 5 --out $(SMOKE_DIR)/BENCH_fleet_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py \
		--check-schema $(SMOKE_DIR)/BENCH_fleet_smoke.json

# Fleet gate re-applied to the committed artifact (no re-benchmarking):
# >= 3x single-worker throughput at 4 workers, p99 bounded under 2x
# single-worker load, and the failover drain completed every accepted
# request byte-correctly with zero drops.
fleet-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py \
		--check-gate BENCH_fleet.json

# Full fleet artifact — this is what the committed BENCH_fleet.json was
# produced with (gated live while generating; several minutes).
bench-fleet:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py --grid load \
		--gate --out BENCH_fleet.json

# Capacity smoke: the capacity-marked tests (budget model, spill store,
# resume/kill, RLIMIT_AS ceiling) plus the smoke bench grid written to
# the temp dir and schema-checked.  A minute or so; no repo artifact.
capacity-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m capacity -q
	PYTHONPATH=src $(PYTHON) benchmarks/bench_capacity.py --grid smoke \
		--out $(SMOKE_DIR)/BENCH_capacity_smoke.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_capacity.py \
		--check-schema $(SMOKE_DIR)/BENCH_capacity_smoke.json

# Capacity gate re-applied to the committed artifact (no
# re-benchmarking): a batch >= 4x larger than its declared memory
# budget sorted byte-identically through the spill path, and the
# kill-resume cell completed from checkpoint with zero re-emitted
# chunks.
capacity-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_capacity.py \
		--check-gate BENCH_capacity.json

# Full capacity artifact — this is what the committed
# BENCH_capacity.json was produced with (gated live while generating).
bench-capacity:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_capacity.py --grid load \
		--gate --out BENCH_capacity.json

# Full artifact including the paper's Fig. 4 anchor (N=1e5, n=1000,
# float32); several minutes — this is what the committed
# BENCH_hotpath.json was produced with.
bench-hotpath:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py --grid fig4 \
		--repeats 3 --gate --gate-planner --gate-radix \
		--out BENCH_hotpath.json

report:
	$(PYTHON) -m repro report

figures:
	$(PYTHON) -m repro figures

table1:
	$(PYTHON) -m repro table1

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
