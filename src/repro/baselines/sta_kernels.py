"""STA as device kernels: the full Fig. 3 pipeline on the simulator.

:mod:`repro.baselines.sta` runs STA's sorts on the host (with device
memory accounting); this module executes the whole baseline as kernels
for micro-scale hardware comparisons against GPU-ArraySort's kernels:

1. a **tagging kernel** writes each element's array id (Fig. 3 step I;
   the merge of step II is free — arrays are already contiguous);
2. the optional redundant tag presort (step III),
3. ``stable_sort_by_key(values, tags)`` (step IV),
4. ``stable_sort_by_key(tags, values)`` (step V),

with steps 2-4 running the histogram/scan/scatter kernel pipeline of
:mod:`repro.baselines.radix_kernels`.  The combined
:class:`~repro.gpusim.profiler.PipelineReport` makes claims like "STA
moves an order of magnitude more global data" checkable at the same
granularity as the GPU-ArraySort kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..gpusim import GpuDevice, PipelineReport
from .radix import float32_to_sortable_uint32, sortable_uint32_to_float32
from .radix_kernels import run_radix_pass_on_device

__all__ = ["tagging_kernel", "run_sta_on_device"]


def tagging_kernel(ctx, shared, d_tags, N, n):
    """Fig. 3 step I: element i of array a gets tag a.

    Grid-stride over the N*n tag array; consecutive lanes write
    consecutive tags — fully coalesced.
    """
    total = ctx.grid_dim.x * ctx.block_dim.x
    gid = ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
    i = gid
    while i < N * n:
        yield ctx.alu(1)  # i // n
        yield ctx.gstore(d_tags, i, i // n)
        i += total


def _device_sort_by_key(device, keys, vals, pipeline, *, digit_bits=8):
    """Full LSD radix sort of (keys, vals) accumulating into pipeline."""
    enc = keys
    passes = -(-32 // digit_bits)
    for pass_idx in range(passes):
        enc, vals, pass_pipeline = run_radix_pass_on_device(
            device, enc, vals, shift=pass_idx * digit_bits,
            digit_bits=digit_bits,
        )
        for launch in pass_pipeline.launches:
            pipeline.add(launch)
    return enc, vals


def run_sta_on_device(
    device: GpuDevice,
    batch: np.ndarray,
    *,
    include_redundant_presort: bool = True,
    digit_bits: int = 8,
) -> Tuple[np.ndarray, PipelineReport]:
    """Execute the complete STA baseline as simulator kernels."""
    batch = np.asarray(batch, dtype=np.float32)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    M = N * n
    pipeline = PipelineReport()

    # Step I: tag on device.
    d_tags = device.memory.alloc(max(M, 1), np.uint32, name="sta_tags")
    try:
        pipeline.add(device.launch(
            tagging_kernel, grid=2, block=32, args=(d_tags, N, n),
            name="sta_tagging",
        ))
        tags = d_tags.copy_to_host()[:M]
    finally:
        device.memory.free(d_tags)
    values_enc = float32_to_sortable_uint32(batch.ravel())

    # Step III (redundant): stable sort by tags, values ride along.
    if include_redundant_presort:
        tags, values_enc = _device_sort_by_key(
            device, tags, values_enc, pipeline, digit_bits=digit_bits
        )
    # Step IV: stable sort by values, tags ride along.
    values_enc, tags = _device_sort_by_key(
        device, values_enc, tags, pipeline, digit_bits=digit_bits
    )
    # Step V: stable sort by tags restores arrays, values stay ordered.
    tags, values_enc = _device_sort_by_key(
        device, tags, values_enc, pipeline, digit_bits=digit_bits
    )

    out = sortable_uint32_to_float32(values_enc).reshape(N, n)
    return out, pipeline
