"""``repro.baselines`` — comparison techniques and their substrates.

* :mod:`~repro.baselines.sta` — the paper's baseline: Sorting using Tagged
  Approach via simulated Thrust;
* :mod:`~repro.baselines.thrust` — device vectors + ``stable_sort_by_key``
  with radix-sort memory semantics;
* :mod:`~repro.baselines.radix` — the stable LSD radix sort substrate;
* :mod:`~repro.baselines.naive` — per-array sequential sorting and the
  NumPy oracle;
* :mod:`~repro.baselines.segmented` — a modern segmented-sort comparator.
"""

from .bitonic import (
    bitonic_network,
    bitonic_sort_batch,
    compare_exchange_count,
    run_bitonic_on_device,
)
from .mergesort import (
    merge_pass_count,
    merge_sort_batch,
    run_merge_sort_on_device,
)
from .naive import numpy_rowwise_sort, sequential_sort, timed_sequential_sort
from .oddeven import odd_even_sort_batch, round_count, run_odd_even_on_device
from .radix import (
    RadixStats,
    float32_to_sortable_uint32,
    radix_sort,
    radix_sort_by_key,
    sortable_uint32_to_float32,
)
from .segmented import segmented_sort, segmented_sort_ragged
from .sta import StaResult, StaSorter, sta_sort
from .thrust import DeviceVector, ThrustCallStats, sequence, stable_sort_by_key

__all__ = [
    "DeviceVector",
    "RadixStats",
    "StaResult",
    "StaSorter",
    "ThrustCallStats",
    "bitonic_network",
    "bitonic_sort_batch",
    "compare_exchange_count",
    "float32_to_sortable_uint32",
    "merge_pass_count",
    "merge_sort_batch",
    "numpy_rowwise_sort",
    "odd_even_sort_batch",
    "run_merge_sort_on_device",
    "round_count",
    "run_bitonic_on_device",
    "run_odd_even_on_device",
    "radix_sort",
    "radix_sort_by_key",
    "segmented_sort",
    "segmented_sort_ragged",
    "sequence",
    "sequential_sort",
    "sortable_uint32_to_float32",
    "sta_sort",
    "stable_sort_by_key",
    "timed_sequential_sort",
]
