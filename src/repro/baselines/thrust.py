"""A simulated slice of NVIDIA's Thrust library (the parts STA needs).

The paper's baseline builds on two Thrust facilities:

* ``thrust::device_vector`` — device-resident storage, here backed by the
  gpusim :class:`~repro.gpusim.memory.GlobalMemory` so allocation pressure
  is accounted against the same 11.5 GB the paper's K40c had;
* ``thrust::stable_sort_by_key`` — stable key/value sort, which for
  primitive keys runs the LSD radix sort of :mod:`repro.baselines.radix`
  and **allocates O(N) scratch** on the device for the duration of the
  call (this is the memory behaviour the paper's Section 7.1 charges STA
  with).

The point of this module is honesty of accounting, not CUDA API
completeness: every element the sort touches and every scratch byte it
borrows shows up in the device's memory statistics and in the returned
:class:`ThrustCallStats`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..gpusim.executor import GpuDevice
from ..gpusim.memory import DeviceArray
from .radix import RadixStats, radix_sort_by_key

__all__ = ["DeviceVector", "ThrustCallStats", "stable_sort_by_key", "sequence"]


@dataclasses.dataclass
class ThrustCallStats:
    """Accounting of one ``stable_sort_by_key`` call."""

    elements: int = 0
    radix: RadixStats = dataclasses.field(default_factory=RadixStats)
    #: Peak device bytes attributable to this call's scratch allocations.
    scratch_bytes: int = 0


class DeviceVector:
    """``thrust::device_vector<T>`` analog bound to a simulated device."""

    def __init__(self, device: GpuDevice, data_or_size, dtype=None, name: str = "") -> None:
        self.device = device
        if isinstance(data_or_size, (int, np.integer)):
            if dtype is None:
                raise ValueError("dtype required when constructing by size")
            self._array: DeviceArray = device.memory.alloc(
                int(data_or_size), dtype, name=name or "device_vector"
            )
        else:
            host = np.asarray(data_or_size)
            self._array = device.memory.alloc_like(
                host if dtype is None else host.astype(dtype),
                name=name or "device_vector",
            )
        self._freed = False

    def __len__(self) -> int:
        return len(self._array)

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def array(self) -> DeviceArray:
        return self._array

    def to_host(self) -> np.ndarray:
        return self._array.copy_to_host()

    def from_host(self, host: np.ndarray) -> None:
        self._array.copy_from_host(host)

    def free(self) -> None:
        """Explicit release (``device_vector`` destructor analog)."""
        if not self._freed:
            self.device.memory.free(self._array)
            self._freed = True

    def __enter__(self) -> "DeviceVector":
        return self

    def __exit__(self, *exc) -> None:
        self.free()


def sequence(device: GpuDevice, count: int, dtype=np.int32, name: str = "seq") -> DeviceVector:
    """``thrust::sequence``: a device vector holding 0, 1, ..., count-1."""
    vec = DeviceVector(device, count, dtype=dtype, name=name)
    vec.from_host(np.arange(count, dtype=dtype))
    return vec


def stable_sort_by_key(
    keys: DeviceVector,
    values: DeviceVector,
    *,
    stats: Optional[ThrustCallStats] = None,
) -> None:
    """``thrust::stable_sort_by_key`` with radix-sort memory semantics.

    Sorts ``keys`` in place (stably) and applies the same permutation to
    ``values``.  Scratch double buffers for keys and values are allocated
    on the device for the duration of the call — if they do not fit,
    :class:`~repro.gpusim.errors.DeviceOutOfMemoryError` propagates, which
    is precisely how the STA capacity limit in Table 1 manifests.
    """
    if len(keys) != len(values):
        raise ValueError(
            f"keys and values must have equal length, got {len(keys)} and {len(values)}"
        )
    device = keys.device
    if device is not values.device:
        raise ValueError("keys and values live on different devices")

    n = len(keys)
    # Radix double buffers: the real implementation ping-pongs between the
    # input storage and a same-sized temporary for both keys and values.
    scratch_keys = scratch_vals = None
    try:
        scratch_keys = device.memory.alloc(n, keys.dtype, name="radix_scratch_keys")
        scratch_vals = device.memory.alloc(n, values.dtype, name="radix_scratch_vals")
        radix_stats = stats.radix if stats is not None else RadixStats()
        host_keys = keys.to_host()
        host_vals = values.to_host()
        sorted_keys, sorted_vals = radix_sort_by_key(
            host_keys, host_vals, stats=radix_stats
        )
        # Model the ping-pong: final pass lands in scratch, copied back.
        scratch_keys.copy_from_host(sorted_keys)
        scratch_vals.copy_from_host(sorted_vals)
        keys.from_host(scratch_keys.copy_to_host())
        values.from_host(scratch_vals.copy_to_host())
        if stats is not None:
            stats.elements += n
            stats.scratch_bytes = max(
                stats.scratch_bytes, scratch_keys.nbytes + scratch_vals.nbytes
            )
    finally:
        if scratch_keys is not None:
            device.memory.free(scratch_keys)
        if scratch_vals is not None:
            device.memory.free(scratch_vals)
