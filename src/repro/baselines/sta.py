"""STA — Sorting using Tagged Approach (paper Section 7.1).

The baseline the paper measures GPU-ArraySort against: sort N arrays by
flattening them into one big array, tagging every element with its array
id, and running Thrust's ``stable_sort_by_key`` twice:

1. stable-sort the (merged) data array using the tags as... actually the
   productive two passes are: stable sort with the *values* as keys
   carrying tags (global value order, tags riding along), then stable
   sort with the *tags* as keys carrying values (regroups arrays; the
   stable property preserves each array's internal value order).  The
   result is every array sorted, in order.

The paper's Fig. 3 additionally shows an initial tag-ordering pass
(step III) before the two productive sorts; since freshly created tags
are already grouped it is pure redundant work, but it is part of the
published recipe, so :class:`StaSorter` reproduces it by default and
exposes ``include_redundant_presort=False`` for the lean variant.

Memory behaviour (the paper's headline criticism): data + same-sized tag
array + radix-sort scratch ≈ **3x the footprint of the data**, versus
GPU-ArraySort's in-place ~1x.  All of it is allocated on the simulated
device, so capacity experiments hit real OOM errors.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

import numpy as np

from ..gpusim.executor import GpuDevice
from .radix import radix_sort_by_key
from .thrust import DeviceVector, ThrustCallStats, stable_sort_by_key

__all__ = ["StaSorter", "StaResult", "sta_sort"]


@dataclasses.dataclass
class StaResult:
    """Outcome of one STA run."""

    batch: np.ndarray
    phase_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    thrust_stats: ThrustCallStats = dataclasses.field(default_factory=ThrustCallStats)
    #: Peak device bytes during the run (data + tags + scratch).
    peak_device_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


class StaSorter:
    """The tagged-sort baseline, on-device or host-vectorized.

    ``device=None`` runs the host-vectorized equivalent (same passes, same
    operation counts, NumPy storage) — the configuration used for
    wall-clock comparisons at large N.  Passing a
    :class:`~repro.gpusim.GpuDevice` routes every buffer through the
    simulated device allocator, which is what the Table 1 capacity
    experiment needs.
    """

    def __init__(
        self,
        *,
        device: Optional[GpuDevice] = None,
        include_redundant_presort: bool = True,
        verify: bool = False,
    ) -> None:
        self.device = device
        self.include_redundant_presort = include_redundant_presort
        self.verify = verify

    def sort(self, batch: np.ndarray) -> StaResult:
        """Sort every row of ``batch`` via the tagged approach."""
        batch = np.asarray(batch)
        if batch.ndim != 2:
            raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
        if batch.dtype.kind == "f":
            batch = batch.astype(np.float32, copy=False)
        if self.device is None:
            result = self._sort_host(batch)
        else:
            result = self._sort_device(batch)
        if self.verify:
            from ..core.validation import assert_batch_sorted

            assert_batch_sorted(result.batch, batch)
        return result

    # -- host-vectorized path ----------------------------------------------------
    def _sort_host(self, batch: np.ndarray) -> StaResult:
        N, n = batch.shape
        stats = ThrustCallStats()
        times: Dict[str, float] = {}

        t0 = time.perf_counter()
        # Step I+II: create tags and merge into single arrays.
        merged = batch.ravel().copy()
        tags = np.repeat(np.arange(N, dtype=np.int32), n)
        times["tagging_and_merge"] = time.perf_counter() - t0

        if self.include_redundant_presort:
            t0 = time.perf_counter()
            # Fig. 3 step III: order by tags (already grouped; redundant).
            tags, merged = radix_sort_by_key(tags, merged, stats=stats.radix)
            times["sort_by_tags_redundant"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Productive pass 1: global stable sort by value, tags ride along.
        merged, tags = radix_sort_by_key(merged, tags, stats=stats.radix)
        times["sort_by_values"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Productive pass 2: stable sort by tag; stability preserves the
        # per-array value order established by pass 1.
        tags, merged = radix_sort_by_key(tags, merged, stats=stats.radix)
        times["sort_by_tags_restore"] = time.perf_counter() - t0

        stats.elements = merged.size
        return StaResult(
            batch=merged.reshape(N, n),
            phase_seconds=times,
            thrust_stats=stats,
            peak_device_bytes=self.footprint_bytes(N, n, batch.dtype.itemsize),
        )

    # -- device path ----------------------------------------------------------------
    def _sort_device(self, batch: np.ndarray) -> StaResult:
        N, n = batch.shape
        device = self.device
        stats = ThrustCallStats()
        times: Dict[str, float] = {}

        t0 = time.perf_counter()
        data = DeviceVector(device, batch.ravel(), name="sta_data")
        tag_host = np.repeat(np.arange(N, dtype=np.int32), n)
        tags = DeviceVector(device, tag_host, name="sta_tags")
        times["tagging_and_merge"] = time.perf_counter() - t0
        try:
            if self.include_redundant_presort:
                t0 = time.perf_counter()
                stable_sort_by_key(tags, data, stats=stats)
                times["sort_by_tags_redundant"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            stable_sort_by_key(data, tags, stats=stats)
            times["sort_by_values"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            stable_sort_by_key(tags, data, stats=stats)
            times["sort_by_tags_restore"] = time.perf_counter() - t0
            out = data.to_host().reshape(N, n)
            peak = device.memory.stats.peak_bytes
        finally:
            data.free()
            tags.free()
        return StaResult(
            batch=out,
            phase_seconds=times,
            thrust_stats=stats,
            peak_device_bytes=peak,
        )

    # -- memory model ------------------------------------------------------------------
    @staticmethod
    def footprint_bytes(N: int, n: int, itemsize: int = 4, tag_itemsize: int = 4) -> int:
        """Peak device bytes STA needs for an (N, n) batch.

        data + tags + radix double buffers for both, i.e. 2*(data+tags).
        With 4-byte data and 4-byte tags this is 4x the *payload*; the
        paper rounds the story to "about 3 times more memory than may
        actually be required" by not charging one of the scratch halves.
        Both models are exposed: this exact one, and the paper's 3x rule
        in :mod:`repro.analysis.memory_model`.
        """
        data = N * n * itemsize
        tags = N * n * tag_itemsize
        return data + tags + data + tags


def sta_sort(batch: np.ndarray, **kwargs) -> np.ndarray:
    """One-shot convenience wrapper returning the sorted batch."""
    return StaSorter(**kwargs).sort(batch).batch
