"""Bitonic sorting networks — the classic GPU batch-sort alternative.

Before segmented sorts, the standard way to sort many small arrays on a
GPU was one bitonic network per block: data-independent compare-exchange
stages, no divergence, shared-memory resident.  The paper's related-work
section surveys this family (hybrid sort [16], GPU sample sort [6]);
implementing it gives the benchmark suite a second *dedicated* batch
sorter to place GPU-ArraySort against:

* :func:`bitonic_sort_batch` — vectorized: the full network applied to
  every row of an ``(N, n)`` batch simultaneously (each compare-exchange
  stage is one vectorized min/max over a column gather);
* :func:`bitonic_kernel` — the per-block shared-memory kernel for the
  gpusim engine (one array per block, one thread per element pair);
* :func:`bitonic_network` — the (stage, substage) schedule, exposed for
  tests and for operation-count analysis.

Bitonic does Θ(n log² n) compare-exchanges vs sample-sort's Θ(n log n)
— the asymptotic gap the paper's bucket approach exploits; the ablation
bench quantifies the crossover.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..gpusim import GpuDevice
from ..gpusim.profiler import LaunchReport

__all__ = [
    "bitonic_network",
    "bitonic_sort_batch",
    "bitonic_kernel",
    "run_bitonic_on_device",
    "compare_exchange_count",
]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def bitonic_network(n: int) -> Iterator[Tuple[int, int]]:
    """Yield (k, j) parameters of each compare-exchange stage for size n.

    ``n`` must be a power of two.  For each element i, its partner is
    ``i ^ j``; the comparison direction is ascending iff ``i & k == 0``.
    """
    if n & (n - 1):
        raise ValueError(f"bitonic network needs power-of-two size, got {n}")
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            yield (k, j)
            j //= 2
        k *= 2


def compare_exchange_count(n: int) -> int:
    """Total compare-exchanges the network performs per array.

    Θ(n log² n): each of the log(n)·(log(n)+1)/2 stages touches n/2
    pairs.
    """
    n2 = _next_pow2(n)
    stages = sum(1 for _ in bitonic_network(n2))
    return stages * (n2 // 2)


def bitonic_sort_batch(batch: np.ndarray) -> np.ndarray:
    """Sort every row of a batch with one shared bitonic schedule.

    Rows are padded to the next power of two with +inf (float) or the
    dtype max (int); padding sorts to the tail and is sliced off.  Every
    compare-exchange stage runs vectorized across the whole batch —
    exactly the lockstep the hardware version exhibits.
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    if N == 0 or n == 0:
        return batch.copy()
    n2 = _next_pow2(n)
    if batch.dtype.kind == "f":
        pad_value = np.inf
    elif batch.dtype.kind in "iu":
        pad_value = np.iinfo(batch.dtype).max
    else:
        raise TypeError(f"unsupported dtype {batch.dtype}")
    work = np.full((N, n2), pad_value, dtype=batch.dtype)
    work[:, :n] = batch

    idx = np.arange(n2)
    for k, j in bitonic_network(n2):
        partner = idx ^ j
        forward = partner > idx
        ascending = (idx & k) == 0
        # Only process each pair once, from its lower index.
        active = forward
        i_lo = idx[active]
        i_hi = partner[active]
        asc = ascending[active]
        a = work[:, i_lo]
        b = work[:, i_hi]
        swap = np.where(asc[None, :], a > b, a < b)
        lo_new = np.where(swap, b, a)
        hi_new = np.where(swap, a, b)
        work[:, i_lo] = lo_new
        work[:, i_hi] = hi_new
    return work[:, :n]


def bitonic_kernel(ctx, shared, d_data, n, n2):
    """Per-block bitonic sort: one array per block in shared memory.

    ``block_dim`` must be ``n2 / 2`` threads (one per pair).  Threads
    cooperatively stage the row (+inf padding), run the network with a
    barrier per substage, and write back.  Compare-exchange direction is
    data-independent — zero branch divergence, the property that made
    bitonic the GPU default for small arrays.
    """
    tid = ctx.thread_idx.x
    base = ctx.block_idx.x * n
    pairs = n2 // 2

    # Stage with padding.
    for i in range(tid, n2, pairs):
        if i < n:
            v = yield ctx.gload(d_data, base + i)
        else:
            v = float("inf")
        yield ctx.sstore(shared, i, v)
    yield ctx.sync()

    k = 2
    while k <= n2:
        j = k // 2
        while j >= 1:
            # Thread t owns the t-th pair: lower index i with (i & j) == 0,
            # partner = i ^ j.
            my_i = _pair_lower_index(tid, j, n2)
            partner = my_i ^ j
            a = yield ctx.sload(shared, my_i)
            b = yield ctx.sload(shared, partner)
            yield ctx.alu(2)
            ascending = (my_i & k) == 0
            if (a > b) == ascending and a != b:
                yield ctx.sstore(shared, my_i, b)
                yield ctx.sstore(shared, partner, a)
            else:
                # Keep the lock step: issue the same store traffic so the
                # warp does not diverge on the swap decision.
                yield ctx.sstore(shared, my_i, a)
                yield ctx.sstore(shared, partner, b)
            yield ctx.sync()
            j //= 2
        k *= 2

    for i in range(tid, n, pairs):
        v = yield ctx.sload(shared, i)
        yield ctx.gstore(d_data, base + i, v)


def _pair_lower_index(t: int, j: int, n2: int) -> int:
    """The t-th index i in [0, n2) with (i & j) == 0 (a pair's lower end).

    Classic bitonic indexing: insert a zero bit at j's position.
    """
    low = t & (j - 1)
    high = (t & ~(j - 1)) << 1
    return high | low


def run_bitonic_on_device(
    device: GpuDevice, batch: np.ndarray
) -> Tuple[np.ndarray, LaunchReport]:
    """Sort a batch on the simulated device with one bitonic block per row."""
    batch = np.asarray(batch, dtype=np.float32)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    n2 = _next_pow2(n)
    d = device.memory.alloc_like(batch.ravel())
    try:
        report = device.launch(
            bitonic_kernel, grid=N, block=n2 // 2, args=(d, n, n2),
            shared_setup=lambda sm: sm.alloc(n2, np.float32),
            name="bitonic_sort",
        )
        out = d.copy_to_host().reshape(N, n)
    finally:
        device.memory.free(d)
    return out, report
