"""Odd-even transposition sort — the paper's reference [20] family.

The paper's related work cites a CUDA odd-even sorting improvement
(Ajdari et al. 2015).  Odd-even transposition is the simplest
data-independent parallel sort: n rounds alternating compare-exchange of
(even, even+1) and (odd, odd+1) neighbour pairs.  Θ(n²) work but fully
parallel within a round and divergence-free — the kind of baseline
GPU-ArraySort's Θ(n log n) bucket approach leaves behind as n grows.

Provided in the same two forms as the other baselines:

* :func:`odd_even_sort_batch` — vectorized over the whole batch;
* :func:`odd_even_kernel` / :func:`run_odd_even_on_device` — one block
  per array on the simulator, one thread per pair, barrier per round.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..gpusim import GpuDevice
from ..gpusim.profiler import LaunchReport

__all__ = [
    "odd_even_sort_batch",
    "odd_even_kernel",
    "run_odd_even_on_device",
    "round_count",
]


def round_count(n: int) -> int:
    """Rounds needed to guarantee sortedness: exactly n (classic bound)."""
    return max(0, int(n))


def odd_even_sort_batch(batch: np.ndarray) -> np.ndarray:
    """Sort every row by n rounds of alternating neighbour exchanges."""
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    work = batch.copy()
    N, n = work.shape
    if n <= 1:
        return work
    for r in range(round_count(n)):
        start = r % 2
        left = work[:, start : n - 1 : 2]
        right = work[:, start + 1 : n : 2]
        swap = left > right
        left_new = np.where(swap, right, left)
        right_new = np.where(swap, left, right)
        work[:, start : n - 1 : 2] = left_new
        work[:, start + 1 : n : 2] = right_new
    return work


def odd_even_kernel(ctx, shared, d_data, n):
    """One block per array; thread t owns pair (2t [+phase], 2t+1 [+phase]).

    The row lives in shared memory for the n rounds; every round is a
    barrier.  Compare-exchange is branch-free in the lock step (both
    outcomes issue the same store traffic).
    """
    tid = ctx.thread_idx.x
    base = ctx.block_idx.x * n
    pairs = ctx.block_dim.x

    for i in range(tid, n, pairs):
        v = yield ctx.gload(d_data, base + i)
        yield ctx.sstore(shared, i, v)
    yield ctx.sync()

    for r in range(n):
        start = r % 2
        left = start + 2 * tid
        if left + 1 < n:
            a = yield ctx.sload(shared, left)
            b = yield ctx.sload(shared, left + 1)
            yield ctx.alu(1)
            if a > b:
                yield ctx.sstore(shared, left, b)
                yield ctx.sstore(shared, left + 1, a)
            else:
                yield ctx.sstore(shared, left, a)
                yield ctx.sstore(shared, left + 1, b)
        yield ctx.sync()

    for i in range(tid, n, pairs):
        v = yield ctx.sload(shared, i)
        yield ctx.gstore(d_data, base + i, v)


def run_odd_even_on_device(
    device: GpuDevice, batch: np.ndarray
) -> Tuple[np.ndarray, LaunchReport]:
    """Sort a batch on the simulated device, one odd-even block per row."""
    batch = np.asarray(batch, dtype=np.float32)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    threads = max(1, n // 2)
    d = device.memory.alloc_like(batch.ravel())
    try:
        report = device.launch(
            odd_even_kernel, grid=N, block=threads, args=(d, n),
            shared_setup=lambda sm: sm.alloc(max(n, 1), np.float32),
            name="odd_even_sort",
        )
        out = d.copy_to_host().reshape(N, n)
    finally:
        device.memory.free(d)
    return out, report
