"""Naive per-array baselines (the "existing algorithms" strawman).

Section 2 of the paper: existing 1-D GPU sorting algorithms could only
sort many arrays "one after the other thus making the process sequential
in nature".  These baselines exist to quantify that claim and to serve as
trivially-correct oracles in tests:

* :func:`sequential_sort` — a Python loop of per-row sorts, the direct
  analog of launching one 1-D GPU sort per array;
* :func:`numpy_rowwise_sort` — ``np.sort(batch, axis=1)``, the tightest
  host-side implementation, used as the ground-truth oracle everywhere.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

__all__ = ["sequential_sort", "numpy_rowwise_sort", "timed_sequential_sort"]


def sequential_sort(batch: np.ndarray) -> np.ndarray:
    """Sort each row with an independent ``np.sort`` call, sequentially.

    Models the per-array kernel-launch pattern: each row pays its own
    fixed overhead (here: Python call dispatch; on a GPU: a kernel launch
    that cannot fill the device).
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    out = np.empty_like(batch)
    for i in range(batch.shape[0]):
        out[i] = np.sort(batch[i])
    return out


def numpy_rowwise_sort(batch: np.ndarray) -> np.ndarray:
    """The oracle: one vectorized row-wise sort."""
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    return np.sort(batch, axis=1)


def timed_sequential_sort(batch: np.ndarray) -> Tuple[np.ndarray, Dict[str, float]]:
    """Run :func:`sequential_sort` and report wall time + per-row overhead."""
    t0 = time.perf_counter()
    out = sequential_sort(batch)
    elapsed = time.perf_counter() - t0
    per_row = elapsed / max(1, batch.shape[0])
    return out, {"total_seconds": elapsed, "seconds_per_array": per_row}
