"""LSD radix sort — the core sorting engine behind simulated Thrust.

Thrust's ``stable_sort_by_key`` dispatches to a least-significant-digit
radix sort for primitive keys.  The STA baseline's cost and memory
behaviour both come from radix sort's structure:

* ``ceil(key_bits / digit_bits)`` passes over *all* N elements,
* each pass does a count, an exclusive scan, and a stable scatter,
* the scatter needs a second buffer of size N for keys **and** for the
  payload — the "almost O(N) more space" the paper cites [26] when it
  argues STA uses ~3x the memory of the data.

Floating-point keys are order-preserved by the standard bit flip
(:func:`float32_to_sortable_uint32`): flip all bits of negatives, flip
only the sign bit of non-negatives.  This is exactly what CUB/Thrust do.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "float32_to_sortable_uint32",
    "sortable_uint32_to_float32",
    "radix_sort",
    "radix_sort_by_key",
    "RadixStats",
]


def float32_to_sortable_uint32(values: np.ndarray) -> np.ndarray:
    """Map float32 to uint32 so unsigned order == IEEE total order.

    Negative floats have their bits fully inverted (reversing their
    descending bit order); non-negatives get the sign bit set (placing
    them above all negatives).

    >>> v = np.array([-1.5, -0.0, 0.0, 2.0], dtype=np.float32)
    >>> keys = float32_to_sortable_uint32(v)
    >>> bool(np.all(np.diff(keys.astype(np.int64)) >= 0))
    True
    """
    bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    mask = np.where(bits >> 31 == 1, np.uint32(0xFFFFFFFF), np.uint32(0x80000000))
    return bits ^ mask


def sortable_uint32_to_float32(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float32_to_sortable_uint32`."""
    keys = np.asarray(keys, dtype=np.uint32)
    mask = np.where(keys >> 31 == 1, np.uint32(0x80000000), np.uint32(0xFFFFFFFF))
    return (keys ^ mask).view(np.float32)


@dataclasses.dataclass
class RadixStats:
    """Operation counts of one radix-sort run (drives the cost model)."""

    passes: int = 0
    elements: int = 0
    #: Bytes of auxiliary device memory the double-buffering needed.
    scratch_bytes: int = 0
    #: Total element reads+writes across all passes (keys and payload).
    element_moves: int = 0


def _encode_keys(keys: np.ndarray) -> Tuple[np.ndarray, str]:
    """Normalize keys to uint for digit extraction; remember the kind."""
    keys = np.asarray(keys)
    if keys.dtype == np.float32:
        return float32_to_sortable_uint32(keys), "float32"
    if keys.dtype == np.uint32:
        return keys.copy(), "uint32"
    if keys.dtype == np.int32:
        return (keys.astype(np.int64) + 2**31).astype(np.uint32), "int32"
    if keys.dtype == np.uint64:
        return keys.copy(), "uint64"
    raise TypeError(f"unsupported radix key dtype {keys.dtype}")


def _decode_keys(keys: np.ndarray, kind: str) -> np.ndarray:
    if kind == "float32":
        return sortable_uint32_to_float32(keys)
    if kind == "int32":
        return (keys.astype(np.int64) - 2**31).astype(np.int32)
    return keys


def radix_sort_by_key(
    keys: np.ndarray,
    values: Optional[np.ndarray] = None,
    *,
    digit_bits: int = 8,
    stats: Optional[RadixStats] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Stable LSD radix sort of ``keys``, carrying ``values`` alongside.

    Returns ``(sorted_keys, permuted_values)``.  Each digit pass is
    implemented with bincount + exclusive scan + stable scatter, which is
    the classic GPU formulation (count / scan / scatter kernels); the
    NumPy expression of the scatter is an argsort-free cumulative
    placement.

    ``stats`` (optional) accumulates pass counts, element moves, and
    scratch bytes so the perf/memory models can charge STA honestly.
    """
    if not 1 <= digit_bits <= 16:
        raise ValueError("digit_bits must be in [1, 16]")
    enc, kind = _encode_keys(keys)
    vals = None if values is None else np.asarray(values).copy()
    if vals is not None and vals.shape[0] != enc.shape[0]:
        raise ValueError(
            f"keys and values length mismatch: {enc.shape[0]} vs {vals.shape[0]}"
        )

    key_bits = enc.dtype.itemsize * 8
    num_passes = -(-key_bits // digit_bits)
    radix = 1 << digit_bits
    mask = radix - 1

    if stats is not None:
        stats.passes += num_passes
        stats.elements = enc.size
        payload_bytes = 0 if vals is None else vals.itemsize * vals.size
        stats.scratch_bytes = max(
            stats.scratch_bytes, enc.nbytes + payload_bytes
        )

    n = enc.size
    for pass_idx in range(num_passes):
        if n == 0:
            break
        shift = pass_idx * digit_bits
        digits = (enc >> np.uint32(shift)).astype(np.int64) & mask
        # count + exclusive scan (the GPU histogram/scan kernels); the
        # stable scatter destination of element i is
        # starts[digit_i] + (stable rank of i within its digit), which is
        # exactly the inverse of a stable argsort of the digits.
        counts = np.bincount(digits, minlength=radix)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        order = np.argsort(digits, kind="stable")
        positions = np.empty(n, dtype=np.int64)
        positions[order] = starts[digits[order]] + (
            np.arange(n) - np.repeat(starts, counts)
        )
        out = np.empty_like(enc)
        out[positions] = enc
        enc = out
        if vals is not None:
            vout = np.empty_like(vals)
            vout[positions] = vals
            vals = vout
        if stats is not None:
            moves = 2 * n  # key read + key write
            if vals is not None:
                moves += 2 * n
            stats.element_moves += moves
    return _decode_keys(enc, kind), vals


def radix_sort(keys: np.ndarray, *, digit_bits: int = 8,
               stats: Optional[RadixStats] = None) -> np.ndarray:
    """Stable LSD radix sort of ``keys`` alone."""
    out, _ = radix_sort_by_key(keys, None, digit_bits=digit_bits, stats=stats)
    return out
