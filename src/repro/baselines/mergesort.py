"""Batch merge sort — the "m-way merge approach" of the paper's §2.

The paper contrasts two ways of decomposing work: *independent bins*
(sample sort — its choice, because "there is no need of putting in
extra effort for a merge stage") and the *m-way merge approach* where
sorted chunks must be merged afterwards.  This module implements the
merge family for batches so the claim has a measurable counterpart:

* :func:`merge_sort_batch` — vectorized bottom-up merge sort of every
  row simultaneously: each pass merges runs of width ``w`` into ``2w``
  using a vectorized two-pointer merge expressed with
  ``np.searchsorted`` rank arithmetic (the merge-path idea: an
  element's output position is its index plus the count of elements of
  the sibling run that precede it);
* :func:`merge_kernel` / :func:`run_merge_sort_on_device` — the
  per-block kernel: one array per block staged in shared memory,
  ``log2(n)`` merge passes with one thread per run-pair and a barrier
  per pass — the merge-stage overhead GPU-ArraySort avoids, visible in
  the launch report's sync counts;
* :func:`merge_pass_count` — passes needed, for operation-count
  comparisons.

Work: Θ(n log n) like sample sort's total, but every pass re-reads and
re-writes the whole array (log n full sweeps) versus sample sort's
constant number of sweeps — the traffic argument behind the paper's
"no merge stage" dividend.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..gpusim import GpuDevice
from ..gpusim.profiler import LaunchReport

__all__ = [
    "merge_pass_count",
    "merge_sort_batch",
    "merge_kernel",
    "run_merge_sort_on_device",
]


def merge_pass_count(n: int) -> int:
    """Bottom-up passes to sort n elements: ceil(log2(n))."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(0, math.ceil(math.log2(n)))


def _merge_runs_vectorized(batch: np.ndarray, width: int) -> np.ndarray:
    """One bottom-up pass: merge adjacent sorted runs of ``width``.

    Rank arithmetic per element pair of runs (A, B):
    ``pos(A[i]) = i + (# of B < A[i])`` and
    ``pos(B[j]) = j + (# of A <= B[j])`` — the `<` / `<=` asymmetry
    keeps the merge stable.  The searchsorted runs per row-pair via a
    Python loop over rows would be slow; instead offset each row's
    values into a disjoint band so one flat searchsorted serves the
    whole batch (rows are float32; ranks only need *ordering within the
    row*, so we compare indices, not values, across bands).
    """
    N, n = batch.shape
    out = batch.copy()
    for start in range(0, n, 2 * width):
        a_lo, a_hi = start, min(start + width, n)
        b_lo, b_hi = a_hi, min(start + 2 * width, n)
        if b_lo >= b_hi:
            continue  # lone run, already in place
        A = batch[:, a_lo:a_hi]
        B = batch[:, b_lo:b_hi]
        # ranks of A's elements among B (strictly less -> stable):
        # per-row searchsorted via argsort-free counting:
        # count of B[j] < A[i] = searchsorted(B_row, A_row, 'left').
        # Vectorize across rows with the classic sorted-insert trick on
        # the concatenation: order of (B, A) by (value, origin).
        ra = np.empty(A.shape, dtype=np.int64)
        rb = np.empty(B.shape, dtype=np.int64)
        for i in range(N):
            ra[i] = np.searchsorted(B[i], A[i], side="left")
            rb[i] = np.searchsorted(A[i], B[i], side="right")
        pos_a = np.arange(A.shape[1])[None, :] + ra
        pos_b = np.arange(B.shape[1])[None, :] + rb
        merged = np.empty((N, (a_hi - a_lo) + (b_hi - b_lo)), dtype=batch.dtype)
        rows = np.arange(N)[:, None]
        merged[rows, pos_a] = A
        merged[rows, pos_b] = B
        out[:, a_lo:b_hi] = merged
    return out


def merge_sort_batch(batch: np.ndarray) -> np.ndarray:
    """Sort every row by bottom-up merge passes (runs double each pass)."""
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    if N == 0 or n <= 1:
        return batch.copy()
    work = batch.copy()
    width = 1
    while width < n:
        work = _merge_runs_vectorized(work, width)
        width *= 2
    return work


def merge_kernel(ctx, shared, d_data, n):
    """Per-block bottom-up merge sort in shared memory.

    ``shared`` holds two buffers of n (ping-pong).  Pass ``p`` merges
    runs of width ``2^p``; thread ``t`` owns run-pair ``t`` and performs
    a sequential two-pointer merge of its pair — one barrier per pass.
    Thread counts halve in usefulness each pass (the merge family's
    well-known load-imbalance tail, versus sample sort's flat buckets).
    """
    tid = ctx.thread_idx.x
    bdim = ctx.block_dim.x
    base = ctx.block_idx.x * n

    for i in range(tid, n, bdim):
        v = yield ctx.gload(d_data, base + i)
        yield ctx.sstore(shared, i, v)
    yield ctx.sync()

    src_off, dst_off = 0, n  # ping-pong halves of the 2n buffer
    width = 1
    while width < n:
        pair = tid
        while True:
            start = pair * 2 * width
            if start >= n:
                break
            a_lo, a_hi = start, min(start + width, n)
            b_lo, b_hi = a_hi, min(start + 2 * width, n)
            i, j, k = a_lo, b_lo, a_lo
            while i < a_hi or j < b_hi:
                if i < a_hi and j < b_hi:
                    va = yield ctx.sload(shared, src_off + i)
                    vb = yield ctx.sload(shared, src_off + j)
                    yield ctx.alu(1)
                    if va <= vb:
                        yield ctx.sstore(shared, dst_off + k, va)
                        i += 1
                    else:
                        yield ctx.sstore(shared, dst_off + k, vb)
                        j += 1
                elif i < a_hi:
                    va = yield ctx.sload(shared, src_off + i)
                    yield ctx.sstore(shared, dst_off + k, va)
                    i += 1
                else:
                    vb = yield ctx.sload(shared, src_off + j)
                    yield ctx.sstore(shared, dst_off + k, vb)
                    j += 1
                k += 1
            pair += bdim
        yield ctx.sync()
        src_off, dst_off = dst_off, src_off
        width *= 2

    for i in range(tid, n, bdim):
        v = yield ctx.sload(shared, src_off + i)
        yield ctx.gstore(d_data, base + i, v)


def run_merge_sort_on_device(
    device: GpuDevice, batch: np.ndarray, *, threads: int = None
) -> Tuple[np.ndarray, LaunchReport]:
    """Sort a batch with one merge-sort block per row on the simulator."""
    batch = np.asarray(batch, dtype=np.float32)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    if threads is None:
        threads = max(1, min(n // 2, device.spec.max_threads_per_block))
    d = device.memory.alloc_like(batch.ravel())
    try:
        report = device.launch(
            merge_kernel, grid=N, block=threads, args=(d, n),
            shared_setup=lambda sm: sm.alloc(2 * max(n, 1), np.float32),
            name="merge_sort",
        )
        out = d.copy_to_host().reshape(N, n)
    finally:
        device.memory.free(d)
    return out, report
