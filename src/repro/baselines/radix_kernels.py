"""Device-kernel LSD radix sort — Thrust's engine at kernel granularity.

:mod:`repro.baselines.thrust` models ``stable_sort_by_key``'s *memory*
behaviour on the device but computes the permutation on the host.  This
module closes the loop for micro-scale studies: each radix pass runs as
the three classic kernels on the lock-step simulator —

1. **histogram** — each block counts digit occurrences of its tile into
   shared memory (atomics), then merges to a global digit histogram;
2. **scan** — a single block turns the histogram into exclusive digit
   offsets (the Harris scan of the paper's ref [17]);
3. **scatter** — a single sequential walker emits elements to
   ``offset[digit]++`` positions.  A real GPU computes per-element ranks
   with a block-level scan; the simulator's sequential scatter preserves
   the *stability semantics* and the *memory traffic pattern* (random
   writes, the reason radix sustains ~50 % of peak bandwidth — see
   :data:`repro.analysis.perfmodel.RADIX_SCATTER_EFFICIENCY`), while
   keeping the interpreter tractable.

This is what lets tests compare GPU-ArraySort's and STA's *kernel-level*
hardware behaviour (coalescing, divergence, traffic) on identical data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..gpusim import GpuDevice, PipelineReport
from .radix import float32_to_sortable_uint32, sortable_uint32_to_float32

__all__ = ["run_radix_pass_on_device", "run_radix_sort_on_device"]


def _histogram_kernel(ctx, shared, d_keys, d_hist, n, shift, mask, radix):
    """Per-block shared histogram of one digit, merged atomically."""
    tid = ctx.thread_idx.x
    bdim = ctx.block_dim.x
    gid = ctx.block_idx.x * bdim + tid
    total = ctx.grid_dim.x * bdim

    for b in range(tid, radix, bdim):
        yield ctx.sstore(shared, b, 0)
    yield ctx.sync()

    i = gid
    while i < n:
        key = yield ctx.gload(d_keys, i)
        yield ctx.alu(2)  # shift + mask
        digit = (int(key) >> shift) & mask
        yield ctx.atomic_add(shared, digit, 1)
        i += total
    yield ctx.sync()

    for b in range(tid, radix, bdim):
        count = yield ctx.sload(shared, b)
        if count:
            yield ctx.atomic_add(d_hist, b, int(count))


def _scan_kernel(ctx, shared, d_hist, d_offsets, radix):
    """Exclusive scan of the digit histogram (single thread; radix=16-256
    is tiny next to n, matching the paper's own single-thread scans)."""
    if ctx.thread_idx.x != 0:
        return
    acc = 0
    for b in range(radix):
        yield ctx.gstore(d_offsets, b, acc)
        count = yield ctx.gload(d_hist, b)
        acc += int(count)


def _scatter_kernel(ctx, shared, d_keys, d_vals, d_out_keys, d_out_vals,
                    d_offsets, n, shift, mask, has_vals):
    """Stable scatter: a sequential walker bumping per-digit cursors.

    Single thread preserves the stable order exactly; the stores land at
    data-dependent addresses — the scattered-write traffic the timing
    model derates radix bandwidth for.
    """
    if ctx.thread_idx.x != 0:
        return
    for i in range(n):
        key = yield ctx.gload(d_keys, i)
        yield ctx.alu(2)
        digit = (int(key) >> shift) & mask
        pos = yield ctx.gload(d_offsets, digit)
        yield ctx.gstore(d_out_keys, int(pos), key)
        if has_vals:
            val = yield ctx.gload(d_vals, i)
            yield ctx.gstore(d_out_vals, int(pos), val)
        yield ctx.gstore(d_offsets, digit, int(pos) + 1)


def run_radix_pass_on_device(
    device: GpuDevice,
    keys: np.ndarray,
    values: np.ndarray = None,
    *,
    shift: int = 0,
    digit_bits: int = 8,
    grid: int = 2,
    block: int = 32,
) -> Tuple[np.ndarray, np.ndarray, PipelineReport]:
    """One LSD pass (histogram/scan/scatter) on the simulated device."""
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    n = keys.size
    radix = 1 << digit_bits
    mask = radix - 1
    has_vals = values is not None
    vals = (np.ascontiguousarray(values) if has_vals
            else np.zeros(0, dtype=np.int32))

    pipeline = PipelineReport()
    allocs = []

    def _alloc(fn, *args, **kw):
        arr = fn(*args, **kw)
        allocs.append(arr)
        return arr

    try:
        d_keys = _alloc(device.memory.alloc_like, keys, name="radix_keys")
        d_vals = _alloc(
            device.memory.alloc_like,
            vals if has_vals else np.zeros(1, dtype=np.int32),
            name="radix_vals",
        )
        d_out_keys = _alloc(device.memory.alloc, n, np.uint32,
                            name="radix_out_keys")
        d_out_vals = _alloc(device.memory.alloc,
                            max(n, 1) if has_vals else 1,
                            vals.dtype if has_vals else np.int32,
                            name="radix_out_vals")
        d_hist = _alloc(device.memory.alloc, radix, np.int64,
                        name="radix_hist")
        d_offsets = _alloc(device.memory.alloc, radix, np.int64,
                           name="radix_offsets")
        d_hist.fill(0)
        pipeline.add(device.launch(
            _histogram_kernel, grid=grid, block=block,
            args=(d_keys, d_hist, n, shift, mask, radix),
            shared_setup=lambda sm: sm.alloc(radix, np.int64),
            name="radix_histogram",
        ))
        pipeline.add(device.launch(
            _scan_kernel, grid=1, block=1,
            args=(d_hist, d_offsets, radix),
            name="radix_scan",
        ))
        pipeline.add(device.launch(
            _scatter_kernel, grid=1, block=1,
            args=(d_keys, d_vals, d_out_keys, d_out_vals, d_offsets, n,
                  shift, mask, has_vals),
            name="radix_scatter",
        ))
        out_keys = d_out_keys.copy_to_host()
        out_vals = d_out_vals.copy_to_host() if has_vals else None
    finally:
        for arr in allocs:
            device.memory.free(arr)
    return out_keys, out_vals, pipeline


def run_radix_sort_on_device(
    device: GpuDevice,
    keys: np.ndarray,
    values: np.ndarray = None,
    *,
    digit_bits: int = 8,
) -> Tuple[np.ndarray, np.ndarray, PipelineReport]:
    """Full stable LSD radix sort on the simulated device.

    Float32 keys are bit-mapped through
    :func:`~repro.baselines.radix.float32_to_sortable_uint32` and mapped
    back, exactly as CUB/Thrust do.
    """
    keys = np.asarray(keys)
    as_float = keys.dtype == np.float32
    enc = float32_to_sortable_uint32(keys) if as_float else np.ascontiguousarray(
        keys, dtype=np.uint32
    )
    vals = None if values is None else np.ascontiguousarray(values)

    combined = PipelineReport()
    passes = -(-32 // digit_bits)
    for pass_idx in range(passes):
        enc, vals, pipeline = run_radix_pass_on_device(
            device, enc, vals, shift=pass_idx * digit_bits,
            digit_bits=digit_bits,
        )
        for launch in pipeline.launches:
            combined.add(launch)
    out = sortable_uint32_to_float32(enc) if as_float else enc
    return out, vals, combined
