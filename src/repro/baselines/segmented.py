"""Modern segmented-sort comparator (CUB / moderngpu / bb_segsort style).

The paper predates the now-standard *segmented sort* primitives.  Later
libraries sort many independent segments in a single launch by assigning
segments to cooperative groups by size class.  This module implements a
host-vectorized equivalent so the benchmark suite can place
GPU-ArraySort's design in today's context (novelty band in DESIGN.md):

* uniform-length segments (our batch case) — one stable flat sort keyed
  by ``(segment, value)``, the merge-path style single pass;
* ragged segments — the same via explicit segment offsets.

It is also the third independent implementation of batch sorting in the
repo, which the property tests exploit for three-way cross-checking.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_sort", "segmented_sort_ragged"]


def segmented_sort(batch: np.ndarray) -> np.ndarray:
    """Sort each row of a uniform ``(N, n)`` batch in one flat pass.

    One ``np.lexsort`` with the row id as major key: the single-launch
    structure of a modern segmented sort (every element participates in
    one global key comparison network; no per-segment dispatch).
    """
    batch = np.asarray(batch)
    if batch.ndim != 2:
        raise ValueError(f"expected (N, n) batch, got shape {batch.shape}")
    N, n = batch.shape
    if N == 0 or n == 0:
        return batch.copy()
    rows = np.repeat(np.arange(N), n)
    order = np.lexsort((batch.ravel(), rows))
    return batch.ravel()[order].reshape(N, n)


def segmented_sort_ragged(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sort ragged segments: ``values[offsets[i]:offsets[i+1]]`` each sorted.

    ``offsets`` must be non-decreasing, start at 0, end at ``len(values)``.
    Returns a new flat array; segment boundaries are unchanged.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be 1-D with at least 1 entry")
    if offsets[0] != 0 or offsets[-1] != values.size or np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be a non-decreasing span of values")
    seg_ids = np.zeros(values.size + 1, dtype=np.int64)
    # Mark each interior segment start (possibly repeated for empties).
    np.add.at(seg_ids, offsets[1:-1], 1)
    seg_of_element = np.cumsum(seg_ids[:-1])
    order = np.lexsort((values, seg_of_element))
    return values[order]
