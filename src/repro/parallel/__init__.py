"""``repro.parallel`` — multicore sharded execution for the vectorized engine.

The paper scales GPU-ArraySort across thousands of CUDA cores by giving
every array its own block; this subsystem applies the same decomposition
to host cores: the ``(N, n)`` batch is split into row shards
(:mod:`~repro.parallel.plan`), each shard runs the complete three-phase
pipeline independently, and the results are reassembled in order
(:mod:`~repro.parallel.executors`).  Because every phase is per-row, the
output is byte-identical for any worker count.

Entry points:

* ``GpuArraySort(engine="vectorized", parallel="thread"|"process", workers=k)``
  — the usual way in;
* :func:`~repro.parallel.executors.resolve_executor` — the spec-to-engine
  mapping behind that keyword;
* :class:`~repro.parallel.executors.ThreadPoolEngine` /
  :class:`~repro.parallel.executors.ProcessPoolEngine` /
  :class:`~repro.parallel.executors.SerialEngine` — direct construction
  for custom worker counts and shard floors.
"""

from .executors import (
    ProcessPoolEngine,
    SerialEngine,
    ThreadPoolEngine,
    attach_shm_view,
    resolve_executor,
    sort_rows_inplace,
)
from .plan import Shard, ShardPlan, plan_shards

__all__ = [
    "ProcessPoolEngine",
    "SerialEngine",
    "Shard",
    "ShardPlan",
    "ThreadPoolEngine",
    "attach_shm_view",
    "plan_shards",
    "resolve_executor",
    "sort_rows_inplace",
]
