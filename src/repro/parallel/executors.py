"""Sharded executors: run the vectorized pipeline on row shards in parallel.

Three engines share one contract — ``sort_batch(work, config)`` sorts the
``(N, n)`` matrix **in place** and returns a
:class:`~repro.core.array_sort.SortResult` whose ``buckets`` carry the
reassembled per-row ``sizes``/``offsets``:

* :class:`SerialEngine` — the identity executor: one shard, current
  process.  Exists so the sharded code path itself is exercised serially
  and so callers can treat "no parallelism" uniformly.
* :class:`ThreadPoolEngine` — ``concurrent.futures`` threads over
  disjoint row *views* of the caller's array.  Zero copies anywhere; the
  big NumPy kernels (``ndarray.sort``, ``argsort``, ``lexsort``) release
  the GIL, so shards genuinely overlap on multicore hosts.
* :class:`ProcessPoolEngine` — worker processes attached to one
  ``multiprocessing.shared_memory`` block.  The batch is staged into the
  segment once, every worker sorts its row range in place inside the
  shared buffer (zero-copy shard views on both sides), and the parent
  copies the result back after **all** shards succeed.  Any worker
  failure — a crashed process, a pool that cannot spawn, a pickling
  error — falls back to sorting the caller's untouched array serially,
  so the engine degrades instead of corrupting (the shared staging
  buffer is discarded wholesale on fallback).

Because every phase of GPU-ArraySort is per-row (see
:mod:`repro.parallel.plan`), all three engines produce byte-identical
batches and identical metadata for any worker count — pinned by
``tests/test_parallel_executors.py``.

Shard results are reassembled in shard order regardless of completion
order; per-shard phase-1 diagnostics (``samples_sorted``) are not
retained, so a parallel :class:`SortResult` has ``splitters=None``.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import List, Optional, Tuple

import numpy as np

from ..core.array_sort import SortResult
from ..core.bucketing import BucketResult, bucketize
from ..core.config import SortConfig
from ..core.insertion import sort_buckets
from ..core.splitters import select_splitters
from .plan import (
    DEFAULT_MIN_ROWS_PER_SHARD,
    DEFAULT_MIN_ROWS_PER_WORKER,
    ShardPlan,
    plan_shards,
)

__all__ = [
    "SerialEngine",
    "ThreadPoolEngine",
    "ProcessPoolEngine",
    "attach_shm_view",
    "resolve_executor",
    "sort_rows_inplace",
]


def attach_shm_view(
    shm_name: str,
    shape: Tuple[int, ...],
    dtype_str: str,
    offset: int = 0,
):
    """Attach a shared-memory segment and view it as an ndarray.

    Returns ``(shm, view)``; the caller owns ``shm.close()`` (and must
    keep ``shm`` alive for as long as the view is used — the view
    borrows the segment's buffer).  This is the one cross-process
    handoff primitive shared by the process-pool shard workers and the
    fleet's worker processes: name + shape + dtype + byte offset fully
    describe a zero-copy window into another process's slab.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    view = np.ndarray(
        shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=int(offset)
    )
    return shm, view


def default_workers() -> int:
    """Worker count when the caller does not choose: the machine's cores."""
    return max(1, os.cpu_count() or 1)


def sort_rows_inplace(
    view: np.ndarray, config: SortConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the full vectorized pipeline on ``view`` rows, in place.

    The per-shard unit of work shared by every executor (and by the
    process-pool workers, which is why it is a module-level function:
    it must be picklable by reference).  Honors ``config.fuse_phases``.
    Returns the shard's ``(sizes, offsets)``.
    """
    spl = select_splitters(view, config)
    if config.fuse_phases:
        from ..core.fused import fused_bucket_sort

        res = fused_bucket_sort(view, spl.splitters, spl.num_buckets)
    else:
        res = bucketize(view, spl.splitters, config, out=view)
        sort_buckets(view, res.offsets)
    return res.sizes, res.offsets


def _sort_shard_shm(
    shm_name: str,
    offset: int,
    shape: Tuple[int, int],
    dtype_str: str,
    start: int,
    stop: int,
    config: SortConfig,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Process-pool worker: attach the shared block, sort rows [start, stop).

    The shard is a zero-copy view into shared memory — either the
    engine's own staging buffer (``offset=0``) or, when the caller's
    batch already lives in an arena slab, that slab at ``offset`` bytes.
    Only the small ``sizes``/``offsets`` metadata rides back through the
    result pickle.
    """
    shm, buf = attach_shm_view(shm_name, shape, dtype_str, offset)
    try:
        sizes, offsets = sort_rows_inplace(buf[start:stop], config)
        return start, sizes, offsets
    finally:
        shm.close()


def _assemble(
    work: np.ndarray,
    pieces: List[Tuple[int, np.ndarray, np.ndarray]],
    elapsed: float,
    *,
    engine_name: str,
    shards: int,
    workers: int,
    fell_back: bool = False,
) -> SortResult:
    """Ordered reassembly of shard metadata into one SortResult."""
    pieces.sort(key=lambda item: item[0])
    sizes = np.vstack([p[1] for p in pieces])
    offsets = np.vstack([p[2] for p in pieces])
    buckets = BucketResult(bucketed=work, sizes=sizes, offsets=offsets)
    result = SortResult(
        batch=work,
        buckets=buckets,
        phase_seconds={"parallel_sort": elapsed},
    )
    # Execution provenance for observability/tests (not part of the
    # dataclass contract; attribute access degrades gracefully).
    result.parallel_info = {
        "engine": engine_name,
        "shards": shards,
        "workers": workers,
        "fell_back_to_serial": fell_back,
    }
    return result


class _ShardedEngineBase:
    """Shared planning/accounting for the executors."""

    name = "base"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        min_rows_per_shard: int = DEFAULT_MIN_ROWS_PER_SHARD,
        min_rows_per_worker: int = DEFAULT_MIN_ROWS_PER_WORKER,
    ) -> None:
        self.workers = int(workers) if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.min_rows_per_shard = int(min_rows_per_shard)
        #: Fan-out guard: batches below this many rows per worker run as a
        #: single shard (see :data:`repro.parallel.plan.DEFAULT_MIN_ROWS_PER_WORKER`).
        self.min_rows_per_worker = int(min_rows_per_worker)
        #: Times this engine degraded to the serial path (crash fallback).
        self.fallbacks = 0

    def plan(self, num_rows: int) -> ShardPlan:
        """The deterministic shard decomposition this engine would use."""
        return plan_shards(
            num_rows,
            self.workers,
            min_rows_per_shard=self.min_rows_per_shard,
            min_rows_per_worker=self.min_rows_per_worker,
        )

    def _sort_serial(self, work: np.ndarray, config: SortConfig, t0: float,
                     *, fell_back: bool = False) -> SortResult:
        sizes, offsets = sort_rows_inplace(work, config)
        return _assemble(
            work, [(0, sizes, offsets)], time.perf_counter() - t0,
            engine_name=self.name, shards=1, workers=1, fell_back=fell_back,
        )

    def sort_batch(self, work: np.ndarray, config: SortConfig) -> SortResult:
        raise NotImplementedError


class SerialEngine(_ShardedEngineBase):
    """One shard, current process — the sharded path without concurrency."""

    name = "serial"

    def sort_batch(self, work: np.ndarray, config: SortConfig) -> SortResult:
        """Sort ``work`` in place through the shard machinery, serially."""
        return self._sort_serial(work, config, time.perf_counter())


class ThreadPoolEngine(_ShardedEngineBase):
    """Threaded shards over zero-copy row views of the caller's array.

    NumPy's sorting kernels drop the GIL, so disjoint row views sort
    concurrently with no staging copies at all.  The right default for
    in-process use; also the cheapest way to overlap shards under a
    streaming session's push cadence.
    """

    name = "thread"

    def sort_batch(self, work: np.ndarray, config: SortConfig) -> SortResult:
        """Sort ``work`` in place with up to ``workers`` threads."""
        t0 = time.perf_counter()
        plan = self.plan(work.shape[0])
        if len(plan) <= 1:
            return self._sort_serial(work, config, t0)
        pieces: List[Tuple[int, np.ndarray, np.ndarray]] = []
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=len(plan)
        ) as pool:
            futures = {
                pool.submit(
                    sort_rows_inplace, work[shard.start:shard.stop], config
                ): shard
                for shard in plan
            }
            for future in concurrent.futures.as_completed(futures):
                shard = futures[future]
                sizes, offsets = future.result()
                pieces.append((shard.start, sizes, offsets))
        return _assemble(
            work, pieces, time.perf_counter() - t0,
            engine_name=self.name, shards=len(plan), workers=self.workers,
        )


class ProcessPoolEngine(_ShardedEngineBase):
    """Worker processes sorting shards of one shared-memory staging block.

    Zero-copy on the worker side (each attaches a row-range view of the
    shared segment); one staging copy in, one copy back in the parent.
    If anything in the pool fails — a worker killed mid-shard, a spawn
    failure, an unpicklable config — the shared buffer is discarded and
    the caller's untouched array is sorted serially instead: crashes
    degrade throughput, never correctness.
    """

    name = "process"

    def sort_batch(self, work: np.ndarray, config: SortConfig) -> SortResult:
        """Sort ``work`` in place via shared-memory worker shards."""
        t0 = time.perf_counter()
        plan = self.plan(work.shape[0])
        if len(plan) <= 1:
            return self._sort_serial(work, config, t0)
        try:
            return self._sort_shared(work, config, plan, t0)
        except Exception:
            # Worker crash / pool breakage / shm failure: the staging
            # buffer may be partially sorted, but `work` has not been
            # touched — redo the whole batch serially.
            self.fallbacks += 1
            return self._sort_serial(work, config, t0, fell_back=True)

    def _sort_shared(
        self,
        work: np.ndarray,
        config: SortConfig,
        plan: ShardPlan,
        t0: float,
    ) -> SortResult:
        from multiprocessing import shared_memory

        from ..core.workspace import find_shared_slab

        # Zero-copy fast path: a batch that already lives in a registered
        # shared-memory slab (a ScratchArena `get_shared` buffer, the way
        # a planner-driven sorter stages its work copy) needs no staging
        # memcpy at all — workers attach the existing segment at the
        # slab offset and sort the caller's rows directly.  Note the
        # crash-fallback consequence: the caller's buffer may then hold
        # partially sorted rows when a worker dies.  In-place introsort
        # only ever *swaps* within a row, so every row remains a
        # permutation of its input and the serial fallback still
        # produces a correctly sorted batch (with metadata derived from
        # the fallback run's own splitters).
        slab = find_shared_slab(work)
        if slab is not None:
            shm_name, offset = slab
            return self._submit_shards(
                work, work, shm_name, offset, config, plan, t0,
                zero_copy=True,
            )

        shm = shared_memory.SharedMemory(create=True, size=int(work.nbytes))
        try:
            staged = np.ndarray(work.shape, dtype=work.dtype, buffer=shm.buf)
            staged[:] = work
            return self._submit_shards(
                work, staged, shm.name, 0, config, plan, t0,
                zero_copy=False,
            )
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def _submit_shards(
        self,
        work: np.ndarray,
        staged: np.ndarray,
        shm_name: str,
        offset: int,
        config: SortConfig,
        plan: ShardPlan,
        t0: float,
        *,
        zero_copy: bool,
    ) -> SortResult:
        pieces: List[Tuple[int, np.ndarray, np.ndarray]] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(plan))
        ) as pool:
            futures = [
                pool.submit(
                    _sort_shard_shm,
                    shm_name,
                    offset,
                    work.shape,
                    work.dtype.str,
                    shard.start,
                    shard.stop,
                    config,
                )
                for shard in plan
            ]
            for future in concurrent.futures.as_completed(futures):
                pieces.append(future.result())
        # All shards verified done: commit the sorted staging buffer
        # (the zero-copy path sorted the caller's slab in place).
        if not zero_copy:
            work[:] = staged
        result = _assemble(
            work, pieces, time.perf_counter() - t0,
            engine_name=self.name, shards=len(plan), workers=self.workers,
        )
        result.parallel_info["zero_copy_shm"] = zero_copy
        return result


_ENGINES = {
    "serial": SerialEngine,
    "thread": ThreadPoolEngine,
    "threads": ThreadPoolEngine,
    "process": ProcessPoolEngine,
    "processes": ProcessPoolEngine,
}


def resolve_executor(parallel, *, workers: Optional[int] = None):
    """Turn a ``parallel=`` spec into an executor instance.

    Accepts an executor instance (anything with ``sort_batch``), one of
    the names ``"serial"``/``"thread"``/``"process"`` (plural aliases
    allowed), or ``None`` (returns ``None`` — the caller's plain serial
    path, preserving full phase-1 diagnostics).
    """
    if parallel is None:
        return None
    if hasattr(parallel, "sort_batch"):
        return parallel
    if isinstance(parallel, str):
        key = parallel.lower()
        if key in ("none",):
            return None
        if key in _ENGINES:
            return _ENGINES[key](workers=workers)
        raise ValueError(
            f"unknown parallel mode {parallel!r}; choose from "
            f"{sorted(set(_ENGINES))} or pass an executor instance"
        )
    raise TypeError(
        "parallel must be None, a mode name, or an executor instance; "
        f"got {type(parallel).__name__}"
    )
