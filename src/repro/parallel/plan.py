"""Shard planning: split an ``(N, n)`` batch into independent row ranges.

GPU-ArraySort's three phases are all *per-row*: phase 1 samples and picks
splitters within one array, phases 2+3 bucket and sort within one array.
A row shard is therefore a complete, self-contained sub-problem — the
sorted output and the per-row ``sizes``/``offsets`` metadata of a shard
do not depend on which shard boundaries were chosen.  That property is
what makes the sharded executors of :mod:`repro.parallel.executors`
**deterministic**: any worker count produces byte-identical results.

The planner's only real decisions are balance and granularity:

* shards differ in size by at most one row (remainder rows go to the
  leading shards), so no worker is left with a straggler shard;
* ``min_rows_per_shard`` stops the plan from slicing tiny batches into
  per-row crumbs where pool dispatch overhead would dominate — the same
  reasoning the paper applies when it refuses complex phase-1 kernels for
  tiny samples (§5.1);
* ``min_rows_per_worker`` is the coarser *fan-out* threshold: below it
  the plan collapses to a single shard, so the executors never pay pool
  overhead on batches where sharding measurably loses (the 0.90×
  ``ref-f32-mid`` regression in ``BENCH_hotpath.json`` — 5000 rows split
  across threads was slower than sorting them serially).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple

__all__ = ["Shard", "ShardPlan", "plan_shards"]

#: Default floor on shard granularity; below this the per-task overhead
#: (future + pickle + attach) outweighs any overlap.
DEFAULT_MIN_ROWS_PER_SHARD = 64

#: Default fan-out threshold: batches with fewer rows than this per
#: prospective worker get a 1-shard plan.  Calibrated against the
#: committed hot-path benchmark: sharding lost at 5 000 rows (0.90×)
#: and won at 100 000 rows (2.3×), so the break-even sits comfortably
#: above 4 096 rows per worker.
DEFAULT_MIN_ROWS_PER_WORKER = 4096


@dataclasses.dataclass(frozen=True)
class Shard:
    """Half-open row range ``[start, stop)`` owned by one worker task."""

    index: int
    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Ordered, disjoint, covering decomposition of ``num_rows`` rows."""

    num_rows: int
    shards: Tuple[Shard, ...]

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(
    num_rows: int,
    workers: int,
    *,
    min_rows_per_shard: int = DEFAULT_MIN_ROWS_PER_SHARD,
    min_rows_per_worker: Optional[int] = None,
) -> ShardPlan:
    """Deterministic row decomposition into at most ``workers`` shards.

    Shard sizes differ by at most one row; the shard count is reduced
    below ``workers`` when ``min_rows_per_shard`` would be violated, and
    collapses to a single shard whenever the batch cannot give every
    prospective worker at least ``min_rows_per_worker`` rows (default
    :data:`DEFAULT_MIN_ROWS_PER_WORKER`; pass ``1`` to disable the
    fan-out guard).  A zero-row batch yields an empty plan.

    >>> plan = plan_shards(10, 3, min_rows_per_shard=1, min_rows_per_worker=1)
    >>> [(s.start, s.stop) for s in plan]
    [(0, 4), (4, 7), (7, 10)]
    >>> len(plan_shards(5000, 8))  # below the fan-out threshold: serial
    1
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if min_rows_per_shard < 1:
        raise ValueError(
            f"min_rows_per_shard must be >= 1, got {min_rows_per_shard}"
        )
    if min_rows_per_worker is None:
        min_rows_per_worker = DEFAULT_MIN_ROWS_PER_WORKER
    if min_rows_per_worker < 1:
        raise ValueError(
            f"min_rows_per_worker must be >= 1, got {min_rows_per_worker}"
        )
    if num_rows < 0:
        raise ValueError(f"num_rows must be >= 0, got {num_rows}")
    if num_rows == 0:
        return ShardPlan(num_rows=0, shards=())
    count = min(
        workers,
        max(1, num_rows // min_rows_per_shard),
        max(1, num_rows // min_rows_per_worker),
    )
    base, extra = divmod(num_rows, count)
    shards = []
    start = 0
    for i in range(count):
        stop = start + base + (1 if i < extra else 0)
        shards.append(Shard(index=i, start=start, stop=stop))
        start = stop
    return ShardPlan(num_rows=num_rows, shards=tuple(shards))
