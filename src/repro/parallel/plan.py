"""Shard planning: split an ``(N, n)`` batch into independent row ranges.

GPU-ArraySort's three phases are all *per-row*: phase 1 samples and picks
splitters within one array, phases 2+3 bucket and sort within one array.
A row shard is therefore a complete, self-contained sub-problem — the
sorted output and the per-row ``sizes``/``offsets`` metadata of a shard
do not depend on which shard boundaries were chosen.  That property is
what makes the sharded executors of :mod:`repro.parallel.executors`
**deterministic**: any worker count produces byte-identical results.

The planner's only real decisions are balance and granularity:

* shards differ in size by at most one row (remainder rows go to the
  leading shards), so no worker is left with a straggler shard;
* ``min_rows_per_shard`` stops the plan from slicing tiny batches into
  per-row crumbs where pool dispatch overhead would dominate — the same
  reasoning the paper applies when it refuses complex phase-1 kernels for
  tiny samples (§5.1).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

__all__ = ["Shard", "ShardPlan", "plan_shards"]

#: Default floor on shard granularity; below this the per-task overhead
#: (future + pickle + attach) outweighs any overlap.
DEFAULT_MIN_ROWS_PER_SHARD = 64


@dataclasses.dataclass(frozen=True)
class Shard:
    """Half-open row range ``[start, stop)`` owned by one worker task."""

    index: int
    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Ordered, disjoint, covering decomposition of ``num_rows`` rows."""

    num_rows: int
    shards: Tuple[Shard, ...]

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)


def plan_shards(
    num_rows: int,
    workers: int,
    *,
    min_rows_per_shard: int = DEFAULT_MIN_ROWS_PER_SHARD,
) -> ShardPlan:
    """Deterministic row decomposition into at most ``workers`` shards.

    Shard sizes differ by at most one row; the shard count is reduced
    below ``workers`` when ``min_rows_per_shard`` would be violated.  A
    zero-row batch yields an empty plan.

    >>> [(s.start, s.stop) for s in plan_shards(10, 3, min_rows_per_shard=1)]
    [(0, 4), (4, 7), (7, 10)]
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if min_rows_per_shard < 1:
        raise ValueError(
            f"min_rows_per_shard must be >= 1, got {min_rows_per_shard}"
        )
    if num_rows < 0:
        raise ValueError(f"num_rows must be >= 0, got {num_rows}")
    if num_rows == 0:
        return ShardPlan(num_rows=0, shards=())
    count = min(workers, max(1, num_rows // min_rows_per_shard))
    base, extra = divmod(num_rows, count)
    shards = []
    start = 0
    for i in range(count):
        stop = start + base + (1 if i < extra else 0)
        shards.append(Shard(index=i, start=start, stop=stop))
        start = stop
    return ShardPlan(num_rows=num_rows, shards=tuple(shards))
