"""Command-line front end: ``gpu-arraysort`` / ``python -m repro``.

Subcommands:

* ``sort``     — generate a workload, sort it with a chosen technique,
  report timings and (optionally) verify correctness;
* ``figures``  — print the model-reproduced series for Fig 2 and Figs 4-7;
* ``table1``   — print the Table 1 capacity reproduction;
* ``devices``  — list the simulated device catalog.

All output is plain text via :mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-arraysort",
        description="GPU-ArraySort reproduction (Awan & Saeed, 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser("sort", help="sort a generated batch and report timing")
    p_sort.add_argument("--num-arrays", "-N", type=int, default=10_000)
    p_sort.add_argument("--array-size", "-n", type=int, default=1000)
    p_sort.add_argument(
        "--technique",
        choices=["arraysort", "sta", "segmented", "sequential"],
        default="arraysort",
    )
    p_sort.add_argument(
        "--engine", choices=["vectorized", "sim", "model"], default="vectorized",
        help="execution engine for the arraysort technique",
    )
    p_sort.add_argument(
        "--workload",
        choices=["uniform", "normal", "clustered", "duplicates", "spectra"],
        default="uniform",
    )
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.add_argument("--bucket-size", type=int, default=20)
    p_sort.add_argument("--sampling-rate", type=float, default=0.10)
    p_sort.add_argument("--verify", action="store_true")
    p_sort.add_argument(
        "--workers", type=int, default=0, metavar="K",
        help="sharded execution with K workers (0 = serial, the default)",
    )
    p_sort.add_argument(
        "--parallel", choices=["thread", "process"], default="thread",
        help="executor used when --workers > 0 (vectorized engine only)",
    )
    p_sort.add_argument(
        "--no-fuse", action="store_true",
        help="run the paper-faithful separate phase 2/3 passes instead of "
             "the fused single-pass engine",
    )
    p_sort.add_argument(
        "--planner", choices=["auto", "fused", "sharded", "radix"], default=None,
        help="adaptive per-batch engine planning (vectorized engine only; "
             "mutually exclusive with --workers): 'auto' learns the best "
             "engine per batch shape, 'fused'/'sharded'/'radix' force one",
    )

    p_fig = sub.add_parser("figures", help="print model-reproduced figure series")
    p_fig.add_argument(
        "--which", choices=["fig2", "fig4", "fig5", "fig6", "fig7", "all"],
        default="all",
    )

    p_tab = sub.add_parser("table1", help="print the Table 1 capacity reproduction")
    p_tab.add_argument("--no-measure", action="store_true",
                       help="skip the empirical allocator probe")

    sub.add_parser("devices", help="list the simulated device catalog")

    p_pairs = sub.add_parser(
        "pairs", help="key-value sort demo: spectra by m/z carrying intensity"
    )
    p_pairs.add_argument("--num-spectra", "-N", type=int, default=2000)
    p_pairs.add_argument("--peaks", "-n", type=int, default=1000)
    p_pairs.add_argument("--by", choices=["mz", "intensity"], default="mz")
    p_pairs.add_argument("--seed", type=int, default=0)

    p_ooc = sub.add_parser(
        "outofcore", help="out-of-core sorting plan + modeled timeline"
    )
    p_ooc.add_argument("--num-arrays", "-N", type=int, default=5_000_000)
    p_ooc.add_argument("--array-size", "-n", type=int, default=1000)
    p_ooc.add_argument("--device", default="k40c")
    p_ooc.add_argument("--pcie-gbps", type=float, default=12.0)

    p_cap = sub.add_parser(
        "capacity",
        help="sort a batch larger than a declared memory budget "
             "(out-of-core, spill-to-disk, resumable)",
    )
    p_cap.add_argument("--num-arrays", "-N", type=int, default=100_000)
    p_cap.add_argument("--array-size", "-n", type=int, default=1000)
    p_cap.add_argument("--dtype", choices=["float64", "float32", "int64",
                                           "int32"], default="float64")
    p_cap.add_argument(
        "--memory-budget", default="256M", metavar="SIZE",
        help="working-memory ceiling, e.g. 256M, 2G (binary units)",
    )
    p_cap.add_argument(
        "--spill-dir", required=True,
        help="run directory for input, sorted chunks, manifest, checkpoint",
    )
    p_cap.add_argument(
        "--resume", action="store_true",
        help="continue a killed run from its manifest/checkpoint",
    )
    p_cap.add_argument(
        "--reclaim", action="store_true",
        help="delete stale state from a previous run before starting",
    )
    p_cap.add_argument("--workload", choices=["uniform", "normal"],
                       default="uniform")
    p_cap.add_argument("--seed", type=int, default=0)
    p_cap.add_argument(
        "--planner", choices=["auto", "fused", "sharded", "radix"],
        default="auto",
    )
    p_cap.add_argument("--verify", action="store_true",
                       help="verify each chunk after sorting")
    p_cap.add_argument(
        "--max-chunk-rows", type=int, default=0,
        help="cap chunk rows below what the budget allows (0 = uncapped)",
    )

    p_cal = sub.add_parser(
        "calibrate", help="refit the model constants from the paper anchors"
    )
    p_cal.add_argument("--show-anchors", action="store_true")

    sub.add_parser("workloads", help="list the standard workload suite")

    p_topk = sub.add_parser(
        "topk", help="keep the K largest elements per array (MS-REDUCE style)"
    )
    p_topk.add_argument("--num-arrays", "-N", type=int, default=5000)
    p_topk.add_argument("--array-size", "-n", type=int, default=2000)
    p_topk.add_argument("--k", "-k", type=int, default=200)
    p_topk.add_argument("--seed", type=int, default=0)

    p_exp = sub.add_parser(
        "export", help="write every reproduced series as CSV for plotting"
    )
    p_exp.add_argument("--output-dir", "-o", default="reproduction_csv")

    p_res = sub.add_parser(
        "resilience",
        help="streaming sort under injected faults; print ResilienceStats",
    )
    p_res.add_argument("--num-arrays", "-N", type=int, default=500)
    p_res.add_argument("--array-size", "-n", type=int, default=200)
    p_res.add_argument("--batch-arrays", type=int, default=100)
    p_res.add_argument(
        "--workload",
        choices=["uniform", "normal", "clustered", "duplicates", "spectra"],
        default="uniform",
    )
    p_res.add_argument("--engine", choices=["vectorized", "sim", "model"],
                       default="vectorized")
    p_res.add_argument("--seed", type=int, default=0)
    p_res.add_argument("--fault-rate", type=float, default=0.2,
                       help="per-attempt transient KernelFault probability")
    p_res.add_argument("--corruption-rate", type=float, default=0.0,
                       help="per-attempt output bit-flip probability")
    p_res.add_argument(
        "--oom-window", action="append", default=[], metavar="START:STOP",
        help="half-open launch-index window of OOM pressure (repeatable)",
    )
    p_res.add_argument("--max-retries", type=int, default=3)
    p_res.add_argument("--real-backoff", action="store_true",
                       help="actually sleep the backoff (default: record only)")
    p_res.add_argument(
        "--workers", type=int, default=0, metavar="K",
        help="sharded vectorized execution with K thread workers "
             "(0 = serial)",
    )

    p_mc = sub.add_parser(
        "memcheck",
        help="run the kernel pipeline under the race detector (micro scale)",
    )
    p_mc.add_argument("--num-arrays", "-N", type=int, default=3)
    p_mc.add_argument("--array-size", "-n", type=int, default=96)
    p_mc.add_argument("--seed", type=int, default=0)

    p_srv = sub.add_parser(
        "serve-bench",
        help="drive synthetic traffic through the sort service and report "
             "throughput/latency (optionally vs the unbatched baseline)",
    )
    p_srv.add_argument("--array-size", "-n", type=int, default=256)
    p_srv.add_argument("--requests", type=int, default=2000,
                       help="total requests across all clients")
    p_srv.add_argument("--clients", type=int, default=8)
    p_srv.add_argument(
        "--arrival", choices=["closed", "open"], default="closed",
        help="closed: each client waits for its previous request; "
             "open: paced arrivals at --rate req/s",
    )
    p_srv.add_argument("--rate", type=float, default=2000.0,
                       help="offered load in req/s (open arrival only)")
    p_srv.add_argument(
        "--size-mix", default="1:0.6,4:0.3,16:0.1", metavar="R:W,...",
        help="rows-per-request mix as ROWS:WEIGHT pairs",
    )
    p_srv.add_argument("--batch-target", type=int, default=None,
                       help="coalesce target in rows (default: planner-derived)")
    p_srv.add_argument("--linger-ms", type=float, default=2.0,
                       help="max time the oldest queued request waits for "
                            "batch-mates")
    p_srv.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline; late work is shed")
    p_srv.add_argument(
        "--backend", choices=["plain", "resilient"], default="plain",
        help="resilient wraps the sorter in retry/quarantine handling",
    )
    p_srv.add_argument(
        "--planner", choices=["auto", "fused", "sharded", "radix"], default=None,
        help="execution planner handed to the backing sorter",
    )
    p_srv.add_argument(
        "--unbatched", action="store_true",
        help="also run the per-request baseline and report the speedup",
    )
    p_srv.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="dump the post-run metrics snapshot (schema "
             "repro-service-metrics/v1: counters, queue, per-tenant "
             "stats, resilience/fault counters) as JSON; '-' for stdout",
    )
    p_srv.add_argument(
        "--metrics-prom", metavar="PATH", default=None,
        help="also render the snapshot as Prometheus text-exposition "
             "lines to PATH ('-' for stdout)",
    )
    p_srv.add_argument("--seed", type=int, default=0)

    p_flt = sub.add_parser(
        "fleet-bench",
        help="drive synthetic traffic through the multi-process sort "
             "fleet and report throughput/latency per worker count",
    )
    p_flt.add_argument("--workers", type=int, default=2,
                       help="worker processes behind the fleet front-end")
    p_flt.add_argument("--array-size", "-n", type=int, default=64)
    p_flt.add_argument("--requests", type=int, default=512,
                       help="total requests across all clients")
    p_flt.add_argument("--clients", type=int, default=16)
    p_flt.add_argument(
        "--arrival", choices=["closed", "open"], default="closed",
        help="closed: each client waits for its previous request; "
             "open: paced arrivals at --rate req/s",
    )
    p_flt.add_argument("--rate", type=float, default=500.0,
                       help="offered load in req/s (open arrival only)")
    p_flt.add_argument(
        "--size-mix", default="64:1.0", metavar="R:W,...",
        help="rows-per-request mix as ROWS:WEIGHT pairs",
    )
    p_flt.add_argument("--linger-ms", type=float, default=40.0,
                       help="per-worker batch linger window")
    p_flt.add_argument("--batch-target", type=int, default=1024,
                       help="per-worker coalesce target in rows")
    p_flt.add_argument("--worker-bound", type=int, default=512,
                       help="router per-worker outstanding-rows admission "
                            "bound (the fleet capacity knob)")
    p_flt.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline; late work is shed")
    p_flt.add_argument(
        "--planner", choices=["auto", "fused", "sharded", "radix"],
        default=None,
        help="execution planner spec handed to each worker's sorter",
    )
    p_flt.add_argument("--jitter-seed", type=int, default=None,
                       help="seed the router's retry_after jitter RNG "
                            "(deterministic backpressure hints)")
    p_flt.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="dump the post-run fleet metrics snapshot (schema "
             "repro-fleet-metrics/v1: fleet counters, per-worker and "
             "aggregate views, tenants) as JSON; '-' for stdout",
    )
    p_flt.add_argument(
        "--metrics-prom", metavar="PATH", default=None,
        help="also render the snapshot as Prometheus repro_fleet_* "
             "text-exposition lines to PATH ('-' for stdout)",
    )
    p_flt.add_argument("--seed", type=int, default=0)

    p_rep = sub.add_parser(
        "report", help="regenerate the full reproduction report"
    )
    p_rep.add_argument("--output", "-o", default=None,
                       help="write to a file instead of stdout")
    p_rep.add_argument("--claims-only", action="store_true",
                       help="skip the figure series")

    p_statan = sub.add_parser(
        "statan",
        help="project-native static analysis: guarded-by locks, "
             "scratch escapes, determinism audit",
    )
    from .statan.cli import add_statan_arguments

    add_statan_arguments(p_statan)
    return parser


def _make_batch(args) -> np.ndarray:
    from .workloads import (
        clustered_arrays,
        duplicate_heavy_arrays,
        generate_spectra,
        normal_arrays,
        uniform_arrays,
    )

    if args.workload == "uniform":
        return uniform_arrays(args.num_arrays, args.array_size, seed=args.seed)
    if args.workload == "normal":
        return normal_arrays(args.num_arrays, args.array_size, seed=args.seed)
    if args.workload == "clustered":
        return clustered_arrays(args.num_arrays, args.array_size, seed=args.seed)
    if args.workload == "duplicates":
        return duplicate_heavy_arrays(args.num_arrays, args.array_size, seed=args.seed)
    if args.workload == "spectra":
        return generate_spectra(
            args.num_arrays, min(args.array_size, 4000), seed=args.seed
        ).intensity
    raise ValueError(f"unknown workload {args.workload}")


def _cmd_sort(args) -> int:
    from .baselines import segmented_sort, sequential_sort
    from .baselines.sta import StaSorter
    from .core import GpuArraySort, SortConfig
    from .core.validation import assert_batch_sorted

    batch = _make_batch(args)
    ref = batch.copy() if args.verify else None
    config = SortConfig(
        bucket_size=args.bucket_size,
        sampling_rate=args.sampling_rate,
        fuse_phases=not args.no_fuse,
    )

    t0 = time.perf_counter()
    if args.technique == "arraysort":
        parallel = args.parallel if args.workers > 1 else None
        if parallel is not None and args.engine != "vectorized":
            print("--workers applies to the vectorized engine only",
                  file=sys.stderr)
            return 2
        if args.planner is not None:
            if args.engine != "vectorized":
                print("--planner applies to the vectorized engine only",
                      file=sys.stderr)
                return 2
            if parallel is not None:
                print(f"--planner {args.planner} conflicts with "
                      f"--workers {args.workers}: the planner chooses the "
                      "execution engine per batch, so a fixed worker count "
                      "cannot also apply (drop --workers, or use "
                      "--planner sharded to force sharded execution)",
                      file=sys.stderr)
                return 2
        sorter = GpuArraySort(
            config, engine=args.engine,
            parallel=parallel if args.planner is None else None,
            workers=args.workers or None,
            planner=args.planner,
        )
        result = sorter.sort(batch)
        out = result.batch
        elapsed = time.perf_counter() - t0
        # fuse_phases only selects a path inside the vectorized engine
        label = args.engine
        if args.engine == "vectorized":
            label += ", fused" if config.fuse_phases else ", unfused"
        print(f"GPU-ArraySort ({label}) on {batch.shape}: "
              f"{elapsed:.3f} s wall")
        for phase, secs in result.phase_seconds.items():
            print(f"  {phase}: {secs:.3f} s")
        info = getattr(result, "parallel_info", None)
        if info is not None:
            print(f"  sharded: {info['engine']} x{info['workers']} "
                  f"({info['shards']} shards"
                  + (", fell back to serial)" if info["fell_back_to_serial"]
                     else ")"))
        plan = getattr(result, "execution_plan", None)
        if plan is not None:
            print(f"  planner: chose {plan.engine} "
                  f"(source={plan.source}, predicted {plan.predicted_ms:.1f} ms)")
            # One-shot process: flush observations below the autosave
            # threshold so the next invocation warm-starts from them.
            sorter.planner.save()
        if result.modeled_ms is not None:
            print(f"  modeled device time: {result.modeled_ms:.1f} ms")
    elif args.technique == "sta":
        result = StaSorter().sort(batch)
        out = result.batch
        elapsed = time.perf_counter() - t0
        print(f"STA on {batch.shape}: {elapsed:.3f} s wall")
        for phase, secs in result.phase_seconds.items():
            print(f"  {phase}: {secs:.3f} s")
    elif args.technique == "segmented":
        out = segmented_sort(batch)
        print(f"segmented sort on {batch.shape}: {time.perf_counter() - t0:.3f} s wall")
    else:
        out = sequential_sort(batch)
        print(f"sequential sort on {batch.shape}: {time.perf_counter() - t0:.3f} s wall")

    if args.verify:
        assert_batch_sorted(out, ref)
        print("verification: OK (sorted + permutation)")
    return 0


def _cmd_figures(args) -> int:
    from .analysis.perfmodel import model_arraysort_ms, model_sta_ms
    from .analysis.reporting import ascii_plot, render_series
    from .gpusim.device import K40C

    which = args.which

    if which in ("fig2", "all"):
        from .analysis.complexity import fit_scale

        sizes = list(range(100, 2001, 100))
        measured = [model_arraysort_ms(K40C, 50_000, n) for n in sizes]
        fit = fit_scale(sizes, measured)
        print(render_series(
            "n", sizes,
            {"modeled_ms": measured, "theory_ms": list(fit.predicted)},
            title=f"Fig 2 — time vs array size (N=50000), R^2={fit.r_squared:.4f}",
        ))
        print()

    fig_sizes = {"fig4": 1000, "fig5": 2000, "fig6": 3000, "fig7": 4000}
    for fig, n in fig_sizes.items():
        if which not in (fig, "all"):
            continue
        n_values = [25_000, 50_000, 100_000, 150_000, 200_000]
        if n == 4000:
            n_values = [25_000, 50_000, 100_000, 150_000]
        gas = [model_arraysort_ms(K40C, N, n) for N in n_values]
        sta = [model_sta_ms(K40C, N, n) for N in n_values]
        print(render_series(
            "N", n_values, {"GPU-ArraySort_ms": gas, "STA_ms": sta},
            title=f"{fig.upper()} — runtime vs number of arrays (n={n})",
        ))
        print(ascii_plot(n_values, {"GAS": gas, "STA": sta}))
        print()
    return 0


def _cmd_table1(args) -> int:
    from .analysis.memory_model import table1_rows
    from .analysis.reporting import render_table

    rows = table1_rows(measure=not args.no_measure)
    print(render_table(
        ["n", "paper GAS", "model GAS", "measured GAS",
         "paper STA", "model STA", "measured STA", "advantage"],
        [
            [r.array_size, r.paper_arraysort, r.model_arraysort,
             r.measured_arraysort or "-", r.paper_sta, r.model_sta,
             r.measured_sta or "-", f"{r.model_advantage:.2f}x"]
            for r in rows
        ],
        title="Table 1 — maximum arrays sortable on a Tesla K40c",
    ))
    return 0


def _cmd_devices() -> int:
    from .analysis.reporting import render_table
    from .gpusim.device import DEVICE_CATALOG

    rows = [
        [key, spec.name, spec.sm_count, spec.cuda_cores,
         f"{spec.global_mem_bytes // (1024 * 1024)} MiB",
         f"{spec.shared_mem_per_block // 1024} KiB"]
        for key, spec in sorted(DEVICE_CATALOG.items())
    ]
    print(render_table(
        ["key", "name", "SMs", "cores", "global mem", "shared/block"],
        rows, title="Simulated device catalog",
    ))
    return 0


def _cmd_pairs(args) -> int:
    from .core.pairs import sort_pairs
    from .workloads import generate_spectra

    spectra = generate_spectra(args.num_spectra, args.peaks, seed=args.seed)
    keys = spectra.view(args.by)
    values = spectra.view("intensity" if args.by == "mz" else "mz")
    t0 = time.perf_counter()
    result = sort_pairs(keys, values)
    elapsed = time.perf_counter() - t0
    print(f"Sorted {args.num_spectra} spectra ({args.peaks} peaks) by "
          f"{args.by}, carrying the paired column: {elapsed:.3f} s")
    print(f"first spectrum, first 3 pairs: "
          f"{list(zip(result.keys[0, :3].tolist(), result.values[0, :3].tolist()))}")
    return 0


def _cmd_outofcore(args) -> int:
    from .core.pipeline import OutOfCoreSorter, plan_chunks
    from .analysis.perfmodel import model_arraysort_ms
    from .gpusim.device import DEVICE_CATALOG

    spec = DEVICE_CATALOG[args.device.lower()]
    plan = plan_chunks(args.num_arrays, args.array_size, device=spec)
    print(f"{args.num_arrays} arrays x {args.array_size} on {spec.name}: "
          f"{plan.num_chunks} chunks of {plan.arrays_per_chunk} arrays "
          f"({plan.chunk_bytes / 1e9:.2f} GB each, double-buffered)")
    sorter = OutOfCoreSorter(device=spec, pcie_gbps=args.pcie_gbps)
    per_chunk_arrays = plan.arrays_per_chunk
    # Model-only timeline (no host data needed at this scale).
    chunk_sizes = [per_chunk_arrays] * (plan.num_chunks - 1) if plan.num_chunks else []
    if plan.num_chunks:
        chunk_sizes.append(args.num_arrays - per_chunk_arrays * (plan.num_chunks - 1))
    itembytes = 4
    uploads = [c * args.array_size * itembytes / (args.pcie_gbps * 1e9) * 1e3
               for c in chunk_sizes]
    computes = [model_arraysort_ms(spec, c, args.array_size) for c in chunk_sizes]
    from .core.pipeline import pipeline_timeline

    total = pipeline_timeline(uploads, computes, uploads, overlap=True)
    serial = pipeline_timeline(uploads, computes, uploads, overlap=False)
    print(f"modeled timeline: overlapped {total:.0f} ms vs serialized "
          f"{serial:.0f} ms ({serial / max(total, 1e-9):.2f}x hidden)")
    return 0


def _cmd_capacity(args) -> int:
    from pathlib import Path

    from .outofcore import (
        BatchFile,
        CapacitySorter,
        format_memory_size,
        parse_memory_size,
        write_batch_file,
    )

    spill_dir = Path(args.spill_dir)
    spill_dir.mkdir(parents=True, exist_ok=True)
    dtype = np.dtype(args.dtype)
    rows, row_len = args.num_arrays, args.array_size
    input_path = spill_dir / "input.bin"
    expected = rows * row_len * dtype.itemsize
    if args.resume and input_path.exists() and \
            input_path.stat().st_size >= expected:
        print(f"reusing input {input_path} ({expected} bytes)")
    else:
        def block(block_index: int, start: int, take: int) -> np.ndarray:
            # Per-block generator seeded by (seed, block): bounded memory
            # and reproducible regardless of block size or resume point.
            rng = np.random.default_rng([args.seed, block_index])
            if args.workload == "normal":
                data = rng.normal(0.0, 1.0, (take, row_len))
            else:
                data = rng.uniform(0.0, 2**31 - 1, (take, row_len))
            return data.astype(dtype)

        write_batch_file(input_path, block, rows=rows, row_len=row_len,
                         dtype=dtype)
        print(f"wrote input {input_path} ({expected} bytes)")
    source = BatchFile(path=input_path, rows=rows, row_len=row_len,
                       dtype=dtype)

    budget = parse_memory_size(args.memory_budget)
    sorter = CapacitySorter(
        budget,
        planner=args.planner,
        verify=args.verify,
        max_chunk_rows=args.max_chunk_rows,
        progress=lambda info: print(
            f"  chunk {info['index']:>6}: {info['rows']} rows "
            f"({info['rows_done']}/{info['total_rows']})"
        ),
    )
    plan = sorter.plan(rows, row_len, dtype)
    print(
        f"budget {format_memory_size(budget)}: "
        f"{plan.num_chunks} chunk(s) of {plan.chunk_rows} rows "
        f"({format_memory_size(plan.working_set_bytes)} working set, "
        f"batch {format_memory_size(plan.total_bytes)}, "
        f"{plan.oversubscription:.1f}x over budget)"
    )
    result = sorter.run(
        source, spill_dir=spill_dir / "spill",
        resume=args.resume, reclaim=args.reclaim,
    )
    stats = result.stats
    throughput = stats.rows_sorted / max(stats.wall_seconds, 1e-9)
    print(
        f"done: {stats.chunks_committed} committed "
        f"(+{stats.chunks_resumed} resumed), "
        f"{stats.rows_sorted} rows in {stats.wall_seconds:.2f}s "
        f"({throughput:,.0f} rows/s), "
        f"{format_memory_size(stats.spill_bytes_written)} spilled"
    )
    if stats.shrink_events or stats.serial_fallback_chunks:
        print(
            f"degraded: {stats.shrink_events} shrink(s), "
            f"{stats.serial_fallback_chunks} serial-fallback chunk(s)"
        )
    return 0


def _cmd_calibrate(args) -> int:
    from .analysis.calibration import (
        PAPER_TIME_ANCHORS,
        fit_memory_fraction,
        fit_time_calibration,
    )
    from .analysis.perfmodel import CALIBRATION
    from .gpusim.device import K40C

    time_fit = fit_time_calibration(PAPER_TIME_ANCHORS)
    mem_fit = fit_memory_fraction()
    print(f"time calibration : fitted {time_fit.value:.2f} "
          f"(shipped {CALIBRATION})")
    print(f"memory fraction  : fitted {mem_fit.value:.3f} "
          f"(shipped {K40C.usable_mem_fraction})")
    if args.show_anchors:
        print("\nper-anchor residuals (prediction vs figure reading):")
        for key, residual in time_fit.residuals.items():
            print(f"  {key:<28} {residual:+.1%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sort":
        return _cmd_sort(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "devices":
        return _cmd_devices()
    if args.command == "pairs":
        return _cmd_pairs(args)
    if args.command == "outofcore":
        return _cmd_outofcore(args)
    if args.command == "capacity":
        return _cmd_capacity(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "topk":
        return _cmd_topk(args)
    if args.command == "memcheck":
        return _cmd_memcheck(args)
    if args.command == "resilience":
        return _cmd_resilience(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "fleet-bench":
        return _cmd_fleet_bench(args)
    if args.command == "statan":
        from .statan.cli import run_statan

        return run_statan(args)
    if args.command == "export":
        from .analysis.export import export_all

        written = export_all(args.output_dir)
        for artifact, path in sorted(written.items()):
            print(f"{artifact:<8} -> {path}")
        return 0
    return 2  # pragma: no cover - argparse enforces choices


def _cmd_memcheck(args) -> int:
    import numpy as np

    from .core.config import SortConfig
    from .core.kernels import (
        bucket_sort_kernel,
        bucketing_kernel,
        splitter_selection_kernel,
    )
    from .core.splitters import regular_sample_indices, splitter_pick_indices
    from .gpusim import GpuDevice, Tracer
    from .gpusim.memcheck import check_races
    from .workloads import uniform_arrays

    gpu = GpuDevice.micro()
    cfg = SortConfig()
    batch = uniform_arrays(args.num_arrays, args.array_size, seed=args.seed)
    N, n = batch.shape
    p = cfg.num_buckets(n)
    q = p - 1
    sample_idx = regular_sample_indices(n, cfg)
    pick_idx = splitter_pick_indices(len(sample_idx), p)

    tracer = Tracer(max_records=1_000_000)
    d_data = gpu.memory.alloc_like(batch.ravel())
    d_split = gpu.memory.alloc(max(N * q, 1), np.float32)
    d_sizes = gpu.memory.alloc(N * p, np.int32)
    gpu.launch(
        splitter_selection_kernel, grid=N, block=1,
        args=(d_data, d_split, n, q, sample_idx, pick_idx),
        shared_setup=lambda sm: sm.alloc(len(sample_idx), np.float32),
        trace=tracer, name="phase1",
    )
    gpu.launch(
        bucketing_kernel, grid=N, block=p,
        args=(d_data, d_split, d_sizes, n, p),
        shared_setup=lambda sm: {
            "row": sm.alloc(n, np.float32, "row"),
            "splitters": sm.alloc(p + 1, np.float64, "splitters"),
            "counts": sm.alloc(p, np.int32, "counts"),
            "offsets": sm.alloc(p, np.int32, "offsets"),
        },
        trace=tracer, name="phase2",
    )
    gpu.launch(
        bucket_sort_kernel, grid=N, block=p,
        args=(d_data, d_sizes, n, p),
        shared_setup=lambda sm: {
            "sizes": sm.alloc(p, np.int32, "sizes"),
            "offsets": sm.alloc(p, np.int32, "offsets"),
        },
        trace=tracer, name="phase3",
    )
    assert np.array_equal(
        d_data.copy_to_host().reshape(N, n), np.sort(batch, axis=1)
    )
    report = check_races(tracer)
    print(f"traced {report.records_analyzed} warp-step accesses across "
          f"3 kernels on a {N} x {n} batch")
    if report.clean:
        print("memcheck: CLEAN — no intra-block or cross-block races; the "
              "in-place write-back is conflict-free")
        rc = 0
    else:
        print(f"memcheck: {len(report.findings)} finding(s):")
        for finding in report.findings[:10]:
            print(f"  {finding}")
        rc = 1
    for arr in (d_data, d_split, d_sizes):
        gpu.memory.free(arr)
    return rc


def _cmd_resilience(args) -> int:
    import time as _time

    from .analysis.reporting import render_table
    from .core import StreamingSorter
    from .core.config import SortConfig
    from .core.validation import is_sorted_rows, rows_are_permutations
    from .gpusim.faults import FaultPlan
    from .resilience import ResilientSorter, RetryPolicy

    windows = []
    for spec in args.oom_window:
        try:
            start, stop = spec.split(":")
            windows.append((int(start), int(stop)))
        except ValueError:
            print(f"bad --oom-window {spec!r}; expected START:STOP", file=sys.stderr)
            return 2

    batch = _make_batch(args)
    plan = FaultPlan(
        seed=args.seed,
        kernel_fault_rate=args.fault_rate,
        corruption_rate=args.corruption_rate,
        oom_windows=windows,
    )
    resilient = ResilientSorter(
        SortConfig(),
        engine=args.engine,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        sleep=_time.sleep if args.real_backoff else None,
        parallel="thread" if args.workers > 1 else None,
        workers=args.workers or None,
    )
    streamer = StreamingSorter(
        batch.shape[1], batch_arrays=args.batch_arrays, sorter=resilient
    )
    t0 = time.perf_counter()
    streamer.push_slab(batch)
    streamer.flush()
    elapsed = time.perf_counter() - t0

    emitted = np.vstack(streamer.results) if streamer.results else np.empty((0, 0))
    quarantined = streamer.stats.arrays_quarantined
    corrupted_emitted = 0
    if emitted.size:
        corrupted_emitted = int((~is_sorted_rows(emitted)).sum())
    stats = resilient.stats
    print(
        f"streamed {batch.shape[0]} arrays x {batch.shape[1]} under "
        f"fault_rate={args.fault_rate} corruption_rate={args.corruption_rate} "
        f"oom_windows={windows or '[]'} (seed {args.seed}): {elapsed:.3f} s"
    )
    print(render_table(
        ["counter", "value"],
        [[key, value] for key, value in stats.as_dict().items()],
        title="ResilienceStats",
    ))
    print(f"batches emitted : {streamer.stats.batches_out} "
          f"(ids {streamer.emitted_batch_ids[:8]}{'...' if len(streamer.emitted_batch_ids) > 8 else ''})")
    print(f"rows emitted    : {streamer.stats.arrays_out}")
    print(f"rows quarantined: {quarantined}")
    if streamer.dead_letters is not None:
        print(f"dead letters    : {dict(streamer.dead_letters.reasons())}")
    # Cross-check: emitted rows must be permutations of the non-quarantined
    # inputs, in arrival order (batches are pushed and emitted in order).
    keep = np.ones(batch.shape[0], dtype=bool)
    if streamer.dead_letters is not None:
        for letter in streamer.dead_letters:
            keep[letter.batch_id * args.batch_arrays + letter.row_index] = False
    expected = batch[keep]
    if emitted.shape != expected.shape or not bool(
        np.all(rows_are_permutations(emitted, expected))
    ):
        corrupted_emitted += 1
    if corrupted_emitted:
        print(f"CORRUPTED EMITTED ROWS: {corrupted_emitted}")
        return 1
    print("verification: OK (every emitted row sorted; zero corrupted rows)")
    return 0


def _cmd_serve_bench(args) -> int:
    from .analysis.reporting import render_table
    from .core.config import SortConfig
    from .service import (
        SortService,
        collect_metrics,
        parse_size_mix,
        render_prometheus,
        run_service_traffic,
        run_unbatched_traffic,
    )

    try:
        size_mix = parse_size_mix(args.size_mix)
    except ValueError as exc:
        print(f"--size-mix: {exc}", file=sys.stderr)
        return 2
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms is not None else None

    config = SortConfig()
    service = SortService(
        config=config,
        planner=args.planner,
        backend="resilient" if args.backend == "resilient" else None,
        batch_target_rows=args.batch_target,
        linger_ms=args.linger_ms,
    )
    with service:
        report = run_service_traffic(
            service,
            mode=args.arrival,
            clients=args.clients,
            total_requests=args.requests,
            rate_rps=args.rate,
            array_size=args.array_size,
            size_mix=size_mix,
            deadline_s=deadline_s,
            seed=args.seed,
        )
        stats = service.stats()
        metrics = collect_metrics(service)

    def _emit(path: str, text: str) -> None:
        if path == "-":
            print(text, end="" if text.endswith("\n") else "\n")
        else:
            with open(path, "w") as handle:
                handle.write(text if text.endswith("\n") else text + "\n")
            print(f"wrote {path}")

    if args.metrics_json is not None:
        _emit(args.metrics_json,
              json.dumps(metrics, indent=2, sort_keys=True))
    if args.metrics_prom is not None:
        _emit(args.metrics_prom, render_prometheus(metrics))

    pct = report.latency_percentiles()
    print(f"service traffic ({report.mode} loop, {report.clients} clients, "
          f"n={args.array_size}): {report.completed}/{report.requests_issued} "
          f"completed in {report.wall_seconds:.3f} s")
    print(f"  throughput : {report.throughput_rps:.0f} req/s "
          f"({report.throughput_rows_per_s:.0f} rows/s)")
    if pct:
        print(f"  latency ms : p50={pct['p50']:.2f} p95={pct['p95']:.2f} "
              f"p99={pct['p99']:.2f} mean={pct['mean']:.2f}")
    print(f"  shed={report.shed} deadline_missed={report.deadline_missed} "
          f"failed={report.failed} reject_retries={report.rejected_retries}")
    print(f"  batches={stats.batches} mean_occupancy="
          f"{stats.mean_occupancy_rows:.1f} rows")
    if stats.occupancy_histogram:
        print(render_table(
            ["batch rows", "count"],
            [[bucket, count]
             for bucket, count in sorted(stats.occupancy_histogram.items())],
            title="Batch occupancy",
        ))

    if args.unbatched:
        baseline = run_unbatched_traffic(
            mode=args.arrival,
            clients=args.clients,
            total_requests=args.requests,
            rate_rps=args.rate,
            array_size=args.array_size,
            size_mix=size_mix,
            seed=args.seed,
            config=config,
        )
        speedup = (report.throughput_rps / baseline.throughput_rps
                   if baseline.throughput_rps else float("inf"))
        print(f"unbatched baseline: {baseline.throughput_rps:.0f} req/s in "
              f"{baseline.wall_seconds:.3f} s -> batched speedup "
              f"{speedup:.2f}x")
    return 0


def _cmd_fleet_bench(args) -> int:
    from .fleet import (
        SortFleet,
        collect_fleet_metrics,
        render_fleet_prometheus,
    )
    from .service import parse_size_mix, run_service_traffic

    try:
        size_mix = parse_size_mix(args.size_mix)
    except ValueError as exc:
        print(f"--size-mix: {exc}", file=sys.stderr)
        return 2
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms is not None else None

    fleet = SortFleet(
        workers=args.workers,
        planner=args.planner,
        batch_target_rows=args.batch_target,
        linger_ms=args.linger_ms,
        max_worker_queue_rows=args.worker_bound,
        retry_jitter_seed=args.jitter_seed,
    )
    with fleet:
        report = run_service_traffic(
            fleet,
            mode=args.arrival,
            clients=args.clients,
            total_requests=args.requests,
            rate_rps=args.rate,
            array_size=args.array_size,
            size_mix=size_mix,
            deadline_s=deadline_s,
            seed=args.seed,
            stagger=(args.arrival == "open"),
        )
        stats = fleet.stats()
        metrics = collect_fleet_metrics(fleet)

    def _emit(path: str, text: str) -> None:
        if path == "-":
            print(text, end="" if text.endswith("\n") else "\n")
        else:
            with open(path, "w") as handle:
                handle.write(text if text.endswith("\n") else text + "\n")
            print(f"wrote {path}")

    if args.metrics_json is not None:
        _emit(args.metrics_json,
              json.dumps(metrics, indent=2, sort_keys=True))
    if args.metrics_prom is not None:
        _emit(args.metrics_prom, render_fleet_prometheus(metrics))

    pct = report.latency_percentiles()
    print(f"fleet traffic ({report.mode} loop, {report.clients} clients, "
          f"{args.workers} workers, n={args.array_size}): "
          f"{report.completed}/{report.requests_issued} completed in "
          f"{report.wall_seconds:.3f} s")
    print(f"  throughput : {report.throughput_rps:.0f} req/s "
          f"({report.throughput_rows_per_s:.0f} rows/s)")
    if pct:
        print(f"  latency ms : p50={pct['p50']:.2f} p95={pct['p95']:.2f} "
              f"p99={pct['p99']:.2f} mean={pct['mean']:.2f}")
    print(f"  shed={report.shed} deadline_missed={report.deadline_missed} "
          f"failed={report.failed} reject_retries={report.rejected_retries}")
    print(f"  workers alive={stats.workers_alive}/{stats.workers_total} "
          f"failovers={stats.failovers} redispatched={stats.redispatched} "
          f"parent_fallbacks={stats.parent_fallbacks}")
    for worker_id in sorted(stats.workers):
        worker = stats.workers[worker_id]
        print(f"  worker {worker_id}: dispatched={worker.dispatched} "
              f"completed={worker.completed} failed={worker.failed} "
              f"{'alive' if worker.alive else 'DEAD'}")
    return 0


def _cmd_topk(args) -> int:
    from .core.topk import top_k, top_k_via_sort
    from .workloads import generate_spectra

    spectra = generate_spectra(
        args.num_arrays, min(args.array_size, 4000), seed=args.seed
    )
    t0 = time.perf_counter()
    kept = top_k(spectra.intensity, args.k)
    bucket_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    oracle = top_k_via_sort(spectra.intensity, args.k)
    sort_s = time.perf_counter() - t0
    assert (kept == oracle).all()
    total = spectra.intensity.sum()
    kept_signal = kept.sum() / total if total else 0.0
    print(f"kept top {args.k}/{spectra.peaks_per_spectrum} peaks of "
          f"{args.num_arrays} spectra: {kept_signal:.0%} of total signal")
    print(f"bucket top-k: {bucket_s:.3f} s | sort-then-slice: {sort_s:.3f} s "
          "(results identical)")
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import build_report, evaluate_claims

    text = build_report(include_figures=not args.claims_only)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    claims = evaluate_claims()
    return 0 if all(c.passed for c in claims) else 1


def _cmd_workloads() -> int:
    from .analysis.reporting import render_table
    from .workloads import STANDARD_SUITE

    print(render_table(
        ["name", "N", "n", "description"],
        [[name, spec.num_arrays, spec.array_size, spec.description]
         for name, spec in sorted(STANDARD_SUITE.items())],
        title="Standard workload suite",
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
