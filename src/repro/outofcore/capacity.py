"""Capacity driver: memory-budgeted chunked sorting with resumable spill.

:class:`CapacitySorter` is the out-of-core tier's front end.  It takes a
declared memory budget, derives a chunk schedule from the working-set
model (:mod:`repro.outofcore.budget`), and streams chunks through the
existing hot path — a per-chunk :class:`~repro.core.GpuArraySort` with
its :class:`~repro.core.workspace.ScratchArena` and (by default) the
adaptive :class:`~repro.planner.ExecutionPlanner` — so the capacity tier
inherits every engine the planner knows instead of re-implementing one.

Two sinks:

* :meth:`CapacitySorter.sort` — array sink: sorts an addressable batch
  (often an ``np.memmap``) chunk-by-chunk with bounded working memory;
  no disk state, not resumable.
* :meth:`CapacitySorter.run` — spill sink: ingestion goes through a
  :class:`~repro.core.streaming.StreamingSorter` whose emitted batches
  are committed to a :class:`~repro.outofcore.spill.SpillStore`; after
  every committed chunk the streamer's
  :meth:`~repro.core.streaming.StreamingSorter.checkpoint` is persisted
  next to the manifest, so a ``SIGKILL`` mid-run loses at most the
  chunk in flight.  ``resume=True`` restores the checkpoint (or
  reconstructs one from the manifest alone), skips every committed
  chunk, and continues — no committed chunk is ever re-emitted.

Degradation ladder — a multi-hour run must not die to ``MemoryError``:

1. **shrink** — on allocation failure the chunk row count halves (and
   the streaming pipeline is rebuilt at the smaller size; the rows of
   the failed chunk are re-read from the durable input);
2. **serial fallback** — at the one-row floor the driver abandons the
   engine entirely and sorts small row blocks with in-place
   ``ndarray.sort``, the minimum-footprint path that still makes
   forward progress.

Every decision is counted on :class:`CapacityStats` (``chunks_committed``,
``chunks_resumed``, ``spill_bytes_written``, ``shrink_events``,
``serial_fallback_chunks``), which the service metrics surface exports
(see :func:`repro.service.metrics.collect_metrics`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig
from ..core.streaming import StreamCheckpoint, StreamingSorter, StreamStats
from .budget import BudgetPlan, parse_memory_size, plan_budget
from .spill import BatchFile, SpillStore

__all__ = ["CapacityResult", "CapacitySorter", "CapacityStats"]

#: Chunk-row floor below which shrinking gives up and the serial
#: fallback takes over.
MIN_CHUNK_ROWS = 1

#: Row-block size of the serial fallback (small enough that its working
#: set is negligible, large enough to amortize per-call overhead).
_FALLBACK_BLOCK_ROWS = 256


@dataclasses.dataclass
class CapacityStats:
    """Counters of one capacity run (exported via service metrics)."""

    chunks_planned: int = 0
    chunks_committed: int = 0
    #: Chunks adopted from a previous run's manifest instead of re-sorted.
    chunks_resumed: int = 0
    #: Chunks re-committed under an existing index (at-least-once retry).
    chunks_recommitted: int = 0
    rows_sorted: int = 0
    spill_bytes_written: int = 0
    #: Times the chunk size was halved after a MemoryError.
    shrink_events: int = 0
    #: Chunks sorted by the row-serial minimum-footprint fallback.
    serial_fallback_chunks: int = 0
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Union[int, float]]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class CapacityResult:
    """Outcome of a capacity sort.

    ``batch`` is set on the array-sink path (:meth:`CapacitySorter.sort`);
    ``store`` on the spill path (:meth:`CapacitySorter.run`).  Either
    way, :meth:`iter_chunks` walks the sorted output in row order with
    bounded memory, and :meth:`gather` materializes it (small runs and
    tests only).
    """

    plan: BudgetPlan
    stats: CapacityStats
    batch: Optional[np.ndarray] = None
    store: Optional[SpillStore] = None

    @property
    def rows(self) -> int:
        if self.batch is not None:
            return int(self.batch.shape[0])
        return self.store.rows_committed if self.store is not None else 0

    def iter_chunks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start_row, rows)`` blocks of sorted output in order."""
        if self.store is not None:
            yield from self.store.iter_chunks()
        elif self.batch is not None:
            step = max(1, self.plan.chunk_rows)
            for start in range(0, self.batch.shape[0], step):
                yield start, self.batch[start : start + step]

    def gather(self) -> np.ndarray:
        """Materialize the sorted batch in RAM (small outputs only)."""
        if self.batch is not None:
            return np.asarray(self.batch)
        out = np.empty((self.rows, self.plan.row_len), dtype=self.plan.dtype)
        for start, chunk in self.iter_chunks():
            out[start : start + chunk.shape[0]] = chunk
        return out


@dataclasses.dataclass
class _RunState:
    """Mutable bookkeeping shared between ``run()`` and its commit callback."""

    total_rows: int = 0
    next_index: int = 0
    rows_done: int = 0
    committed_this_run: int = 0
    rows_this_run: int = 0
    bytes_written: int = 0


class CapacitySorter:
    """Sort batches larger than the declared memory budget.

    Parameters
    ----------
    memory_budget:
        Working-memory ceiling — bytes, or a size string (``"512M"``,
        ``"8G"``).  Bounds the sorter's *own* footprint (staging, arena,
        engine scratch); caller-owned input/output arrays or files are
        outside it.
    config:
        Per-chunk :class:`~repro.core.SortConfig` (bucket size, sampling
        rate, NaN policy) handed to the inner sorter.
    planner:
        Planner spec for the inner sorter (``"auto"`` default — the
        adaptive planner picks the engine per chunk shape).  ``None``
        runs the plain fused path with a scratch arena.
    verify:
        Per-chunk verify-after-sort on the inner sorter (sortedness +
        permutation against a chunk-sized reference — bounded memory
        even for huge runs).
    engine_model:
        Which engine's working-set variant the budget planner assumes
        (``"auto"`` budgets for the worst planner candidate).
    max_chunk_rows:
        Optional cap on chunk rows regardless of budget (0 = uncapped) —
        forces multi-chunk schedules in tests and benchmarks.
    sorter_factory:
        Test seam: ``sorter_factory(chunk_rows)`` builds the per-chunk
        sorter (anything whose ``sort(batch)`` returns a result with a
        ``batch`` attribute); defaults to the planner/arena-backed
        :class:`~repro.core.GpuArraySort`.
    progress:
        Optional callback invoked after every committed chunk with a
        dict (``index``, ``rows``, ``rows_done``, ``total_rows``) — the
        CLI's progress line, and the kill-resume bench's timing hook.
    """

    def __init__(
        self,
        memory_budget,
        *,
        config: SortConfig = DEFAULT_CONFIG,
        planner: Optional[object] = "auto",
        verify: bool = False,
        engine_model: str = "auto",
        max_chunk_rows: int = 0,
        sorter_factory: Optional[Callable[[int], object]] = None,
        progress: Optional[Callable[[Dict[str, int]], None]] = None,
    ) -> None:
        self.budget_bytes = parse_memory_size(memory_budget)
        self.config = config
        self.planner = planner
        self.verify = verify
        self.engine_model = engine_model
        self.max_chunk_rows = int(max_chunk_rows)
        self._sorter_factory = sorter_factory
        self.progress = progress
        self.stats = CapacityStats()

    # -- planning ---------------------------------------------------------
    def plan(self, num_rows: int, row_len: int, dtype) -> BudgetPlan:
        """The static chunk schedule for a ``(num_rows, row_len)`` batch."""
        return plan_budget(
            num_rows, row_len, dtype, self.budget_bytes,
            config=self.config, engine=self.engine_model,
            max_chunk_rows=self.max_chunk_rows,
        )

    def _make_sorter(self, chunk_rows: int) -> object:
        if self._sorter_factory is not None:
            return self._sorter_factory(chunk_rows)
        from ..core.array_sort import GpuArraySort  # local import: no cycle

        return GpuArraySort(
            self.config,
            planner=self.planner,
            verify=self.verify,
            workspace=True if self.planner is None else None,
        )

    # -- array sink -------------------------------------------------------
    def sort(
        self,
        batch: np.ndarray,
        *,
        inplace: bool = False,
        descending: bool = False,
    ) -> CapacityResult:
        """Sort an addressable batch chunk-by-chunk under the budget.

        The input may be an ``np.memmap`` — each chunk is copied into
        the output (or sorted in place), so working memory stays bounded
        by one chunk's working set.  With ``inplace=False`` the output
        array is a fresh allocation the *caller* owns (outside the
        budget); pass ``inplace=True`` on a writable memmap, or use
        :meth:`run`, when even one full copy must not exist in RAM.
        """
        from ..core.array_sort import validate_batch

        batch = validate_batch(batch)
        stats = self.stats = CapacityStats()
        t0 = time.perf_counter()
        plan = self.plan(batch.shape[0], batch.shape[1], batch.dtype)
        stats.chunks_planned = plan.num_chunks
        out = batch if inplace else np.empty_like(batch)
        total = batch.shape[0]
        if total == 0:
            stats.wall_seconds = time.perf_counter() - t0
            return CapacityResult(plan=plan, stats=stats, batch=out)

        chunk_rows = plan.chunk_rows
        sorter: Optional[object] = self._make_sorter(chunk_rows)
        cursor = 0
        index = 0
        while cursor < total:
            take = min(chunk_rows, total - cursor)
            window = out[cursor : cursor + take]
            if not inplace:
                np.copyto(window, batch[cursor : cursor + take])
            if sorter is None:
                self._serial_block_sort(window, descending)
                stats.serial_fallback_chunks += 1
            else:
                try:
                    self._sort_chunk_inplace(sorter, window, descending)
                except MemoryError:
                    chunk_rows, sorter = self._shrink(chunk_rows)
                    continue  # re-cut this region at the smaller size
            stats.chunks_committed += 1
            stats.rows_sorted += take
            cursor += take
            self._report_progress(index, take, cursor, total)
            index += 1
        stats.wall_seconds = time.perf_counter() - t0
        return CapacityResult(plan=plan, stats=stats, batch=out)

    def _sort_chunk_inplace(self, sorter: object, window: np.ndarray,
                            descending: bool) -> None:
        try:
            result = sorter.sort(window, inplace=True, descending=descending)
        except TypeError:
            # Injected sorters (test seam) may only accept the batch.
            result = sorter.sort(window)
            produced = result.batch  # statan: scratch-view
            np.copyto(window, produced[:, ::-1] if descending else produced)
            return
        produced = result.batch  # statan: scratch-view
        if produced is not window:
            np.copyto(window, produced)

    def _shrink(self, chunk_rows: int) -> Tuple[int, Optional[object]]:
        """Halve the chunk; at the floor, signal serial fallback (``None``)."""
        if chunk_rows <= MIN_CHUNK_ROWS:
            return chunk_rows, None
        smaller = max(MIN_CHUNK_ROWS, chunk_rows // 2)
        self.stats.shrink_events += 1
        return smaller, self._make_sorter(smaller)

    @staticmethod
    def _serial_block_sort(window: np.ndarray, descending: bool) -> None:
        """Minimum-footprint fallback: in-place row sort, tiny blocks."""
        for start in range(0, window.shape[0], _FALLBACK_BLOCK_ROWS):
            block = window[start : start + _FALLBACK_BLOCK_ROWS]
            block.sort(axis=1)
            if descending:
                block[:] = block[:, ::-1]

    def _report_progress(self, index: int, rows: int, rows_done: int,
                         total_rows: int) -> None:
        if self.progress is not None:
            self.progress({
                "index": index,
                "rows": rows,
                "rows_done": rows_done,
                "total_rows": total_rows,
            })

    # -- spill sink (resumable) ------------------------------------------
    def run(
        self,
        source: Union[np.ndarray, BatchFile],
        *,
        spill_dir,
        resume: bool = False,
        reclaim: bool = False,
    ) -> CapacityResult:
        """Sort ``source`` into a spill directory; resumable after a kill.

        ``source`` is an addressable batch or a
        :class:`~repro.outofcore.spill.BatchFile` (windowed file reads —
        the true out-of-core input path).  Sorted chunks are committed
        to a :class:`~repro.outofcore.spill.SpillStore`; the streaming
        checkpoint is persisted after every commit.  With
        ``resume=True`` a directory holding a previous run's manifest is
        adopted: committed chunks are skipped (counted as
        ``chunks_resumed``), the checkpoint restores the ingest cursor,
        and the run continues to completion.  Ascending order only (the
        spill format records no order flag).
        """
        total, row_len, dtype = _source_dims(source)
        stats = self.stats = CapacityStats()
        t0 = time.perf_counter()
        plan = self.plan(total, row_len, dtype)
        stats.chunks_planned = plan.num_chunks
        store = SpillStore(
            spill_dir, array_size=row_len, dtype=dtype,
            resume=resume, reclaim=reclaim,
            meta={
                "total_rows": total,
                "budget_bytes": self.budget_bytes,
                "chunk_rows": plan.chunk_rows,
            },
        )
        stats.chunks_resumed = len(store.committed)
        if store.complete and store.rows_committed >= total:
            # A finished run resumed again: nothing left to do.
            stats.wall_seconds = time.perf_counter() - t0
            return CapacityResult(plan=plan, stats=stats, store=store)

        chunk_rows = plan.chunk_rows
        state = _RunState(total_rows=total)
        streamer = self._build_streamer(row_len, dtype, chunk_rows, store, state)
        cursor = 0
        if store.committed or resume:
            cursor = self._restore_streamer(streamer, store, state)

        read_buf = np.empty((chunk_rows, row_len), dtype=dtype)
        fallback = False
        while cursor < total:
            take = min(chunk_rows, total - cursor)
            block = _read_rows(source, cursor, cursor + take, read_buf)
            if fallback:
                self._fallback_commit(store, state, block)
                cursor += take
                continue
            try:
                streamer.push_slab(block)
            except MemoryError:
                chunk_rows, fallback = self._degrade_streaming(chunk_rows)
                # Rows staged in the abandoned streamer are re-read from
                # the durable source: rewind to the committed frontier.
                if not fallback:
                    streamer = self._build_streamer(
                        row_len, dtype, chunk_rows, store, state
                    )
                    self._restore_streamer(streamer, store, state,
                                           use_checkpoint=False)
                    read_buf = np.empty((chunk_rows, row_len), dtype=dtype)
                cursor = state.rows_done
                continue
            cursor += take
            self._persist_checkpoint(store, streamer)
        if not fallback:
            try:
                streamer.flush()
            except MemoryError:
                # Even the tail does not fit: serial-sort the rows still
                # staged, re-read from the committed frontier.
                tail = _read_rows(
                    source, state.rows_done, total,
                    np.empty((total - state.rows_done, row_len), dtype=dtype),
                )
                self._fallback_commit(store, state, tail)
        store.mark_complete()
        store.clear_checkpoint()
        stats.chunks_committed = state.committed_this_run
        stats.chunks_recommitted = store.recommits
        stats.rows_sorted = state.rows_this_run
        stats.spill_bytes_written = state.bytes_written
        stats.wall_seconds = time.perf_counter() - t0
        return CapacityResult(plan=plan, stats=stats, store=store)

    # -- spill-sink internals --------------------------------------------
    def _build_streamer(
        self,
        row_len: int,
        dtype,
        chunk_rows: int,
        store: SpillStore,
        state: _RunState,
    ) -> StreamingSorter:
        sorter = self._make_sorter(chunk_rows)

        def on_batch(sorted_rows: np.ndarray) -> None:
            # ``sorted_rows`` may be an arena view valid only until the
            # next emission — commit_chunk writes it to disk immediately.
            record = store.commit_chunk(
                state.next_index, state.rows_done, sorted_rows
            )
            state.next_index += 1
            state.rows_done += record.rows
            state.committed_this_run += 1
            state.rows_this_run += record.rows
            state.bytes_written += record.nbytes
            self._report_progress(
                record.index, record.rows, state.rows_done, state.total_rows
            )

        return StreamingSorter(
            row_len,
            batch_arrays=chunk_rows,
            dtype=dtype,
            on_batch=on_batch,
            sorter=sorter,
        )

    def _restore_streamer(
        self,
        streamer: StreamingSorter,
        store: SpillStore,
        state: _RunState,
        *,
        use_checkpoint: bool = True,
    ) -> int:
        """Rebuild producer state from checkpoint/manifest; return the
        ingest cursor (rows of input already consumed)."""
        rows_committed = store.rows_committed
        batches_committed = len(store.committed)
        state.next_index = max(
            (r.index + 1 for r in store.committed), default=0
        )
        state.rows_done = rows_committed
        loaded = store.load_checkpoint() if use_checkpoint else None
        if loaded is not None:
            meta, staging = loaded
            fill = int(meta.get("fill", -1))
            usable = (
                int(meta.get("array_size", -1)) == streamer.array_size
                and fill == staging.shape[0]
                and 0 <= fill <= streamer.batch_arrays
                # A checkpoint older than the last commit (killed between
                # commit and checkpoint save) would replay staged rows
                # already on disk — fall back to the manifest alone.
                and int(meta.get("rows_done", -1)) == rows_committed
            )
            if usable:
                streamer.restore(StreamCheckpoint(
                    array_size=streamer.array_size,
                    staging=staging,
                    fill=fill,
                    next_batch_id=int(
                        meta.get("next_batch_id", batches_committed)
                    ),
                    pending_batch_id=None,
                    closed=False,
                    stats=StreamStats(
                        arrays_in=rows_committed + fill,
                        batches_out=batches_committed,
                        arrays_out=rows_committed,
                    ),
                ))
                return rows_committed + fill
        # No usable checkpoint: the manifest alone is enough (the input
        # source is durable; only the staged tail is re-read).
        streamer.restore(StreamCheckpoint(
            array_size=streamer.array_size,
            staging=np.empty((0, streamer.array_size), dtype=streamer.dtype),
            fill=0,
            next_batch_id=batches_committed,
            pending_batch_id=None,
            closed=False,
            stats=StreamStats(
                arrays_in=rows_committed,
                batches_out=batches_committed,
                arrays_out=rows_committed,
            ),
        ))
        return rows_committed

    def _persist_checkpoint(self, store: SpillStore,
                            streamer: StreamingSorter) -> None:
        checkpoint = streamer.checkpoint()
        store.save_checkpoint(
            {
                "array_size": checkpoint.array_size,
                "fill": checkpoint.fill,
                "next_batch_id": checkpoint.next_batch_id,
                "rows_done": checkpoint.stats.arrays_out,
            },
            checkpoint.staging,
        )

    def _degrade_streaming(self, chunk_rows: int) -> Tuple[int, bool]:
        """Shrink the chunk; at the floor, engage the serial fallback."""
        if chunk_rows <= MIN_CHUNK_ROWS:
            return chunk_rows, True
        self.stats.shrink_events += 1
        return max(MIN_CHUNK_ROWS, chunk_rows // 2), False

    def _fallback_commit(self, store: SpillStore, state: _RunState,
                         block: np.ndarray) -> None:
        """Serial fallback: in-place sort + direct commit, tiny footprint."""
        work = np.array(block, copy=True)
        self._serial_block_sort(work, False)
        record = store.commit_chunk(state.next_index, state.rows_done, work)
        state.next_index += 1
        state.rows_done += record.rows
        state.committed_this_run += 1
        state.rows_this_run += record.rows
        state.bytes_written += record.nbytes
        self.stats.serial_fallback_chunks += 1
        self._report_progress(
            record.index, record.rows, state.rows_done, state.total_rows
        )


def _source_dims(
    source: Union[np.ndarray, BatchFile],
) -> Tuple[int, int, np.dtype]:
    if isinstance(source, BatchFile):
        return source.rows, source.row_len, source.dtype
    array = np.asarray(source)
    if array.ndim != 2:
        raise ValueError(f"expected (N, n) source, got shape {array.shape}")
    return array.shape[0], array.shape[1], array.dtype


def _read_rows(source: Union[np.ndarray, BatchFile], start: int, stop: int,
               out: np.ndarray) -> np.ndarray:
    if isinstance(source, BatchFile):
        return source.read_into(start, stop, out)
    take = stop - start
    np.copyto(out[:take], source[start:stop])
    return out[:take]
