"""Memory-budget planning for out-of-core capacity sorting.

The paper's Table 1 is a *capacity* claim — how many arrays fit the
device — and the capacity tier extends it to the host: given a declared
memory budget (``"8G"``), how many rows can one chunk of the hot path
hold without the process outgrowing that budget?  This module answers
with arithmetic the rest of the subsystem (and the ``RLIMIT_AS`` tests)
then verifies against real allocation behaviour:

* :func:`parse_memory_size` turns operator-facing size strings
  (``"512M"``, ``"8G"``, ``"1.5GiB"``) into bytes;
* :func:`working_set_bytes_per_row` models what one row of a chunk
  actually costs the hot path — the streaming staging copy, the
  sorter's :class:`~repro.core.workspace.ScratchArena` work buffer,
  phase-1 sample/splitter staging, fused-path metadata, and the
  per-engine extras (a process-pool plan stages another full copy into
  shared memory; the radix engine double-buffers its key space);
* :func:`plan_budget` derives the chunk schedule: the largest chunk row
  count whose modeled working set fits the budget, and how many chunks
  that takes for the whole batch.

The model is deliberately conservative (a ``SAFETY_FACTOR`` covers
NumPy temporaries and allocator slack); the driver still treats
``MemoryError`` as a planning miss and degrades — shrink the chunk,
then fall back to a row-serial path — rather than aborting a
multi-hour run (see :class:`~repro.outofcore.capacity.CapacitySorter`).
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import List, Tuple

import numpy as np

from ..core.config import DEFAULT_CONFIG, SortConfig

__all__ = [
    "BudgetError",
    "BudgetPlan",
    "ENGINE_EXTRA_COPIES",
    "SAFETY_FACTOR",
    "format_memory_size",
    "parse_memory_size",
    "plan_budget",
    "working_set_bytes_per_row",
]

#: Headroom multiplier on the modeled working set: NumPy temporaries,
#: allocator rounding, and interpreter slack are real but unmodellable.
SAFETY_FACTOR = 1.25

#: Extra full-payload copies each execution engine needs beyond the
#: staging + work pair every path pays:
#:
#: * ``serial`` / ``thread`` — the fused row sort works in place and
#:   thread shards share the caller's storage: no extra copy;
#: * ``process`` — :class:`~repro.parallel.executors.ProcessPoolEngine`
#:   stages the batch into a shared-memory slab (one more payload);
#: * ``radix`` — the LSD path double-buffers the sortable-key space
#:   (two more payloads in the worst ``strategy="lsd"`` case);
#: * ``auto`` — the planner may pick any engine per chunk, so the plan
#:   budgets for the worst case among them.
ENGINE_EXTRA_COPIES = {
    "serial": 0.0,
    "thread": 0.0,
    "process": 1.0,
    "radix": 2.0,
}

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[kmgt]?i?b?)\s*$",
    re.IGNORECASE,
)

_UNIT_EXPONENT = {"": 0, "k": 1, "m": 2, "g": 3, "t": 4}


class BudgetError(ValueError):
    """A memory budget that cannot be parsed or planned against."""


def parse_memory_size(size) -> int:
    """Parse an operator-facing memory size into bytes.

    Accepts a plain ``int`` (bytes), or a string with an optional unit
    suffix: ``K``/``M``/``G``/``T``, with or without a trailing ``B`` or
    ``iB`` (``"512M"``, ``"8G"``, ``"8GB"``, ``"8GiB"``, ``"1.5G"``).
    All units are binary (``1K == 1024``) — capacity planning cares
    about allocator pages, not marketing decimals.  Raises
    :class:`BudgetError` for non-positive or unparseable sizes.

    >>> parse_memory_size("8G") == 8 * 1024**3
    True
    """
    if isinstance(size, bool):
        raise BudgetError(f"memory size must be bytes or a size string, got {size!r}")
    if isinstance(size, (int, np.integer)):
        if size <= 0:
            raise BudgetError(f"memory size must be positive, got {size}")
        return int(size)
    if not isinstance(size, str):
        raise BudgetError(
            "memory size must be an int (bytes) or a string like '512M' or "
            f"'8G', got {type(size).__name__}"
        )
    match = _SIZE_RE.match(size)
    if match is None:
        raise BudgetError(
            f"unparseable memory size {size!r}; expected e.g. '8G', '512M', "
            "'1.5GiB', or a plain byte count"
        )
    unit = match.group("unit").lower().rstrip("b").rstrip("i")
    if unit not in _UNIT_EXPONENT:
        raise BudgetError(f"unknown memory unit in {size!r}")
    nbytes = float(match.group("num")) * (1024 ** _UNIT_EXPONENT[unit])
    nbytes_int = int(nbytes)
    if nbytes_int <= 0:
        raise BudgetError(f"memory size must be positive, got {size!r}")
    return nbytes_int


def format_memory_size(nbytes: int) -> str:
    """Human-readable binary-unit rendering (``8589934592 -> '8.0G'``)."""
    value = float(nbytes)
    for unit in ("", "K", "M", "G"):
        if abs(value) < 1024.0:
            return f"{value:.1f}{unit}" if unit else f"{int(value)}"
        value /= 1024.0
    return f"{value:.1f}T"


def working_set_bytes_per_row(
    row_len: int,
    dtype,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    engine: str = "auto",
) -> int:
    """Modeled peak bytes one chunk row costs the hot path.

    Components, per row of length ``n`` with itemsize ``s``:

    * **staging** (``s*n``) — the streaming/ingest copy of the row
      (``StreamingSorter`` staging, or the output slice on the in-place
      array path);
    * **work** (``s*n``) — the sorter's arena-backed work copy;
    * **phase-1 sample** (``s * sample_size``) — the regular-sampling
      matrix plus splitter staging;
    * **fused metadata** (``24 * (p + 1)``) — float64 splitters and
      int64 ``offsets``/``sizes`` recovered by the fused path;
    * **engine extras** — :data:`ENGINE_EXTRA_COPIES` full payloads.

    The total is scaled by :data:`SAFETY_FACTOR`.
    """
    if row_len < 1:
        raise BudgetError(f"row_len must be >= 1, got {row_len}")
    if engine == "auto":
        extra = max(ENGINE_EXTRA_COPIES.values())
    elif engine in ENGINE_EXTRA_COPIES:
        extra = ENGINE_EXTRA_COPIES[engine]
    else:
        raise BudgetError(
            f"unknown engine {engine!r}; choose 'auto' or one of "
            f"{sorted(ENGINE_EXTRA_COPIES)}"
        )
    itemsize = np.dtype(dtype).itemsize
    payload = itemsize * row_len
    sample = itemsize * config.sample_size(row_len)
    metadata = 24 * (config.num_buckets(row_len) + 1)
    total = payload * (2.0 + extra) + sample + metadata
    return int(math.ceil(total * SAFETY_FACTOR))


@dataclasses.dataclass(frozen=True)
class BudgetPlan:
    """Chunk schedule derived from a memory budget.

    ``cramped=True`` flags a budget smaller than even a one-row working
    set — the driver proceeds at one row per chunk and relies on its
    degradation ladder if allocation still fails.
    """

    num_rows: int
    row_len: int
    dtype: np.dtype
    engine: str
    budget_bytes: int
    bytes_per_row: int
    chunk_rows: int
    num_chunks: int
    cramped: bool

    @property
    def working_set_bytes(self) -> int:
        """Modeled peak working set of one full chunk."""
        return self.chunk_rows * self.bytes_per_row

    @property
    def total_bytes(self) -> int:
        """Payload bytes of the whole batch (what a RAM sort would hold)."""
        return self.num_rows * self.row_len * self.dtype.itemsize

    @property
    def oversubscription(self) -> float:
        """How many times larger the batch is than the budget."""
        if self.budget_bytes == 0:
            return float("inf")
        return self.total_bytes / self.budget_bytes

    def chunk_bounds(self) -> List[Tuple[int, int]]:
        """Static ``(start_row, stop_row)`` schedule (pre-degradation)."""
        return [
            (start, min(start + self.chunk_rows, self.num_rows))
            for start in range(0, self.num_rows, self.chunk_rows)
        ]


def plan_budget(
    num_rows: int,
    row_len: int,
    dtype,
    memory_budget,
    *,
    config: SortConfig = DEFAULT_CONFIG,
    engine: str = "auto",
    max_chunk_rows: int = 0,
) -> BudgetPlan:
    """Derive the chunk schedule for sorting ``(num_rows, row_len)``
    under ``memory_budget``.

    ``engine`` selects the working-set model variant (``"auto"`` budgets
    for the worst engine the planner may pick).  ``max_chunk_rows`` caps
    the chunk even when the budget would allow more (0 = uncapped) —
    useful to force multi-chunk schedules in tests.
    """
    if num_rows < 0:
        raise BudgetError(f"num_rows must be >= 0, got {num_rows}")
    budget = parse_memory_size(memory_budget)
    dtype = np.dtype(dtype)
    per_row = working_set_bytes_per_row(
        row_len, dtype, config=config, engine=engine
    )
    chunk_rows = budget // per_row
    cramped = chunk_rows < 1
    chunk_rows = max(1, chunk_rows)
    if max_chunk_rows > 0:
        chunk_rows = min(chunk_rows, max_chunk_rows)
    if num_rows > 0:
        chunk_rows = min(chunk_rows, num_rows)
    num_chunks = -(-num_rows // chunk_rows) if num_rows else 0
    return BudgetPlan(
        num_rows=num_rows,
        row_len=row_len,
        dtype=dtype,
        engine=engine,
        budget_bytes=budget,
        bytes_per_row=per_row,
        chunk_rows=int(chunk_rows),
        num_chunks=int(num_chunks),
        cramped=cramped,
    )
