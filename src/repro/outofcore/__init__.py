"""Out-of-core capacity tier: sort batches larger than RAM.

The paper's Table 1 is a capacity claim — 2M arrays of n=1000 sorted
in place on an 11.5 GB card.  This package extends that claim to the
host: given a declared memory budget, sort a batch of any size by
planning a chunk schedule (:mod:`~repro.outofcore.budget`), spilling
sorted chunks to crash-safe on-disk files
(:mod:`~repro.outofcore.spill`), and streaming each chunk through the
existing planner/arena hot path (:mod:`~repro.outofcore.capacity`) —
with checkpointed, resumable runs and a graceful-degradation ladder
instead of ``MemoryError``.

See ``docs/capacity.md`` for the budget model, the spill directory
layout, and the resume runbook.
"""

from .budget import (
    BudgetError,
    BudgetPlan,
    ENGINE_EXTRA_COPIES,
    SAFETY_FACTOR,
    format_memory_size,
    parse_memory_size,
    plan_budget,
    working_set_bytes_per_row,
)
from .capacity import CapacityResult, CapacitySorter, CapacityStats
from .spill import (
    BatchFile,
    ChunkRecord,
    MANIFEST_SCHEMA,
    SpillCorruptionError,
    SpillDirectoryError,
    SpillError,
    SpillStore,
    write_batch_file,
)

__all__ = [
    "BatchFile",
    "BudgetError",
    "BudgetPlan",
    "CapacityResult",
    "CapacitySorter",
    "CapacityStats",
    "ChunkRecord",
    "ENGINE_EXTRA_COPIES",
    "MANIFEST_SCHEMA",
    "SAFETY_FACTOR",
    "SpillCorruptionError",
    "SpillDirectoryError",
    "SpillError",
    "SpillStore",
    "format_memory_size",
    "parse_memory_size",
    "plan_budget",
    "working_set_bytes_per_row",
    "write_batch_file",
]
