"""Spill store: crash-safe on-disk chunk files behind the capacity tier.

A run that sorts more data than fits in RAM keeps its intermediate
state on disk.  :class:`SpillStore` owns one run directory:

* sorted chunks land as raw binary files (``chunk_000042.bin``) written
  to a temp name, fsynced, and **renamed into place** — a chunk either
  exists completely or not at all;
* a JSON manifest (schema ``repro-spill/v1``) records every committed
  chunk with its row range, byte size, and CRC32 — the manifest is the
  single source of truth for what a resumed run may skip, and is itself
  rewritten atomically on every commit;
* a checkpoint slot persists the producer-side
  :class:`~repro.core.streaming.StreamCheckpoint` (staging prefix +
  batch-id counters) alongside the manifest, so a killed run resumes
  from the last committed chunk;
* reads go through :func:`numpy.memmap` windows — verification and
  output assembly never materialize the whole batch.

Directory hygiene: a directory holding state from a *previous* run
(manifest present, or stray ``chunk_*.bin``/checkpoint files from a
dead run that never wrote a manifest) is **refused** with a
:class:`SpillDirectoryError` unless the caller passes ``resume=True``
(adopt the committed chunks) or ``reclaim=True`` (delete the stale
state and start fresh).  Silent mixing of two runs' chunk files is the
failure mode this guards against.

:class:`BatchFile` is the matching *input* abstraction: a file-backed
``(rows, row_len)`` batch read in bounded windows (``readinto`` a
reusable buffer), so neither the input nor the output ever charges the
memory budget for more than one chunk.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import uuid
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..statan import runtime as _sanitizer

__all__ = [
    "BatchFile",
    "ChunkRecord",
    "MANIFEST_SCHEMA",
    "SpillCorruptionError",
    "SpillDirectoryError",
    "SpillError",
    "SpillStore",
    "write_batch_file",
]

MANIFEST_SCHEMA = "repro-spill/v1"

_MANIFEST_NAME = "manifest.json"
_CHECKPOINT_NAME = "checkpoint.npz"
_CHUNK_FMT = "chunk_{index:06d}.bin"
_CRC_BLOCK = 4 * 1024 * 1024


class SpillError(RuntimeError):
    """Base class for spill-store failures."""


class SpillDirectoryError(SpillError):
    """The spill directory holds state from another run (see hygiene)."""


class SpillCorruptionError(SpillError):
    """A chunk file does not match its manifest record (size or CRC)."""


def _crc32_array(array: np.ndarray) -> int:
    """CRC32 over an array's bytes, computed in bounded blocks."""
    view = memoryview(np.ascontiguousarray(array)).cast("B")
    crc = 0
    for start in range(0, len(view), _CRC_BLOCK):
        crc = zlib.crc32(view[start : start + _CRC_BLOCK], crc)
    return crc & 0xFFFFFFFF


def _fsync_path(path: Path) -> None:
    """Best-effort fsync of a file or directory (directories may refuse)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        return  # e.g. directories on some filesystems; rename already landed
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_path(path.parent)


@dataclasses.dataclass(frozen=True)
class ChunkRecord:
    """One committed chunk in the manifest."""

    index: int
    start_row: int
    rows: int
    filename: str
    nbytes: int
    crc32: int

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChunkRecord":
        return cls(
            index=int(payload["index"]),
            start_row=int(payload["start_row"]),
            rows=int(payload["rows"]),
            filename=str(payload["filename"]),
            nbytes=int(payload["nbytes"]),
            crc32=int(payload["crc32"]),
        )


class SpillStore:
    """Crash-safe chunk files + manifest for one capacity run.

    Parameters
    ----------
    directory:
        The run directory (created if missing).
    array_size:
        Row length of every chunk (fixed per run).
    dtype:
        Element dtype of every chunk.
    resume:
        Adopt an existing manifest in ``directory`` — committed chunks
        are validated (file present, size matches) and become skippable
        work.  With no manifest present, starts a fresh run.
    reclaim:
        Delete stale run state (manifest, chunk files, checkpoint) left
        by a previous run before starting fresh.
    meta:
        Run-level metadata persisted in the manifest (e.g. total rows,
        budget) — available to a resuming process.
    """

    def __init__(
        self,
        directory,
        *,
        array_size: int,
        dtype,
        resume: bool = False,
        reclaim: bool = False,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if array_size < 1:
            raise SpillError(f"array_size must be >= 1, got {array_size}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.array_size = int(array_size)
        self.dtype = np.dtype(dtype)
        self.meta: Dict[str, object] = dict(meta or {})
        self.run_id = uuid.uuid4().hex
        self.resumed_from: Optional[str] = None
        self._records: Dict[int, ChunkRecord] = {}
        self._recommits = 0

        manifest_path = self.directory / _MANIFEST_NAME
        stale = self._stale_files()
        if manifest_path.exists():
            if resume:
                self._adopt_manifest(manifest_path)
            elif reclaim:
                self._reclaim(manifest_path)
            else:
                previous = self._peek_run_id(manifest_path)
                raise SpillDirectoryError(
                    f"spill directory {self.directory} already holds a "
                    f"manifest from run {previous} "
                    f"({len(self._peek_chunks(manifest_path))} committed "
                    "chunk(s)); pass resume=True to continue that run or "
                    "reclaim=True to delete its state and start fresh"
                )
        elif stale and not reclaim:
            names = ", ".join(sorted(p.name for p in stale)[:5])
            raise SpillDirectoryError(
                f"spill directory {self.directory} holds {len(stale)} "
                f"chunk/checkpoint file(s) from a dead run with no "
                f"manifest ({names}{', ...' if len(stale) > 5 else ''}); "
                "pass reclaim=True to delete them and start fresh"
            )
        elif stale:
            for path in stale:
                path.unlink()
        if not manifest_path.exists() or not resume:
            self._write_manifest()

    # -- hygiene ----------------------------------------------------------
    def _stale_files(self) -> List[Path]:
        out = list(self.directory.glob("chunk_*.bin"))
        out += list(self.directory.glob("chunk_*.bin.tmp"))
        checkpoint = self.directory / _CHECKPOINT_NAME
        if checkpoint.exists():
            out.append(checkpoint)
        return out

    @staticmethod
    def _peek_run_id(manifest_path: Path) -> str:
        try:
            payload = json.loads(manifest_path.read_text())
            return str(payload.get("run_id", "<unknown>"))
        except (OSError, ValueError):
            return "<unreadable>"

    @staticmethod
    def _peek_chunks(manifest_path: Path) -> List[object]:
        try:
            payload = json.loads(manifest_path.read_text())
            chunks = payload.get("chunks", [])
            return chunks if isinstance(chunks, list) else []
        except (OSError, ValueError):
            return []

    def _reclaim(self, manifest_path: Path) -> None:
        for path in self._stale_files():
            path.unlink()
        manifest_path.unlink()

    def _adopt_manifest(self, manifest_path: Path) -> None:
        try:
            payload = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise SpillCorruptionError(
                f"manifest {manifest_path} is not valid JSON: {exc}"
            ) from exc
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise SpillError(
                f"manifest schema {payload.get('schema')!r} is not "
                f"{MANIFEST_SCHEMA!r}"
            )
        if int(payload["array_size"]) != self.array_size:
            raise SpillError(
                f"manifest is for array_size {payload['array_size']}, "
                f"this run uses {self.array_size}"
            )
        if np.dtype(payload["dtype"]) != self.dtype:
            raise SpillError(
                f"manifest is for dtype {payload['dtype']}, this run uses "
                f"{self.dtype.str}"
            )
        self.resumed_from = str(payload.get("run_id"))
        self.run_id = self.resumed_from
        stored_meta = payload.get("meta", {})
        if isinstance(stored_meta, dict):
            merged = dict(stored_meta)
            merged.update(self.meta)
            self.meta = merged
        for entry in payload.get("chunks", []):
            record = ChunkRecord.from_dict(entry)
            path = self.directory / record.filename
            if not path.exists():
                raise SpillCorruptionError(
                    f"manifest lists {record.filename} but the file is "
                    "missing; the directory was tampered with"
                )
            if path.stat().st_size != record.nbytes:
                raise SpillCorruptionError(
                    f"{record.filename} is {path.stat().st_size} bytes, "
                    f"manifest says {record.nbytes}"
                )
            self._records[record.index] = record

    # -- manifest ---------------------------------------------------------
    @property
    def committed(self) -> List[ChunkRecord]:
        """Committed chunks, ordered by index."""
        return [self._records[i] for i in sorted(self._records)]

    @property
    def rows_committed(self) -> int:
        return sum(r.rows for r in self._records.values())

    @property
    def spill_bytes_written(self) -> int:
        return sum(r.nbytes for r in self._records.values())

    @property
    def recommits(self) -> int:
        """Chunks re-committed under an index that already existed."""
        return self._recommits

    @property
    def complete(self) -> bool:
        return bool(self.meta.get("complete", False))

    def mark_complete(self) -> None:
        self.meta["complete"] = True
        self._write_manifest()

    def _write_manifest(self) -> None:
        payload = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "array_size": self.array_size,
            "dtype": self.dtype.str,
            "meta": self.meta,
            "chunks": [r.as_dict() for r in self.committed],
        }
        _atomic_write_bytes(
            self.directory / _MANIFEST_NAME,
            json.dumps(payload, indent=1).encode(),
        )

    # -- chunk I/O --------------------------------------------------------
    def commit_chunk(
        self, index: int, start_row: int, rows: np.ndarray
    ) -> ChunkRecord:
        """Durably write one sorted chunk and record it in the manifest.

        Write-to-temp + fsync + rename, then an atomic manifest rewrite:
        a crash at any point leaves either the previous manifest (chunk
        absent — it will be re-sorted) or the new one (chunk committed —
        it will be skipped).  Committing an index that already exists
        replaces it (the at-least-once retry path) and ticks
        :attr:`recommits`.
        """
        rows = np.ascontiguousarray(rows, dtype=self.dtype)
        if rows.ndim != 2 or rows.shape[1] != self.array_size:
            raise SpillError(
                f"chunk must be (rows, {self.array_size}), got {rows.shape}"
            )
        filename = _CHUNK_FMT.format(index=index)
        tmp = self.directory / (filename + ".tmp")
        with open(tmp, "wb") as handle:
            rows.tofile(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.directory / filename)
        _fsync_path(self.directory)
        record = ChunkRecord(
            index=int(index),
            start_row=int(start_row),
            rows=int(rows.shape[0]),
            filename=filename,
            nbytes=int(rows.nbytes),
            crc32=_crc32_array(rows),
        )
        if index in self._records:
            self._recommits += 1
            if _sanitizer.enabled():
                # Re-committing an index replaces its bytes on disk:
                # memmap views from open_chunk on the old file are stale.
                _sanitizer.new_epoch(("SpillStore.chunk", id(self), int(index)))
        self._records[int(index)] = record
        self._write_manifest()
        return record

    def open_chunk(self, record: ChunkRecord, *, verify: bool = False) -> np.ndarray:
        """Read-only :func:`numpy.memmap` window over one committed chunk."""
        path = self.directory / record.filename
        if not path.exists() or path.stat().st_size != record.nbytes:
            raise SpillCorruptionError(
                f"{record.filename}: missing or wrong size on disk"
            )
        chunk = np.memmap(
            path, dtype=self.dtype, mode="r",
            shape=(record.rows, self.array_size),
        )
        if verify and _crc32_array(chunk) != record.crc32:
            raise SpillCorruptionError(
                f"{record.filename}: CRC mismatch (file corrupted)"
            )
        if _sanitizer.enabled():
            chunk = _sanitizer.track_view(
                chunk, ("SpillStore.chunk", id(self), int(record.index)),
                label=f"SpillStore.open_chunk({record.filename})",
            )
        return chunk

    def verify_chunk(self, record: ChunkRecord) -> bool:
        """CRC-check one committed chunk without raising."""
        try:
            self.open_chunk(record, verify=True)
        except SpillCorruptionError:
            return False
        return True

    def iter_chunks(self, *, verify: bool = False) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start_row, memmap)`` per committed chunk, in row order."""
        for record in sorted(self.committed, key=lambda r: r.start_row):
            yield record.start_row, self.open_chunk(record, verify=verify)

    # -- checkpoint -------------------------------------------------------
    def save_checkpoint(self, payload: Dict[str, object],
                        staging: np.ndarray) -> None:
        """Atomically persist the streaming checkpoint next to the manifest."""
        buffer = io.BytesIO()
        np.savez(
            buffer,
            staging=np.ascontiguousarray(staging, dtype=self.dtype),
            meta=np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8),
        )
        _atomic_write_bytes(self.directory / _CHECKPOINT_NAME, buffer.getvalue())

    def load_checkpoint(self) -> Optional[Tuple[Dict[str, object], np.ndarray]]:
        """Load the persisted checkpoint, or ``None`` if absent/unreadable.

        An unreadable checkpoint is treated as absent (the manifest alone
        is enough to resume — only a partial staging tail is lost, and
        the input source is durable), but the corruption is surfaced via
        the returned ``None`` path's caller counting it.
        """
        path = self.directory / _CHECKPOINT_NAME
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                meta = json.loads(bytes(archive["meta"]).decode())
                staging = np.array(archive["staging"], dtype=self.dtype)
        except (OSError, ValueError, KeyError, zlib.error):
            return None
        return meta, staging

    def clear_checkpoint(self) -> None:
        path = self.directory / _CHECKPOINT_NAME
        if path.exists():
            path.unlink()


@dataclasses.dataclass
class BatchFile:
    """File-backed ``(rows, row_len)`` input batch, read in windows.

    Unlike mapping the whole file, :meth:`read_into` seeks and
    ``readinto``-fills a caller-provided buffer, so a capacity run's
    address space holds at most one chunk of input at a time — this is
    what lets the ``RLIMIT_AS`` tests pin the budget for real.
    """

    path: Path
    rows: int
    row_len: int
    dtype: np.dtype

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self.dtype = np.dtype(self.dtype)
        expected = self.rows * self.row_len * self.dtype.itemsize
        actual = self.path.stat().st_size
        if actual < expected:
            raise SpillError(
                f"{self.path} is {actual} bytes; a ({self.rows}, "
                f"{self.row_len}) {self.dtype.str} batch needs {expected}"
            )

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.row_len)

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_len * self.dtype.itemsize

    def read_into(self, start: int, stop: int, out: np.ndarray) -> np.ndarray:
        """Fill ``out[: stop - start]`` with rows ``[start, stop)``."""
        count = stop - start
        if not 0 <= start <= stop <= self.rows:
            raise SpillError(
                f"row window [{start}, {stop}) outside 0..{self.rows}"
            )
        target = out[:count]
        if target.shape != (count, self.row_len) or target.dtype != self.dtype:
            raise SpillError(
                f"read buffer must be ({count}, {self.row_len}) "
                f"{self.dtype.str}, got {target.shape} {target.dtype.str}"
            )
        row_bytes = self.row_len * self.dtype.itemsize
        with open(self.path, "rb") as handle:
            handle.seek(start * row_bytes)
            view = memoryview(target).cast("B")
            filled = handle.readinto(view)
        if filled != count * row_bytes:
            raise SpillError(
                f"short read from {self.path}: wanted {count * row_bytes} "
                f"bytes at row {start}, got {filled}"
            )
        return target

    def read(self, start: int, stop: int) -> np.ndarray:
        """Materialize rows ``[start, stop)`` as a fresh array."""
        out = np.empty((stop - start, self.row_len), dtype=self.dtype)
        return self.read_into(start, stop, out)


def write_batch_file(
    path,
    generator,
    *,
    rows: int,
    row_len: int,
    dtype,
    block_rows: int = 4096,
) -> BatchFile:
    """Stream a generated batch to disk in bounded blocks.

    ``generator(block_index, start_row, block_rows)`` must return a
    ``(block_rows, row_len)`` array for each block; blocks are written
    sequentially so peak memory is one block regardless of ``rows``.
    """
    path = Path(path)
    dtype = np.dtype(dtype)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        for block_index, start in enumerate(range(0, rows, block_rows)):
            take = min(block_rows, rows - start)
            block = np.ascontiguousarray(
                generator(block_index, start, take), dtype=dtype
            )
            if block.shape != (take, row_len):
                raise SpillError(
                    f"generator returned {block.shape}, expected "
                    f"({take}, {row_len})"
                )
            block.tofile(handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return BatchFile(path=path, rows=rows, row_len=row_len, dtype=dtype)
