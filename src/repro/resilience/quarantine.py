"""Dead-letter queue: where unsortable rows go instead of killing a session.

A streaming acquisition session must not abort because one spectrum
arrived poisoned (NaN) or one row kept failing verification under a
hostile fault pattern.  Those rows are *quarantined*: pulled out of the
emitted batch, preserved verbatim with their provenance (batch id, row
index, reason), and left for offline inspection — the standard
dead-letter-queue pattern from message brokers, applied to arrays.

This module intentionally imports nothing from :mod:`repro.core` so the
streaming sorter can use it without an import cycle.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..statan import runtime as _sanitizer

__all__ = ["DEFAULT_DEAD_LETTER_CAPACITY", "DeadLetter", "DeadLetterQueue"]

#: Default bound consumers (the streaming sorter) apply when creating a
#: queue for an unattended session: enough to inspect any realistic
#: incident, small enough that a hostile fault pattern cannot grow the
#: queue without bound.  Pass ``capacity=None`` explicitly for an
#: unbounded queue.
DEFAULT_DEAD_LETTER_CAPACITY = 4096


@dataclasses.dataclass(frozen=True)
class DeadLetter:
    """One quarantined row with its provenance."""

    #: Monotonic id of the batch the row was part of.
    batch_id: int
    #: Row index inside that batch.
    row_index: int
    #: Why the row was quarantined (e.g. ``"nan-input"``,
    #: ``"validation-failed"``).
    reason: str
    #: The original, unsorted row as it arrived.
    payload: np.ndarray
    #: Owning tenant, when the producer serves multi-tenant traffic
    #: (:mod:`repro.service`); ``None`` for single-caller sessions.
    tenant: Optional[str] = None


@_sanitizer.sanitize_guarded
class DeadLetterQueue:
    """Append-only store of quarantined rows.

    ``capacity`` bounds memory in unattended sessions: beyond it the
    payloads of the *oldest* entries are dropped (the provenance counters
    survive), matching broker DLQs that age out bodies but keep receipts.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.capacity = capacity
        self._lock = _sanitizer.make_lock("DeadLetterQueue._lock")
        self._letters: List[DeadLetter] = []  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    def add(
        self,
        *,
        batch_id: int,
        row_index: int,
        payload: np.ndarray,
        reason: str = "validation-failed",
        tenant: Optional[str] = None,
    ) -> DeadLetter:
        letter = DeadLetter(
            batch_id=int(batch_id),
            row_index=int(row_index),
            reason=str(reason),
            payload=np.array(payload, copy=True),
            tenant=None if tenant is None else str(tenant),
        )
        with self._lock:
            self._letters.append(letter)
            if self.capacity is not None and len(self._letters) > self.capacity:
                overflow = len(self._letters) - self.capacity
                self._letters = self._letters[overflow:]
                self._dropped += overflow
        return letter

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)

    def __iter__(self) -> Iterator[DeadLetter]:
        with self._lock:
            return iter(list(self._letters))

    @property
    def dropped(self) -> int:
        """Letters aged out by the capacity bound."""
        with self._lock:
            return self._dropped

    def payloads(self) -> np.ndarray:
        """All quarantined rows stacked into one matrix (empty-safe)."""
        with self._lock:
            letters = list(self._letters)
        if not letters:
            return np.empty((0, 0))
        return np.vstack([letter.payload for letter in letters])

    def reasons(self) -> Dict[str, int]:
        """Histogram of quarantine reasons."""
        with self._lock:
            letters = list(self._letters)
        histogram: Dict[str, int] = {}
        for letter in letters:
            histogram[letter.reason] = histogram.get(letter.reason, 0) + 1
        return histogram

    def tenants(self) -> Dict[str, int]:
        """Histogram of owning tenants (untagged letters under ``""``)."""
        with self._lock:
            letters = list(self._letters)
        histogram: Dict[str, int] = {}
        for letter in letters:
            key = letter.tenant or ""
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def drain(self) -> List[DeadLetter]:
        """Return all letters and empty the queue (reprocessing hook)."""
        with self._lock:
            letters, self._letters = self._letters, []
        return letters
