"""Observability record for the self-healing sort pipeline.

One :class:`ResilienceStats` accumulates across every sort a
:class:`~repro.resilience.sorter.ResilientSorter` runs (a session-level
view: the CLI and benchmarks print it), and each
:class:`~repro.resilience.sorter.ResilientSortResult` also carries the
delta recorded during that one call.  All fields are filled
deterministically — with a seeded
:class:`~repro.gpusim.faults.FaultPlan` and a fake clock, two identical
runs produce identical stats, which is what makes resilience behavior
assertable in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["ResilienceStats"]


@dataclasses.dataclass
class ResilienceStats:
    """Counters of what the resilient pipeline saw and did."""

    #: Sort attempts issued (primary tries + retries + fallback tries).
    attempts: int = 0
    #: Transient kernel faults observed (injected or real).
    faults_seen: int = 0
    #: Device OOM conditions observed.
    oom_seen: int = 0
    #: Retries performed after a fault or a failed verification.
    retries: int = 0
    #: Total backoff accumulated (seconds the injectable clock slept).
    backoff_seconds: float = 0.0
    #: Phase-1 re-sampling escalations on degenerate/skewed splitters.
    resamples: int = 0
    #: Fallbacks taken, keyed by the engine fallen back *to*.
    fallbacks: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Output rows that failed verification (corruption detected).
    corrupt_rows_detected: int = 0
    #: Rows that eventually verified after a retry or fallback.
    rows_recovered: int = 0
    #: Rows abandoned to the dead-letter queue.
    quarantined_rows: int = 0

    def record_fallback(self, engine: str) -> None:
        self.fallbacks[engine] = self.fallbacks.get(engine, 0) + 1

    def merge(self, other: "ResilienceStats") -> None:
        """Accumulate ``other`` into this record (session roll-up)."""
        self.attempts += other.attempts
        self.faults_seen += other.faults_seen
        self.oom_seen += other.oom_seen
        self.retries += other.retries
        self.backoff_seconds += other.backoff_seconds
        self.resamples += other.resamples
        for engine, count in other.fallbacks.items():
            self.fallbacks[engine] = self.fallbacks.get(engine, 0) + count
        self.corrupt_rows_detected += other.corrupt_rows_detected
        self.rows_recovered += other.rows_recovered
        self.quarantined_rows += other.quarantined_rows

    def as_dict(self) -> dict:
        """Plain-dict view (stable key order) for printing and equality."""
        data = dataclasses.asdict(self)
        data["fallbacks"] = dict(sorted(self.fallbacks.items()))
        return data
