"""Bounded retry with capped exponential backoff, on an injectable clock.

A transient device fault (timeout, OOM pressure from a co-tenant, ECC
event) usually clears within milliseconds; retrying immediately can
re-hit the same pressure window, so each retry waits
``base * multiplier**attempt`` seconds, capped.  The *schedule* is pure
arithmetic — deterministic and unit-testable — while the *waiting* goes
through a pluggable ``sleep`` callable so tests and benchmarks replace
real sleeping with a fake clock and still observe identical
``backoff_seconds`` in the stats.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed sort attempt, and how long to wait."""

    #: Retries after the first attempt (0 disables retrying).
    max_retries: int = 3
    #: Backoff before the first retry, seconds.
    base_backoff_s: float = 0.05
    #: Growth factor per retry.
    multiplier: float = 2.0
    #: Ceiling on any single backoff, seconds.
    max_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")

    def backoff_for(self, retry_index: int) -> float:
        """Seconds to wait before retry ``retry_index`` (0-based).

        >>> RetryPolicy(base_backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3).backoff_for(2)
        0.3
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        return min(self.base_backoff_s * self.multiplier**retry_index,
                   self.max_backoff_s)

    def schedule(self):
        """The full backoff sequence, one entry per allowed retry."""
        return [self.backoff_for(i) for i in range(self.max_retries)]


#: Paper-deployment default: 3 retries, 50 ms -> 100 ms -> 200 ms.
DEFAULT_RETRY_POLICY = RetryPolicy()
